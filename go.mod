module easig

go 1.22
