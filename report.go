package easig

import (
	"time"

	"easig/internal/experiment"
	"easig/internal/journal"
)

// The runner/reporter split and the distributed-campaign surface:
// re-exports of the internal/experiment sharding and reporting
// subsystems behind the ficd campaign service (see SERVICE.md).
// Campaigns produce CampaignResults; a ReportFormat paired with a
// ReportOutput renders them — fic's stdout tables, ficd's HTTP result
// bodies and cmd/bench's table artifacts all go through this one path,
// so they are byte-identical by construction.

// CampaignResults bundles the outputs of a campaign (one or both
// experiments) with the Spec that produced them.
type CampaignResults = experiment.Results

// ReportFormat renders CampaignResults in one concrete representation:
// TextReport (the paper's tables), JSONReport (the stable machine
// schema) or JournalReport (JSONL journal lines).
type ReportFormat = experiment.Format

// ReportOutput is a sink for one rendered report: StdWriter wraps any
// io.Writer, FileReport creates a file.
type ReportOutput = experiment.Output

// CampaignReporter pairs a format with an output; Report renders
// results through them.
type CampaignReporter = experiment.Reporter

// Report format and output implementations.
type (
	// TextReport renders the paper's fixed-width tables — the same
	// bytes fic prints.
	TextReport = experiment.TextFormat
	// JSONReport renders the machine-readable export schema.
	JSONReport = experiment.JSONFormat
	// JournalReport renders the campaign journal as JSONL lines.
	JournalReport = experiment.JournalFormat
	// StdWriter emits a report to an io.Writer.
	StdWriter = experiment.WriterOutput
	// FileReport emits a report to a file created at render time.
	FileReport = experiment.FileOutput
)

// ParseReportFormat resolves a format name ("text", "json",
// "journal"/"jsonl") — the value of fic's -format flag and ficd's
// ?format query parameter — to its ReportFormat.
func ParseReportFormat(name string) (ReportFormat, error) { return experiment.ParseFormat(name) }

// Shard is one claimable work unit of a distributed campaign: a block
// of global test-case indices plus the run count it contributes.
// Sharding is by test case because per-run seeds depend only on the
// campaign seed and the global case index, which makes shard journals
// byte-identical to the same runs of a single-process campaign.
type Shard = experiment.Shard

// ShardStatus is one shard's observable lease state (pending, leased
// or done), as rendered by ficd's campaign status endpoint.
type ShardStatus = experiment.ShardStatus

// ShardBoard is the lease state machine of one distributed campaign:
// pending -> leased (Claim) -> done (Complete), with leased -> pending
// on lease expiry. See SERVICE.md for the full protocol.
type ShardBoard = experiment.ShardBoard

// NewShardBoard builds a lease board over a shard plan.
func NewShardBoard(campaign, exp string, shards []Shard, lease time.Duration, record func(JournalClaim) error) *ShardBoard {
	return experiment.NewShardBoard(campaign, exp, shards, lease, record)
}

// PlanShards cuts a campaign Spec into shards of casesPerShard
// contiguous test cases. The plan is a pure function of its inputs, so
// every process derives the same shard identifiers.
func PlanShards(spec CampaignSpec, exp string, casesPerShard int) ([]Shard, error) {
	return experiment.PlanShards(spec, exp, casesPerShard)
}

// MergeShards folds completed shard journals into campaign results
// whose tables are byte-identical to a single-process run of the same
// Spec — the distributed campaign's core guarantee.
func MergeShards(spec CampaignSpec, exp string, mode EngineMode, logs []*JournalLog) (*CampaignResults, error) {
	return experiment.MergeShards(spec, exp, mode, logs)
}

// ValidateShardJournal checks an uploaded shard journal against its
// campaign: header identity, completeness, per-record seeds, and the
// absence of foreign runs.
func ValidateShardJournal(spec CampaignSpec, exp string, shard Shard, runner string, log *JournalLog) error {
	return experiment.ValidateShardJournal(spec, exp, shard, runner, log)
}

// MergeJournals merges campaign journals (the per-shard logs of a
// distributed campaign), validating their common identity and
// dedupling re-executed runs.
func MergeJournals(logs ...*JournalLog) (*JournalLog, error) { return journal.Merge(logs...) }
