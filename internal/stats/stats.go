// Package stats implements the coverage estimators the paper uses for
// its result tables: the detection-probability estimates P(d),
// P(d|fail) and P(d|no fail) with 95% confidence intervals, following
// the formulas for coverage estimation of Powell, Martins, Arlat and
// Crouzet, "Estimators for Fault Tolerance Coverage Evaluation" (IEEE
// ToC 44(2), 1995, the paper's [18]), and min/average/max detection
// latency aggregation.
package stats

import (
	"fmt"
	"math"
)

// z95 is the two-sided 95% normal quantile used for the confidence
// intervals in the paper's Tables 7 and 9.
const z95 = 1.959963984540054

// Proportion is a binomial coverage estimate: nd detections out of ne
// experiments.
type Proportion struct {
	// Detected is the number of runs with at least one detection (nd).
	Detected int
	// Total is the number of runs (ne).
	Total int
}

// Valid reports whether the estimate has any observations.
func (p Proportion) Valid() bool { return p.Total > 0 }

// Estimate returns the point estimate nd/ne. It returns NaN when no
// experiments were run.
func (p Proportion) Estimate() float64 {
	if p.Total == 0 {
		return math.NaN()
	}
	return float64(p.Detected) / float64(p.Total)
}

// Percent returns the point estimate in percent.
func (p Proportion) Percent() float64 { return p.Estimate() * 100 }

// HalfWidth95 returns the half-width of the normal-approximation 95%
// confidence interval, in percent. As in the paper, no interval is
// reported for measured probabilities of exactly 0% or 100% (the
// normal approximation degenerates); those return 0 with ok=false.
func (p Proportion) HalfWidth95() (float64, bool) {
	if p.Total == 0 {
		return 0, false
	}
	est := p.Estimate()
	if est == 0 || est == 1 {
		return 0, false
	}
	hw := z95 * math.Sqrt(est*(1-est)/float64(p.Total)) * 100
	return hw, true
}

// String renders the estimate like the paper's table cells:
// "74.0±1.4" (percent), "100.0" when degenerate, and "" when empty.
func (p Proportion) String() string {
	if p.Total == 0 {
		return ""
	}
	if hw, ok := p.HalfWidth95(); ok {
		return fmt.Sprintf("%.1f±%.1f", p.Percent(), hw)
	}
	return fmt.Sprintf("%.1f", p.Percent())
}

// Coverage groups the three conditional detection probabilities that
// the paper reports for every signal/assertion cell: P(d), P(d|fail)
// and P(d|no fail). The relation n = n_fail + n_no-fail holds for both
// detections and experiments.
type Coverage struct {
	All    Proportion
	Fail   Proportion
	NoFail Proportion
}

// Add records one run's outcome into the three estimators.
func (c *Coverage) Add(detected, failed bool) {
	c.All.Total++
	if detected {
		c.All.Detected++
	}
	if failed {
		c.Fail.Total++
		if detected {
			c.Fail.Detected++
		}
	} else {
		c.NoFail.Total++
		if detected {
			c.NoFail.Detected++
		}
	}
}

// Merge accumulates another coverage (used to fold per-signal cells
// into table totals).
func (c *Coverage) Merge(o Coverage) {
	c.All.Detected += o.All.Detected
	c.All.Total += o.All.Total
	c.Fail.Detected += o.Fail.Detected
	c.Fail.Total += o.Fail.Total
	c.NoFail.Detected += o.NoFail.Detected
	c.NoFail.Total += o.NoFail.Total
}

// Latency aggregates detection latencies in milliseconds, reporting
// the min/average/max triple of the paper's Table 8. The zero value is
// an empty aggregate.
type Latency struct {
	n   int
	sum int64
	min int64
	max int64
}

// Add records one run's detection latency.
func (l *Latency) Add(ms int64) {
	if l.n == 0 || ms < l.min {
		l.min = ms
	}
	if l.n == 0 || ms > l.max {
		l.max = ms
	}
	l.n++
	l.sum += ms
}

// Merge accumulates another aggregate.
func (l *Latency) Merge(o Latency) {
	if o.n == 0 {
		return
	}
	if l.n == 0 {
		*l = o
		return
	}
	if o.min < l.min {
		l.min = o.min
	}
	if o.max > l.max {
		l.max = o.max
	}
	l.n += o.n
	l.sum += o.sum
}

// Count returns the number of recorded latencies.
func (l Latency) Count() int { return l.n }

// Min returns the minimum latency; ok is false for an empty aggregate.
func (l Latency) Min() (int64, bool) { return l.min, l.n > 0 }

// Max returns the maximum latency; ok is false for an empty aggregate.
func (l Latency) Max() (int64, bool) { return l.max, l.n > 0 }

// Average returns the mean latency; ok is false for an empty
// aggregate.
func (l Latency) Average() (float64, bool) {
	if l.n == 0 {
		return 0, false
	}
	return float64(l.sum) / float64(l.n), true
}

// String renders "min/avg/max" like a Table 8 cell, or "" when empty.
func (l Latency) String() string {
	if l.n == 0 {
		return ""
	}
	avg, _ := l.Average()
	return fmt.Sprintf("%d/%.0f/%d", l.min, avg, l.max)
}
