package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDetectionModelPdetect(t *testing.T) {
	// The paper's discussion (§5.2): with Pds = 74%, Pdetect = 74%
	// only if every error reaches a monitored signal.
	m := DetectionModel{Pem: 1, Pprop: 0, Pds: 0.74}
	if got := m.Pdetect(); math.Abs(got-0.74) > 1e-12 {
		t.Errorf("Pdetect = %g", got)
	}
	// No monitored-signal hits and no propagation: nothing detected.
	m = DetectionModel{Pem: 0, Pprop: 0, Pds: 0.74}
	if got := m.Pdetect(); got != 0 {
		t.Errorf("Pdetect = %g, want 0", got)
	}
	// Hand-computed middle case.
	m = DetectionModel{Pem: 0.2, Pprop: 0.5, Pds: 0.8}
	want := (0.8*0.5 + 0.2) * 0.8
	if got := m.Pdetect(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Pdetect = %g, want %g", got, want)
	}
}

func TestDetectionModelValidate(t *testing.T) {
	if err := (DetectionModel{Pem: 0.5, Pprop: 0.5, Pds: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []DetectionModel{
		{Pem: -0.1, Pprop: 0.5, Pds: 0.5},
		{Pem: 0.5, Pprop: 1.1, Pds: 0.5},
		{Pem: 0.5, Pprop: 0.5, Pds: math.NaN()},
	} {
		if err := bad.Validate(); !errors.Is(err, ErrProbability) {
			t.Errorf("%+v: %v, want ErrProbability", bad, err)
		}
	}
}

func TestPemFromLayout(t *testing.T) {
	// The target: 7 monitored 16-bit signals in 417 bytes of RAM.
	got := PemFromLayout(14, 417)
	if math.Abs(got-14.0/417) > 1e-12 {
		t.Errorf("Pem = %g", got)
	}
	if PemFromLayout(1, 0) != 0 {
		t.Error("degenerate layout should yield 0")
	}
}

// SolvePprop inverts Pdetect exactly.
func TestQuickSolvePpropInverts(t *testing.T) {
	f := func(a, b, c uint16) bool {
		m := DetectionModel{
			Pem:   float64(a%1000) / 1000,
			Pprop: float64(b%1000) / 1000,
			Pds:   float64(c%999+1) / 1000, // keep Pds > 0
		}
		if m.Pen() == 0 {
			return true
		}
		got, ok := SolvePprop(m.Pdetect(), m)
		return ok && math.Abs(got-m.Pprop) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Pdetect is monotone in each parameter and bounded by Pds.
func TestQuickPdetectBounds(t *testing.T) {
	f := func(a, b, c uint16) bool {
		m := DetectionModel{
			Pem:   float64(a%1001) / 1000,
			Pprop: float64(b%1001) / 1000,
			Pds:   float64(c%1001) / 1000,
		}
		p := m.Pdetect()
		if p < -1e-12 || p > m.Pds+1e-12 {
			return false
		}
		bigger := m
		bigger.Pprop = math.Min(1, m.Pprop+0.1)
		return bigger.Pdetect()+1e-12 >= p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolvePpropDegenerate(t *testing.T) {
	if _, ok := SolvePprop(0.5, DetectionModel{Pds: 0}); ok {
		t.Error("Pds = 0 should not solve")
	}
	if _, ok := SolvePprop(0.5, DetectionModel{Pem: 1, Pds: 0.5}); ok {
		t.Error("Pen = 0 should not solve")
	}
}
