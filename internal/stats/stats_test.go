package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProportionEstimate(t *testing.T) {
	p := Proportion{Detected: 74, Total: 100}
	if got := p.Estimate(); got != 0.74 {
		t.Errorf("Estimate = %g", got)
	}
	if got := p.Percent(); got != 74 {
		t.Errorf("Percent = %g", got)
	}
	if !p.Valid() {
		t.Error("Valid = false")
	}
	empty := Proportion{}
	if empty.Valid() || !math.IsNaN(empty.Estimate()) {
		t.Error("empty proportion must be invalid/NaN")
	}
}

func TestProportionConfidenceInterval(t *testing.T) {
	// Hand-checked: p=0.5, n=100 -> 1.96*sqrt(0.25/100) = 0.098 = 9.8%.
	p := Proportion{Detected: 50, Total: 100}
	hw, ok := p.HalfWidth95()
	if !ok || math.Abs(hw-9.8) > 0.01 {
		t.Errorf("half width = (%g, %v), want ~9.8", hw, ok)
	}
	// The paper's Table 7 total: P(d) = 74.0±1.4 at nd=2072, ne=2800.
	paper := Proportion{Detected: 2072, Total: 2800}
	hw, ok = paper.HalfWidth95()
	if !ok || math.Abs(hw-1.6) > 0.1 {
		t.Errorf("paper-scale half width = %g, want ~1.6", hw)
	}
}

func TestProportionDegenerateCI(t *testing.T) {
	for _, p := range []Proportion{
		{Detected: 0, Total: 50},
		{Detected: 50, Total: 50},
		{},
	} {
		if _, ok := p.HalfWidth95(); ok {
			t.Errorf("degenerate %+v reported an interval", p)
		}
	}
}

func TestProportionString(t *testing.T) {
	tests := []struct {
		p    Proportion
		want string
	}{
		{Proportion{Detected: 50, Total: 100}, "50.0±9.8"},
		{Proportion{Detected: 100, Total: 100}, "100.0"},
		{Proportion{Detected: 0, Total: 100}, "0.0"},
		{Proportion{}, ""},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("%+v.String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestCoverageAdd(t *testing.T) {
	var c Coverage
	c.Add(true, true)   // detected failure
	c.Add(false, true)  // undetected failure
	c.Add(true, false)  // detected benign
	c.Add(false, false) // undetected benign
	if c.All.Total != 4 || c.All.Detected != 2 {
		t.Errorf("All = %+v", c.All)
	}
	if c.Fail.Total != 2 || c.Fail.Detected != 1 {
		t.Errorf("Fail = %+v", c.Fail)
	}
	if c.NoFail.Total != 2 || c.NoFail.Detected != 1 {
		t.Errorf("NoFail = %+v", c.NoFail)
	}
}

// The paper's identity n = n_fail + n_no-fail holds for experiments
// and detections alike, for any outcome sequence.
func TestQuickCoveragePartition(t *testing.T) {
	f := func(outcomes []bool, fails []bool) bool {
		var c Coverage
		n := len(outcomes)
		if len(fails) < n {
			n = len(fails)
		}
		for i := 0; i < n; i++ {
			c.Add(outcomes[i], fails[i])
		}
		return c.All.Total == c.Fail.Total+c.NoFail.Total &&
			c.All.Detected == c.Fail.Detected+c.NoFail.Detected
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageMerge(t *testing.T) {
	var a, b Coverage
	a.Add(true, true)
	b.Add(false, false)
	b.Add(true, false)
	a.Merge(b)
	if a.All.Total != 3 || a.All.Detected != 2 || a.Fail.Total != 1 || a.NoFail.Total != 2 {
		t.Errorf("merged = %+v", a)
	}
}

func TestLatency(t *testing.T) {
	var l Latency
	if _, ok := l.Min(); ok {
		t.Error("empty aggregate reported a minimum")
	}
	if _, ok := l.Average(); ok {
		t.Error("empty aggregate reported an average")
	}
	if l.String() != "" {
		t.Errorf("empty String = %q", l.String())
	}
	for _, v := range []int64{30, 10, 20} {
		l.Add(v)
	}
	if mn, _ := l.Min(); mn != 10 {
		t.Errorf("Min = %d", mn)
	}
	if mx, _ := l.Max(); mx != 30 {
		t.Errorf("Max = %d", mx)
	}
	if avg, _ := l.Average(); avg != 20 {
		t.Errorf("Average = %g", avg)
	}
	if l.Count() != 3 {
		t.Errorf("Count = %d", l.Count())
	}
	if got := l.String(); got != "10/20/30" {
		t.Errorf("String = %q", got)
	}
}

func TestLatencyMerge(t *testing.T) {
	var a, b, empty Latency
	a.Add(10)
	a.Add(20)
	b.Add(5)
	b.Add(45)
	a.Merge(b)
	if mn, _ := a.Min(); mn != 5 {
		t.Errorf("Min = %d", mn)
	}
	if mx, _ := a.Max(); mx != 45 {
		t.Errorf("Max = %d", mx)
	}
	if avg, _ := a.Average(); avg != 20 {
		t.Errorf("Average = %g", avg)
	}
	a.Merge(empty)
	if a.Count() != 4 {
		t.Error("merging an empty aggregate changed the count")
	}
	empty.Merge(a)
	if empty.Count() != 4 {
		t.Error("merging into an empty aggregate failed")
	}
}

// Merging aggregates is equivalent to aggregating the concatenation.
func TestQuickLatencyMergeEquivalence(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a, b, all Latency
		for _, x := range xs {
			a.Add(int64(x))
			all.Add(int64(x))
		}
		for _, y := range ys {
			b.Add(int64(y))
			all.Add(int64(y))
		}
		a.Merge(b)
		if a.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		amn, _ := a.Min()
		bmn, _ := all.Min()
		amx, _ := a.Max()
		bmx, _ := all.Max()
		aavg, _ := a.Average()
		bavg, _ := all.Average()
		return amn == bmn && amx == bmx && aavg == bavg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
