package stats

import (
	"errors"
	"fmt"
)

// DetectionModel is the paper's §2.4 expression for the total error
// detection probability of a system:
//
//	Pdetect = (Pen*Pprop + Pem) * Pds
//
// where, given that an error has occurred,
//
//	Pem   = Pr{error location is in a monitored signal},
//	Pen   = 1 - Pem,
//	Pprop = Pr{error propagates to a monitored signal},
//	Pds   = Pr{detected | error is located in a monitored signal}.
//
// Pds is assessed separately by error injection (the E1 campaign) and
// is independent of the error-occurrence distribution; Pem and Pprop
// characterise the system and workload.
type DetectionModel struct {
	// Pem is the probability that the error hits a monitored signal.
	Pem float64
	// Pprop is the probability that an error elsewhere propagates to a
	// monitored signal.
	Pprop float64
	// Pds is the detection probability for errors in monitored
	// signals (estimated by E1 as the paper's Table 7 totals).
	Pds float64
}

// ErrProbability reports a model parameter outside [0, 1].
var ErrProbability = errors.New("stats: probability outside [0, 1]")

// Validate checks that all parameters are probabilities.
func (m DetectionModel) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Pem", m.Pem}, {"Pprop", m.Pprop}, {"Pds", m.Pds}} {
		if p.v < 0 || p.v > 1 || p.v != p.v {
			return fmt.Errorf("%w: %s = %g", ErrProbability, p.name, p.v)
		}
	}
	return nil
}

// Pen returns 1 - Pem.
func (m DetectionModel) Pen() float64 { return 1 - m.Pem }

// Pdetect evaluates the paper's expression.
func (m DetectionModel) Pdetect() float64 {
	return (m.Pen()*m.Pprop + m.Pem) * m.Pds
}

// PemFromLayout estimates Pem for uniformly distributed errors: the
// fraction of injectable bytes occupied by monitored signals.
func PemFromLayout(monitoredBytes, totalBytes int) float64 {
	if totalBytes <= 0 {
		return 0
	}
	return float64(monitoredBytes) / float64(totalBytes)
}

// SolvePprop inverts the expression for Pprop given a measured Pdetect
// (e.g. the E2 campaign total) and the other parameters; ok is false
// when the system is degenerate (Pds or Pen zero).
func SolvePprop(pdetect float64, m DetectionModel) (float64, bool) {
	if m.Pds == 0 || m.Pen() == 0 {
		return 0, false
	}
	return (pdetect/m.Pds - m.Pem) / m.Pen(), true
}
