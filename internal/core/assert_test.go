package core

import "testing"

// TestCheckContinuousTable2 walks every row of the paper's Table 2.
func TestCheckContinuousTable2(t *testing.T) {
	random := Continuous{Min: 0, Max: 100, Incr: Rate{0, 10}, Decr: Rate{0, 10}}
	staticUp := Continuous{Min: 0, Max: 100, Incr: Rate{4, 4}, Wrap: true}
	staticDown := Continuous{Min: 0, Max: 100, Decr: Rate{4, 4}, Wrap: true}
	dynUp := Continuous{Min: 0, Max: 100, Incr: Rate{0, 10}}
	dynDown := Continuous{Min: 0, Max: 100, Decr: Rate{0, 10}}
	strictRandom := Continuous{Min: 0, Max: 100, Incr: Rate{1, 10}, Decr: Rate{1, 10}}
	minRandom := Continuous{Min: 0, Max: 100, Incr: Rate{2, 10}, Decr: Rate{0, 10}}

	tests := []struct {
		name    string
		p       Continuous
		prev, s int64
		wantID  TestID
		ok      bool
	}{
		// Test 1: s <= smax.
		{"test1 above max", random, 50, 101, TestMax, false},
		{"test1 at max", random, 95, 100, 0, true},
		// Test 2: s >= smin.
		{"test2 below min", random, 5, -1, TestMin, false},
		{"test2 at min", random, 5, 0, 0, true},
		// Test 3a: within increase parameters.
		{"test3a legal increase", random, 50, 60, 0, true},
		{"test3a too fast", random, 50, 61, TestIncrease, false},
		{"test3a too slow for strict min", strictRandom, 50, 50, TestUnchanged, false},
		// Test 4a: apparent increase is a wrap-around decrease.
		// staticDown decreases by exactly 4; from 2 it wraps to 98:
		// (prev-smin)+(smax-s) = 2 + 2 = 4.
		{"test4a wrap decrease exact", staticDown, 2, 98, 0, true},
		{"test4a wrap decrease wrong magnitude", staticDown, 2, 97, TestIncrease, false},
		{"test4a wrap not allowed", dynDown, 2, 98, TestIncrease, false},
		// Test 3b: within decrease parameters.
		{"test3b legal decrease", random, 60, 50, 0, true},
		{"test3b too fast", random, 61, 50, TestDecrease, false},
		// Test 4b: apparent decrease is a wrap-around increase.
		// staticUp increases by exactly 4; from 98 it wraps to 2:
		// (smax-prev)+(s-smin) = 2 + 2 = 4.
		{"test4b wrap increase exact", staticUp, 98, 2, 0, true},
		{"test4b wrap increase wrong magnitude", staticUp, 98, 3, TestDecrease, false},
		{"test4b wrap not allowed", dynUp, 98, 2, TestDecrease, false},
		// Test 3c: monotonically decreasing signal may stay put when
		// rmin,decr = 0.
		{"test3c dynamic decreasing stays", dynDown, 50, 50, 0, true},
		// Test 4c: monotonically increasing signal may stay put when
		// rmin,incr = 0.
		{"test4c dynamic increasing stays", dynUp, 50, 50, 0, true},
		{"static increasing must move", staticUp, 50, 50, TestUnchanged, false},
		{"static decreasing must move", staticDown, 50, 50, TestUnchanged, false},
		// Test 5c: random signal with at least one zero-change
		// direction may stay put.
		{"test5c random stays", random, 50, 50, 0, true},
		{"test5c one-sided zero min", minRandom, 50, 50, 0, true},
		{"test5c strict random must move", strictRandom, 50, 50, TestUnchanged, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			id, ok := CheckContinuous(tt.p, tt.prev, tt.s)
			if ok != tt.ok || id != tt.wantID {
				t.Fatalf("CheckContinuous(%v, %d, %d) = (%v, %v), want (%v, %v)",
					tt.p, tt.prev, tt.s, id, ok, tt.wantID, tt.ok)
			}
		})
	}
}

// The bounds tests always run first: an out-of-domain value must be
// reported as a bounds violation even if a rate test would also fail.
func TestCheckContinuousBoundsFirst(t *testing.T) {
	p := Continuous{Min: 0, Max: 100, Incr: Rate{0, 1}, Decr: Rate{0, 1}}
	id, ok := CheckContinuous(p, 50, 200)
	if ok || id != TestMax {
		t.Fatalf("got (%v, %v), want (TestMax, false)", id, ok)
	}
	id, ok = CheckContinuous(p, 50, -200)
	if ok || id != TestMin {
		t.Fatalf("got (%v, %v), want (TestMin, false)", id, ok)
	}
}

// A static counter with wrap-around (the target's mscnt pattern):
// stepping by exactly one with smax equal to the modulus never
// violates, for any number of wraps.
func TestCheckContinuousCounterWrap(t *testing.T) {
	const modulus = 97
	p := Continuous{Min: 0, Max: modulus, Incr: Rate{1, 1}, Wrap: true}
	prev := int64(0)
	for i := 0; i < 3*modulus; i++ {
		next := prev + 1
		if next == modulus {
			next = 0
		}
		if id, ok := CheckContinuous(p, prev, next); !ok {
			t.Fatalf("step %d -> %d flagged %v", prev, next, id)
		}
		prev = next
	}
}

func TestCheckBounds(t *testing.T) {
	p := Continuous{Min: -5, Max: 5}
	for _, tt := range []struct {
		s      int64
		wantID TestID
		ok     bool
	}{{-6, TestMin, false}, {-5, 0, true}, {0, 0, true}, {5, 0, true}, {6, TestMax, false}} {
		id, ok := CheckBounds(p, tt.s)
		if ok != tt.ok || id != tt.wantID {
			t.Errorf("CheckBounds(%d) = (%v, %v), want (%v, %v)", tt.s, id, ok, tt.wantID, tt.ok)
		}
	}
}

// Table 3 of the paper: discrete assertions.
func TestCheckDiscreteTable3(t *testing.T) {
	// The paper's Figure 3 state machine.
	p := Discrete{
		Domain: []int64{1, 2, 3, 4, 5},
		Trans: map[int64][]int64{
			1: {2, 4}, 2: {3, 4}, 3: {4}, 4: {5}, 5: {1},
		},
	}
	tests := []struct {
		name       string
		sequential bool
		prev, s    int64
		wantID     TestID
		ok         bool
	}{
		{"random in domain", false, 1, 5, 0, true},
		{"random out of domain", false, 1, 6, TestDomain, false},
		{"random ignores transitions", false, 5, 3, 0, true},
		{"sequential legal", true, 1, 4, 0, true},
		{"sequential legal 2", true, 4, 5, 0, true},
		{"sequential illegal transition", true, 5, 3, TestTransition, false},
		{"sequential self loop illegal", true, 2, 2, TestTransition, false},
		{"sequential out of domain", true, 1, 34, TestDomain, false},
		{"sequential from unknown prev", true, 99, 1, TestTransition, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := p // fresh copy so lazy indexes rebuild per case
			id, ok := CheckDiscrete(q, tt.sequential, tt.prev, tt.s)
			if ok != tt.ok || id != tt.wantID {
				t.Fatalf("CheckDiscrete(seq=%v, %d, %d) = (%v, %v), want (%v, %v)",
					tt.sequential, tt.prev, tt.s, id, ok, tt.wantID, tt.ok)
			}
		})
	}
}

// The domain test fires before the transition test, as in the paper
// ("both tests are used nonetheless").
func TestCheckDiscreteDomainFirst(t *testing.T) {
	p := NewLinear([]int64{0, 1, 2}, true, false)
	id, ok := CheckDiscrete(p, true, 0, 7)
	if ok || id != TestDomain {
		t.Fatalf("got (%v, %v), want (TestDomain, false)", id, ok)
	}
}
