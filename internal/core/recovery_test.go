package core

import "testing"

func TestNoRecovery(t *testing.T) {
	p := Continuous{Min: 0, Max: 10}
	v := Violation{Value: 99, Prev: 5, HasPrev: true}
	if got := (NoRecovery{}).RecoverContinuous(v, p); got != 99 {
		t.Errorf("continuous = %d, want 99", got)
	}
	d := NewRandom([]int64{1, 2})
	if got := (NoRecovery{}).RecoverDiscrete(v, d); got != 99 {
		t.Errorf("discrete = %d, want 99", got)
	}
}

func TestPreviousValueRecovery(t *testing.T) {
	p := Continuous{Min: 0, Max: 10}
	primed := Violation{Value: 99, Prev: 5, HasPrev: true}
	if got := (PreviousValue{}).RecoverContinuous(primed, p); got != 5 {
		t.Errorf("primed continuous = %d, want 5", got)
	}
	unprimed := Violation{Value: 99, HasPrev: false}
	if got := (PreviousValue{}).RecoverContinuous(unprimed, p); got != 10 {
		t.Errorf("unprimed continuous = %d, want clamp to 10", got)
	}
	low := Violation{Value: -7, HasPrev: false}
	if got := (PreviousValue{}).RecoverContinuous(low, p); got != 0 {
		t.Errorf("unprimed low continuous = %d, want clamp to 0", got)
	}

	d := NewRandom([]int64{3, 4})
	if got := (PreviousValue{}).RecoverDiscrete(primed, d); got != 3 {
		// prev 5 is not in the domain, so the first domain value wins.
		t.Errorf("discrete with out-of-domain prev = %d, want 3", got)
	}
	inDomain := Violation{Value: 99, Prev: 4, HasPrev: true}
	if got := (PreviousValue{}).RecoverDiscrete(inDomain, d); got != 4 {
		t.Errorf("discrete with in-domain prev = %d, want 4", got)
	}
	empty := Discrete{}
	if got := (PreviousValue{}).RecoverDiscrete(Violation{Value: 9}, empty); got != 9 {
		t.Errorf("discrete with empty domain = %d, want offending value kept", got)
	}
}

func TestClampRecovery(t *testing.T) {
	p := Continuous{Min: 0, Max: 10}
	if got := (Clamp{}).RecoverContinuous(Violation{Test: TestMax, Value: 99}, p); got != 10 {
		t.Errorf("max violation = %d, want 10", got)
	}
	if got := (Clamp{}).RecoverContinuous(Violation{Test: TestMin, Value: -5}, p); got != 0 {
		t.Errorf("min violation = %d, want 0", got)
	}
	rate := Violation{Test: TestIncrease, Value: 8, Prev: 2, HasPrev: true}
	if got := (Clamp{}).RecoverContinuous(rate, p); got != 2 {
		t.Errorf("rate violation with prev = %d, want 2", got)
	}
	rateUnprimed := Violation{Test: TestIncrease, Value: 8}
	if got := (Clamp{}).RecoverContinuous(rateUnprimed, p); got != 8 {
		t.Errorf("rate violation unprimed = %d, want 8 (in bounds)", got)
	}
	d := NewRandom([]int64{1, 2})
	if got := (Clamp{}).RecoverDiscrete(Violation{Value: 9, Prev: 2, HasPrev: true}, d); got != 2 {
		t.Errorf("discrete clamp = %d, want previous-value behaviour", got)
	}
}

func TestResetToRecovery(t *testing.T) {
	r := ResetTo{Value: 7}
	if got := r.RecoverContinuous(Violation{Value: 99}, Continuous{}); got != 7 {
		t.Errorf("continuous = %d, want 7", got)
	}
	d := NewRandom([]int64{1, 2})
	if got := r.RecoverDiscrete(Violation{Value: 99}, d); got != 7 {
		t.Errorf("discrete = %d, want 7", got)
	}
}
