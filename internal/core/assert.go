package core

// This file implements the generic executable assertions of the paper's
// Table 2 (continuous signals) and Table 3 (discrete signals). The
// algorithms are pure functions of (previous value s', current value s,
// parameter set); Monitor supplies the state.

// CheckBounds runs tests no. 1 and 2 of Table 2 (s <= smax, s >= smin).
// It is used alone for the very first observation of a signal, when no
// previous value s' exists yet. The returned TestID is zero when both
// tests pass.
func CheckBounds(p Continuous, s int64) (TestID, bool) {
	if s > p.Max {
		return TestMax, false
	}
	if s < p.Min {
		return TestMin, false
	}
	return 0, true
}

// CheckContinuous runs the full Table 2 assertion chain for a
// continuous signal: tests 1 and 2 always, then exactly one of the
// status groups depending on the relationship between s and s'
// ("Signal status" column):
//
//	s > s': 3a (within increase parameters) or
//	        4a (wrap-around allowed and the apparent increase is a
//	            legal decrease past smin),
//	s < s': 3b (within decrease parameters) or
//	        4b (wrap-around allowed and the apparent decrease is a
//	            legal increase past smax),
//	s = s': 3c (monotonically decreasing signal whose parameters allow
//	            zero decrease), or
//	        4c (monotonically increasing, zero increase allowed), or
//	        5c (random signal with at least one zero-change direction).
//
// The first failing mandatory test or an exhausted status group yields
// the violation's TestID; (0, true) means the signal passed.
func CheckContinuous(p Continuous, prev, s int64) (TestID, bool) {
	if id, ok := CheckBounds(p, s); !ok {
		return id, false
	}
	switch {
	case s > prev:
		// Test 3a: within increase parameters.
		if p.Incr.contains(s - prev) {
			return 0, true
		}
		// Test 4a: wrap-around is allowed and within decrease
		// parameters: the signal decreased past smin and re-entered at
		// smax, so the true decrease magnitude is
		// (s' - smin) + (smax - s).
		if p.Wrap && p.Decr.contains((prev-p.Min)+(p.Max-s)) {
			return 0, true
		}
		return TestIncrease, false
	case s < prev:
		// Test 3b: within decrease parameters.
		if p.Decr.contains(prev - s) {
			return 0, true
		}
		// Test 4b: wrap-around is allowed and within increase
		// parameters: the true increase magnitude is
		// (smax - s') + (s - smin).
		if p.Wrap && p.Incr.contains((p.Max-prev)+(s-p.Min)) {
			return 0, true
		}
		return TestDecrease, false
	default: // s == prev
		// Test 3c: monotonically decreasing signal and within decrease
		// parameters (rmin,decr = 0 permits zero change).
		if p.Incr.zero() && p.Decr.Min == 0 {
			return 0, true
		}
		// Test 4c: monotonically increasing signal and within increase
		// parameters.
		if p.Decr.zero() && p.Incr.Min == 0 {
			return 0, true
		}
		// Test 5c: random signal (neither direction forbidden) with at
		// least one direction whose minimum rate is zero.
		if !p.Decr.zero() && !p.Incr.zero() && (p.Incr.Min == 0 || p.Decr.Min == 0) {
			return 0, true
		}
		return TestUnchanged, false
	}
}

// CheckDiscreteDomain runs the Table 3 domain assertion s ∈ D shared by
// random and sequential discrete signals.
func CheckDiscreteDomain(p Discrete, s int64) (TestID, bool) {
	if !p.Contains(s) {
		return TestDomain, false
	}
	return 0, true
}

// CheckDiscrete runs the full Table 3 assertion set: s ∈ D for every
// discrete signal, then s ∈ T(s') for sequential classes. As in the
// paper, both tests are executed for sequential signals even though
// membership in T(s') implies membership in D; the domain test fires
// first so the reported TestID identifies the strongest violated
// property.
func CheckDiscrete(p Discrete, sequential bool, prev, s int64) (TestID, bool) {
	if id, ok := CheckDiscreteDomain(p, s); !ok {
		return id, false
	}
	if sequential && !p.Allows(prev, s) {
		return TestTransition, false
	}
	return 0, true
}
