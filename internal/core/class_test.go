package core

import "testing"

func TestClassString(t *testing.T) {
	tests := []struct {
		class Class
		want  string
	}{
		{ContinuousRandom, "Co/Ra"},
		{ContinuousMonotonicStatic, "Co/Mo/St"},
		{ContinuousMonotonicDynamic, "Co/Mo/Dy"},
		{DiscreteRandom, "Di/Ra"},
		{DiscreteSequentialLinear, "Di/Se/Li"},
		{DiscreteSequentialNonLinear, "Di/Se/NL"},
		{ClassUnknown, "Class(0)"},
		{Class(42), "Class(42)"},
	}
	for _, tt := range tests {
		if got := tt.class.String(); got != tt.want {
			t.Errorf("Class(%d).String() = %q, want %q", int(tt.class), got, tt.want)
		}
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("ParseClass(%q) = %v, want %v", c.String(), got, c)
		}
	}
}

func TestParseClassUnknown(t *testing.T) {
	for _, s := range []string{"", "Co", "co/ra", "Di/Se", "bogus"} {
		if _, err := ParseClass(s); err == nil {
			t.Errorf("ParseClass(%q): expected error", s)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	tests := []struct {
		class                                    Class
		continuous, discrete, monotonic, sequent bool
	}{
		{ContinuousRandom, true, false, false, false},
		{ContinuousMonotonicStatic, true, false, true, false},
		{ContinuousMonotonicDynamic, true, false, true, false},
		{DiscreteRandom, false, true, false, false},
		{DiscreteSequentialLinear, false, true, false, true},
		{DiscreteSequentialNonLinear, false, true, false, true},
		{ClassUnknown, false, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.class.IsContinuous(); got != tt.continuous {
			t.Errorf("%v.IsContinuous() = %v, want %v", tt.class, got, tt.continuous)
		}
		if got := tt.class.IsDiscrete(); got != tt.discrete {
			t.Errorf("%v.IsDiscrete() = %v, want %v", tt.class, got, tt.discrete)
		}
		if got := tt.class.IsMonotonic(); got != tt.monotonic {
			t.Errorf("%v.IsMonotonic() = %v, want %v", tt.class, got, tt.monotonic)
		}
		if got := tt.class.IsSequential(); got != tt.sequent {
			t.Errorf("%v.IsSequential() = %v, want %v", tt.class, got, tt.sequent)
		}
	}
}

func TestClassesCoversAllLeaves(t *testing.T) {
	classes := Classes()
	if len(classes) != 6 {
		t.Fatalf("Classes() returned %d classes, want 6", len(classes))
	}
	seen := map[Class]bool{}
	for _, c := range classes {
		if seen[c] {
			t.Errorf("Classes() contains %v twice", c)
		}
		seen[c] = true
		if !c.IsContinuous() && !c.IsDiscrete() {
			t.Errorf("Classes() contains non-leaf %v", c)
		}
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Signal: "s", Test: TestMax, Value: 9, Prev: 3, HasPrev: true, Mode: 1, Time: 42}
	want := "s: max-value violated (s=9, s'=3, mode=1, t=42)"
	if got := v.String(); got != want {
		t.Errorf("Violation.String() = %q, want %q", got, want)
	}
	v.HasPrev = false
	want = "s: max-value violated (s=9, mode=1, t=42)"
	if got := v.String(); got != want {
		t.Errorf("unprimed Violation.String() = %q, want %q", got, want)
	}
}

func TestTestIDString(t *testing.T) {
	tests := []struct {
		id   TestID
		want string
	}{
		{TestMax, "max-value"},
		{TestMin, "min-value"},
		{TestIncrease, "increase-rate"},
		{TestDecrease, "decrease-rate"},
		{TestUnchanged, "unchanged"},
		{TestDomain, "domain"},
		{TestTransition, "transition"},
		{TestID(99), "TestID(99)"},
	}
	for _, tt := range tests {
		if got := tt.id.String(); got != tt.want {
			t.Errorf("TestID(%d).String() = %q, want %q", int(tt.id), got, tt.want)
		}
	}
}
