package core

import (
	"errors"
	"testing"
)

// Table 1 of the paper: parameter constraints for the continuous
// signal classes.
func TestContinuousValidateTable1(t *testing.T) {
	tests := []struct {
		name    string
		class   Class
		p       Continuous
		wantErr error
	}{
		// Row "All": smax > smin.
		{
			name:    "bounds inverted",
			class:   ContinuousRandom,
			p:       Continuous{Min: 10, Max: 10, Incr: Rate{0, 1}, Decr: Rate{0, 1}},
			wantErr: ErrBadBounds,
		},
		{
			name:    "negative rate",
			class:   ContinuousRandom,
			p:       Continuous{Min: 0, Max: 10, Incr: Rate{-1, 1}, Decr: Rate{0, 1}},
			wantErr: ErrNegativeRate,
		},
		{
			name:    "rate order inverted",
			class:   ContinuousRandom,
			p:       Continuous{Min: 0, Max: 10, Incr: Rate{5, 2}, Decr: Rate{0, 1}},
			wantErr: ErrRateOrder,
		},
		// Static monotonic: one direction zero, the other fixed > 0.
		{
			name:  "static increasing",
			class: ContinuousMonotonicStatic,
			p:     Continuous{Min: 0, Max: 100, Incr: Rate{4, 4}},
		},
		{
			name:  "static decreasing",
			class: ContinuousMonotonicStatic,
			p:     Continuous{Min: 0, Max: 100, Decr: Rate{2, 2}},
		},
		{
			name:    "static with ranging rate",
			class:   ContinuousMonotonicStatic,
			p:       Continuous{Min: 0, Max: 100, Incr: Rate{1, 4}},
			wantErr: ErrNotStatic,
		},
		{
			name:    "static with both directions",
			class:   ContinuousMonotonicStatic,
			p:       Continuous{Min: 0, Max: 100, Incr: Rate{4, 4}, Decr: Rate{1, 1}},
			wantErr: ErrNotStatic,
		},
		{
			name:    "static with zero rate",
			class:   ContinuousMonotonicStatic,
			p:       Continuous{Min: 0, Max: 100},
			wantErr: ErrNotStatic,
		},
		// Dynamic monotonic: one direction zero, the other ranging.
		{
			name:  "dynamic increasing",
			class: ContinuousMonotonicDynamic,
			p:     Continuous{Min: 0, Max: 100, Incr: Rate{0, 4}},
		},
		{
			name:  "dynamic decreasing with positive min",
			class: ContinuousMonotonicDynamic,
			p:     Continuous{Min: 0, Max: 100, Decr: Rate{1, 4}},
		},
		{
			name:    "dynamic with fixed rate",
			class:   ContinuousMonotonicDynamic,
			p:       Continuous{Min: 0, Max: 100, Incr: Rate{4, 4}},
			wantErr: ErrNotDynamic,
		},
		{
			name:    "dynamic with both directions",
			class:   ContinuousMonotonicDynamic,
			p:       Continuous{Min: 0, Max: 100, Incr: Rate{0, 4}, Decr: Rate{0, 4}},
			wantErr: ErrNotDynamic,
		},
		// Random: both directions open.
		{
			name:  "random symmetric",
			class: ContinuousRandom,
			p:     Continuous{Min: 0, Max: 100, Incr: Rate{0, 4}, Decr: Rate{0, 4}},
		},
		{
			name:  "random with positive minimum rates both ways",
			class: ContinuousRandom,
			p:     Continuous{Min: 0, Max: 100, Incr: Rate{1, 4}, Decr: Rate{1, 4}},
		},
		{
			name:    "random with forbidden increase",
			class:   ContinuousRandom,
			p:       Continuous{Min: 0, Max: 100, Decr: Rate{0, 4}},
			wantErr: ErrNotRandom,
		},
		{
			name:    "not a continuous class",
			class:   DiscreteRandom,
			p:       Continuous{Min: 0, Max: 100, Incr: Rate{0, 4}, Decr: Rate{0, 4}},
			wantErr: ErrClassMismatch,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate(tt.class)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate(%v) = %v, want nil", tt.class, err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate(%v) = %v, want %v", tt.class, err, tt.wantErr)
			}
		})
	}
}

func TestContinuousClassify(t *testing.T) {
	tests := []struct {
		name string
		p    Continuous
		want Class
	}{
		{"static", Continuous{Min: 0, Max: 10, Incr: Rate{1, 1}}, ContinuousMonotonicStatic},
		{"dynamic", Continuous{Min: 0, Max: 10, Incr: Rate{0, 3}}, ContinuousMonotonicDynamic},
		{"random", Continuous{Min: 0, Max: 10, Incr: Rate{0, 3}, Decr: Rate{0, 3}}, ContinuousRandom},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.p.Classify()
			if err != nil {
				t.Fatalf("Classify: %v", err)
			}
			if got != tt.want {
				t.Errorf("Classify() = %v, want %v", got, tt.want)
			}
		})
	}
	bad := Continuous{Min: 5, Max: 5}
	if _, err := bad.Classify(); err == nil {
		t.Error("Classify with inverted bounds: expected error")
	}
}

func TestContinuousHelpers(t *testing.T) {
	p := Continuous{Min: -10, Max: 30, Incr: Rate{0, 5}, Decr: Rate{0, 5}}
	if got := p.Span(); got != 40 {
		t.Errorf("Span() = %d, want 40", got)
	}
	for _, tt := range []struct{ in, want int64 }{{-20, -10}, {-10, -10}, {0, 0}, {30, 30}, {31, 30}} {
		if got := p.Clamp(tt.in); got != tt.want {
			t.Errorf("Clamp(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
	dirs := []struct {
		p    Continuous
		want int
	}{
		{Continuous{Incr: Rate{0, 5}}, +1},
		{Continuous{Decr: Rate{0, 5}}, -1},
		{Continuous{Incr: Rate{0, 5}, Decr: Rate{0, 5}}, 0},
		{Continuous{}, 0},
	}
	for _, tt := range dirs {
		if got := tt.p.MonotonicDirection(); got != tt.want {
			t.Errorf("MonotonicDirection(%+v) = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestContinuousString(t *testing.T) {
	p := Continuous{Min: 0, Max: 9, Incr: Rate{1, 2}, Decr: Rate{3, 4}, Wrap: true}
	want := "Pcont{[0,9] incr[1,2] decr[3,4] wrap}"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
