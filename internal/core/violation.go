package core

import "fmt"

// TestID identifies which assertion of the paper's Table 2 or Table 3
// a signal failed. For continuous signals the identifiers follow the
// paper's "Test No." column; a failed status-dependent group (3a/4a,
// 3b/4b or 3c/4c/5c) is reported as the group for the observed signal
// status, because the groups are alternatives: the test passes if any
// member of the applicable group holds.
type TestID int

const (
	// TestMax is Table 2 test no. 1: s <= smax.
	TestMax TestID = iota + 1
	// TestMin is Table 2 test no. 2: s >= smin.
	TestMin
	// TestIncrease is the s > s' group (tests 3a/4a): the increase was
	// outside the increase-rate parameters and was not a legal
	// wrap-around decrease.
	TestIncrease
	// TestDecrease is the s < s' group (tests 3b/4b): the decrease was
	// outside the decrease-rate parameters and was not a legal
	// wrap-around increase.
	TestDecrease
	// TestUnchanged is the s = s' group (tests 3c/4c/5c): the signal
	// remained unchanged although its class requires it to change.
	TestUnchanged
	// TestDomain is Table 3: s is not an element of the valid domain D.
	TestDomain
	// TestTransition is Table 3 for sequential signals: s is not an
	// element of T(s'), the valid transitions from the previous value.
	TestTransition
)

// String returns a short human-readable name for the failed test.
func (t TestID) String() string {
	switch t {
	case TestMax:
		return "max-value"
	case TestMin:
		return "min-value"
	case TestIncrease:
		return "increase-rate"
	case TestDecrease:
		return "decrease-rate"
	case TestUnchanged:
		return "unchanged"
	case TestDomain:
		return "domain"
	case TestTransition:
		return "transition"
	default:
		return fmt.Sprintf("TestID(%d)", int(t))
	}
}

// Violation describes a failed executable assertion: an error was
// detected in the monitored signal. A violation is a value, not a Go
// error: detecting data errors is the normal operation of the
// mechanisms, not a fault of the library.
type Violation struct {
	// Signal is the name of the monitored signal.
	Signal string
	// Test identifies the failed assertion.
	Test TestID
	// Value is the offending current value s.
	Value int64
	// Prev is the previous value s' (meaningful only for rate and
	// transition tests; 0 on an unprimed first observation).
	Prev int64
	// HasPrev reports whether Prev is meaningful (the monitor had been
	// primed with at least one accepted value).
	HasPrev bool
	// Mode is the signal mode whose parameter set was violated.
	Mode int
	// Time is the caller-supplied timestamp of the test (the target
	// system uses milliseconds of simulated time).
	Time int64
}

// String renders the violation for logs and test output.
func (v Violation) String() string {
	if v.HasPrev {
		return fmt.Sprintf("%s: %s violated (s=%d, s'=%d, mode=%d, t=%d)",
			v.Signal, v.Test, v.Value, v.Prev, v.Mode, v.Time)
	}
	return fmt.Sprintf("%s: %s violated (s=%d, mode=%d, t=%d)",
		v.Signal, v.Test, v.Value, v.Mode, v.Time)
}
