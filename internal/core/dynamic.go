package core

import "fmt"

// Dynamic constraints. The paper notes (§2.1) that its parameters are
// static "but dynamic constraints as in [4] and [14] may also be
// considered" — acceptance regions that follow the system state, e.g.
// a measured value tracking a set point. This file implements that
// extension:
//
//   - Monitor.UpdateContinuous / Monitor.UpdateDiscrete replace a
//     mode's parameter set at run time (validated against the signal's
//     class), so a supervisory layer can reshape the acceptance
//     region;
//   - EnvelopeTracker derives a time-varying Pcont from a reference
//     signal: bounds are reference ± tolerance, rate limits follow the
//     reference's own slew plus a noise allowance.

// UpdateContinuous replaces the parameter set of one mode at run time.
// The new set must be a legal instantiation of the monitor's class
// (Table 1). The stored previous value s' is kept: the next test
// checks the transition under the new constraints.
func (m *Monitor) UpdateContinuous(mode int, p Continuous) error {
	if m.cont == nil {
		return fmt.Errorf("core: monitor %q is not continuous", m.name)
	}
	if _, ok := m.cont[mode]; !ok {
		return fmt.Errorf("%w %d (monitor %q)", ErrUnknownMode, mode, m.name)
	}
	if err := p.Validate(m.class); err != nil {
		return fmt.Errorf("core: monitor %q mode %d: %w", m.name, mode, err)
	}
	m.cont[mode] = p
	return nil
}

// UpdateDiscrete replaces the parameter set of one mode at run time.
func (m *Monitor) UpdateDiscrete(mode int, p Discrete) error {
	if m.disc == nil {
		return fmt.Errorf("core: monitor %q is not discrete", m.name)
	}
	if _, ok := m.disc[mode]; !ok {
		return fmt.Errorf("%w %d (monitor %q)", ErrUnknownMode, mode, m.name)
	}
	if err := p.Validate(m.class); err != nil {
		return fmt.Errorf("core: monitor %q mode %d: %w", m.name, mode, err)
	}
	m.disc[mode] = p.indexed()
	return nil
}

// EnvelopeTracker derives dynamic continuous constraints from a
// reference signal: the monitored signal must stay within
// [ref - Below, ref + Above] and change no faster than the reference
// changed plus the Slack allowance. A pressure measurement tracking
// its set point is the canonical use.
type EnvelopeTracker struct {
	// Above and Below bound the tolerated deviation from the
	// reference.
	Above int64
	Below int64
	// Slack is the rate allowance on top of the reference's own
	// change magnitude (sensor noise, control ripple).
	Slack int64
	// Floor and Ceil clamp the derived bounds to the physical range
	// of the signal.
	Floor int64
	Ceil  int64

	ref    int64
	primed bool
}

// Observe feeds the current reference value and returns the derived
// parameter set for the monitored signal. The first observation yields
// an envelope with no rate history (rates open to the full span plus
// slack).
func (e *EnvelopeTracker) Observe(ref int64) Continuous {
	delta := int64(0)
	if e.primed {
		delta = ref - e.ref
		if delta < 0 {
			delta = -delta
		}
	} else {
		delta = e.Ceil - e.Floor
	}
	e.ref = ref
	e.primed = true

	lo := ref - e.Below
	if lo < e.Floor {
		lo = e.Floor
	}
	hi := ref + e.Above
	if hi > e.Ceil {
		hi = e.Ceil
	}
	if hi <= lo {
		hi = lo + 1
	}
	rate := delta + e.Slack
	if rate < 1 {
		rate = 1
	}
	return Continuous{
		Min:  lo,
		Max:  hi,
		Incr: Rate{Min: 0, Max: rate},
		Decr: Rate{Min: 0, Max: rate},
	}
}

// Reset clears the reference history (new run).
func (e *EnvelopeTracker) Reset() { e.ref, e.primed = 0, false }
