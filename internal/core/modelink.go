package core

import "fmt"

// ModeLink wires a mode variable to the monitors whose constraints
// depend on it (paper §2.1: "Modes may also be used to model certain
// dependencies between signals. That is, if the behaviour of signal A
// is limited due to the operational mode of signal B, these two
// signals can be grouped by means of signal modes").
//
// The mode variable is itself a monitored discrete signal ("mode
// variables can be classified as discrete signals in themselves"): an
// observation first passes through the mode monitor's assertions, and
// only the accepted — possibly recovered — mode value is propagated to
// the dependent monitors via SetMode. A corrupted mode variable
// therefore cannot silently switch the dependents onto the wrong
// parameter sets.
type ModeLink struct {
	mode       *Monitor
	dependents []*Monitor
}

// NewModeLink builds a link from the mode-variable monitor to its
// dependents. The mode monitor must be discrete; every dependent must
// accept each value of the mode monitor's domain as a mode (checked on
// first propagation, since domains are per-mode).
func NewModeLink(mode *Monitor, dependents ...*Monitor) (*ModeLink, error) {
	if mode == nil {
		return nil, fmt.Errorf("core: nil mode monitor")
	}
	if !mode.Class().IsDiscrete() {
		return nil, fmt.Errorf("core: mode monitor %q is %v, want a discrete class", mode.Name(), mode.Class())
	}
	if len(dependents) == 0 {
		return nil, fmt.Errorf("core: mode link needs at least one dependent")
	}
	for _, d := range dependents {
		if d == nil {
			return nil, fmt.Errorf("core: nil dependent monitor")
		}
	}
	return &ModeLink{mode: mode, dependents: dependents}, nil
}

// Observe tests the mode variable and switches every dependent to the
// accepted mode. It returns the accepted mode value, the mode
// violation (if any), and an error when a dependent has no parameter
// set for the accepted mode.
func (l *ModeLink) Observe(now, modeValue int64) (int64, *Violation, error) {
	accepted, violation := l.mode.Test(now, modeValue)
	for _, d := range l.dependents {
		if err := d.SetMode(int(accepted)); err != nil {
			return accepted, violation, fmt.Errorf("core: mode link: %w", err)
		}
	}
	return accepted, violation, nil
}

// Mode returns the mode-variable monitor.
func (l *ModeLink) Mode() *Monitor { return l.mode }

// Dependents returns the dependent monitors.
func (l *ModeLink) Dependents() []*Monitor {
	return append([]*Monitor(nil), l.dependents...)
}
