package core

import (
	"errors"
	"testing"
)

func suiteWithMonitors(t *testing.T, opts ...SuiteOption) *Suite {
	t.Helper()
	s := NewSuite(opts...)
	temp, err := NewContinuousSingle("temp", ContinuousRandom,
		Continuous{Min: 0, Max: 100, Incr: Rate{0, 5}, Decr: Rate{0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	mode, err := NewDiscreteSingle("mode", DiscreteSequentialLinear,
		NewLinear([]int64{0, 1, 2}, true, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(temp); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(mode); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteRegistry(t *testing.T) {
	s := suiteWithMonitors(t)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if names := s.Names(); len(names) != 2 || names[0] != "temp" || names[1] != "mode" {
		t.Fatalf("Names = %v", names)
	}
	if _, ok := s.Monitor("temp"); !ok {
		t.Error("temp not found")
	}
	if _, ok := s.Monitor("ghost"); ok {
		t.Error("ghost found")
	}
	dup, _ := NewContinuousSingle("temp", ContinuousRandom,
		Continuous{Min: 0, Max: 1, Incr: Rate{0, 1}, Decr: Rate{0, 1}})
	if err := s.Add(dup); !errors.Is(err, ErrDuplicateMonitor) {
		t.Errorf("duplicate add = %v", err)
	}
	if err := s.Add(nil); err == nil {
		t.Error("nil monitor accepted")
	}
}

func TestSuiteTestRouting(t *testing.T) {
	s := suiteWithMonitors(t)
	if _, _, err := s.Test(0, "temp", 50); err != nil {
		t.Fatal(err)
	}
	_, v, err := s.Test(1, "temp", 90)
	if err != nil || v == nil {
		t.Fatalf("jump not flagged: v=%v err=%v", v, err)
	}
	if _, _, err := s.Test(2, "ghost", 1); !errors.Is(err, ErrUnknownMonitor) {
		t.Errorf("unknown monitor = %v", err)
	}
}

func TestSuiteEscalation(t *testing.T) {
	var alarms []Alarm
	s := suiteWithMonitors(t, WithEscalation(3, 100, 50, func(a Alarm) { alarms = append(alarms, a) }))
	s.Test(0, "temp", 50)
	// Two violations inside the window: below the threshold.
	s.Test(10, "temp", 90)
	s.Test(20, "temp", 90)
	if len(alarms) != 0 {
		t.Fatalf("premature alarm: %v", alarms)
	}
	// Third within the window: alarm fires once.
	s.Test(30, "temp", 90)
	if len(alarms) != 1 || s.Alarms() != 1 {
		t.Fatalf("alarms = %v (count %d)", alarms, s.Alarms())
	}
	if alarms[0].Count != 3 || alarms[0].Time != 30 {
		t.Errorf("alarm payload = %+v", alarms[0])
	}
	// Further violations inside the same episode do not re-alarm.
	s.Test(40, "temp", 90)
	s.Test(50, "temp", 90)
	if len(alarms) != 1 {
		t.Fatalf("episode re-alarmed: %v", alarms)
	}
	// After the quiet period a fresh burst alarms again.
	s.Test(200, "temp", 90)
	s.Test(210, "temp", 90)
	s.Test(220, "temp", 90)
	if len(alarms) != 2 {
		t.Fatalf("second episode missing: %v", alarms)
	}
}

func TestSuiteEscalationWindowExpiry(t *testing.T) {
	var alarms int
	s := suiteWithMonitors(t, WithEscalation(3, 100, 1000, func(Alarm) { alarms++ }))
	s.Test(0, "temp", 50)
	// Three violations, but spread wider than the window.
	s.Test(10, "temp", 90)
	s.Test(120, "temp", 90)
	s.Test(260, "temp", 90)
	if alarms != 0 {
		t.Fatalf("alarm despite sparse violations")
	}
}

func TestSuiteResetAll(t *testing.T) {
	s := suiteWithMonitors(t, WithEscalation(1, 100, 50, func(Alarm) {}))
	s.Test(0, "temp", 50)
	s.Test(1, "temp", 90)
	s.ResetAll()
	// Monitors are unprimed again: a big first value passes bounds.
	if _, v, _ := s.Test(2, "temp", 95); v != nil {
		t.Fatalf("post-reset first observation flagged: %v", v)
	}
}

func TestSuiteStats(t *testing.T) {
	s := suiteWithMonitors(t)
	s.Test(0, "temp", 50)
	s.Test(1, "temp", 90)
	s.Test(2, "mode", 0)
	stats := s.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// Sorted by name: mode before temp.
	if stats[0].Name != "mode" || stats[1].Name != "temp" {
		t.Fatalf("order = %v, %v", stats[0].Name, stats[1].Name)
	}
	if stats[1].Tests != 2 || stats[1].Violations != 1 {
		t.Errorf("temp stats = %+v", stats[1])
	}
	if stats[0].Class != DiscreteSequentialLinear {
		t.Errorf("mode class = %v", stats[0].Class)
	}
}
