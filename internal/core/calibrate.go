package core

import (
	"errors"
	"math"
	"sort"
)

// Calibration derives parameter-set proposals from fault-free traces.
// The paper notes (§2.2) that assertion parameters "may be calibrated
// using fault injection experiments"; the usual workflow is the dual:
// run the fault-free test-case grid, record every monitored signal, and
// widen the observed envelope by a safety margin so that nominal runs
// never trigger a detection (§3.4 requires exactly that of all 25 test
// cases).

// CalibrationOptions widens the observed envelope of a trace before it
// is proposed as a parameter set.
type CalibrationOptions struct {
	// BoundMargin widens [min, max] by this fraction of the observed
	// span on each side (0.1 adds 10 % headroom above and below).
	BoundMargin float64
	// RateMargin scales the observed maximum change rates up by this
	// fraction; observed minimum rates are scaled down.
	RateMargin float64
	// Wrap marks the proposed parameter set as wrap-around capable.
	// Wrap-around cannot be inferred from a trace: a genuine wrap and a
	// large jump are indistinguishable without knowing the word width.
	Wrap bool
}

// ErrNoObservations reports a calibrator asked for a proposal before
// any trace data was observed.
var ErrNoObservations = errors.New("core: calibrator has no observations")

// ContinuousCalibrator accumulates the envelope of one continuous
// signal across any number of fault-free runs. The zero value is ready
// to use; call EndRun between runs so inter-run jumps (e.g. counter
// resets) do not pollute the rate envelope.
type ContinuousCalibrator struct {
	min, max int64
	seen     bool

	prev   int64
	inRun  bool
	incMin int64
	incMax int64
	decMin int64
	decMax int64
	incAny bool
	decAny bool
	eqAny  bool
}

// Observe feeds one sample in trace order.
func (c *ContinuousCalibrator) Observe(s int64) {
	if !c.seen || s < c.min {
		c.min = s
	}
	if !c.seen || s > c.max {
		c.max = s
	}
	c.seen = true
	if c.inRun {
		switch {
		case s > c.prev:
			d := s - c.prev
			if !c.incAny || d < c.incMin {
				c.incMin = d
			}
			if !c.incAny || d > c.incMax {
				c.incMax = d
			}
			c.incAny = true
		case s < c.prev:
			d := c.prev - s
			if !c.decAny || d < c.decMin {
				c.decMin = d
			}
			if !c.decAny || d > c.decMax {
				c.decMax = d
			}
			c.decAny = true
		default:
			c.eqAny = true
		}
	}
	c.prev = s
	c.inRun = true
}

// EndRun marks the end of one run; the next Observe starts a new rate
// baseline.
func (c *ContinuousCalibrator) EndRun() { c.inRun = false }

// Propose returns a parameter set that accepts every observed sample
// sequence, widened by the option margins, together with the inferred
// class. Monotonic traces yield monotonic classes; anything else yields
// ContinuousRandom with both directions opened at least one unit so the
// proposal validates.
func (c *ContinuousCalibrator) Propose(opts CalibrationOptions) (Continuous, Class, error) {
	if !c.seen {
		return Continuous{}, ClassUnknown, ErrNoObservations
	}
	span := c.max - c.min
	if span == 0 {
		span = 1
	}
	pad := int64(math.Ceil(float64(span) * opts.BoundMargin))
	p := Continuous{
		Min:  c.min - pad,
		Max:  c.max + pad,
		Wrap: opts.Wrap,
	}
	if p.Max <= p.Min {
		// A constant trace with zero margin: open the domain by one
		// unit so the proposal is a legal Table 1 instantiation.
		p.Max = p.Min + 1
	}
	up := func(r int64) int64 { return int64(math.Ceil(float64(r) * (1 + opts.RateMargin))) }
	down := func(r int64) int64 {
		d := int64(math.Floor(float64(r) * (1 - opts.RateMargin)))
		if d < 0 {
			return 0
		}
		return d
	}
	if c.incAny {
		p.Incr = Rate{Min: down(c.incMin), Max: up(c.incMax)}
	}
	if c.decAny {
		p.Decr = Rate{Min: down(c.decMin), Max: up(c.decMax)}
	}
	// Signals that ever stayed put need the zero-change escape of
	// Table 2 tests 3c/4c/5c: a direction minimum of zero.
	if c.eqAny {
		if c.incAny && !c.decAny {
			p.Incr.Min = 0
		}
		if c.decAny && !c.incAny {
			p.Decr.Min = 0
		}
		if c.incAny && c.decAny && p.Incr.Min > 0 && p.Decr.Min > 0 {
			p.Incr.Min = 0
		}
	}
	switch {
	case c.incAny && c.decAny:
		// Random: both directions open.
	case c.incAny:
		if c.eqAny && p.Incr.Min > 0 {
			p.Incr.Min = 0
		}
	case c.decAny:
		if c.eqAny && p.Decr.Min > 0 {
			p.Decr.Min = 0
		}
	default:
		// A constant signal: treat as random with unit freedom so the
		// proposal is a legal Table 1 instantiation.
		p.Incr = Rate{Min: 0, Max: 1}
		p.Decr = Rate{Min: 0, Max: 1}
	}
	class, err := p.Classify()
	if err != nil {
		// Widen into a legal random set: every direction open.
		if p.Incr.Max == 0 {
			p.Incr.Max = 1
		}
		if p.Decr.Max == 0 {
			p.Decr.Max = 1
		}
		p.Incr.Min, p.Decr.Min = 0, 0
		class, err = p.Classify()
		if err != nil {
			return Continuous{}, ClassUnknown, err
		}
	}
	return p, class, nil
}

// DiscreteCalibrator accumulates the value domain and transition graph
// of one discrete signal across fault-free runs. The zero value is
// ready to use.
type DiscreteCalibrator struct {
	domain map[int64]bool
	trans  map[int64]map[int64]bool
	prev   int64
	inRun  bool
}

// Observe feeds one sample in trace order.
func (c *DiscreteCalibrator) Observe(s int64) {
	if c.domain == nil {
		c.domain = make(map[int64]bool)
		c.trans = make(map[int64]map[int64]bool)
	}
	c.domain[s] = true
	if c.inRun && s != c.prev {
		t := c.trans[c.prev]
		if t == nil {
			t = make(map[int64]bool)
			c.trans[c.prev] = t
		}
		t[s] = true
	}
	c.prev = s
	c.inRun = true
}

// EndRun marks the end of one run; the next Observe does not record a
// transition from the previous run's last value.
func (c *DiscreteCalibrator) EndRun() { c.inRun = false }

// Propose returns the observed domain and transition graph as a
// parameter set, with allowStay controlling whether self-transitions
// are added for every value (signals tested more often than they
// change).
func (c *DiscreteCalibrator) Propose(allowStay bool) (Discrete, error) {
	if len(c.domain) == 0 {
		return Discrete{}, ErrNoObservations
	}
	domain := make([]int64, 0, len(c.domain))
	for d := range c.domain {
		domain = append(domain, d)
	}
	sort.Slice(domain, func(a, b int) bool { return domain[a] < domain[b] })
	trans := make(map[int64][]int64, len(domain))
	for _, d := range domain {
		var targets []int64
		for dst := range c.trans[d] {
			targets = append(targets, dst)
		}
		if allowStay {
			targets = append(targets, d)
		}
		sort.Slice(targets, func(a, b int) bool { return targets[a] < targets[b] })
		trans[d] = targets
	}
	return Discrete{Domain: domain, Trans: trans}, nil
}
