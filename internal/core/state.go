package core

import "sync/atomic"

// MonitorState is a value-type checkpoint of a Monitor's mutable state.
// The previous accepted value s' is deliberately absent: in the
// experiment target it lives in the node's injectable RAM (WithPrevStore
// binds it there) and is captured with the memory image, exactly as on
// the real system where the assertion state shares the corrupted memory.
// What remains here is the primed flag, the active mode and the
// test/violation counters.
type MonitorState struct {
	// Primed reports whether a previous value s' has been established.
	Primed bool
	// Mode is the active parameter-set mode.
	Mode int
	// Tests and Violations are the lifetime counters.
	Tests      uint64
	Violations uint64
}

// State captures the monitor's mutable state (except s'; see
// MonitorState).
func (m *Monitor) State() MonitorState {
	return MonitorState{
		Primed:     m.primed,
		Mode:       m.mode,
		Tests:      atomic.LoadUint64(&m.tests),
		Violations: atomic.LoadUint64(&m.violations),
	}
}

// RestoreState rewinds the monitor to a previously captured state. The
// caller is responsible for restoring the memory that backs the
// monitor's PrevStore to the matching point in time.
func (m *Monitor) RestoreState(s MonitorState) {
	m.primed = s.Primed
	m.mode = s.Mode
	atomic.StoreUint64(&m.tests, s.Tests)
	atomic.StoreUint64(&m.violations, s.Violations)
}
