package core

// RecoveryPolicy decides the value a signal is set to after a violation
// ("measures can be taken to recover from the error, and the signal can
// be returned to a valid state", paper §2). The policy receives the
// violation and the active parameter set and returns the replacement
// value; Monitor stores the replacement as the new previous value s'
// and the target software writes it back to the signal.
type RecoveryPolicy interface {
	// RecoverContinuous returns the replacement value for a violated
	// continuous signal.
	RecoverContinuous(v Violation, p Continuous) int64
	// RecoverDiscrete returns the replacement value for a violated
	// discrete signal.
	RecoverDiscrete(v Violation, p Discrete) int64
}

// NoRecovery leaves the offending value in place: errors are detected
// and reported but the system keeps running with the corrupted value.
// Use it to measure raw error propagation.
type NoRecovery struct{}

var _ RecoveryPolicy = NoRecovery{}

// RecoverContinuous implements RecoveryPolicy by returning the
// offending value unchanged.
func (NoRecovery) RecoverContinuous(v Violation, _ Continuous) int64 { return v.Value }

// RecoverDiscrete implements RecoveryPolicy by returning the offending
// value unchanged.
func (NoRecovery) RecoverDiscrete(v Violation, _ Discrete) int64 { return v.Value }

// PreviousValue replaces the offending value with the last accepted
// value s'. This is the most common low-cost recovery for periodically
// sampled signals: one sample is dropped. When no previous value exists
// (violation on the first observation) continuous signals are clamped
// into [smin, smax] and discrete signals are set to the first domain
// value.
type PreviousValue struct{}

var _ RecoveryPolicy = PreviousValue{}

// RecoverContinuous implements RecoveryPolicy.
func (PreviousValue) RecoverContinuous(v Violation, p Continuous) int64 {
	if v.HasPrev {
		return v.Prev
	}
	return p.Clamp(v.Value)
}

// RecoverDiscrete implements RecoveryPolicy.
func (PreviousValue) RecoverDiscrete(v Violation, p Discrete) int64 {
	if v.HasPrev && p.Contains(v.Prev) {
		return v.Prev
	}
	if len(p.Domain) > 0 {
		return p.Domain[0]
	}
	return v.Value
}

// Clamp limits continuous signals into [smin, smax] (useful when the
// magnitude matters more than the rate, e.g. actuator commands) and
// behaves like PreviousValue for discrete signals.
type Clamp struct{}

var _ RecoveryPolicy = Clamp{}

// RecoverContinuous implements RecoveryPolicy.
func (Clamp) RecoverContinuous(v Violation, p Continuous) int64 {
	switch v.Test {
	case TestMax:
		return p.Max
	case TestMin:
		return p.Min
	default:
		// Rate violations: the bounded value is kept if the previous
		// value is unknown; otherwise fall back to the previous value,
		// which is always rate-consistent.
		if v.HasPrev {
			return v.Prev
		}
		return p.Clamp(v.Value)
	}
}

// RecoverDiscrete implements RecoveryPolicy.
func (Clamp) RecoverDiscrete(v Violation, p Discrete) int64 {
	return PreviousValue{}.RecoverDiscrete(v, p)
}

// ResetTo recovers every violation to one fixed safe value (a
// fail-safe state such as "pressure released" or a state machine's
// initial state).
type ResetTo struct {
	// Value is the safe value written on every recovery.
	Value int64
}

var _ RecoveryPolicy = ResetTo{}

// RecoverContinuous implements RecoveryPolicy.
func (r ResetTo) RecoverContinuous(Violation, Continuous) int64 { return r.Value }

// RecoverDiscrete implements RecoveryPolicy.
func (r ResetTo) RecoverDiscrete(Violation, Discrete) int64 { return r.Value }
