package core

import (
	"sync"
	"testing"
)

// TestSuiteStatsConcurrentWithTicking hammers Stats from several reader
// goroutines while one goroutine keeps driving the suite's monitors —
// the exact shape of the stream service, whose shard goroutines tick
// live suites that the metrics endpoint snapshots. Run under -race (CI
// does), this is the proof obligation for the concurrent-Stats
// contract; without it the test still checks that snapshots are
// monotonic and well-formed.
func TestSuiteStatsConcurrentWithTicking(t *testing.T) {
	s := suiteWithMonitors(t)
	const ticks = 20000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < ticks; i++ {
			// Mix accepted and violating observations on both monitors.
			s.Test(int64(i), "temp", int64(i%120))
			s.Test(int64(i), "mode", int64(i%4))
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastTests uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				stats := s.Stats()
				if len(stats) != 2 {
					t.Errorf("Stats returned %d rows, want 2", len(stats))
					return
				}
				var total uint64
				for _, st := range stats {
					if st.Violations > st.Tests {
						t.Errorf("%s: violations %d > tests %d", st.Name, st.Violations, st.Tests)
						return
					}
					total += st.Tests
				}
				if total < lastTests {
					t.Errorf("total tests went backwards: %d -> %d", lastTests, total)
					return
				}
				lastTests = total
			}
		}()
	}
	<-done
	wg.Wait()

	stats := s.Stats()
	var total uint64
	for _, st := range stats {
		total += st.Tests
	}
	if total != 2*ticks {
		t.Fatalf("final test count = %d, want %d", total, 2*ticks)
	}
}

// TestMonitorReuseAcrossSessions pins the reuse contract the stream
// service depends on when a stream reconnects and its monitor
// instances are recycled: Reset makes the next observation a first
// observation (bounds/domain only), keeps the active mode, and keeps
// the lifetime counters accumulating across sessions.
func TestMonitorReuseAcrossSessions(t *testing.T) {
	modes := map[int]Continuous{
		0: {Min: 0, Max: 100, Incr: Rate{0, 2}, Decr: Rate{0, 2}},
		1: {Min: 0, Max: 1000, Incr: Rate{0, 500}, Decr: Rate{0, 500}},
	}
	m, err := NewContinuous("sig", ContinuousRandom, modes)
	if err != nil {
		t.Fatal(err)
	}

	// Session 1: prime, violate once, switch modes mid-stream.
	m.Test(0, 10)
	if _, v := m.Test(1, 50); v == nil {
		t.Fatal("mode 0: jump of 40 with rate 2 not flagged")
	}
	if err := m.SetMode(1); err != nil {
		t.Fatal(err)
	}
	// SetMode keeps s': the transition into mode 1 is rate-checked
	// against the new parameters (50 -> 400 is legal at rate 500).
	if _, v := m.Test(2, 400); v != nil {
		t.Fatalf("mode switch transition flagged: %v", v)
	}
	tests, viols := m.Tests(), m.Violations()

	// Reconnect: the service resets the recycled instance.
	m.Reset()
	if m.Mode() != 1 {
		t.Fatalf("Reset changed the mode to %d; the contract keeps it", m.Mode())
	}
	// First observation of the new session: bounds only, no rate test
	// against the stale s' of the previous session.
	if _, v := m.Test(100, 900); v != nil {
		t.Fatalf("post-reset first observation rate-checked against stale s': %v", v)
	}
	if _, v := m.Test(101, 1500); v == nil {
		t.Fatal("post-reset bounds test inactive")
	}
	if m.Tests() != tests+2 || m.Violations() != viols+1 {
		t.Fatalf("counters = (%d, %d) after reuse, want (%d, %d): lifetime accounting must span sessions",
			m.Tests(), m.Violations(), tests+2, viols+1)
	}

	// A session whose initial value is known out-of-band primes instead:
	// the very next observation is rate-checked.
	m.Reset()
	m.Prime(100)
	if _, v := m.Test(200, 900); v == nil {
		t.Fatal("primed session: jump of 800 with rate 500 not flagged")
	}
}

// TestMonitorDiscreteReuseAcrossSessions is the discrete half of the
// reuse contract: after Reset a sequential signal's first observation
// is checked for domain membership only, not for a transition from the
// previous session's last value.
func TestMonitorDiscreteReuseAcrossSessions(t *testing.T) {
	m, err := NewDiscreteSingle("slot", DiscreteSequentialLinear,
		NewLinear([]int64{0, 1, 2, 3}, true, false))
	if err != nil {
		t.Fatal(err)
	}
	m.Test(0, 0)
	m.Test(1, 1)
	m.Reset()
	// 3 is not a legal transition from 1, but it is in the domain: a
	// fresh session may start anywhere in D.
	if _, v := m.Test(2, 3); v != nil {
		t.Fatalf("post-reset domain-legal start flagged: %v", v)
	}
	if _, v := m.Test(3, 9); v == nil {
		t.Fatal("domain test inactive after reuse")
	}
}
