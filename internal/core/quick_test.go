package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests (testing/quick) on the assertion engine's invariants.

// genParams derives a legal random-continuous parameter set from raw
// generator values.
func genParams(lo, span, rimax, rdmax int64) Continuous {
	span = 1 + abs64(span)%10000
	return Continuous{
		Min:  lo % 100000,
		Max:  lo%100000 + span,
		Incr: Rate{Min: 0, Max: abs64(rimax)%1000 + 1},
		Decr: Rate{Min: 0, Max: abs64(rdmax)%1000 + 1},
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		if v == -1<<63 {
			return 1 << 62
		}
		return -v
	}
	return v
}

// Any value above smax or below smin is always rejected, regardless of
// the previous value.
func TestQuickBoundsAlwaysRejected(t *testing.T) {
	f := func(lo, span, rimax, rdmax, prev, over int64) bool {
		p := genParams(lo, span, rimax, rdmax)
		prev = p.Clamp(prev)
		above := p.Max + 1 + abs64(over)%1000
		below := p.Min - 1 - abs64(over)%1000
		idA, okA := CheckContinuous(p, prev, above)
		idB, okB := CheckContinuous(p, prev, below)
		return !okA && idA == TestMax && !okB && idB == TestMin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A step whose magnitude is within the applicable rate window is
// always accepted (when it stays inside the bounds).
func TestQuickInRateAccepted(t *testing.T) {
	f := func(lo, span, rimax, rdmax, prevRaw, stepRaw int64, up bool) bool {
		p := genParams(lo, span, rimax, rdmax)
		prev := p.Clamp(prevRaw)
		var s int64
		if up {
			s = prev + abs64(stepRaw)%(p.Incr.Max+1)
		} else {
			s = prev - abs64(stepRaw)%(p.Decr.Max+1)
		}
		if s > p.Max || s < p.Min {
			return true // step left the domain; not this property's case
		}
		_, ok := CheckContinuous(p, prev, s)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A step larger than both the rate window and the wrap window is
// always rejected.
func TestQuickOverRateRejected(t *testing.T) {
	f := func(lo, span, rimax, rdmax, prevRaw int64) bool {
		p := genParams(lo, span, rimax, rdmax)
		if p.Span() <= p.Incr.Max+1 {
			return true // domain too small to exceed the rate inside it
		}
		prev := p.Min
		s := prev + p.Incr.Max + 1
		if s > p.Max {
			return true
		}
		id, ok := CheckContinuous(p, prev, s)
		return !ok && id == TestIncrease
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// CheckContinuous is a pure function: equal inputs give equal results.
func TestQuickCheckContinuousPure(t *testing.T) {
	f := func(lo, span, rimax, rdmax, prev, s int64) bool {
		p := genParams(lo, span, rimax, rdmax)
		id1, ok1 := CheckContinuous(p, prev, s)
		id2, ok2 := CheckContinuous(p, prev, s)
		return id1 == id2 && ok1 == ok2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A random walk generated inside the constraints never triggers the
// monitor (the §3.4 fault-free requirement, as a property).
func TestQuickInConstraintWalkClean(t *testing.T) {
	f := func(seed int64, rimax, rdmax uint8) bool {
		p := Continuous{
			Min:  0,
			Max:  10000,
			Incr: Rate{Min: 0, Max: int64(rimax%50) + 1},
			Decr: Rate{Min: 0, Max: int64(rdmax%50) + 1},
		}
		m, err := NewContinuousSingle("walk", ContinuousRandom, p)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		v := int64(5000)
		for i := 0; i < 200; i++ {
			step := rng.Int63n(p.Incr.Max+p.Decr.Max+1) - p.Decr.Max
			v = p.Clamp(v + step)
			// Clamping can shrink the step, never grow it, so the
			// sample remains in-constraint.
			if _, violation := m.Test(int64(i), v); violation != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Clamp is idempotent and always lands inside the domain.
func TestQuickClampIdempotent(t *testing.T) {
	f := func(lo, span, v int64) bool {
		p := genParams(lo, span, 1, 1)
		c := p.Clamp(v)
		return c >= p.Min && c <= p.Max && p.Clamp(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// For sequential discrete signals, passing the transition test implies
// domain membership (T(d) ⊆ D by validation).
func TestQuickTransitionImpliesDomain(t *testing.T) {
	f := func(domainRaw []int64, prevIdx, sIdx uint8) bool {
		if len(domainRaw) < 2 {
			return true
		}
		seen := map[int64]bool{}
		var domain []int64
		for _, d := range domainRaw {
			if !seen[d] {
				seen[d] = true
				domain = append(domain, d)
			}
		}
		if len(domain) < 2 {
			return true
		}
		p := NewLinear(domain, true, false)
		prev := domain[int(prevIdx)%len(domain)]
		s := domain[int(sIdx)%len(domain)]
		if p.Allows(prev, s) && !p.Contains(s) {
			return false
		}
		// And the full Table 3 chain agrees with the primitives.
		id, ok := CheckDiscrete(p, true, prev, s)
		if ok != (p.Contains(s) && p.Allows(prev, s)) {
			return false
		}
		if !ok && !p.Contains(s) && id != TestDomain {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A linear cyclic walk along its domain never violates, any skip does.
func TestQuickLinearWalk(t *testing.T) {
	f := func(n, laps uint8) bool {
		size := int(n%20) + 2
		domain := make([]int64, size)
		for i := range domain {
			domain[i] = int64(i * 3)
		}
		p := NewLinear(domain, true, false)
		m, err := NewDiscreteSingle("lin", DiscreteSequentialLinear, p)
		if err != nil {
			return false
		}
		steps := (int(laps%3) + 1) * size
		for i := 0; i <= steps; i++ {
			if _, v := m.Test(int64(i), domain[i%size]); v != nil {
				return false
			}
		}
		// Now skip one value: must violate.
		_, v := m.Test(int64(steps+1), domain[(steps+2)%size])
		return v != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The continuous calibrator's proposal always accepts its own training
// trace (soundness of calibration).
func TestQuickCalibratorSound(t *testing.T) {
	f := func(seed int64, up, down uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var cal ContinuousCalibrator
		v := int64(1000)
		samples := make([]int64, 0, 120)
		for i := 0; i < 120; i++ {
			v += rng.Int63n(int64(up%40)+1) - int64(down%40)/2
			samples = append(samples, v)
			cal.Observe(v)
		}
		cal.EndRun()
		p, class, err := cal.Propose(CalibrationOptions{BoundMargin: 0.05, RateMargin: 0.05})
		if err != nil {
			return false
		}
		m, err := NewContinuousSingle("cal", class, p)
		if err != nil {
			return false
		}
		for i, s := range samples {
			if _, violation := m.Test(int64(i), s); violation != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Wrap-around acceptance is symmetric with the in-domain rate: for a
// static counter with modulus M, every step of the cycle passes and
// every double-step fails, across the wrap as well.
func TestQuickCounterWrapProperty(t *testing.T) {
	f := func(mRaw uint8) bool {
		m := int64(mRaw%60) + 5
		p := Continuous{Min: 0, Max: m, Incr: Rate{1, 1}, Wrap: true}
		prev := int64(0)
		for i := int64(0); i < 2*m; i++ {
			next := prev + 1
			if next == m {
				next = 0
			}
			if _, ok := CheckContinuous(p, prev, next); !ok {
				return false
			}
			// A double step must be rejected wherever it lands.
			double := next + 1
			if double == m {
				double = 0
			}
			if _, ok := CheckContinuous(p, prev, double); ok {
				return false
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
