package core

import (
	"errors"
	"fmt"
	"sort"
)

// Discrete is the parameter set Pdisc of the paper's §2.1: the valid
// value domain D and, for sequential signals, the valid-transition sets
// T(d) for every d in D.
type Discrete struct {
	// Domain is the set of valid values D. For linear sequential
	// signals the slice order is the traversal order.
	Domain []int64
	// Trans maps each domain value d to T(d), the set of values the
	// signal may legally take when its previous value was d. Trans is
	// ignored for DiscreteRandom signals and is derived automatically
	// for linear signals by NewLinear.
	Trans map[int64][]int64

	domainSet map[int64]bool
	transSet  map[int64]map[int64]bool
}

// Errors returned by Discrete.Validate; match with errors.Is.
var (
	// ErrEmptyDomain reports an empty valid domain D.
	ErrEmptyDomain = errors.New("core: discrete domain D must not be empty")
	// ErrDuplicateValue reports a repeated value in D.
	ErrDuplicateValue = errors.New("core: discrete domain D contains a duplicate value")
	// ErrTransitionSource reports a T(d) entry whose d is not in D.
	ErrTransitionSource = errors.New("core: transition set source is not in the domain")
	// ErrTransitionTarget reports a transition target that is not in D.
	ErrTransitionTarget = errors.New("core: transition target is not in the domain")
	// ErrMissingTransitions reports a sequential signal without
	// transition sets.
	ErrMissingTransitions = errors.New("core: sequential discrete signals require transition sets T(d)")
)

// NewLinear builds the parameter set for a linear sequential signal
// that traverses domain in order, one value after another. With cyclic
// set, the last value transitions back to the first (the target
// system's scheduler slot number 0..6 is the canonical cyclic case).
// With allowStay set, a signal may also keep its current value between
// consecutive tests (for signals tested more often than they change).
func NewLinear(domain []int64, cyclic, allowStay bool) Discrete {
	trans := make(map[int64][]int64, len(domain))
	for idx, d := range domain {
		var t []int64
		if idx+1 < len(domain) {
			t = append(t, domain[idx+1])
		} else if cyclic && len(domain) > 0 {
			t = append(t, domain[0])
		}
		if allowStay {
			t = append(t, d)
		}
		trans[d] = t
	}
	return Discrete{Domain: append([]int64(nil), domain...), Trans: trans}.indexed()
}

// NewRandom builds the parameter set for a random discrete signal with
// the given valid domain. Any transition inside the domain is legal.
func NewRandom(domain []int64) Discrete {
	return Discrete{Domain: append([]int64(nil), domain...)}.indexed()
}

// Validate checks the legality of the parameter set for the given
// discrete class: D non-empty and duplicate-free, every transition
// source and target inside D, and transition sets present for
// sequential classes.
func (p Discrete) Validate(class Class) error {
	if !class.IsDiscrete() {
		return fmt.Errorf("%w: %v", ErrClassMismatch, class)
	}
	if len(p.Domain) == 0 {
		return ErrEmptyDomain
	}
	seen := make(map[int64]bool, len(p.Domain))
	for _, d := range p.Domain {
		if seen[d] {
			return fmt.Errorf("%w: %d", ErrDuplicateValue, d)
		}
		seen[d] = true
	}
	if class.IsSequential() {
		if p.Trans == nil {
			return ErrMissingTransitions
		}
		for src, targets := range p.Trans {
			if !seen[src] {
				return fmt.Errorf("%w: T(%d)", ErrTransitionSource, src)
			}
			for _, dst := range targets {
				if !seen[dst] {
					return fmt.Errorf("%w: %d in T(%d)", ErrTransitionTarget, dst, src)
				}
			}
		}
	}
	return nil
}

// Contains reports whether v is an element of the valid domain D.
// Parameter sets from the constructors (and those stored in monitors)
// carry a lookup index; hand-built literals fall back to a linear scan.
func (p Discrete) Contains(v int64) bool {
	if p.domainSet != nil {
		return p.domainSet[v]
	}
	for _, d := range p.Domain {
		if d == v {
			return true
		}
	}
	return false
}

// Allows reports whether the transition from prev to v is an element of
// T(prev). Unknown prev values (e.g. after corruption of the stored
// previous value) allow no transitions.
func (p Discrete) Allows(prev, v int64) bool {
	if p.transSet != nil {
		t, ok := p.transSet[prev]
		return ok && t[v]
	}
	t, ok := p.Trans[prev]
	if !ok {
		return false
	}
	for _, dst := range t {
		if dst == v {
			return true
		}
	}
	return false
}

// indexed returns a copy of p carrying the lookup sets. Constructors and
// monitors call it once at configuration time, so the amortized cost of
// the index is nil.
func (p Discrete) indexed() Discrete {
	if p.domainSet != nil {
		return p
	}
	p.domainSet = make(map[int64]bool, len(p.Domain))
	for _, d := range p.Domain {
		p.domainSet[d] = true
	}
	p.transSet = make(map[int64]map[int64]bool, len(p.Trans))
	for src, targets := range p.Trans {
		set := make(map[int64]bool, len(targets))
		for _, dst := range targets {
			set[dst] = true
		}
		p.transSet[src] = set
	}
	return p
}

// String renders D and T(d) deterministically (sorted) for logs and
// golden tests.
func (p Discrete) String() string {
	srcs := make([]int64, 0, len(p.Trans))
	for src := range p.Trans {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(a, b int) bool { return srcs[a] < srcs[b] })
	s := fmt.Sprintf("Pdisc{D=%v", p.Domain)
	for _, src := range srcs {
		s += fmt.Sprintf(" T(%d)=%v", src, p.Trans[src])
	}
	return s + "}"
}
