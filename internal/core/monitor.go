package core

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// PrevStore abstracts where a monitor keeps the previous accepted
// value s'. The default store is a plain struct field; the experiment
// target instead binds s' to a word of its injectable RAM, because on
// the real system the assertion state lives in the same memory the
// fault injector corrupts (a corrupted s' can cause false or missed
// detections — a genuine property of the mechanisms).
type PrevStore interface {
	// LoadPrev returns the stored previous value.
	LoadPrev() int64
	// StorePrev records the accepted (or recovered) value.
	StorePrev(int64)
}

// fieldStore is the default in-struct PrevStore.
type fieldStore struct{ v int64 }

func (s *fieldStore) LoadPrev() int64   { return s.v }
func (s *fieldStore) StorePrev(v int64) { s.v = v }

// Monitor is a stateful executable-assertion tester for one signal: the
// paper's "generic test algorithms that are instantiated with
// parameters" (§6). It remembers the previous accepted value s',
// selects the parameter set of the current signal mode, runs the
// Table 2/Table 3 assertions on every observation, reports violations
// to the configured DetectionSink and applies the configured
// RecoveryPolicy.
//
// Monitor is not safe for concurrent use; in the target system each
// monitor is owned by the module at its test location (paper Table 4),
// and in the stream service each monitor is owned by its stream's
// shard goroutine. The one concession to observers: the test and
// violation counters are maintained atomically, so Tests, Violations
// and Suite.Stats may be read concurrently while a single driving
// goroutine calls Test (the stream service's metrics endpoint reads
// them live).
//
// Reuse contract (the stream service recycles monitor instances across
// reconnecting streams): Reset clears the previous-value state s' and
// the primed flag — the next observation is tested like a first one
// (bounds/domain only) — but deliberately keeps the active mode and
// the lifetime test/violation counters, so accounting spans sessions.
// SetMode keeps s': the first test after a mode switch checks the
// transition into the new mode against the new parameter set. Prime
// seeds s' without testing, for a session whose initial value is
// established out-of-band.
type Monitor struct {
	name  string
	class Class

	cont map[int]Continuous
	disc map[int]Discrete

	mode     int
	prev     PrevStore
	primed   bool
	recovery RecoveryPolicy
	sink     DetectionSink

	// tests and violations are read via atomic loads by concurrent
	// stats readers; only the driving goroutine writes them.
	tests      uint64
	violations uint64

	// scratch is the reused violation record handed out by Test. Keeping
	// it in the monitor instead of on the stack keeps the per-tick hot
	// path of the fault-injection campaigns free of heap allocations
	// even while an injected error violates the assertions on every
	// control cycle.
	scratch Violation
}

// Errors returned by the monitor constructors; match with errors.Is.
var (
	// ErrNoModes reports an empty parameter-set map.
	ErrNoModes = errors.New("core: monitor needs at least one mode parameter set")
	// ErrUnknownMode reports a mode without a configured parameter set.
	ErrUnknownMode = errors.New("core: no parameter set for mode")
)

// MonitorOption configures a Monitor at construction time.
type MonitorOption func(*Monitor)

// WithRecovery sets the recovery policy (default PreviousValue, the
// paper's "signal can be returned to a valid state").
func WithRecovery(p RecoveryPolicy) MonitorOption {
	return func(m *Monitor) { m.recovery = p }
}

// WithSink sets the detection sink. A nil sink discards violations
// (they are still returned from Test and counted).
func WithSink(s DetectionSink) MonitorOption {
	return func(m *Monitor) { m.sink = s }
}

// WithInitialMode selects the mode active before the first SetMode
// call (default 0).
func WithInitialMode(mode int) MonitorOption {
	return func(m *Monitor) { m.mode = mode }
}

// WithPrevStore replaces the default in-struct storage of the previous
// value s'. A nil store keeps the default.
func WithPrevStore(s PrevStore) MonitorOption {
	return func(m *Monitor) {
		if s != nil {
			m.prev = s
		}
	}
}

// NewContinuous builds a monitor for a continuous signal with one
// parameter set per mode. Every set must be a legal instantiation of
// class per Table 1.
func NewContinuous(name string, class Class, modes map[int]Continuous, opts ...MonitorOption) (*Monitor, error) {
	if len(modes) == 0 {
		return nil, ErrNoModes
	}
	for mode, p := range modes {
		if err := p.Validate(class); err != nil {
			return nil, fmt.Errorf("core: monitor %q mode %d: %w", name, mode, err)
		}
	}
	m := &Monitor{
		name:     name,
		class:    class,
		cont:     modes,
		prev:     &fieldStore{},
		recovery: PreviousValue{},
	}
	for _, opt := range opts {
		opt(m)
	}
	if _, ok := m.cont[m.mode]; !ok {
		return nil, fmt.Errorf("%w %d (monitor %q)", ErrUnknownMode, m.mode, name)
	}
	return m, nil
}

// NewContinuousSingle builds a single-mode continuous monitor.
func NewContinuousSingle(name string, class Class, p Continuous, opts ...MonitorOption) (*Monitor, error) {
	return NewContinuous(name, class, map[int]Continuous{0: p}, opts...)
}

// NewDiscrete builds a monitor for a discrete signal with one parameter
// set per mode. The sets are copied (and indexed for O(1) lookups), so
// later changes to the caller's map do not affect the monitor.
func NewDiscrete(name string, class Class, modes map[int]Discrete, opts ...MonitorOption) (*Monitor, error) {
	if len(modes) == 0 {
		return nil, ErrNoModes
	}
	store := make(map[int]Discrete, len(modes))
	for mode, p := range modes {
		if err := p.Validate(class); err != nil {
			return nil, fmt.Errorf("core: monitor %q mode %d: %w", name, mode, err)
		}
		store[mode] = p.indexed()
	}
	m := &Monitor{
		name:     name,
		class:    class,
		disc:     store,
		prev:     &fieldStore{},
		recovery: PreviousValue{},
	}
	for _, opt := range opts {
		opt(m)
	}
	if _, ok := m.disc[m.mode]; !ok {
		return nil, fmt.Errorf("%w %d (monitor %q)", ErrUnknownMode, m.mode, name)
	}
	return m, nil
}

// NewDiscreteSingle builds a single-mode discrete monitor.
func NewDiscreteSingle(name string, class Class, p Discrete, opts ...MonitorOption) (*Monitor, error) {
	return NewDiscrete(name, class, map[int]Discrete{0: p}, opts...)
}

// Name returns the monitored signal's name.
func (m *Monitor) Name() string { return m.name }

// Class returns the signal classification.
func (m *Monitor) Class() Class { return m.class }

// Mode returns the currently active signal mode.
func (m *Monitor) Mode() int { return m.mode }

// Tests returns the number of Test calls since construction. It is
// safe to call concurrently with the driving goroutine's Test calls.
func (m *Monitor) Tests() uint64 { return atomic.LoadUint64(&m.tests) }

// Violations returns the number of failed tests since construction. It
// is safe to call concurrently with the driving goroutine's Test calls.
func (m *Monitor) Violations() uint64 { return atomic.LoadUint64(&m.violations) }

// SetMode switches the active parameter set ("a signal with several
// modes has one parameter set for each mode", paper §2.1). Switching
// modes keeps the stored previous value: the first test in the new mode
// checks the transition into it against the new parameters.
func (m *Monitor) SetMode(mode int) error {
	if m.cont != nil {
		if _, ok := m.cont[mode]; !ok {
			return fmt.Errorf("%w %d (monitor %q)", ErrUnknownMode, mode, m.name)
		}
	} else if _, ok := m.disc[mode]; !ok {
		return fmt.Errorf("%w %d (monitor %q)", ErrUnknownMode, mode, m.name)
	}
	m.mode = mode
	return nil
}

// Reset clears the previous-value state so the next observation primes
// the monitor again. Experiment runs call Reset between arrestments.
func (m *Monitor) Reset() {
	m.prev.StorePrev(0)
	m.primed = false
}

// Prime seeds the previous value without testing, for signals whose
// initial value is established out-of-band (e.g. memory initialised at
// node boot).
func (m *Monitor) Prime(s int64) {
	m.prev.StorePrev(s)
	m.primed = true
}

// Test subjects one observation of the signal to the executable
// assertions. now is the caller's timestamp (milliseconds in the target
// system). It returns the accepted value — the observation itself when
// the assertions pass, or the recovery policy's replacement after a
// violation — and the violation, if any. The returned Violation points
// into storage reused by the next Test call; copy the struct to retain
// it (DetectionSinks receive their own copy).
//
// The very first observation has no previous value s'; only the tests
// that are independent of s' run (bounds for continuous signals, domain
// membership for discrete ones).
func (m *Monitor) Test(now, s int64) (int64, *Violation) {
	atomic.AddUint64(&m.tests, 1)
	prev := m.prev.LoadPrev()
	var (
		id TestID
		ok bool
	)
	if m.cont != nil {
		p := m.cont[m.mode]
		if m.primed {
			id, ok = CheckContinuous(p, prev, s)
		} else {
			id, ok = CheckBounds(p, s)
		}
	} else {
		p := m.disc[m.mode]
		if m.primed {
			id, ok = CheckDiscrete(p, m.class.IsSequential(), prev, s)
		} else {
			id, ok = CheckDiscreteDomain(p, s)
		}
	}
	if ok {
		m.prev.StorePrev(s)
		m.primed = true
		return s, nil
	}

	atomic.AddUint64(&m.violations, 1)
	m.scratch = Violation{
		Signal:  m.name,
		Test:    id,
		Value:   s,
		Prev:    prev,
		HasPrev: m.primed,
		Mode:    m.mode,
		Time:    now,
	}
	if m.sink != nil {
		m.sink.Detect(m.scratch)
	}
	var recovered int64
	if m.cont != nil {
		recovered = m.recovery.RecoverContinuous(m.scratch, m.cont[m.mode])
	} else {
		recovered = m.recovery.RecoverDiscrete(m.scratch, m.disc[m.mode])
	}
	m.prev.StorePrev(recovered)
	m.primed = true
	return recovered, &m.scratch
}
