package core

// DetectionSink receives violations from monitors. In the paper's
// experiment the target reports detection by raising a digital output
// pin that the fault-injection campaign computer time-stamps; a sink is
// the software analogue of that pin.
type DetectionSink interface {
	// Detect is called once per failed executable assertion.
	Detect(v Violation)
}

// SinkFunc adapts a function to the DetectionSink interface.
type SinkFunc func(v Violation)

// Detect implements DetectionSink.
func (f SinkFunc) Detect(v Violation) { f(v) }

// Recorder is a DetectionSink that stores every violation and the time
// of the first one, mirroring what the paper's FIC3 records. The zero
// value is ready to use. Recorder is not safe for concurrent use; the
// simulation kernel is single-goroutine per run.
type Recorder struct {
	violations []Violation
	first      int64
	hasFirst   bool
}

var _ DetectionSink = (*Recorder)(nil)

// Detect implements DetectionSink.
func (r *Recorder) Detect(v Violation) {
	if !r.hasFirst {
		r.first = v.Time
		r.hasFirst = true
	}
	r.violations = append(r.violations, v)
}

// Detected reports whether at least one violation was recorded.
func (r *Recorder) Detected() bool { return r.hasFirst }

// FirstTime returns the timestamp of the first recorded violation and
// whether one exists.
func (r *Recorder) FirstTime() (int64, bool) { return r.first, r.hasFirst }

// Count returns the number of recorded violations.
func (r *Recorder) Count() int { return len(r.violations) }

// Violations returns a copy of the recorded violations in detection
// order.
func (r *Recorder) Violations() []Violation {
	return append([]Violation(nil), r.violations...)
}

// Reset clears the recorder for reuse between experiment runs.
func (r *Recorder) Reset() {
	r.violations = r.violations[:0]
	r.first = 0
	r.hasFirst = false
}

// multiSink fans a violation out to several sinks.
type multiSink []DetectionSink

// Detect implements DetectionSink.
func (m multiSink) Detect(v Violation) {
	for _, s := range m {
		s.Detect(v)
	}
}

// MultiSink combines sinks; nil entries are dropped. It returns nil
// when no usable sink remains, which monitors treat as "discard".
func MultiSink(sinks ...DetectionSink) DetectionSink {
	var out multiSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}
