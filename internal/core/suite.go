package core

import (
	"errors"
	"fmt"
	"sort"
)

// Suite manages the executable assertions of one application: a named
// registry of monitors, shared detection accounting, and an
// escalation policy implementing the paper's assessment stage ("an
// error has occurred and processes for assessment and recovery may be
// invoked", §1). A burst of violations within a time window raises an
// alarm exactly once per episode, so a supervisor can switch the
// system to a safe state instead of reacting to every single
// violation.
//
// Suite is not safe for concurrent mutation: one goroutine registers
// the monitors and drives Test. The exception is Stats, which may be
// called concurrently with the driving goroutine once registration is
// complete — the stream service's metrics endpoint reads a live
// suite's accounting while its shard goroutine keeps ticking it.
type Suite struct {
	monitors map[string]*Monitor
	order    []string

	window    int64
	threshold int
	quiet     int64
	onAlarm   func(Alarm)

	recent    []int64
	inEpisode bool
	lastViol  int64
	alarms    int
}

// Alarm describes one escalation episode: the threshold was reached
// within the window.
type Alarm struct {
	// Time is the timestamp of the violation that crossed the
	// threshold.
	Time int64
	// Count is the number of violations inside the window at that
	// moment.
	Count int
	// Window is the configured window length.
	Window int64
}

// Errors returned by Suite operations.
var (
	// ErrDuplicateMonitor reports two monitors with one name.
	ErrDuplicateMonitor = errors.New("core: duplicate monitor name")
	// ErrUnknownMonitor reports a Test against an unregistered name.
	ErrUnknownMonitor = errors.New("core: unknown monitor")
)

// SuiteOption configures a Suite.
type SuiteOption func(*Suite)

// WithEscalation raises an alarm when threshold violations occur
// within window time units; after quiet time units without violations
// the episode ends and a new burst can alarm again.
func WithEscalation(threshold int, window, quiet int64, onAlarm func(Alarm)) SuiteOption {
	return func(s *Suite) {
		s.threshold = threshold
		s.window = window
		s.quiet = quiet
		s.onAlarm = onAlarm
	}
}

// NewSuite builds an empty suite.
func NewSuite(opts ...SuiteOption) *Suite {
	s := &Suite{monitors: make(map[string]*Monitor)}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Add registers a monitor under its name.
func (s *Suite) Add(m *Monitor) error {
	if m == nil {
		return errors.New("core: nil monitor")
	}
	if _, dup := s.monitors[m.Name()]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateMonitor, m.Name())
	}
	s.monitors[m.Name()] = m
	s.order = append(s.order, m.Name())
	return nil
}

// Monitor returns the registered monitor with the given name.
func (s *Suite) Monitor(name string) (*Monitor, bool) {
	m, ok := s.monitors[name]
	return m, ok
}

// Names returns the registered monitor names in registration order.
func (s *Suite) Names() []string { return append([]string(nil), s.order...) }

// Len returns the number of registered monitors.
func (s *Suite) Len() int { return len(s.monitors) }

// Test routes one observation to the named monitor and feeds the
// escalation window.
func (s *Suite) Test(now int64, name string, value int64) (int64, *Violation, error) {
	m, ok := s.monitors[name]
	if !ok {
		return value, nil, fmt.Errorf("%w: %q", ErrUnknownMonitor, name)
	}
	accepted, v := m.Test(now, value)
	if v != nil {
		s.recordViolation(now)
	}
	return accepted, v, nil
}

// recordViolation maintains the escalation window.
func (s *Suite) recordViolation(now int64) {
	if s.threshold <= 0 {
		return
	}
	if s.inEpisode && s.quiet > 0 && now-s.lastViol >= s.quiet {
		s.inEpisode = false
		s.recent = s.recent[:0]
	}
	s.lastViol = now
	s.recent = append(s.recent, now)
	// Drop violations that left the window.
	cut := 0
	for cut < len(s.recent) && s.recent[cut] <= now-s.window {
		cut++
	}
	s.recent = s.recent[cut:]
	if !s.inEpisode && len(s.recent) >= s.threshold {
		s.inEpisode = true
		s.alarms++
		if s.onAlarm != nil {
			s.onAlarm(Alarm{Time: now, Count: len(s.recent), Window: s.window})
		}
	}
}

// Alarms returns the number of raised escalation episodes.
func (s *Suite) Alarms() int { return s.alarms }

// ResetAll resets every monitor and the escalation state (new run).
func (s *Suite) ResetAll() {
	for _, m := range s.monitors {
		m.Reset()
	}
	s.recent = s.recent[:0]
	s.inEpisode = false
	s.lastViol = 0
}

// MonitorStats is one monitor's accounting snapshot.
type MonitorStats struct {
	Name       string
	Class      Class
	Tests      uint64
	Violations uint64
}

// Stats returns per-monitor accounting, sorted by name for stable
// reports. It is safe to call concurrently with the goroutine driving
// the suite's monitors: the registry is immutable once Add calls have
// completed (registration must happen-before concurrent readers), a
// monitor's name and class never change, and the counters are read
// with atomic loads. A snapshot taken mid-tick may be a test ahead on
// one monitor and behind on another; each counter is itself exact.
func (s *Suite) Stats() []MonitorStats {
	out := make([]MonitorStats, 0, len(s.monitors))
	for _, m := range s.monitors {
		out = append(out, MonitorStats{
			Name:       m.Name(),
			Class:      m.Class(),
			Tests:      m.Tests(),
			Violations: m.Violations(),
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}
