package core

import "testing"

// Native fuzz targets. `go test` runs the seed corpus as regular unit
// tests; `go test -fuzz=FuzzCheckContinuous ./internal/core` explores
// further.

// FuzzCheckContinuous asserts engine totality and internal
// consistency for arbitrary parameter sets and values: no panic, a
// coherent (TestID, ok) pair, out-of-bounds always rejected, and
// purity.
func FuzzCheckContinuous(f *testing.F) {
	f.Add(int64(0), int64(100), int64(0), int64(5), int64(0), int64(5), true, int64(50), int64(53))
	f.Add(int64(0), int64(60000), int64(1), int64(1), int64(0), int64(0), true, int64(59999), int64(0))
	f.Add(int64(-10), int64(10), int64(0), int64(0), int64(2), int64(2), false, int64(5), int64(3))
	f.Fuzz(func(t *testing.T, min, max, im, ix, dm, dx int64, wrap bool, prev, s int64) {
		p := Continuous{
			Min:  min,
			Max:  max,
			Incr: Rate{Min: im, Max: ix},
			Decr: Rate{Min: dm, Max: dx},
			Wrap: wrap,
		}
		id1, ok1 := CheckContinuous(p, prev, s)
		id2, ok2 := CheckContinuous(p, prev, s)
		if id1 != id2 || ok1 != ok2 {
			t.Fatal("CheckContinuous is not pure")
		}
		if ok1 && id1 != 0 {
			t.Fatalf("pass with TestID %v", id1)
		}
		if !ok1 && id1 == 0 {
			t.Fatal("fail without TestID")
		}
		if s > p.Max && (ok1 || id1 != TestMax) {
			t.Fatalf("s=%d above max=%d not rejected as TestMax (%v, %v)", s, p.Max, id1, ok1)
		}
		if s <= p.Max && s < p.Min && (ok1 || id1 != TestMin) {
			t.Fatalf("s=%d below min=%d not rejected as TestMin (%v, %v)", s, p.Min, id1, ok1)
		}
	})
}

// FuzzMonitor exercises the stateful path: arbitrary observation
// sequences never panic, and the monitor's accounting stays coherent.
func FuzzMonitor(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 4}, int64(10), int64(90))
	f.Add([]byte{}, int64(0), int64(1))
	f.Fuzz(func(t *testing.T, samples []byte, lo, hi int64) {
		if hi <= lo {
			hi = lo + 1
		}
		m, err := NewContinuousSingle("fuzz", ContinuousRandom, Continuous{
			Min:  lo,
			Max:  hi,
			Incr: Rate{Min: 0, Max: 7},
			Decr: Rate{Min: 0, Max: 7},
		})
		if err != nil {
			t.Fatal(err)
		}
		var violations uint64
		for i, b := range samples {
			_, v := m.Test(int64(i), lo+int64(b))
			if v != nil {
				violations++
			}
		}
		if m.Tests() != uint64(len(samples)) || m.Violations() != violations {
			t.Fatalf("accounting: tests %d/%d violations %d/%d",
				m.Tests(), len(samples), m.Violations(), violations)
		}
	})
}
