// Package core implements the signal classification scheme and the
// executable assertions of Hiller, "Executable Assertions for Detecting
// Data Errors in Embedded Control Systems" (DSN 2000).
//
// The paper's idea is that error detection for internal program signals
// does not need hand-written, ad-hoc acceptance tests. Instead, each
// signal is classified (Figure 1 of the paper) as either continuous
// (random, static monotonic, dynamic monotonic) or discrete (random,
// linear sequential, non-linear sequential), and a small set of generic
// test algorithms (Tables 2 and 3) is instantiated with per-signal
// parameters:
//
//   - continuous signals carry the parameter set Pcont =
//     {smin, smax, rmin/rmax for increase and decrease, wrap-around};
//   - discrete signals carry Pdisc = {D (valid value domain),
//     T(d) (valid transitions from each value d)}.
//
// A signal may behave differently in different phases of system
// operation, so a monitor can hold one parameter set per mode
// (paper §2.1, "Signal modes").
//
// The package provides:
//
//   - Class, the classification lattice of Figure 1;
//   - Continuous and Discrete, the parameter sets with the legality
//     rules of Table 1;
//   - CheckContinuous and CheckDiscrete, the assertion algorithms of
//     Tables 2 and 3;
//   - Monitor, a stateful per-signal tester that remembers the previous
//     value s', dispatches per-mode parameters, reports violations to a
//     DetectionSink (the paper's "digital output pin") and applies a
//     RecoveryPolicy ("the signal can be returned to a valid state",
//     paper §2);
//   - Calibrator, which derives parameter proposals from fault-free
//     traces (paper §2.2: "the parameters may be calibrated using fault
//     injection experiments").
//
// Values are int64 so that any integer-valued signal (the paper's target
// uses 16-bit words) fits without loss.
package core
