package core

import "fmt"

// Class identifies a node in the signal classification scheme of the
// paper's Figure 1. Leaf classes (the six concrete classes a signal can
// be instantiated with) are ContinuousRandom, ContinuousMonotonicStatic,
// ContinuousMonotonicDynamic, DiscreteRandom, DiscreteSequentialLinear
// and DiscreteSequentialNonLinear.
type Class int

const (
	// ClassUnknown is the zero value; it is not a valid classification.
	ClassUnknown Class = iota

	// ContinuousRandom marks a continuous signal that may increase,
	// decrease or remain unchanged between consecutive tests, within
	// configured rate limits (paper Figure 2a).
	ContinuousRandom

	// ContinuousMonotonicStatic marks a continuous signal that changes
	// monotonically with one fixed rate (paper Figure 2b). A millisecond
	// counter incremented by exactly one per test is the canonical case.
	ContinuousMonotonicStatic

	// ContinuousMonotonicDynamic marks a continuous signal that changes
	// monotonically with a rate anywhere inside a configured range
	// (paper Figure 2c). A pulse counter fed by a rotation sensor is the
	// canonical case.
	ContinuousMonotonicDynamic

	// DiscreteRandom marks a discrete signal allowed to make any
	// transition between values of its valid domain D.
	DiscreteRandom

	// DiscreteSequentialLinear marks a discrete signal that must
	// traverse its valid domain in a fixed predefined order, one value
	// after another (e.g. a scheduler slot number).
	DiscreteSequentialLinear

	// DiscreteSequentialNonLinear marks a discrete signal whose
	// transitions follow an arbitrary but predefined graph T(d)
	// (e.g. a state machine, paper Figure 3).
	DiscreteSequentialNonLinear
)

// String returns the compact notation used in the paper's Table 4
// (Co = continuous, Di = discrete, Ra = random, Mo = monotonic,
// St = static rate, Dy = dynamic rate, Se = sequential, Li = linear).
func (c Class) String() string {
	switch c {
	case ContinuousRandom:
		return "Co/Ra"
	case ContinuousMonotonicStatic:
		return "Co/Mo/St"
	case ContinuousMonotonicDynamic:
		return "Co/Mo/Dy"
	case DiscreteRandom:
		return "Di/Ra"
	case DiscreteSequentialLinear:
		return "Di/Se/Li"
	case DiscreteSequentialNonLinear:
		return "Di/Se/NL"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// IsContinuous reports whether c is one of the continuous leaf classes.
func (c Class) IsContinuous() bool {
	switch c {
	case ContinuousRandom, ContinuousMonotonicStatic, ContinuousMonotonicDynamic:
		return true
	}
	return false
}

// IsDiscrete reports whether c is one of the discrete leaf classes.
func (c Class) IsDiscrete() bool {
	switch c {
	case DiscreteRandom, DiscreteSequentialLinear, DiscreteSequentialNonLinear:
		return true
	}
	return false
}

// IsMonotonic reports whether c is a monotonic continuous class.
func (c Class) IsMonotonic() bool {
	return c == ContinuousMonotonicStatic || c == ContinuousMonotonicDynamic
}

// IsSequential reports whether c is a sequential discrete class.
func (c Class) IsSequential() bool {
	return c == DiscreteSequentialLinear || c == DiscreteSequentialNonLinear
}

// Classes returns the six leaf classes of the classification scheme in
// the order they appear in the paper's Figure 1 (continuous branch
// first).
func Classes() []Class {
	return []Class{
		ContinuousMonotonicStatic,
		ContinuousMonotonicDynamic,
		ContinuousRandom,
		DiscreteSequentialLinear,
		DiscreteSequentialNonLinear,
		DiscreteRandom,
	}
}

// ParseClass parses the compact Table 4 notation produced by
// Class.String (case-sensitive). It returns an error for unknown
// notations.
func ParseClass(s string) (Class, error) {
	for _, c := range Classes() {
		if c.String() == s {
			return c, nil
		}
	}
	return ClassUnknown, fmt.Errorf("core: unknown signal class %q", s)
}
