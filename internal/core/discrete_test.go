package core

import (
	"errors"
	"testing"
)

func TestDiscreteValidate(t *testing.T) {
	tests := []struct {
		name    string
		class   Class
		p       Discrete
		wantErr error
	}{
		{
			name:  "random valid",
			class: DiscreteRandom,
			p:     NewRandom([]int64{1, 2, 3}),
		},
		{
			name:    "empty domain",
			class:   DiscreteRandom,
			p:       Discrete{},
			wantErr: ErrEmptyDomain,
		},
		{
			name:    "duplicate value",
			class:   DiscreteRandom,
			p:       Discrete{Domain: []int64{1, 2, 1}},
			wantErr: ErrDuplicateValue,
		},
		{
			name:    "sequential needs transitions",
			class:   DiscreteSequentialNonLinear,
			p:       Discrete{Domain: []int64{1, 2}},
			wantErr: ErrMissingTransitions,
		},
		{
			name:  "sequential valid",
			class: DiscreteSequentialNonLinear,
			p:     Discrete{Domain: []int64{1, 2}, Trans: map[int64][]int64{1: {2}, 2: {1}}},
		},
		{
			name:    "transition source outside domain",
			class:   DiscreteSequentialNonLinear,
			p:       Discrete{Domain: []int64{1, 2}, Trans: map[int64][]int64{3: {1}}},
			wantErr: ErrTransitionSource,
		},
		{
			name:    "transition target outside domain",
			class:   DiscreteSequentialNonLinear,
			p:       Discrete{Domain: []int64{1, 2}, Trans: map[int64][]int64{1: {9}}},
			wantErr: ErrTransitionTarget,
		},
		{
			name:    "continuous class rejected",
			class:   ContinuousRandom,
			p:       NewRandom([]int64{1}),
			wantErr: ErrClassMismatch,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate(tt.class)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewLinear(t *testing.T) {
	t.Run("cyclic no stay", func(t *testing.T) {
		p := NewLinear([]int64{0, 1, 2}, true, false)
		wantTrans := map[int64][]int64{0: {1}, 1: {2}, 2: {0}}
		for src, want := range wantTrans {
			got := p.Trans[src]
			if len(got) != len(want) || got[0] != want[0] {
				t.Errorf("T(%d) = %v, want %v", src, got, want)
			}
		}
	})
	t.Run("acyclic with stay", func(t *testing.T) {
		p := NewLinear([]int64{5, 7}, false, true)
		if !p.Allows(5, 7) || !p.Allows(5, 5) || !p.Allows(7, 7) {
			t.Error("expected successor and self transitions to be allowed")
		}
		if p.Allows(7, 5) {
			t.Error("reverse transition must not be allowed")
		}
		// The last value of an acyclic chain has no successor.
		if p.Allows(7, 5) || len(p.Trans[7]) != 1 {
			t.Errorf("T(7) = %v, want only {7}", p.Trans[7])
		}
	})
	t.Run("validates as linear", func(t *testing.T) {
		p := NewLinear([]int64{0, 1, 2, 3}, true, false)
		if err := p.Validate(DiscreteSequentialLinear); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	})
}

func TestDiscreteContainsAllows(t *testing.T) {
	p := NewLinear([]int64{10, 20, 30}, true, false)
	if !p.Contains(20) || p.Contains(21) {
		t.Error("Contains misclassifies domain membership")
	}
	if !p.Allows(10, 20) || p.Allows(10, 30) || p.Allows(99, 10) {
		t.Error("Allows misclassifies transitions")
	}
}

func TestDiscreteStringDeterministic(t *testing.T) {
	p := Discrete{
		Domain: []int64{2, 1},
		Trans:  map[int64][]int64{2: {1}, 1: {2}},
	}
	want := "Pdisc{D=[2 1] T(1)=[2] T(2)=[1]}"
	for i := 0; i < 10; i++ {
		if got := p.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}

func TestNewRandomCopiesDomain(t *testing.T) {
	domain := []int64{1, 2, 3}
	p := NewRandom(domain)
	domain[0] = 99
	if !p.Contains(1) || p.Contains(99) {
		t.Error("NewRandom must copy the domain slice")
	}
}
