package core

import (
	"errors"
	"fmt"
)

// Rate bounds the magnitude of a signal change between two consecutive
// tests in one direction. Min and Max correspond to the paper's
// r_min and r_max for that direction; both are magnitudes and must be
// non-negative.
type Rate struct {
	Min int64
	Max int64
}

// zero reports whether the rate forbids any change in its direction
// (r_min = r_max = 0).
func (r Rate) zero() bool { return r.Min == 0 && r.Max == 0 }

// contains reports whether the non-negative change magnitude d lies in
// [Min, Max].
func (r Rate) contains(d int64) bool { return d >= r.Min && d <= r.Max }

// Continuous is the parameter set Pcont of the paper's §2.1: the seven
// parameters {smax, smin, rmin/rmax for increase, rmin/rmax for
// decrease, wrap-around} that instantiate the generic continuous-signal
// assertions of Table 2.
type Continuous struct {
	// Min and Max bound the valid value domain [smin, smax].
	Min int64
	Max int64
	// Incr bounds the per-test increase magnitude.
	Incr Rate
	// Decr bounds the per-test decrease magnitude.
	Decr Rate
	// Wrap allows the signal to continue "on the other side" after
	// reaching Max (for increasing signals) or Min (for decreasing
	// signals), as in the paper's Figure 2b.
	Wrap bool
}

// Errors returned by Continuous.Validate. They are wrapped with context
// naming the offending parameter values; match with errors.Is.
var (
	// ErrBadBounds reports smax <= smin (Table 1 requires smax > smin).
	ErrBadBounds = errors.New("core: smax must be greater than smin")
	// ErrNegativeRate reports a negative rate magnitude.
	ErrNegativeRate = errors.New("core: rate magnitudes must be non-negative")
	// ErrRateOrder reports rmax < rmin within one direction.
	ErrRateOrder = errors.New("core: rmax must be at least rmin")
	// ErrNotStatic reports parameters that do not describe a
	// static-rate monotonic signal.
	ErrNotStatic = errors.New("core: static monotonic signals need one direction with rmin=rmax>0 and the other with rmin=rmax=0")
	// ErrNotDynamic reports parameters that do not describe a
	// dynamic-rate monotonic signal.
	ErrNotDynamic = errors.New("core: dynamic monotonic signals need one direction with rmax>rmin>=0 and the other with rmin=rmax=0")
	// ErrNotRandom reports parameters that describe a monotonic signal
	// although the class is ContinuousRandom.
	ErrNotRandom = errors.New("core: random continuous signals must allow both increase and decrease")
	// ErrClassMismatch reports a class that is not continuous.
	ErrClassMismatch = errors.New("core: class is not a continuous class")
)

// Validate checks the parameter constraints of the paper's Table 1 for
// the given continuous class. It returns nil when the parameter set is
// a legal instantiation of that class.
func (p Continuous) Validate(class Class) error {
	if !class.IsContinuous() {
		return fmt.Errorf("%w: %v", ErrClassMismatch, class)
	}
	// Row "All": smax > smin; w is free.
	if p.Max <= p.Min {
		return fmt.Errorf("%w: smin=%d smax=%d", ErrBadBounds, p.Min, p.Max)
	}
	if p.Incr.Min < 0 || p.Incr.Max < 0 || p.Decr.Min < 0 || p.Decr.Max < 0 {
		return fmt.Errorf("%w: incr=%+v decr=%+v", ErrNegativeRate, p.Incr, p.Decr)
	}
	if p.Incr.Max < p.Incr.Min || p.Decr.Max < p.Decr.Min {
		return fmt.Errorf("%w: incr=%+v decr=%+v", ErrRateOrder, p.Incr, p.Decr)
	}
	switch class {
	case ContinuousMonotonicStatic:
		// (incr zero and decr fixed > 0) or (decr zero and incr fixed > 0).
		incOK := p.Incr.zero() && p.Decr.Min == p.Decr.Max && p.Decr.Min > 0
		decOK := p.Decr.zero() && p.Incr.Min == p.Incr.Max && p.Incr.Min > 0
		if !incOK && !decOK {
			return fmt.Errorf("%w: incr=%+v decr=%+v", ErrNotStatic, p.Incr, p.Decr)
		}
	case ContinuousMonotonicDynamic:
		// (incr zero and decr ranging) or (decr zero and incr ranging).
		incOK := p.Incr.zero() && p.Decr.Max > p.Decr.Min
		decOK := p.Decr.zero() && p.Incr.Max > p.Incr.Min
		if !incOK && !decOK {
			return fmt.Errorf("%w: incr=%+v decr=%+v", ErrNotDynamic, p.Incr, p.Decr)
		}
	case ContinuousRandom:
		// Both directions must be allowed; a direction whose rates are
		// both zero would make the signal monotonic.
		if p.Incr.zero() || p.Decr.zero() {
			return fmt.Errorf("%w: incr=%+v decr=%+v", ErrNotRandom, p.Incr, p.Decr)
		}
	}
	return nil
}

// Classify infers the most specific continuous leaf class that the
// parameter set legally instantiates, following Table 1. It returns
// ClassUnknown and an error when the parameters fit no class (e.g.
// smax <= smin).
func (p Continuous) Classify() (Class, error) {
	for _, c := range []Class{ContinuousMonotonicStatic, ContinuousMonotonicDynamic, ContinuousRandom} {
		if err := p.Validate(c); err == nil {
			return c, nil
		}
	}
	// Re-run random validation to surface the most informative error.
	if err := p.Validate(ContinuousRandom); err != nil {
		return ClassUnknown, err
	}
	return ClassUnknown, errors.New("core: parameters fit no continuous class")
}

// Span returns the width of the valid domain, smax - smin.
func (p Continuous) Span() int64 { return p.Max - p.Min }

// Clamp returns v limited to [Min, Max].
func (p Continuous) Clamp(v int64) int64 {
	if v < p.Min {
		return p.Min
	}
	if v > p.Max {
		return p.Max
	}
	return v
}

// MonotonicDirection reports the direction of a monotonic parameter
// set: +1 for increasing (decrease rates are zero), -1 for decreasing
// (increase rates are zero) and 0 when the set is not monotonic.
func (p Continuous) MonotonicDirection() int {
	switch {
	case p.Decr.zero() && !p.Incr.zero():
		return +1
	case p.Incr.zero() && !p.Decr.zero():
		return -1
	default:
		return 0
	}
}

// String renders the parameter set in a compact single line.
func (p Continuous) String() string {
	w := "no-wrap"
	if p.Wrap {
		w = "wrap"
	}
	return fmt.Sprintf("Pcont{[%d,%d] incr[%d,%d] decr[%d,%d] %s}",
		p.Min, p.Max, p.Incr.Min, p.Incr.Max, p.Decr.Min, p.Decr.Max, w)
}
