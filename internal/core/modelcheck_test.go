package core

import "testing"

// Model check of the Table 2 assertion engine. The paper notes that
// the generic algorithms "can be formally verified"; this test does
// the next best thing for the continuous engine: it compares
// CheckContinuous exhaustively against an independently derived
// reference semantics over small domains.
//
// Reference semantics ("circular walk"): the valid domain [smin, smax]
// is a line, or — when wrap-around is allowed — a circle on which smax
// is identified with smin. A transition from s' to s is legal iff
//
//   - s lies in the domain, and
//   - s is reachable from s' by walking k >= 1 steps forward with
//     k in [rmin_incr, rmax_incr], or k >= 1 steps backward with
//     k in [rmin_decr, rmax_decr] (walks past the domain edge exist
//     only on the circle), or
//   - s = s' and some enabled direction permits a zero-magnitude
//     change (its rmin is 0).
//
// The reference enumerates reachable positions by actually walking;
// the production code evaluates Table 2's closed-form tests. Agreement
// over the exhausted space verifies the formulas, including the
// wrap-around arithmetic.
func TestModelCheckContinuousAgainstCircularWalk(t *testing.T) {
	const maxRate = 3
	checked := 0
	for _, max := range []int64{4, 5} {
		for im := int64(0); im <= maxRate; im++ {
			for ix := im; ix <= maxRate; ix++ {
				for dm := int64(0); dm <= maxRate; dm++ {
					for dx := dm; dx <= maxRate; dx++ {
						for _, wrap := range []bool{false, true} {
							p := Continuous{
								Min:  0,
								Max:  max,
								Incr: Rate{Min: im, Max: ix},
								Decr: Rate{Min: dm, Max: dx},
								Wrap: wrap,
							}
							for prev := p.Min; prev <= p.Max; prev++ {
								for s := p.Min - 2; s <= p.Max+2; s++ {
									want := referenceLegal(p, prev, s)
									_, got := CheckContinuous(p, prev, s)
									if got != want {
										t.Fatalf("disagreement: %v prev=%d s=%d: engine=%v reference=%v",
											p, prev, s, got, want)
									}
									checked++
								}
							}
						}
					}
				}
			}
		}
	}
	if checked < 20000 {
		t.Fatalf("only %d combinations exhausted", checked)
	}
}

// referenceLegal implements the circular-walk semantics by stepping.
func referenceLegal(p Continuous, prev, s int64) bool {
	if s > p.Max || s < p.Min {
		return false
	}
	if s == prev {
		// Zero change: allowed if an enabled direction has rmin = 0.
		incEnabled := !(p.Incr.Min == 0 && p.Incr.Max == 0)
		decEnabled := !(p.Decr.Min == 0 && p.Decr.Max == 0)
		switch {
		case !incEnabled && decEnabled:
			return p.Decr.Min == 0
		case incEnabled && !decEnabled:
			return p.Incr.Min == 0
		case incEnabled && decEnabled:
			return p.Incr.Min == 0 || p.Decr.Min == 0
		default:
			// Both directions have rmin = rmax = 0: a (degenerate)
			// constant signal, for which zero change is within the
			// parameters — Table 2's test 3c accepts it.
			return true
		}
	}
	// Positions compare under the circle identification: smax and smin
	// are the same point when wrap-around is allowed.
	posEq := func(a, b int64) bool {
		if a == b {
			return true
		}
		if !p.Wrap {
			return false
		}
		return (a == p.Min && b == p.Max) || (a == p.Max && b == p.Min)
	}
	// Walk forward: on the circle smax is the same point as smin.
	lo := max64(1, p.Incr.Min)
	for k := lo; k <= p.Incr.Max; k++ {
		pos := prev + k
		if pos > p.Max {
			if !p.Wrap {
				break
			}
			pos = p.Min + (pos - p.Max)
			if pos > p.Max {
				break // more than one lap: outside the model
			}
		}
		if posEq(pos, s) {
			return true
		}
	}
	// Walk backward.
	lo = max64(1, p.Decr.Min)
	for k := lo; k <= p.Decr.Max; k++ {
		pos := prev - k
		if pos < p.Min {
			if !p.Wrap {
				break
			}
			pos = p.Max - (p.Min - pos)
			if pos < p.Min {
				break
			}
		}
		if posEq(pos, s) {
			return true
		}
	}
	// On the circle, smax is identified with smin: moving between the
	// two endpoints is a zero-magnitude wrapped move, legal when the
	// corresponding direction's window contains zero.
	if p.Wrap && prev == p.Min && s == p.Max && p.Decr.Min == 0 {
		return true
	}
	if p.Wrap && prev == p.Max && s == p.Min && p.Incr.Min == 0 {
		return true
	}
	return false
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// The discrete engine is checked the same way: against direct set
// membership over exhaustive small domains.
func TestModelCheckDiscreteAgainstSets(t *testing.T) {
	domains := [][]int64{
		{0},
		{0, 1},
		{0, 2, 5},
		{1, 2, 3, 4},
	}
	for _, domain := range domains {
		// All 2^(n*n) transition relations are too many; sample the
		// structured ones: empty, full, linear, and single-edge
		// relations.
		relations := []map[int64][]int64{
			{},
			fullRelation(domain),
			NewLinear(domain, true, false).Trans,
		}
		for _, src := range domain {
			for _, dst := range domain {
				relations = append(relations, map[int64][]int64{src: {dst}})
			}
		}
		for _, rel := range relations {
			p := Discrete{Domain: domain, Trans: rel}
			inRel := map[[2]int64]bool{}
			for src, dsts := range rel {
				for _, dst := range dsts {
					inRel[[2]int64{src, dst}] = true
				}
			}
			inDom := map[int64]bool{}
			for _, d := range domain {
				inDom[d] = true
			}
			for prev := int64(-1); prev <= 6; prev++ {
				for s := int64(-1); s <= 6; s++ {
					_, got := CheckDiscrete(p, true, prev, s)
					want := inDom[s] && inRel[[2]int64{prev, s}]
					if got != want {
						t.Fatalf("domain %v rel %v: prev=%d s=%d engine=%v reference=%v",
							domain, rel, prev, s, got, want)
					}
					_, gotRandom := CheckDiscrete(p, false, prev, s)
					if gotRandom != inDom[s] {
						t.Fatalf("random: domain %v s=%d engine=%v want=%v",
							domain, s, gotRandom, inDom[s])
					}
				}
			}
		}
	}
}

func fullRelation(domain []int64) map[int64][]int64 {
	out := make(map[int64][]int64, len(domain))
	for _, src := range domain {
		out[src] = append([]int64(nil), domain...)
	}
	return out
}
