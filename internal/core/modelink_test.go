package core

import "testing"

func newModeLinked(t *testing.T) (*ModeLink, *Monitor) {
	t.Helper()
	modeMon, err := NewDiscreteSingle("op_mode", DiscreteSequentialLinear,
		NewLinear([]int64{0, 1}, false, true),
		WithRecovery(PreviousValue{}))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := NewContinuous("flow", ContinuousRandom, map[int]Continuous{
		0: {Min: 0, Max: 10, Incr: Rate{0, 2}, Decr: Rate{0, 2}},
		1: {Min: 0, Max: 100, Incr: Rate{0, 50}, Decr: Rate{0, 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewModeLink(modeMon, dep)
	if err != nil {
		t.Fatal(err)
	}
	return link, dep
}

func TestModeLinkPropagates(t *testing.T) {
	link, dep := newModeLinked(t)
	if _, v, err := link.Observe(0, 0); v != nil || err != nil {
		t.Fatalf("mode 0: v=%v err=%v", v, err)
	}
	if dep.Mode() != 0 {
		t.Fatalf("dependent mode = %d", dep.Mode())
	}
	if _, v, err := link.Observe(1, 1); v != nil || err != nil {
		t.Fatalf("mode 1: v=%v err=%v", v, err)
	}
	if dep.Mode() != 1 {
		t.Fatalf("dependent mode = %d after switch", dep.Mode())
	}
	// In mode 1 the wide constraints apply.
	dep.Prime(10)
	if _, v := dep.Test(2, 50); v != nil {
		t.Fatalf("wide-mode sample flagged: %v", v)
	}
}

func TestModeLinkProtectsAgainstCorruptMode(t *testing.T) {
	link, dep := newModeLinked(t)
	link.Observe(0, 0)
	// A corrupted mode value (out of domain) is rejected; the
	// dependents stay on the recovered mode instead of switching to a
	// parameter set that does not exist.
	accepted, v, err := link.Observe(1, 77)
	if err != nil {
		t.Fatalf("corrupt mode propagated an error: %v", err)
	}
	if v == nil || v.Test != TestDomain {
		t.Fatalf("corrupt mode not flagged: %v", v)
	}
	if accepted != 0 || dep.Mode() != 0 {
		t.Fatalf("dependents switched to %d (accepted %d)", dep.Mode(), accepted)
	}
}

func TestModeLinkConstruction(t *testing.T) {
	mode, _ := NewDiscreteSingle("m", DiscreteRandom, NewRandom([]int64{0, 1}))
	cont, _ := NewContinuousSingle("c", ContinuousRandom,
		Continuous{Min: 0, Max: 1, Incr: Rate{0, 1}, Decr: Rate{0, 1}})
	if _, err := NewModeLink(nil, cont); err == nil {
		t.Error("nil mode accepted")
	}
	if _, err := NewModeLink(cont, mode); err == nil {
		t.Error("continuous mode monitor accepted")
	}
	if _, err := NewModeLink(mode); err == nil {
		t.Error("no dependents accepted")
	}
	if _, err := NewModeLink(mode, nil); err == nil {
		t.Error("nil dependent accepted")
	}
	link, err := NewModeLink(mode, cont)
	if err != nil {
		t.Fatal(err)
	}
	if link.Mode() != mode || len(link.Dependents()) != 1 {
		t.Error("accessors broken")
	}
	// The dependent has no parameter set for mode 1: Observe reports
	// the wiring error.
	if _, _, err := link.Observe(0, 1); err == nil {
		t.Error("missing dependent mode not reported")
	}
}
