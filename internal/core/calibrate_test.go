package core

import (
	"errors"
	"math/rand"
	"testing"
)

func TestContinuousCalibratorMonotonic(t *testing.T) {
	var cal ContinuousCalibrator
	// A counter increasing by 1..3 per sample.
	rng := rand.New(rand.NewSource(1))
	v := int64(10)
	samples := []int64{v}
	for i := 0; i < 200; i++ {
		v += 1 + rng.Int63n(3)
		samples = append(samples, v)
	}
	for _, s := range samples {
		cal.Observe(s)
	}
	cal.EndRun()
	p, class, err := cal.Propose(CalibrationOptions{BoundMargin: 0.1, RateMargin: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if class != ContinuousMonotonicDynamic && class != ContinuousMonotonicStatic {
		t.Fatalf("class = %v, want a monotonic class", class)
	}
	if err := p.Validate(class); err != nil {
		t.Fatalf("proposal does not validate: %v", err)
	}
	// The proposal must accept the trace it was derived from.
	replayTrace(t, p, samples)
}

func TestContinuousCalibratorStatic(t *testing.T) {
	var cal ContinuousCalibrator
	var samples []int64
	for i := int64(0); i < 100; i++ {
		samples = append(samples, i*4)
	}
	for _, s := range samples {
		cal.Observe(s)
	}
	p, class, err := cal.Propose(CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if class != ContinuousMonotonicStatic {
		t.Fatalf("class = %v, want Co/Mo/St", class)
	}
	if p.Incr.Min != 4 || p.Incr.Max != 4 {
		t.Fatalf("rate = %+v, want fixed 4", p.Incr)
	}
	replayTrace(t, p, samples)
}

func TestContinuousCalibratorRandom(t *testing.T) {
	var cal ContinuousCalibrator
	rng := rand.New(rand.NewSource(2))
	v := int64(500)
	var samples []int64
	for i := 0; i < 500; i++ {
		v += rng.Int63n(21) - 10
		samples = append(samples, v)
	}
	for _, s := range samples {
		cal.Observe(s)
	}
	p, class, err := cal.Propose(CalibrationOptions{BoundMargin: 0.05, RateMargin: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if class != ContinuousRandom {
		t.Fatalf("class = %v, want Co/Ra", class)
	}
	replayTrace(t, p, samples)
}

func TestContinuousCalibratorConstantSignal(t *testing.T) {
	var cal ContinuousCalibrator
	for i := 0; i < 10; i++ {
		cal.Observe(7)
	}
	p, class, err := cal.Propose(CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if class != ContinuousRandom {
		t.Fatalf("class = %v, want Co/Ra fallback", class)
	}
	replayTrace(t, p, []int64{7, 7, 7})
}

func TestContinuousCalibratorEndRunSeparatesRuns(t *testing.T) {
	var cal ContinuousCalibrator
	// Run 1 ends at 1000; run 2 restarts at 0. Without EndRun the
	// -1000 jump would poison the decrease envelope.
	for i := int64(0); i <= 10; i++ {
		cal.Observe(i * 100)
	}
	cal.EndRun()
	for i := int64(0); i <= 10; i++ {
		cal.Observe(i * 100)
	}
	p, class, err := cal.Propose(CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if class != ContinuousMonotonicStatic {
		t.Fatalf("class = %v, want Co/Mo/St (no inter-run decrease recorded)", class)
	}
	if !p.Decr.zero() {
		t.Fatalf("decrease envelope polluted: %+v", p.Decr)
	}
}

func TestContinuousCalibratorEmpty(t *testing.T) {
	var cal ContinuousCalibrator
	if _, _, err := cal.Propose(CalibrationOptions{}); !errors.Is(err, ErrNoObservations) {
		t.Fatalf("err = %v, want ErrNoObservations", err)
	}
}

func TestDiscreteCalibrator(t *testing.T) {
	var cal DiscreteCalibrator
	walk := []int64{1, 2, 4, 5, 1, 4, 5, 1, 2, 3, 4, 5}
	for _, s := range walk {
		cal.Observe(s)
	}
	cal.EndRun()
	p, err := cal.Propose(false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(DiscreteSequentialNonLinear); err != nil {
		t.Fatalf("proposal does not validate: %v", err)
	}
	// Every observed transition is allowed; an unobserved one is not.
	if !p.Allows(1, 2) || !p.Allows(5, 1) || !p.Allows(1, 4) {
		t.Error("observed transitions missing from proposal")
	}
	if p.Allows(2, 1) {
		t.Error("unobserved transition 2->1 allowed")
	}
	if p.Allows(1, 1) {
		t.Error("self transition allowed without allowStay")
	}

	pStay, err := cal.Propose(true)
	if err != nil {
		t.Fatal(err)
	}
	if !pStay.Allows(1, 1) || !pStay.Allows(3, 3) {
		t.Error("allowStay proposal lacks self transitions")
	}
}

func TestDiscreteCalibratorEndRun(t *testing.T) {
	var cal DiscreteCalibrator
	cal.Observe(1)
	cal.Observe(2)
	cal.EndRun()
	cal.Observe(5)
	p, err := cal.Propose(false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Allows(2, 5) {
		t.Error("inter-run transition 2->5 recorded despite EndRun")
	}
}

func TestDiscreteCalibratorEmpty(t *testing.T) {
	var cal DiscreteCalibrator
	if _, err := cal.Propose(false); !errors.Is(err, ErrNoObservations) {
		t.Fatalf("err = %v, want ErrNoObservations", err)
	}
}

// replayTrace runs the trace through a monitor built from the proposal
// and fails on any violation: a calibrated parameter set must accept
// its own training data (the paper's §3.4 requirement that fault-free
// runs are detection-free).
func replayTrace(t *testing.T, p Continuous, samples []int64) {
	t.Helper()
	class, err := p.Classify()
	if err != nil {
		t.Fatalf("proposal classifies as nothing: %v", err)
	}
	m, err := NewContinuousSingle("replay", class, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		if _, v := m.Test(int64(i), s); v != nil {
			t.Fatalf("sample %d (%d) rejected by calibrated parameters: %v", i, s, v)
		}
	}
}
