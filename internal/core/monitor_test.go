package core

import (
	"errors"
	"testing"
)

func mustContinuousMonitor(t *testing.T, p Continuous, opts ...MonitorOption) *Monitor {
	t.Helper()
	m, err := NewContinuousSingle("sig", ContinuousRandom, p, opts...)
	if err != nil {
		t.Fatalf("NewContinuousSingle: %v", err)
	}
	return m
}

func TestMonitorFirstObservationBoundsOnly(t *testing.T) {
	p := Continuous{Min: 0, Max: 100, Incr: Rate{0, 1}, Decr: Rate{0, 1}}
	m := mustContinuousMonitor(t, p)
	// A huge first value is fine as long as it is within bounds: there
	// is no s' yet, so no rate test runs.
	if _, v := m.Test(0, 99); v != nil {
		t.Fatalf("first in-bounds observation flagged: %v", v)
	}
	// Now the rate tests are armed.
	if _, v := m.Test(1, 50); v == nil {
		t.Fatal("49-unit drop with rate limit 1 not flagged")
	}
}

func TestMonitorFirstObservationOutOfBounds(t *testing.T) {
	p := Continuous{Min: 10, Max: 100, Incr: Rate{0, 5}, Decr: Rate{0, 5}}
	m := mustContinuousMonitor(t, p)
	accepted, v := m.Test(0, 200)
	if v == nil || v.Test != TestMax {
		t.Fatalf("violation = %v, want TestMax", v)
	}
	if v.HasPrev {
		t.Error("first observation must report HasPrev=false")
	}
	// Default recovery is PreviousValue, which clamps on an unprimed
	// monitor.
	if accepted != 100 {
		t.Errorf("accepted = %d, want clamp to 100", accepted)
	}
}

func TestMonitorRecoveryWriteback(t *testing.T) {
	p := Continuous{Min: 0, Max: 100, Incr: Rate{0, 10}, Decr: Rate{0, 10}}
	m := mustContinuousMonitor(t, p, WithRecovery(PreviousValue{}))
	m.Test(0, 50)
	accepted, v := m.Test(1, 90)
	if v == nil {
		t.Fatal("jump of 40 with rate 10 not flagged")
	}
	if accepted != 50 {
		t.Fatalf("accepted = %d, want previous value 50", accepted)
	}
	// The recovered value became the new s': a legal step from 50
	// passes.
	if _, v := m.Test(2, 55); v != nil {
		t.Fatalf("step from recovered value flagged: %v", v)
	}
}

func TestMonitorNoRecoveryKeepsValue(t *testing.T) {
	p := Continuous{Min: 0, Max: 100, Incr: Rate{0, 10}, Decr: Rate{0, 10}}
	m := mustContinuousMonitor(t, p, WithRecovery(NoRecovery{}))
	m.Test(0, 50)
	accepted, v := m.Test(1, 90)
	if v == nil || accepted != 90 {
		t.Fatalf("accepted = %d (violation %v), want offending value 90 kept", accepted, v)
	}
	// The offending value is now the baseline: the same value again is
	// a legal zero change.
	if _, v := m.Test(2, 90); v != nil {
		t.Fatalf("repeat of kept value flagged: %v", v)
	}
}

func TestMonitorSink(t *testing.T) {
	p := Continuous{Min: 0, Max: 10, Incr: Rate{0, 1}, Decr: Rate{0, 1}}
	rec := &Recorder{}
	m := mustContinuousMonitor(t, p, WithSink(rec))
	m.Test(5, 3)
	m.Test(6, 99)
	m.Test(7, 3)
	if rec.Count() != 1 {
		t.Fatalf("recorder has %d violations, want 1", rec.Count())
	}
	first, ok := rec.FirstTime()
	if !ok || first != 6 {
		t.Errorf("first detection time = %d (%v), want 6", first, ok)
	}
	got := rec.Violations()[0]
	if got.Signal != "sig" || got.Test != TestMax || got.Value != 99 || got.Prev != 3 || !got.HasPrev {
		t.Errorf("violation = %+v", got)
	}
}

func TestMonitorModes(t *testing.T) {
	modes := map[int]Continuous{
		0: {Min: 0, Max: 10, Incr: Rate{0, 2}, Decr: Rate{0, 2}},
		1: {Min: 0, Max: 100, Incr: Rate{0, 50}, Decr: Rate{0, 50}},
	}
	m, err := NewContinuous("sig", ContinuousRandom, modes)
	if err != nil {
		t.Fatal(err)
	}
	m.Test(0, 5)
	if _, v := m.Test(1, 9); v == nil {
		t.Fatal("mode 0: jump of 4 with rate 2 not flagged")
	}
	if err := m.SetMode(1); err != nil {
		t.Fatal(err)
	}
	if m.Mode() != 1 {
		t.Fatalf("Mode() = %d, want 1", m.Mode())
	}
	if _, v := m.Test(2, 40); v != nil {
		t.Fatalf("mode 1: jump of 35 with rate 50 flagged: %v", v)
	}
	if err := m.SetMode(7); !errors.Is(err, ErrUnknownMode) {
		t.Fatalf("SetMode(7) = %v, want ErrUnknownMode", err)
	}
}

func TestMonitorConstructorErrors(t *testing.T) {
	if _, err := NewContinuous("s", ContinuousRandom, nil); !errors.Is(err, ErrNoModes) {
		t.Errorf("empty modes: %v, want ErrNoModes", err)
	}
	bad := map[int]Continuous{0: {Min: 5, Max: 5}}
	if _, err := NewContinuous("s", ContinuousRandom, bad); !errors.Is(err, ErrBadBounds) {
		t.Errorf("invalid params: %v, want ErrBadBounds", err)
	}
	good := map[int]Continuous{2: {Min: 0, Max: 10, Incr: Rate{0, 1}, Decr: Rate{0, 1}}}
	if _, err := NewContinuous("s", ContinuousRandom, good); !errors.Is(err, ErrUnknownMode) {
		t.Errorf("initial mode 0 missing: %v, want ErrUnknownMode", err)
	}
	if _, err := NewContinuous("s", ContinuousRandom, good, WithInitialMode(2)); err != nil {
		t.Errorf("explicit initial mode: %v", err)
	}
	if _, err := NewDiscrete("s", DiscreteRandom, map[int]Discrete{0: {}}); err == nil {
		t.Error("empty discrete parameter set accepted")
	}
	if _, err := NewDiscrete("s", DiscreteRandom, nil); !errors.Is(err, ErrNoModes) {
		t.Errorf("empty discrete modes: %v, want ErrNoModes", err)
	}
}

func TestMonitorDiscrete(t *testing.T) {
	p := NewLinear([]int64{0, 1, 2}, true, false)
	m, err := NewDiscreteSingle("slot", DiscreteSequentialLinear, p, WithRecovery(PreviousValue{}))
	if err != nil {
		t.Fatal(err)
	}
	// First observation: domain only.
	if _, v := m.Test(0, 2); v != nil {
		t.Fatalf("first in-domain observation flagged: %v", v)
	}
	if _, v := m.Test(1, 0); v != nil {
		t.Fatalf("legal cyclic transition flagged: %v", v)
	}
	if _, v := m.Test(2, 2); v == nil || v.Test != TestTransition {
		t.Fatalf("illegal transition 0->2: %v", v)
	}
	if _, v := m.Test(3, 9); v == nil || v.Test != TestDomain {
		t.Fatalf("out of domain: %v", v)
	}
}

func TestMonitorResetAndPrime(t *testing.T) {
	p := Continuous{Min: 0, Max: 100, Incr: Rate{0, 1}, Decr: Rate{0, 1}}
	m := mustContinuousMonitor(t, p)
	m.Test(0, 10)
	m.Reset()
	// After reset the next observation is a first observation again.
	if _, v := m.Test(1, 90); v != nil {
		t.Fatalf("post-reset first observation flagged: %v", v)
	}
	m.Reset()
	m.Prime(50)
	if _, v := m.Test(2, 52); v == nil {
		t.Fatal("primed monitor must run rate tests (jump of 2, limit 1)")
	}
}

func TestMonitorCounters(t *testing.T) {
	p := Continuous{Min: 0, Max: 10, Incr: Rate{0, 1}, Decr: Rate{0, 1}}
	m := mustContinuousMonitor(t, p)
	m.Test(0, 1)
	m.Test(1, 99)
	m.Test(2, 2)
	if m.Tests() != 3 || m.Violations() != 1 {
		t.Errorf("counters = (%d, %d), want (3, 1)", m.Tests(), m.Violations())
	}
	if m.Name() != "sig" || m.Class() != ContinuousRandom {
		t.Errorf("identity = (%q, %v)", m.Name(), m.Class())
	}
}

// customStore is a PrevStore with externally visible state.
type customStore struct{ v int64 }

func (s *customStore) LoadPrev() int64   { return s.v }
func (s *customStore) StorePrev(x int64) { s.v = x }

func TestMonitorPrevStore(t *testing.T) {
	p := Continuous{Min: 0, Max: 100, Incr: Rate{0, 5}, Decr: Rate{0, 5}}
	store := &customStore{}
	m := mustContinuousMonitor(t, p, WithPrevStore(store))
	m.Test(0, 42)
	if store.v != 42 {
		t.Fatalf("store holds %d, want 42", store.v)
	}
	// Corrupting the external store changes what the monitor compares
	// against — the mechanism the target uses to keep s' in injectable
	// RAM.
	store.v = 90
	if _, v := m.Test(1, 44); v == nil {
		t.Fatal("jump from corrupted s'=90 to 44 not flagged")
	}
}

func TestMultiSink(t *testing.T) {
	var a, b int
	s := MultiSink(
		SinkFunc(func(Violation) { a++ }),
		nil,
		SinkFunc(func(Violation) { b++ }),
	)
	s.Detect(Violation{})
	if a != 1 || b != 1 {
		t.Errorf("fan-out counts = (%d, %d), want (1, 1)", a, b)
	}
	if MultiSink() != nil {
		t.Error("MultiSink() of nothing should be nil")
	}
	if MultiSink(nil, nil) != nil {
		t.Error("MultiSink(nil, nil) should be nil")
	}
	one := SinkFunc(func(Violation) {})
	if got := MultiSink(nil, one); got == nil {
		t.Error("MultiSink with one sink should not be nil")
	}
}

func TestRecorderReset(t *testing.T) {
	r := &Recorder{}
	r.Detect(Violation{Time: 5})
	r.Reset()
	if r.Detected() || r.Count() != 0 {
		t.Error("Reset did not clear the recorder")
	}
	if _, ok := r.FirstTime(); ok {
		t.Error("FirstTime after Reset should report no detection")
	}
}
