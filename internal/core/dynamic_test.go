package core

import (
	"errors"
	"math/rand"
	"testing"
)

func TestUpdateContinuous(t *testing.T) {
	p := Continuous{Min: 0, Max: 100, Incr: Rate{0, 5}, Decr: Rate{0, 5}}
	m, err := NewContinuousSingle("dyn", ContinuousRandom, p)
	if err != nil {
		t.Fatal(err)
	}
	m.Test(0, 50)
	// Narrow the acceptance region at run time.
	narrow := Continuous{Min: 40, Max: 60, Incr: Rate{0, 5}, Decr: Rate{0, 5}}
	if err := m.UpdateContinuous(0, narrow); err != nil {
		t.Fatal(err)
	}
	if _, v := m.Test(1, 52); v != nil {
		t.Fatalf("in-envelope sample flagged: %v", v)
	}
	// 65 was legal under the old set; the dynamic bound rejects it.
	if _, v := m.Test(2, 57); v != nil {
		t.Fatalf("57: %v", v)
	}
	if _, v := m.Test(3, 61); v == nil || v.Test != TestMax {
		t.Fatalf("out-of-envelope sample: %v", v)
	}

	// Validation still applies.
	if err := m.UpdateContinuous(0, Continuous{Min: 5, Max: 5}); err == nil {
		t.Error("invalid parameter set accepted")
	}
	if err := m.UpdateContinuous(7, narrow); !errors.Is(err, ErrUnknownMode) {
		t.Errorf("unknown mode: %v", err)
	}
	d := NewRandom([]int64{1})
	dm, _ := NewDiscreteSingle("d", DiscreteRandom, d)
	if err := dm.UpdateContinuous(0, narrow); err == nil {
		t.Error("continuous update on a discrete monitor accepted")
	}
}

func TestUpdateDiscrete(t *testing.T) {
	p := NewLinear([]int64{0, 1, 2}, true, false)
	m, err := NewDiscreteSingle("seq", DiscreteSequentialLinear, p)
	if err != nil {
		t.Fatal(err)
	}
	m.Test(0, 0)
	wider := NewLinear([]int64{0, 1, 2, 3}, true, false)
	if err := m.UpdateDiscrete(0, wider); err != nil {
		t.Fatal(err)
	}
	m.Test(1, 1)
	m.Test(2, 2)
	if _, v := m.Test(3, 3); v != nil {
		t.Fatalf("value legal under the updated domain flagged: %v", v)
	}
	if err := m.UpdateDiscrete(0, Discrete{}); err == nil {
		t.Error("empty parameter set accepted")
	}
	cm, _ := NewContinuousSingle("c", ContinuousRandom,
		Continuous{Min: 0, Max: 1, Incr: Rate{0, 1}, Decr: Rate{0, 1}})
	if err := cm.UpdateDiscrete(0, wider); err == nil {
		t.Error("discrete update on a continuous monitor accepted")
	}
}

func TestEnvelopeTrackerFollowsReference(t *testing.T) {
	e := EnvelopeTracker{Above: 20, Below: 20, Slack: 5, Floor: 0, Ceil: 1000}
	m, err := NewContinuousSingle("measured", ContinuousRandom, e.Observe(500))
	if err != nil {
		t.Fatal(err)
	}
	// The measured signal follows the reference with a small lag and
	// noise: never flagged.
	rng := rand.New(rand.NewSource(3))
	ref, meas := int64(500), int64(500)
	for i := 0; i < 500; i++ {
		ref += rng.Int63n(7) - 3
		if ref < 0 {
			ref = 0
		}
		if ref > 1000 {
			ref = 1000
		}
		meas += (ref - meas) / 2
		meas += rng.Int63n(3) - 1
		if err := m.UpdateContinuous(0, e.Observe(ref)); err != nil {
			t.Fatal(err)
		}
		if _, v := m.Test(int64(i), meas); v != nil {
			t.Fatalf("tracking signal flagged at %d: %v", i, v)
		}
	}
	// A stuck-at fault: the measurement freezes while the reference
	// walks away. The dynamic envelope detects it as soon as the gap
	// exceeds the tolerance — a fault no static bound could see.
	stuck := meas
	for i := 0; i < 200; i++ {
		ref += 3
		if ref > 1000 {
			ref = 1000
		}
		m.UpdateContinuous(0, e.Observe(ref))
		if _, v := m.Test(int64(500+i), stuck); v != nil {
			return // detected
		}
	}
	t.Fatal("stuck-at measurement never left the dynamic envelope")
}

func TestEnvelopeTrackerClamps(t *testing.T) {
	e := EnvelopeTracker{Above: 50, Below: 50, Slack: 2, Floor: 0, Ceil: 100}
	p := e.Observe(10)
	if p.Min != 0 {
		t.Errorf("Min = %d, want floor clamp", p.Min)
	}
	p = e.Observe(90)
	if p.Max != 100 {
		t.Errorf("Max = %d, want ceil clamp", p.Max)
	}
	// Rate follows the reference change (80) plus slack.
	if p.Incr.Max != 82 {
		t.Errorf("rate = %d, want 82", p.Incr.Max)
	}
	e.Reset()
	p = e.Observe(50)
	if p.Incr.Max != 100+2 {
		t.Errorf("post-reset rate = %d, want full span plus slack", p.Incr.Max)
	}
	// Every derived set is a legal random-continuous instantiation.
	if err := p.Validate(ContinuousRandom); err != nil {
		t.Errorf("derived set invalid: %v", err)
	}
}
