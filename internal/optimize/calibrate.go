package optimize

import (
	"fmt"
	"time"

	"easig/internal/journal"
	"easig/internal/physics"
	"easig/internal/target"
)

// CalibrateOptions configure the cost-model measurement.
type CalibrateOptions struct {
	// TestCase and Seed pick the scenario the builds are timed under
	// (the cost of an assertion does not depend on the scenario, but
	// the builds must run a real one).
	TestCase physics.TestCase
	Seed     int64
	// Ticks is the number of 1 ms control cycles per timed repetition
	// (default 4096). Reps is the number of repetitions; the minimum is
	// kept, which rejects scheduler noise the way testing.B does
	// (default 5).
	Ticks int
	Reps  int
}

const (
	defaultCalTicks = 4096
	defaultCalReps  = 5
	calWarmupTicks  = 256
)

// Calibrate measures the cost model on the running host: it times the
// per-tick cost of the assertion-free build (master None, slave None),
// of each single-assertion build on each node ((EAk, None) and
// (None, EAk)), and of the All/All build, and returns the marginals
// over the baseline. Measurements are min-of-Reps wall-clock over
// Ticks control cycles each, after a warm-up.
//
// Calibration is the one non-deterministic input of the optimizer —
// wall-clock timing differs run to run — which is why the sweep
// journals the resulting model (journal.Cost) and -resume replays the
// journaled record instead of re-measuring: byte-identical resumed
// reports require scoring against the original measurement.
func Calibrate(opt CalibrateOptions) (CostModel, error) {
	if opt.Ticks <= 0 {
		opt.Ticks = defaultCalTicks
	}
	if opt.Reps <= 0 {
		opt.Reps = defaultCalReps
	}

	timeBuild := func(master, slave target.Version) (float64, error) {
		best := time.Duration(0)
		for rep := 0; rep < opt.Reps; rep++ {
			sys, err := target.NewSystem(target.SystemConfig{
				TestCase:     opt.TestCase,
				Seed:         opt.Seed,
				Version:      master,
				SlaveVersion: slave,
			})
			if err != nil {
				return 0, fmt.Errorf("optimize: calibration build %v/%v: %w", master, slave, err)
			}
			sys.RunMs(calWarmupTicks)
			start := time.Now()
			sys.RunMs(opt.Ticks)
			d := time.Since(start)
			if rep == 0 || d < best {
				best = d
			}
		}
		return float64(best.Nanoseconds()) / float64(opt.Ticks), nil
	}

	var m CostModel
	m.Ticks = opt.Ticks
	m.Reps = opt.Reps
	var err error
	if m.BaselineNsPerTick, err = timeBuild(target.VersionNone, target.VersionNone); err != nil {
		return m, err
	}
	for k := 0; k < target.NumEAs; k++ {
		v := target.Version(k + 1)
		ns, err := timeBuild(v, target.VersionNone)
		if err != nil {
			return m, err
		}
		m.MasterNsPerTick[k] = marginal(ns, m.BaselineNsPerTick)
		if ns, err = timeBuild(target.VersionNone, v); err != nil {
			return m, err
		}
		m.SlaveNsPerTick[k] = marginal(ns, m.BaselineNsPerTick)
	}
	if m.AllNsPerTick, err = timeBuild(target.VersionAll, target.VersionAll); err != nil {
		return m, err
	}
	return m, nil
}

// marginal clamps a measured marginal at zero: timing jitter can make
// an instrumented build measure marginally faster than the baseline,
// and a negative assertion cost would corrupt the dominance ordering.
func marginal(ns, baseline float64) float64 {
	if ns <= baseline {
		return 0
	}
	return ns - baseline
}

// costRecord converts the model to its journal form.
func costRecord(experiment string, m CostModel) journal.Cost {
	return journal.Cost{
		Experiment: experiment,
		BaselineNs: m.BaselineNsPerTick,
		MasterNs:   append([]float64(nil), m.MasterNsPerTick[:]...),
		SlaveNs:    append([]float64(nil), m.SlaveNsPerTick[:]...),
		AllNs:      m.AllNsPerTick,
		Ticks:      m.Ticks,
		Reps:       m.Reps,
	}
}

// costFromRecord rebuilds the model from its journal form.
func costFromRecord(c journal.Cost) (CostModel, error) {
	if len(c.MasterNs) != target.NumEAs || len(c.SlaveNs) != target.NumEAs {
		return CostModel{}, fmt.Errorf("optimize: journaled cost record has %d/%d per-EA entries, want %d",
			len(c.MasterNs), len(c.SlaveNs), target.NumEAs)
	}
	m := CostModel{
		BaselineNsPerTick: c.BaselineNs,
		AllNsPerTick:      c.AllNs,
		Ticks:             c.Ticks,
		Reps:              c.Reps,
	}
	copy(m.MasterNsPerTick[:], c.MasterNs)
	copy(m.SlaveNsPerTick[:], c.SlaveNs)
	return m, nil
}
