package optimize

import (
	"math"
	"sort"
	"time"

	"easig/internal/journal"
	"easig/internal/target"
)

// probeOutcome is one probe's first-violation matrix in scoring form:
// Master[k]/Slave[k] are the first violation time of EA k+1 on that
// node in milliseconds, -1 if it never fires inside the observation
// window; Failed/FailTickMs describe the unrecovered system-failure
// outcome (journal.Probe carries the same fields on disk).
type probeOutcome struct {
	master     [target.NumEAs]int64
	slave      [target.NumEAs]int64
	failed     bool
	failTickMs int64
}

func outcomeFromProbe(p journal.Probe) probeOutcome {
	var o probeOutcome
	copy(o.master[:], p.Master)
	copy(o.slave[:], p.Slave)
	o.failed = p.Failed
	o.failTickMs = p.FailTickMs
	return o
}

// firstDetection is the configuration's first detection time for one
// probe: the minimum first-violation time over the enabled (node,
// assertion) slots, or -1 if none fires. This is the subset projection
// OPTIMIZER.md's soundness section argues exact: the all-assertions
// probe run records every assertion's first violation independently,
// so any subset's first detection is the min over its members — the
// same derivation the fast-forward engine applies per version build,
// generalized from the eight named versions to all 128 masks.
func (o *probeOutcome) firstDetection(c Config) int64 {
	first := int64(-1)
	take := func(t int64) {
		if t >= 0 && (first < 0 || t < first) {
			first = t
		}
	}
	for k := 0; k < target.NumEAs; k++ {
		if c.Mask&(1<<k) == 0 {
			continue
		}
		if c.Nodes.Master() {
			take(o.master[k])
		}
		if c.Nodes.Slave() {
			take(o.slave[k])
		}
	}
	return first
}

// Score is one configuration's measured standing on the sweep.
type Score struct {
	Config Config `json:"config"`
	// Name is Config.String(), precomputed for reports.
	Name string `json:"name"`

	// Probes is the number of (error, test case) probes scored;
	// Detected of them had at least one enabled assertion fire.
	Probes   int `json:"probes"`
	Detected int `json:"detected"`
	// DetectionPct is 100·Detected/Probes — the configuration's
	// measured detection probability over the swept error set.
	DetectionPct float64 `json:"detection_pct"`
	// MeanLatencyMs is the mean first-detection latency over the
	// detected probes, in milliseconds; -1 when nothing was detected.
	// (Internally an undetectable configuration scores +Inf latency so
	// that dominance comparisons order it worst; the -1 is the JSON
	// rendering of that sentinel.)
	MeanLatencyMs float64 `json:"mean_latency_ms"`

	// Failing counts probes whose error led to an unrecovered system
	// failure; AvertedFailing counts those the configuration detected
	// strictly before the failure tick — the window in which a failover
	// could act. AvertedFailPct is 100·AvertedFailing/Failing (100 when
	// nothing failed: there was nothing to avert).
	Failing        int     `json:"failing"`
	AvertedFailing int     `json:"averted_failing"`
	AvertedFailPct float64 `json:"averted_fail_pct"`

	// CPUNsPerTick is the cost model's per-tick assertion overhead;
	// RAMBytes/StackBytes the Table 4 memory footprint.
	CPUNsPerTick float64 `json:"cpu_ns_per_tick"`
	RAMBytes     int     `json:"ram_bytes"`
	StackBytes   int     `json:"stack_bytes"`

	// Pareto marks membership of the emitted front (set by markPareto).
	Pareto bool `json:"pareto"`

	latencySum int64
}

// latency is the dominance-ordering view of MeanLatencyMs: +Inf for
// configurations that detected nothing, so "never detects" compares
// worse than any finite latency instead of better.
func (s *Score) latency() float64 {
	if s.Detected == 0 {
		return math.Inf(1)
	}
	return s.MeanLatencyMs
}

// dominates reports strict Pareto dominance: a is no worse than b on
// every objective (detection probability up, mean latency down,
// per-tick CPU down) and strictly better on at least one.
func dominates(a, b *Score) bool {
	if a.DetectionPct < b.DetectionPct || a.latency() > b.latency() || a.CPUNsPerTick > b.CPUNsPerTick {
		return false
	}
	return a.DetectionPct > b.DetectionPct || a.latency() < b.latency() || a.CPUNsPerTick < b.CPUNsPerTick
}

// sameObjectives reports an exact tie on all three objectives.
func sameObjectives(a, b *Score) bool {
	la, lb := a.latency(), b.latency()
	return a.DetectionPct == b.DetectionPct &&
		(la == lb || (math.IsInf(la, 1) && math.IsInf(lb, 1))) &&
		a.CPUNsPerTick == b.CPUNsPerTick
}

// scoreAll scores every lattice configuration against the probe
// outcomes in one pass over the probes. Scores are returned in
// canonical lattice order. The recovery axis is metric-neutral (see
// Config.Recovery), so the 384 distinct (mask, placement) combinations
// are accumulated once each and the recovery twin copies the result.
func scoreAll(lattice []Config, outcomes []probeOutcome, cost CostModel) []Score {
	scores := make([]Score, len(lattice))
	type key struct {
		mask  uint8
		nodes NodePlacement
	}
	done := make(map[key]int, len(lattice)/2)
	for i, c := range lattice {
		s := &scores[i]
		s.Config = c
		s.Name = c.String()
		s.CPUNsPerTick = cost.NsPerTick(c)
		s.RAMBytes = cost.RAMBytes(c)
		s.StackBytes = cost.StackBytes(c)
		if j, ok := done[key{c.Mask, c.Nodes}]; ok {
			t := &scores[j]
			s.Probes, s.Detected, s.DetectionPct = t.Probes, t.Detected, t.DetectionPct
			s.MeanLatencyMs, s.latencySum = t.MeanLatencyMs, t.latencySum
			s.Failing, s.AvertedFailing, s.AvertedFailPct = t.Failing, t.AvertedFailing, t.AvertedFailPct
			continue
		}
		done[key{c.Mask, c.Nodes}] = i
		for pi := range outcomes {
			o := &outcomes[pi]
			s.Probes++
			first := o.firstDetection(c)
			if first >= 0 {
				s.Detected++
				s.latencySum += first
			}
			if o.failed {
				s.Failing++
				if first >= 0 && first < o.failTickMs {
					s.AvertedFailing++
				}
			}
		}
		finalizeScore(s)
	}
	return scores
}

func finalizeScore(s *Score) {
	if s.Probes > 0 {
		s.DetectionPct = 100 * float64(s.Detected) / float64(s.Probes)
	}
	if s.Detected > 0 {
		s.MeanLatencyMs = float64(s.latencySum) / float64(s.Detected)
	} else {
		s.MeanLatencyMs = -1
	}
	if s.Failing > 0 {
		s.AvertedFailPct = 100 * float64(s.AvertedFailing) / float64(s.Failing)
	} else {
		s.AvertedFailPct = 100
	}
}

// markPareto sets Pareto on every score not strictly dominated by any
// other. Exact objective ties are resolved to one canonical member —
// the earliest in lattice order — so the front names each distinct
// operating point once (the recovery twins and any
// detection-equivalent masks collapse; Front lists the equivalents).
func markPareto(scores []Score) {
	for i := range scores {
		s := &scores[i]
		s.Pareto = true
		for j := range scores {
			if i == j {
				continue
			}
			if dominates(&scores[j], s) {
				s.Pareto = false
				break
			}
			// Tie: only the earliest member in lattice order keeps the
			// mark.
			if j < i && sameObjectives(&scores[j], s) {
				s.Pareto = false
				break
			}
		}
	}
}

// FrontMember is one operating point of the Pareto front plus the
// configurations that tie it exactly on all objectives.
type FrontMember struct {
	Score      Score    `json:"score"`
	Equivalent []string `json:"equivalent,omitempty"`
}

// Front extracts the Pareto-marked scores, each with its exact-tie
// equivalents, sorted by per-tick CPU cost ascending (cheapest
// operating point first; ties stay in lattice order via stable sort).
func Front(scores []Score) []FrontMember {
	var front []FrontMember
	for i := range scores {
		if !scores[i].Pareto {
			continue
		}
		m := FrontMember{Score: scores[i]}
		for j := range scores {
			if j != i && sameObjectives(&scores[j], &scores[i]) {
				m.Equivalent = append(m.Equivalent, scores[j].Name)
			}
		}
		front = append(front, m)
	}
	sort.SliceStable(front, func(i, j int) bool {
		return front[i].Score.CPUNsPerTick < front[j].Score.CPUNsPerTick
	})
	return front
}

// Recommendation is the utility-optimal configuration for one failure
// cost.
type Recommendation struct {
	// FailureCost is the budget knob: the cost, in CPU-time terms
	// (nanoseconds), of one unaverted system failure. Zero means
	// failures are free and the recommendation minimizes pure CPU
	// overhead; large values buy coverage.
	FailureCost time.Duration `json:"failure_cost"`
	Config      string        `json:"config"`
	// UtilityNs is the expected total cost over the observation window:
	// CPUNsPerTick × ticks + FailureCost × P(unaverted failure).
	UtilityNs float64 `json:"utility_ns"`
}

// Recommend picks, for each failure-cost budget, the configuration
// minimizing expected total cost over an obsTicks-tick window:
//
//	U(c; C_fail) = CPUNsPerTick(c) × obsTicks
//	             + C_fail × P(probe fails AND c does not avert it)
//
// where P is estimated from the sweep's probe outcomes. Ties resolve
// to the earliest configuration in lattice order. Only Pareto-front
// canonical members need be considered — any dominated or tied
// configuration has utility ≥ some front member's for every C_fail —
// but Recommend scans all scores and relies on lattice order for the
// tie, which yields the same canonical answer.
func Recommend(scores []Score, obsTicks int64, budgets []time.Duration) []Recommendation {
	recs := make([]Recommendation, 0, len(budgets))
	for _, b := range budgets {
		best := -1
		bestU := math.Inf(1)
		for i := range scores {
			s := &scores[i]
			if s.Probes == 0 {
				continue
			}
			pUnaverted := float64(s.Failing-s.AvertedFailing) / float64(s.Probes)
			u := s.CPUNsPerTick*float64(obsTicks) + float64(b.Nanoseconds())*pUnaverted
			if u < bestU {
				bestU = u
				best = i
			}
		}
		if best < 0 {
			continue
		}
		recs = append(recs, Recommendation{FailureCost: b, Config: scores[best].Name, UtilityNs: bestU})
	}
	return recs
}
