package optimize

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"easig/internal/experiment"
)

// The optimizer reuses the campaign reporter split (experiment.Output
// carries the destination; fic and CI share the byte-identical
// rendering) but defines its own Format set: a sweep's deliverable is a
// Pareto front and a recommendation table, not the paper's Tables 7-9.
// Every format renders only deterministic fields — Report.Metrics
// (wall-clock telemetry) is excluded — so a resumed sweep's report
// diffs clean against the uninterrupted run's.

// Format renders a sweep Report in one concrete representation.
type Format interface {
	// Name identifies the format ("text", "json", "csv") — the value of
	// `fic optimize -format`.
	Name() string
	// Render writes the formatted report to w.
	Render(w io.Writer, r *Report) error
}

// Reporter pairs a Format with an experiment.Output destination.
type Reporter struct {
	Format Format
	Output experiment.Output
}

// Report renders the sweep report through the reporter's format into
// its output.
func (rep Reporter) Report(r *Report) error {
	if rep.Format == nil || rep.Output == nil {
		return fmt.Errorf("optimize: reporter needs both a format and an output")
	}
	return rep.Output.Emit(func(w io.Writer) error {
		return rep.Format.Render(w, r)
	})
}

// ParseFormat resolves a format name to its Format.
func ParseFormat(name string) (Format, error) {
	switch name {
	case "", "text":
		return TextFormat{}, nil
	case "json":
		return JSONFormat{}, nil
	case "csv":
		return CSVFormat{}, nil
	default:
		return nil, fmt.Errorf("optimize: unknown report format %q (want text, json or csv)", name)
	}
}

// TextFormat renders the human-readable sweep summary: the sweep
// parameters, the cost model, the Pareto front (cheapest operating
// point first) and the per-budget recommendations.
type TextFormat struct{}

// Name returns "text".
func (TextFormat) Name() string { return "text" }

// Render writes the text report.
func (TextFormat) Render(w io.Writer, r *Report) error {
	if _, err := fmt.Fprintf(w, "Configuration lattice sweep %s: %d configurations scored over %d probes (%d errors x %d cases, %d ms window, seed %d)\n",
		r.Experiment, r.LatticeSize, r.Probes, r.Errors, r.Grid*r.Grid, r.ObservationMs, r.Seed); err != nil {
		return err
	}
	fmt.Fprintf(w, "Cost model: baseline %.0f ns/tick, All/All %.0f ns/tick, additivity error %.1f%% (%d ticks x %d reps)\n",
		r.Cost.BaselineNsPerTick, r.Cost.AllNsPerTick, r.Cost.AdditivityErrPct(), r.Cost.Ticks, r.Cost.Reps)
	fmt.Fprintf(w, "\nPareto front (%d of %d configurations):\n", len(r.Front), r.LatticeSize)
	fmt.Fprintf(w, "%-24s %10s %12s %12s %9s %11s %12s\n",
		"config", "detect%", "latency ms", "cpu ns/tick", "ram B", "averted%", "equivalents")
	for _, m := range r.Front {
		s := m.Score
		lat := "-"
		if s.Detected > 0 {
			lat = fmt.Sprintf("%.1f", s.MeanLatencyMs)
		}
		fmt.Fprintf(w, "%-24s %10.2f %12s %12.1f %9d %11.2f %12d\n",
			s.Name, s.DetectionPct, lat, s.CPUNsPerTick, s.RAMBytes, s.AvertedFailPct, len(m.Equivalent))
	}
	fmt.Fprintf(w, "\nRecommended configuration per failure-cost budget:\n")
	for _, rec := range r.Recommendations {
		fmt.Fprintf(w, "  failure cost %-12v -> %-24s (expected cost %.0f ns over the window)\n",
			rec.FailureCost, rec.Config, rec.UtilityNs)
	}
	return nil
}

// JSONFormat renders the full Report — every scored configuration, the
// front and the recommendations — as one indented JSON document.
type JSONFormat struct{}

// Name returns "json".
func (JSONFormat) Name() string { return "json" }

// Render writes the JSON report.
func (JSONFormat) Render(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CSVFormat renders one row per scored configuration — the full
// lattice, Pareto membership included — for spreadsheet analysis.
type CSVFormat struct{}

// Name returns "csv".
func (CSVFormat) Name() string { return "csv" }

// Render writes the CSV report.
func (CSVFormat) Render(w io.Writer, r *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"config", "mask", "nodes", "recovery",
		"probes", "detected", "detection_pct", "mean_latency_ms",
		"failing", "averted_failing", "averted_fail_pct",
		"cpu_ns_per_tick", "ram_bytes", "stack_bytes", "pareto",
	}); err != nil {
		return err
	}
	for i := range r.Scores {
		s := &r.Scores[i]
		if err := cw.Write([]string{
			s.Name,
			strconv.Itoa(int(s.Config.Mask)),
			s.Config.Nodes.String(),
			strconv.FormatBool(s.Config.Recovery),
			strconv.Itoa(s.Probes),
			strconv.Itoa(s.Detected),
			strconv.FormatFloat(s.DetectionPct, 'f', 4, 64),
			strconv.FormatFloat(s.MeanLatencyMs, 'f', 4, 64),
			strconv.Itoa(s.Failing),
			strconv.Itoa(s.AvertedFailing),
			strconv.FormatFloat(s.AvertedFailPct, 'f', 4, 64),
			strconv.FormatFloat(s.CPUNsPerTick, 'f', 4, 64),
			strconv.Itoa(s.RAMBytes),
			strconv.Itoa(s.StackBytes),
			strconv.FormatBool(s.Pareto),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
