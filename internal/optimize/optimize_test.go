package optimize

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"easig/internal/target"
)

// -update regenerates the golden files from the current implementation.
var update = flag.Bool("update", false, "rewrite golden files")

func TestLatticeEnumeration(t *testing.T) {
	l := Lattice()
	want := (1 << target.NumEAs) * 3 * 2
	if len(l) != want {
		t.Fatalf("lattice has %d configurations, want %d", len(l), want)
	}
	if l[0] != (Config{Mask: 0, Nodes: NodesMaster, Recovery: false}) {
		t.Errorf("first lattice point = %+v, want empty mask on master without recovery", l[0])
	}
	last := l[len(l)-1]
	if last.Mask != 127 || last.Nodes != NodesBoth || !last.Recovery {
		t.Errorf("last lattice point = %+v, want All@both+rec", last)
	}
	seen := make(map[Config]bool, len(l))
	for _, c := range l {
		if seen[c] {
			t.Fatalf("duplicate lattice point %v", c)
		}
		seen[c] = true
	}
}

func TestConfigString(t *testing.T) {
	cases := []struct {
		c    Config
		want string
	}{
		{Config{Mask: 0, Nodes: NodesMaster}, "none@master"},
		{Config{Mask: 1<<target.NumEAs - 1, Nodes: NodesBoth}, "All@both"},
		{Config{Mask: 0b0100010, Nodes: NodesSlave, Recovery: true}, "EA2+EA6@slave+rec"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("%+v renders %q, want %q", tc.c, got, tc.want)
		}
	}
}

func TestNodePlacementJSONRoundTrip(t *testing.T) {
	for _, n := range nodePlacements() {
		b, err := json.Marshal(n)
		if err != nil {
			t.Fatal(err)
		}
		var back NodePlacement
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != n {
			t.Errorf("%v round-trips to %v", n, back)
		}
	}
	var bad NodePlacement
	if err := json.Unmarshal([]byte(`"mainframe"`), &bad); err == nil {
		t.Error("unknown placement name unmarshalled without error")
	}
}

// tinyOutcome builds a probeOutcome over the first two assertion slots
// (all other slots never fire).
func tinyOutcome(m1, m2, s1, s2 int64, failed bool, failTick int64) probeOutcome {
	o := probeOutcome{failed: failed, failTickMs: failTick}
	for k := range o.master {
		o.master[k], o.slave[k] = -1, -1
	}
	o.master[0], o.master[1] = m1, m2
	o.slave[0], o.slave[1] = s1, s2
	return o
}

// tinyLattice is the 2-assertion sub-lattice: masks over {EA1, EA2} ×
// 3 placements × 2 recovery = 24 configurations, in canonical order.
func tinyLattice() []Config {
	var out []Config
	for mask := 0; mask < 4; mask++ {
		for _, nodes := range nodePlacements() {
			for _, rec := range []bool{false, true} {
				out = append(out, Config{Mask: uint8(mask), Nodes: nodes, Recovery: rec})
			}
		}
	}
	return out
}

func tinyCost() CostModel {
	m := CostModel{BaselineNsPerTick: 100, AllNsPerTick: 180}
	m.MasterNsPerTick[0], m.MasterNsPerTick[1] = 10, 20
	m.SlaveNsPerTick[0], m.SlaveNsPerTick[1] = 15, 5
	return m
}

// The golden-front test: a hand-checkable 2-assertion lattice over
// three probes must produce exactly the expected Pareto front
// (testdata/tiny_front.golden.json; regenerate with -update). The
// expected members, by hand:
//
//	none@master       0%  detected,         0 ns/tick (cheapest point)
//	EA2@slave       33.3%, 60 ms latency,   5 ns/tick
//	EA1@master      33.3%, 10 ms latency,  10 ns/tick
//	EA2@master      66.7%, 35 ms latency,  20 ns/tick
//	EA1+EA2@master  66.7%, 15 ms latency,  30 ns/tick
//
// with every member carrying its +rec twin as an exact-tie equivalent
// (none@master additionally ties the other placements of the empty
// mask).
func TestGoldenTinyFront(t *testing.T) {
	outcomes := []probeOutcome{
		tinyOutcome(10, 50, 30, -1, true, 40),
		tinyOutcome(-1, 20, -1, 60, false, 0),
		tinyOutcome(-1, -1, -1, -1, true, 100),
	}
	scores := scoreAll(tinyLattice(), outcomes, tinyCost())
	markPareto(scores)
	front := Front(scores)

	names := make([]string, len(front))
	for i, m := range front {
		names[i] = m.Score.Name
	}
	wantNames := []string{"none@master", "EA2@slave", "EA1@master", "EA2@master", "EA1+EA2@master"}
	if len(names) != len(wantNames) {
		t.Fatalf("front = %v, want %v", names, wantNames)
	}
	for i := range wantNames {
		if names[i] != wantNames[i] {
			t.Fatalf("front = %v, want %v", names, wantNames)
		}
	}

	got, err := json.MarshalIndent(front, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "tiny_front.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with go test -run GoldenTinyFront -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("front deviates from golden file %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// randomOutcomes draws deterministic pseudo-random probe outcomes: each
// (node, EA) slot fires with probability p at a random time, and a
// third of the probes fail.
func randomOutcomes(rng *rand.Rand, n int, p float64) []probeOutcome {
	out := make([]probeOutcome, n)
	for i := range out {
		o := &out[i]
		for k := 0; k < target.NumEAs; k++ {
			o.master[k], o.slave[k] = -1, -1
			if rng.Float64() < p {
				o.master[k] = int64(rng.Intn(4000))
			}
			if rng.Float64() < p {
				o.slave[k] = int64(rng.Intn(4000))
			}
		}
		if rng.Intn(3) == 0 {
			o.failed = true
			o.failTickMs = int64(1000 + rng.Intn(3000))
		}
	}
	return out
}

// The Pareto property, over the full 768-point lattice with randomized
// outcomes and costs: no emitted front member is dominated by ANY
// score, and every configuration left off the front is either strictly
// dominated or an exact objective tie of an earlier (canonical) one.
func TestFrontParetoProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		outcomes := randomOutcomes(rng, 40, 0.15+0.1*float64(trial))
		var cost CostModel
		cost.BaselineNsPerTick = 100
		for k := 0; k < target.NumEAs; k++ {
			cost.MasterNsPerTick[k] = float64(rng.Intn(50))
			cost.SlaveNsPerTick[k] = float64(rng.Intn(50))
		}
		scores := scoreAll(Lattice(), outcomes, cost)
		markPareto(scores)
		front := Front(scores)
		if len(front) == 0 {
			t.Fatalf("trial %d: empty front", trial)
		}
		inFront := make(map[string]bool)
		for _, m := range front {
			inFront[m.Score.Name] = true
		}
		for i := range scores {
			s := &scores[i]
			if s.Pareto != inFront[s.Name] {
				t.Fatalf("trial %d: %s Pareto flag %v but front membership %v", trial, s.Name, s.Pareto, inFront[s.Name])
			}
			dominated := false
			tiedEarlier := false
			for j := range scores {
				if j == i {
					continue
				}
				if dominates(&scores[j], s) {
					dominated = true
				}
				if j < i && sameObjectives(&scores[j], s) {
					tiedEarlier = true
				}
			}
			if s.Pareto && dominated {
				t.Errorf("trial %d: front member %s is dominated", trial, s.Name)
			}
			if !s.Pareto && !dominated && !tiedEarlier {
				t.Errorf("trial %d: %s is neither on the front, nor dominated, nor a tie of an earlier member", trial, s.Name)
			}
		}
	}
}

// Recovery is metric-neutral by construction: each configuration's
// recovery twin must score identically on every objective and tie it
// off the front.
func TestRecoveryAxisIsTied(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	outcomes := randomOutcomes(rng, 30, 0.3)
	scores := scoreAll(Lattice(), outcomes, tinyCost())
	markPareto(scores)
	byConfig := make(map[Config]*Score, len(scores))
	for i := range scores {
		byConfig[scores[i].Config] = &scores[i]
	}
	for i := range scores {
		s := &scores[i]
		if s.Config.Recovery {
			continue
		}
		twinCfg := s.Config
		twinCfg.Recovery = true
		twin := byConfig[twinCfg]
		if twin == nil {
			t.Fatalf("no recovery twin for %s", s.Name)
		}
		if !sameObjectives(s, twin) {
			t.Errorf("%s and %s disagree on objectives", s.Name, twin.Name)
		}
		if twin.Pareto {
			t.Errorf("recovery twin %s on the front; the canonical (non-recovery) member should hold the mark", twin.Name)
		}
	}
}

func TestLatencySentinel(t *testing.T) {
	s := &Score{Detected: 0, MeanLatencyMs: -1}
	if !math.IsInf(s.latency(), 1) {
		t.Error("undetected configuration should order with +Inf latency")
	}
	s2 := &Score{Detected: 1, MeanLatencyMs: 25}
	if !dominates(&Score{Detected: 1, MeanLatencyMs: 20, DetectionPct: s2.DetectionPct}, s2) {
		t.Error("lower finite latency should dominate at equal detection and cost")
	}
}

func TestRecommendBudgetMonotone(t *testing.T) {
	outcomes := []probeOutcome{
		tinyOutcome(10, -1, -1, -1, true, 40), // EA1@master averts this failure
		tinyOutcome(-1, -1, -1, -1, true, 100),
	}
	scores := scoreAll(tinyLattice(), outcomes, tinyCost())
	markPareto(scores)
	recs := Recommend(scores, 4000, []time.Duration{0, time.Second})
	if len(recs) != 2 {
		t.Fatalf("got %d recommendations, want 2", len(recs))
	}
	if recs[0].Config != "none@master" {
		t.Errorf("free failures should recommend the zero-cost configuration, got %s", recs[0].Config)
	}
	if recs[1].Config != "EA1@master" {
		t.Errorf("1 s failure cost should buy EA1@master (the only averting detector), got %s", recs[1].Config)
	}
	if recs[1].UtilityNs <= recs[0].UtilityNs {
		t.Errorf("utility at a higher failure cost should exceed the free-failure utility (%f vs %f)",
			recs[1].UtilityNs, recs[0].UtilityNs)
	}
}

func TestCostModelAdditivityErr(t *testing.T) {
	m := tinyCost()
	// Marginals sum to 50; measured All - baseline = 80 → 37.5% error.
	if got := m.AdditivityErrPct(); math.Abs(got-37.5) > 1e-9 {
		t.Errorf("additivity error = %v%%, want 37.5%%", got)
	}
	m.AllNsPerTick = 150 // marginals sum exactly
	if got := m.AdditivityErrPct(); got != 0 {
		t.Errorf("exactly additive model reports %v%% error", got)
	}
}

func TestCostRecordRoundTrip(t *testing.T) {
	m := tinyCost()
	m.Ticks, m.Reps = 1024, 3
	back, err := costFromRecord(costRecord("OPT-e1", m))
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Errorf("cost model round-trips to %+v, want %+v", back, m)
	}
	bad := costRecord("OPT-e1", m)
	bad.MasterNs = bad.MasterNs[:3]
	if _, err := costFromRecord(bad); err == nil {
		t.Error("truncated cost record accepted")
	}
}
