// Package optimize searches the full detector-configuration lattice of
// the paper's target: every subset of the seven executable assertions
// (2^7 masks, including the empty one) × assertion placement on the
// master node, the slave node or both × recovery off/on — 768
// configurations, where the paper hand-picked eight. Each configuration
// is scored on measured detection probability, mean first-detection
// latency and per-tick CPU overhead, and the non-dominated
// configurations are emitted as a Pareto front with a recommended
// configuration per failure-cost budget. The approach follows DETOx
// (Pareto-optimal software error-detector selection under a cost
// model); OPTIMIZER.md documents the cost model, the dominance rules
// and the soundness arguments, and EXPERIMENTS.md reports what the
// sweep finds.
//
// The sweep never builds 768 systems: one dual-node all-assertions
// probe run per (error, test case) records each assertion's first
// violation per node (inject.Probe), and every configuration's outcome
// is derived from that matrix exactly — the same projection the
// fast-forward engine applies per version, generalized to arbitrary
// subsets. Scoring is therefore O(probes) simulation plus O(lattice ×
// probes) arithmetic.
package optimize

import (
	"fmt"
	"math"

	"easig/internal/target"
)

// NodePlacement selects which node(s) run the enabled assertions.
type NodePlacement int

const (
	// NodesMaster places the assertions on the master node only — the
	// paper's configuration: faults are injected into master memory.
	NodesMaster NodePlacement = iota
	// NodesSlave places the assertions on the slave node only: it sees
	// only corruption that propagates over the set-point link.
	NodesSlave
	// NodesBoth places the assertions on both nodes.
	NodesBoth
)

// String names the placement as reports render it.
func (n NodePlacement) String() string {
	switch n {
	case NodesMaster:
		return "master"
	case NodesSlave:
		return "slave"
	case NodesBoth:
		return "both"
	default:
		return fmt.Sprintf("NodePlacement(%d)", int(n))
	}
}

// MarshalJSON renders the placement name.
func (n NodePlacement) MarshalJSON() ([]byte, error) {
	return []byte(`"` + n.String() + `"`), nil
}

// UnmarshalJSON parses a placement name.
func (n *NodePlacement) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"master"`:
		*n = NodesMaster
	case `"slave"`:
		*n = NodesSlave
	case `"both"`:
		*n = NodesBoth
	default:
		return fmt.Errorf("optimize: unknown node placement %s", b)
	}
	return nil
}

// Master reports whether the placement includes the master node.
func (n NodePlacement) Master() bool { return n != NodesSlave }

// Slave reports whether the placement includes the slave node.
func (n NodePlacement) Slave() bool { return n != NodesMaster }

// Count is the number of instrumented nodes.
func (n NodePlacement) Count() int {
	if n == NodesBoth {
		return 2
	}
	return 1
}

// nodePlacements lists the lattice's placement axis in canonical order.
func nodePlacements() []NodePlacement {
	return []NodePlacement{NodesMaster, NodesSlave, NodesBoth}
}

// Config is one point of the configuration lattice.
type Config struct {
	// Mask enables executable assertions: bit k set enables EA k+1.
	Mask uint8 `json:"mask"`
	// Nodes places the enabled assertions.
	Nodes NodePlacement `json:"nodes"`
	// Recovery enables the PreviousValue recovery action on violation.
	// Recovery is exactly neutral on the three Pareto objectives — it
	// acts only after a first detection and costs nothing per tick (see
	// OPTIMIZER.md "Recovery invariance") — so it rides the lattice as a
	// documented tie, deduplicated out of the front.
	Recovery bool `json:"recovery"`
}

// Enables reports whether assertion ea (1-based, EA1..EA7) is enabled.
func (c Config) Enables(ea int) bool { return c.Mask&(1<<(ea-1)) != 0 }

// EAs lists the enabled assertion numbers in ascending order.
func (c Config) EAs() []int {
	var out []int
	for ea := 1; ea <= target.NumEAs; ea++ {
		if c.Enables(ea) {
			out = append(out, ea)
		}
	}
	return out
}

// Size is the number of enabled assertions.
func (c Config) Size() int {
	n := 0
	for ea := 1; ea <= target.NumEAs; ea++ {
		if c.Enables(ea) {
			n++
		}
	}
	return n
}

// String renders the configuration, e.g. "EA2+EA6@both", "All@master",
// "none@master+rec".
func (c Config) String() string {
	s := ""
	switch {
	case c.Mask == 0:
		s = "none"
	case c.Size() == target.NumEAs:
		s = "All"
	default:
		for _, ea := range c.EAs() {
			if s != "" {
				s += "+"
			}
			s += fmt.Sprintf("EA%d", ea)
		}
	}
	s += "@" + c.Nodes.String()
	if c.Recovery {
		s += "+rec"
	}
	return s
}

// Lattice enumerates all 2^NumEAs × 3 × 2 configurations in canonical
// order: mask ascending, then placement, then recovery. The canonical
// order is the deterministic tie-breaker everywhere — front
// deduplication and budget recommendations resolve exact ties to the
// earliest configuration in this order.
func Lattice() []Config {
	out := make([]Config, 0, (1<<target.NumEAs)*3*2)
	for mask := 0; mask < 1<<target.NumEAs; mask++ {
		for _, nodes := range nodePlacements() {
			for _, rec := range []bool{false, true} {
				out = append(out, Config{Mask: uint8(mask), Nodes: nodes, Recovery: rec})
			}
		}
	}
	return out
}

// CostModel is the runtime-cost side of the optimizer: the measured
// per-tick CPU marginals of each assertion on each node, plus the
// static Table 4 memory metadata. See OPTIMIZER.md "The cost model"
// for definitions, units and the additivity argument.
type CostModel struct {
	// BaselineNsPerTick is the per-tick cost of the assertion-free
	// build (master None, slave None), in nanoseconds. It is reported
	// for context; configuration costs are marginals over it.
	BaselineNsPerTick float64 `json:"baseline_ns_per_tick"`
	// MasterNsPerTick[k] / SlaveNsPerTick[k] are the marginal per-tick
	// costs of enabling EA k+1 alone on that node.
	MasterNsPerTick [target.NumEAs]float64 `json:"master_ea_ns_per_tick"`
	SlaveNsPerTick  [target.NumEAs]float64 `json:"slave_ea_ns_per_tick"`
	// AllNsPerTick is the measured cost of the All/All build; comparing
	// it against the sum of all marginals validates additivity.
	AllNsPerTick float64 `json:"all_ns_per_tick"`
	// Ticks and Reps record the calibration measurement parameters.
	Ticks int `json:"ticks,omitempty"`
	Reps  int `json:"reps,omitempty"`
}

// NsPerTick is a configuration's modelled per-tick CPU overhead: the
// sum of the enabled (node, assertion) marginals. The baseline is NOT
// included — every configuration runs the control software, so only
// the assertion overhead differentiates them.
func (m CostModel) NsPerTick(c Config) float64 {
	var ns float64
	for ea := 1; ea <= target.NumEAs; ea++ {
		if !c.Enables(ea) {
			continue
		}
		if c.Nodes.Master() {
			ns += m.MasterNsPerTick[ea-1]
		}
		if c.Nodes.Slave() {
			ns += m.SlaveNsPerTick[ea-1]
		}
	}
	return ns
}

// RAMBytes is a configuration's assertion-state RAM footprint: the s'
// previous-value word of each enabled assertion on each instrumented
// node (target.AssertionRAMBytes per assertion per node).
func (m CostModel) RAMBytes(c Config) int {
	return target.AssertionRAMBytes * c.Size() * c.Nodes.Count()
}

// StackBytes is a configuration's assertion stack footprint (zero in
// this reproduction; see target.AssertionStackBytes).
func (m CostModel) StackBytes(c Config) int {
	return target.AssertionStackBytes * c.Size() * c.Nodes.Count()
}

// AdditivityErrPct quantifies how far the modelled All/All cost
// (sum of every marginal) sits from the measured All/All build, as a
// percentage of the measured value. Large values mean the per-EA
// marginals do not compose and the cost axis should be distrusted.
func (m CostModel) AdditivityErrPct() float64 {
	if m.AllNsPerTick <= m.BaselineNsPerTick {
		return 0
	}
	modelled := 0.0
	for k := 0; k < target.NumEAs; k++ {
		modelled += m.MasterNsPerTick[k] + m.SlaveNsPerTick[k]
	}
	measured := m.AllNsPerTick - m.BaselineNsPerTick
	return 100 * math.Abs(modelled-measured) / measured
}
