package optimize

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"easig/internal/experiment"
	"easig/internal/inject"
	"easig/internal/journal"
	"easig/internal/physics"
	"easig/internal/target"
)

// Error-set names accepted by Spec.Errors.
const (
	// ErrorsE1 sweeps the paper's Table 6 single-bit signal errors
	// (112 errors).
	ErrorsE1 = "e1"
	// ErrorsE2 sweeps the sampled random RAM/stack error set.
	ErrorsE2 = "e2"
	// ErrorsExhaustive sweeps the full 11 400-position fault space.
	ErrorsExhaustive = "exhaustive"
)

// Spec is the serializable protocol of a lattice sweep: everything that
// determines which probes exist and what their outcomes are, mirroring
// experiment.Spec's role for campaigns. Two sweeps with equal Specs
// score identical probe matrices regardless of Options.
type Spec struct {
	// Errors names the swept error set: ErrorsE1, ErrorsE2 or
	// ErrorsExhaustive (default ErrorsE1).
	Errors string `json:"errors,omitempty"`
	// Grid is the test-case grid edge (default 5, the paper's 25 cases).
	Grid int `json:"grid,omitempty"`
	// ObservationMs is the per-probe observation window (default the
	// paper's 40 s). It must exceed Policy.StartMs.
	ObservationMs int64 `json:"observation_ms,omitempty"`
	// Policy is the injection schedule (default 20 ms period).
	Policy inject.Policy `json:"policy,omitempty"`
	// Seed derives all per-probe seeds (via experiment.RunSeed, the same
	// case-only derivation as a campaign's) and the E2 error sample.
	Seed int64 `json:"seed,omitempty"`
	// E2 sizes the random error set when Errors is ErrorsE2.
	E2 inject.E2Spec `json:"e2,omitempty"`
}

// Experiment is the sweep's journal experiment name: "OPT-" plus the
// error-set name, so an optimizer journal can never be replayed into a
// campaign (and vice versa).
func (s Spec) Experiment() string { return "OPT-" + s.Errors }

func (s Spec) withDefaults() Spec {
	if s.Errors == "" {
		s.Errors = ErrorsE1
	}
	if s.Grid <= 0 {
		s.Grid = 5
	}
	if s.ObservationMs <= 0 {
		s.ObservationMs = inject.DefaultObservationMs
	}
	if s.Policy.PeriodMs <= 0 {
		s.Policy = inject.DefaultPolicy()
	}
	if s.E2.RAM == 0 && s.E2.Stack == 0 {
		s.E2 = inject.DefaultE2Spec()
	}
	return s
}

// errorSet resolves the named error set.
func (s Spec) errorSet() ([]inject.Error, error) {
	switch s.Errors {
	case ErrorsE1:
		return inject.BuildE1(), nil
	case ErrorsE2:
		return inject.BuildE2(s.E2, s.Seed), nil
	case ErrorsExhaustive:
		return inject.BuildExhaustive(), nil
	default:
		return nil, fmt.Errorf("optimize: unknown error set %q (want %s, %s or %s)",
			s.Errors, ErrorsE1, ErrorsE2, ErrorsExhaustive)
	}
}

// DefaultBudgets are the failure-cost budgets Recommend is evaluated at
// when Options.Budgets is empty: failures free, and one unaverted
// failure costing 1 ms, 1 s and 1000 s of CPU time.
func DefaultBudgets() []time.Duration {
	return []time.Duration{0, time.Millisecond, time.Second, 1000 * time.Second}
}

// Options is the execution side of a sweep; none of it may change the
// scored probe matrix (the calibration changes the cost axis, which is
// why it is journaled and replayed on resume).
type Options struct {
	// Mode selects the probe engine: auto resolves to memo; literal is
	// the full-window reference.
	Mode inject.Mode
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// Context, when non-nil, cancels an in-flight sweep.
	Context context.Context
	// Journal, when non-nil, receives the sweep header, the cost
	// calibration and one probe record per profiled (error, case).
	Journal *journal.Writer
	// Resume, when non-nil, replays journaled probes and the journaled
	// cost calibration, and dispatches only the missing probes. A
	// journal recorded under a different seed, grid or probe mode is
	// rejected.
	Resume *journal.Log
	// Progress, when non-nil, is called after every profiled or
	// replayed probe.
	Progress func(journal.ProgressEvent)
	// Budgets are the failure-cost budgets to recommend under
	// (DefaultBudgets when empty).
	Budgets []time.Duration
	// Calibration tunes the cost measurement (Ticks/Reps; TestCase and
	// Seed are taken from the Spec's grid center).
	Calibration CalibrateOptions
	// Cost, when non-nil, replaces the wall-clock calibration with an
	// injected model — the hook deterministic tests use. It is
	// journaled like a measured model, so resume replays it.
	Cost *CostModel
}

// probeResult pairs a probe's coordinates with its profile.
type probeResult struct {
	errIdx  int
	errID   string
	caseIdx int
	prof    inject.EAProfile
}

// chunk is the sweep's work unit: up to probeChunkErrors errors of one
// test case, served by one worker from one dual-sink probe.
type chunk struct {
	caseIdx int
	tc      physics.TestCase
	from    int // first error index (errors [from, to))
	to      int
}

// probeChunkErrors matches the campaign's memo-mode batch size: most
// memo-mode probes are served by the liveness pruner in microseconds,
// so chunks must be large enough to amortize queue claims, and small
// enough that the exhaustive sweep load-balances within a case.
const probeChunkErrors = 64

// Report is a finished sweep: the full scored lattice, the Pareto
// front, and the per-budget recommendations. Reporter renders it;
// Metrics is execution telemetry (wall-clock) and is excluded from
// every rendered format so that a resumed sweep's report is
// byte-identical to the uninterrupted one.
type Report struct {
	Experiment    string `json:"experiment"`
	Grid          int    `json:"grid"`
	Seed          int64  `json:"seed"`
	ObservationMs int64  `json:"observation_ms"`
	Errors        int    `json:"errors"`
	Probes        int    `json:"probes"`
	// Resumed counts journal-replayed probes. Like Metrics it is
	// excluded from rendered formats: how many probes were replayed is
	// execution history, and a resumed report must be byte-identical to
	// the uninterrupted one.
	Resumed     int       `json:"-"`
	LatticeSize int       `json:"lattice_size"`
	Cost        CostModel `json:"cost"`

	Scores          []Score          `json:"scores"`
	Front           []FrontMember    `json:"front"`
	Recommendations []Recommendation `json:"recommendations"`

	Metrics journal.Metrics `json:"-"`
}

// Run executes the lattice sweep: one dual-node probe per (error, test
// case), scored into all 2^7 × 3 × 2 configurations of Lattice().
func Run(spec Spec, opt Options) (*Report, error) {
	spec = spec.withDefaults()
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if len(opt.Budgets) == 0 {
		opt.Budgets = DefaultBudgets()
	}
	if spec.ObservationMs <= spec.Policy.StartMs {
		return nil, fmt.Errorf("optimize: observation window (%d ms) must exceed the injection start (%d ms)",
			spec.ObservationMs, spec.Policy.StartMs)
	}
	errs, err := spec.errorSet()
	if err != nil {
		return nil, err
	}
	mode := inject.ProbeMode(opt.Mode)
	exp := spec.Experiment()
	cases := physics.Grid(spec.Grid)
	total := len(errs) * len(cases)

	// Partition against the journal: replayed probe outcomes come
	// straight from the log, live chunks are dispatched. The resume
	// soundness checks mirror the campaign's — header seed/grid/mode,
	// then every replayed record's seed against the re-derived one.
	outcomes := make([]probeOutcome, 0, total)
	var replayed map[journal.ProbeKey]journal.Probe
	cost, haveCost := CostModel{}, false
	if opt.Resume != nil {
		if h, ok := opt.Resume.Header(exp); ok {
			if h.Seed != spec.Seed || h.Grid != spec.Grid {
				return nil, fmt.Errorf("optimize: journal was recorded for %s seed %d grid %d, not seed %d grid %d",
					exp, h.Seed, h.Grid, spec.Seed, spec.Grid)
			}
			if h.Runner != "" && h.Runner != mode.String() {
				return nil, fmt.Errorf("optimize: journal was recorded by the %s probe engine, sweep resolves to %s — rerun with -engine=%s or a fresh journal",
					h.Runner, mode, h.Runner)
			}
		}
		replayed = opt.Resume.LookupProbes(exp)
		if rec, ok := opt.Resume.Cost(exp); ok {
			if cost, err = costFromRecord(rec); err != nil {
				return nil, err
			}
			haveCost = true
		}
	}
	var chunks []chunk
	resumed := 0
	for ci := range cases {
		pending := -1
		flush := func(upTo int) {
			if pending >= 0 {
				chunks = append(chunks, chunk{caseIdx: ci, tc: cases[ci], from: pending, to: upTo})
				pending = -1
			}
		}
		for ei := range errs {
			if rec, ok := replayed[journal.ProbeKey{ErrIdx: ei, CaseIdx: ci}]; ok {
				if want := experiment.RunSeed(spec.Seed, ci); rec.Seed != want {
					return nil, fmt.Errorf("optimize: journaled %s probe %s case %d has seed %d, want %d — journal is from a different sweep",
						exp, rec.ErrID, ci, rec.Seed, want)
				}
				if len(rec.Master) != target.NumEAs || len(rec.Slave) != target.NumEAs {
					return nil, fmt.Errorf("optimize: journaled %s probe %s case %d has %d/%d first-violation slots, want %d",
						exp, rec.ErrID, ci, len(rec.Master), len(rec.Slave), target.NumEAs)
				}
				outcomes = append(outcomes, outcomeFromProbe(rec))
				resumed++
				continue
			}
			if pending < 0 {
				pending = ei
			}
			if ei-pending+1 >= probeChunkErrors {
				flush(ei + 1)
			}
		}
		flush(len(errs))
	}

	// Cost model: replayed from the journal when resuming (byte-identity
	// requires scoring against the ORIGINAL measurement — calibration is
	// wall-clock, the sweep's one non-deterministic input), injected for
	// tests, measured otherwise. Whatever model is used is journaled.
	if !haveCost {
		if opt.Cost != nil {
			cost = *opt.Cost
		} else {
			cal := opt.Calibration
			cal.TestCase = cases[len(cases)/2]
			cal.Seed = spec.Seed
			if cost, err = Calibrate(cal); err != nil {
				return nil, err
			}
		}
	}
	if opt.Journal != nil {
		if err := opt.Journal.Header(journal.Header{
			Experiment: exp, Seed: spec.Seed, Grid: spec.Grid, Total: total, Runner: mode.String(),
		}); err != nil {
			return nil, err
		}
		if err := opt.Journal.Cost(costRecord(exp, cost)); err != nil {
			return nil, err
		}
	}

	live, metrics, err := runProbes(spec, opt, exp, mode, errs, chunks, resumed, total)
	if err != nil {
		return nil, err
	}
	outcomes = append(outcomes, live...)

	rep := &Report{
		Experiment:    exp,
		Grid:          spec.Grid,
		Seed:          spec.Seed,
		ObservationMs: spec.ObservationMs,
		Errors:        len(errs),
		Probes:        len(outcomes),
		Resumed:       resumed,
		LatticeSize:   len(Lattice()),
		Cost:          cost,
		Metrics:       metrics,
	}
	rep.Scores = scoreAll(Lattice(), outcomes, cost)
	markPareto(rep.Scores)
	rep.Front = Front(rep.Scores)
	// One tick is 1 ms of plant time, so the utility window is the
	// observation window's tick count.
	rep.Recommendations = Recommend(rep.Scores, spec.ObservationMs, opt.Budgets)
	return rep, nil
}

// runProbes dispatches the live chunks across the worker pool —
// per-worker queues with work stealing (experiment.PartitionQueues /
// NextItem, the campaign scheduler) — and collects the probe outcomes
// through a single collector loop that also feeds the journal and the
// progress hook. Per-case profiles are computed once in a shared
// inject.ProfileCache; each worker owns one Probe per case it touches.
func runProbes(spec Spec, opt Options, exp string, mode inject.Mode, errs []inject.Error, chunks []chunk, resumed, total int) ([]probeOutcome, journal.Metrics, error) {
	parent := opt.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	queues := experiment.PartitionQueues(chunks, opt.Workers)
	cache := inject.NewProfileCache()
	out := make(chan probeResult)
	errCh := make(chan error, 1)
	rstats := make([]inject.RunnerStats, opt.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			probes := make(map[int]*inject.Probe)
			defer func() {
				for _, p := range probes {
					rstats[w] = rstats[w].Add(p.Stats())
				}
			}()
			fail := func(err error) {
				select {
				case errCh <- err:
				default:
				}
				cancel()
			}
			for ctx.Err() == nil {
				c, ok, _ := experiment.NextItem(queues, w)
				if !ok {
					return
				}
				pr := probes[c.caseIdx]
				if pr == nil {
					cfg := inject.RunConfig{
						TestCase:      c.tc,
						Seed:          experiment.RunSeed(spec.Seed, c.caseIdx),
						ObservationMs: spec.ObservationMs,
						Policy:        spec.Policy,
					}
					var err error
					if mode == inject.ModeLiteral {
						pr, err = inject.NewProbe(mode, cfg)
					} else {
						var p *inject.CaseProfile
						if p, err = cache.Get(c.caseIdx, cfg, mode == inject.ModeMemo); err == nil {
							pr, err = inject.NewProbeFromProfile(mode, p)
						}
					}
					if err != nil {
						fail(err)
						return
					}
					probes[c.caseIdx] = pr
				}
				for ei := c.from; ei < c.to && ctx.Err() == nil; ei++ {
					prof, err := pr.ProfileError(errs[ei])
					if err != nil {
						fail(err)
						return
					}
					select {
					case out <- probeResult{errIdx: ei, errID: errs[ei].ID, caseIdx: c.caseIdx, prof: prof}:
					case <-ctx.Done():
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	start := time.Now()
	completed := resumed
	var outcomes []probeOutcome
	var journalErr error
	for r := range out {
		outcomes = append(outcomes, outcomeFromEAProfile(r.prof))
		completed++
		if opt.Journal != nil && journalErr == nil {
			if err := opt.Journal.Probe(journal.Probe{
				Experiment: exp,
				ErrIdx:     r.errIdx,
				ErrID:      r.errID,
				CaseIdx:    r.caseIdx,
				Seed:       experiment.RunSeed(spec.Seed, r.caseIdx),
				Failed:     r.prof.Failed,
				FailTickMs: r.prof.FailTickMs,
				Master:     append([]int64(nil), r.prof.Master[:]...),
				Slave:      append([]int64(nil), r.prof.Slave[:]...),
			}); err != nil {
				journalErr = err
				cancel()
			}
		}
		if opt.Progress != nil {
			ev := journal.ProgressEvent{
				Experiment: exp,
				Completed:  completed,
				Resumed:    resumed,
				Total:      total,
				Elapsed:    time.Since(start),
			}
			if liveDone := completed - resumed; ev.Elapsed > 0 && liveDone > 0 {
				ev.RunsPerSec = float64(liveDone) / ev.Elapsed.Seconds()
				ev.ETA = time.Duration(float64(total-completed) / ev.RunsPerSec * float64(time.Second))
			}
			opt.Progress(ev)
		}
	}

	wall := time.Since(start)
	metrics := journal.Metrics{
		Experiment: exp,
		Runs:       len(outcomes),
		Resumed:    resumed,
		WallMs:     wall.Milliseconds(),
		Runner:     mode.String(),
	}
	if wall > 0 {
		metrics.RunsPerSec = float64(len(outcomes)) / wall.Seconds()
	}
	var st inject.RunnerStats
	for _, s := range rstats {
		st = st.Add(s)
	}
	metrics.Errors = st.Errors
	metrics.Simulated = st.Simulated
	metrics.Pruned = st.Pruned
	metrics.MemoHits = st.MemoHits
	metrics.PruneRate = st.PruneRate()
	metrics.MemoHitRate = st.MemoHitRate()

	switch {
	case journalErr != nil:
		return nil, metrics, journalErr
	case len(errCh) > 0:
		return nil, metrics, fmt.Errorf("optimize: sweep failed: %w", <-errCh)
	case parent.Err() != nil:
		return nil, metrics, fmt.Errorf("optimize: sweep interrupted: %w", parent.Err())
	default:
		return outcomes, metrics, nil
	}
}

// outcomeFromEAProfile converts a live probe profile to scoring form.
func outcomeFromEAProfile(p inject.EAProfile) probeOutcome {
	return probeOutcome{master: p.Master, slave: p.Slave, failed: p.Failed, failTickMs: p.FailTickMs}
}
