package optimize

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"easig/internal/inject"
	"easig/internal/journal"
)

// testSpec is the scaled sweep the tests run: a 2x2 grid against a
// 10-error E2 sample over a 4 s window — 40 probes.
func testSpec() Spec {
	return Spec{
		Errors:        ErrorsE2,
		Grid:          2,
		ObservationMs: 4000,
		Seed:          7,
		E2:            inject.E2Spec{RAM: 6, Stack: 4},
	}
}

// renderAll renders a report in every format and returns the
// concatenated bytes — the byte-identity oracle.
func renderAll(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, f := range []Format{TextFormat{}, JSONFormat{}, CSVFormat{}} {
		if err := f.Render(&buf, rep); err != nil {
			t.Fatalf("rendering %s: %v", f.Name(), err)
		}
	}
	return buf.Bytes()
}

// The tentpole's resume contract: kill a journaled sweep mid-file (a
// byte-level truncation, cutting the final line in half the way a real
// kill does), resume from the truncated journal, and the resumed
// report — text, JSON and CSV — must be byte-identical to the
// uninterrupted run's. This requires both resume mechanisms to work:
// probe replay (deterministic by the seed contract) and cost replay
// (the journaled calibration, the sweep's one wall-clock input).
func TestSweepResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full.jsonl")
	spec := testSpec()
	cost := tinyCost()

	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := Run(spec, Options{Journal: w, Cost: &cost, Workers: 4})
	if cerr := w.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Probes != 40 || rep1.Resumed != 0 {
		t.Fatalf("full sweep scored %d probes (%d resumed), want 40 live", rep1.Probes, rep1.Resumed)
	}
	want := renderAll(t, rep1)

	// Kill: keep two thirds of the journal bytes, cutting mid-line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.jsonl")
	if err := os.WriteFile(trunc, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	log, err := journal.Load(trunc)
	if err != nil {
		t.Fatal(err)
	}
	if !log.Truncated {
		t.Fatal("truncated journal not flagged — the cut landed on a line boundary; adjust the cut")
	}
	if len(log.Probes) == 0 || len(log.Probes) >= 40 {
		t.Fatalf("truncated journal holds %d probes, want some but not all", len(log.Probes))
	}
	if _, ok := log.Cost(spec.Experiment()); !ok {
		t.Fatal("truncated journal lost the cost record; the test needs the cut after it")
	}

	// Resume WITHOUT the injected cost model: the journaled record must
	// carry it.
	w2, err := journal.Open(trunc)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(spec, Options{Journal: w2, Resume: log, Workers: 2})
	if cerr := w2.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed == 0 || rep2.Resumed != len(log.Probes) {
		t.Fatalf("resumed %d probes, journal held %d", rep2.Resumed, len(log.Probes))
	}
	if rep2.Probes != rep1.Probes {
		t.Fatalf("resumed sweep scored %d probes, full sweep %d", rep2.Probes, rep1.Probes)
	}
	if rep2.Cost != cost {
		t.Errorf("resumed sweep cost model %+v deviates from the journaled %+v", rep2.Cost, cost)
	}
	if got := renderAll(t, rep2); !bytes.Equal(got, want) {
		t.Errorf("resumed report deviates from the uninterrupted run:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The twice-written journal (resume appends the re-executed probes)
	// must replay to the same report a third time, fully from file.
	log2, err := journal.Load(trunc)
	if err != nil {
		t.Fatal(err)
	}
	rep3, err := Run(spec, Options{Resume: log2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Resumed != rep3.Probes {
		t.Fatalf("third pass executed %d probes live, want a full replay", rep3.Probes-rep3.Resumed)
	}
	if got := renderAll(t, rep3); !bytes.Equal(got, want) {
		t.Error("full-replay report deviates from the uninterrupted run")
	}
}

func TestSweepRejectsForeignJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.jsonl")
	spec := testSpec()
	cost := tinyCost()
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, Options{Journal: w, Cost: &cost, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := journal.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	other := spec
	other.Seed = 8
	if _, err := Run(other, Options{Resume: log, Cost: &cost}); err == nil {
		t.Error("journal from seed 7 resumed into a seed-8 sweep")
	} else if !strings.Contains(err.Error(), "seed") {
		t.Errorf("seed-mismatch error does not name the seed: %v", err)
	}

	if _, err := Run(spec, Options{Resume: log, Mode: inject.ModeSnapshot, Cost: &cost}); err == nil {
		t.Error("memo-mode journal resumed into a snapshot-mode sweep")
	}
}

// The sweep's probe bookkeeping must balance: every live probe is
// served exactly once, and each is simulated, pruned or a memo hit.
func TestSweepProbeAccounting(t *testing.T) {
	cost := tinyCost()
	rep, err := Run(testSpec(), Options{Cost: &cost, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m.Errors != rep.Probes {
		t.Errorf("runner stats served %d errors, sweep scored %d probes", m.Errors, rep.Probes)
	}
	if m.Simulated+m.Pruned+m.MemoHits != m.Errors {
		t.Errorf("probe accounting does not balance: %d simulated + %d pruned + %d memo != %d",
			m.Simulated, m.Pruned, m.MemoHits, m.Errors)
	}
	if m.Runner != "memo" {
		t.Errorf("auto mode resolved to %q, want memo", m.Runner)
	}
	if len(rep.Scores) != rep.LatticeSize || rep.LatticeSize != 768 {
		t.Errorf("scored %d of %d lattice points, want 768", len(rep.Scores), rep.LatticeSize)
	}
	if len(rep.Front) == 0 {
		t.Error("empty Pareto front")
	}
	// The empty configuration is always scored and never detects.
	if s := rep.Scores[0]; s.Config.Mask != 0 || s.Detected != 0 || s.CPUNsPerTick != 0 {
		t.Errorf("empty-mask score = %+v, want zero detections at zero cost", s)
	}
}

// Probe modes are interchangeable on the scored matrix: a literal-mode
// sweep (full-window, fresh system per probe) must produce the same
// report bytes as the memo-mode sweep, given the same cost model.
func TestSweepModeEquivalence(t *testing.T) {
	spec := testSpec()
	spec.E2 = inject.E2Spec{RAM: 4, Stack: 2}
	cost := tinyCost()
	memo, err := Run(spec, Options{Cost: &cost, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	lit, err := Run(spec, Options{Cost: &cost, Mode: inject.ModeLiteral, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAll(t, memo), renderAll(t, lit)) {
		t.Error("memo-mode sweep report deviates from the literal-mode reference")
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Run(Spec{Errors: "e3"}, Options{}); err == nil {
		t.Error("unknown error set accepted")
	}
	if _, err := Run(Spec{ObservationMs: 100}, Options{}); err == nil {
		t.Error("observation window shorter than the injection start accepted")
	}
}
