package memory

import (
	"errors"
	"testing"
)

func TestLayoutAlloc(t *testing.T) {
	l := NewLayout(RegionSpec{Name: "ram", Base: 0x10, Size: 16})
	a, err := l.Word("a")
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr != 0x10 || a.Size != 2 {
		t.Fatalf("a = %+v", a)
	}
	b, err := l.Words("b", 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Addr != 0x12 || b.Size != 6 {
		t.Fatalf("b = %+v", b)
	}
	if used, free := l.Used(), l.Free(); used != 8 || free != 8 {
		t.Fatalf("used/free = %d/%d, want 8/8", used, free)
	}
	if _, err := l.Alloc("big", 9); !errors.Is(err, ErrRegionFull) {
		t.Fatalf("overallocation = %v, want ErrRegionFull", err)
	}
	// Exactly filling the region is fine.
	if _, err := l.Alloc("rest", 8); err != nil {
		t.Fatalf("exact fill: %v", err)
	}
	if l.Free() != 0 {
		t.Fatalf("free = %d after exact fill", l.Free())
	}
}

func TestLayoutResolve(t *testing.T) {
	l := NewLayout(RegionSpec{Name: "ram", Base: 100, Size: 32})
	l.Word("first")
	l.Words("arr", 2)
	l.Word("last")

	tests := []struct {
		addr uint16
		name string
		ok   bool
	}{
		{100, "first", true},
		{101, "first", true},
		{102, "arr", true},
		{105, "arr", true},
		{106, "last", true},
		{108, "", false}, // unallocated tail
		{99, "", false},  // before the region
	}
	for _, tt := range tests {
		sym, ok := l.Resolve(tt.addr)
		if ok != tt.ok || (ok && sym.Name != tt.name) {
			t.Errorf("Resolve(%d) = (%q, %v), want (%q, %v)", tt.addr, sym.Name, ok, tt.name, tt.ok)
		}
	}
}

func TestLayoutLookupAndSymbols(t *testing.T) {
	l := NewLayout(RegionSpec{Name: "ram", Base: 0, Size: 16})
	l.Word("x")
	l.Word("y")
	if s, ok := l.Lookup("y"); !ok || s.Addr != 2 {
		t.Fatalf("Lookup(y) = (%+v, %v)", s, ok)
	}
	if _, ok := l.Lookup("z"); ok {
		t.Error("Lookup of unknown symbol succeeded")
	}
	syms := l.Symbols()
	if len(syms) != 2 || syms[0].Name != "x" || syms[1].Name != "y" {
		t.Fatalf("Symbols() = %+v", syms)
	}
	if syms[0].End() != 2 {
		t.Errorf("End() = %d", syms[0].End())
	}
}
