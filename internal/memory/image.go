package memory

import "fmt"

// Image is a reusable point-in-time copy of a Memory's contents — the
// paper's 417-byte application RAM and 1008-byte stack captured as one
// flat buffer. Unlike Snapshot/Restore, which allocate per call, an
// Image is captured into and restored from in place, so the
// fast-forward engine's per-error restore performs no heap allocation:
// the first Capture sizes the buffer, every later Capture and Restore
// is a pair of copies.
//
// The zero value is ready for Capture.
type Image struct {
	data  []byte
	sizes []int
}

// Len returns the total number of captured bytes (zero before the
// first Capture).
func (img *Image) Len() int { return len(img.data) }

// Capture copies the full memory contents into the image, growing the
// buffer only on first use (or when the region layout changed).
func (m *Memory) Capture(img *Image) {
	total := 0
	for i := range m.regions {
		total += len(m.regions[i].data)
	}
	if cap(img.data) < total {
		img.data = make([]byte, total)
		img.sizes = make([]int, len(m.regions))
	}
	img.data = img.data[:total]
	img.sizes = img.sizes[:0]
	off := 0
	for i := range m.regions {
		n := copy(img.data[off:], m.regions[i].data)
		img.sizes = append(img.sizes, n)
		off += n
	}
}

// RestoreImage copies a captured image back into the memory. The image
// must come from a memory with the same region layout.
func (m *Memory) RestoreImage(img *Image) error {
	if len(img.sizes) != len(m.regions) {
		return fmt.Errorf("memory: image has %d regions, memory has %d", len(img.sizes), len(m.regions))
	}
	off := 0
	for i := range m.regions {
		if img.sizes[i] != len(m.regions[i].data) {
			return fmt.Errorf("memory: image region %d holds %d bytes, memory region holds %d",
				i, img.sizes[i], len(m.regions[i].data))
		}
		off += copy(m.regions[i].data, img.data[off:off+img.sizes[i]])
	}
	return nil
}
