package memory

import (
	"testing"
	"testing/quick"
)

func testMemory(t *testing.T) *Memory {
	t.Helper()
	m, err := New(RegionSpec{Name: "ram", Base: 0x100, Size: 64})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBind(t *testing.T) {
	m := testMemory(t)
	v, err := Bind(m, "x", 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Valid() || v.Name() != "x" || v.Addr() != 0x100 {
		t.Fatalf("bound var = %+v", v)
	}
	if _, err := Bind(m, "oob", 0x00); err == nil {
		t.Error("binding outside regions accepted")
	}
	if _, err := Bind(m, "cross", 0x100+63); err == nil {
		t.Error("binding across region end accepted")
	}
	var zero Var16
	if zero.Valid() {
		t.Error("zero Var16 claims to be valid")
	}
}

func TestMustBindPanics(t *testing.T) {
	m := testMemory(t)
	defer func() {
		if recover() == nil {
			t.Error("MustBind with bad address did not panic")
		}
	}()
	MustBind(m, "bad", 0)
}

func TestVar16GetSet(t *testing.T) {
	m := testMemory(t)
	v := MustBind(m, "x", 0x102)
	v.Set(0xA55A)
	if got := v.Get(); got != 0xA55A {
		t.Fatalf("Get = %#x", got)
	}
	// The memory view agrees (big-endian).
	w, _ := m.ReadU16(0x102)
	if w != 0xA55A {
		t.Fatalf("memory word = %#x", w)
	}
	// A bit-flip through the memory API is visible through the Var16.
	m.FlipWordBit(0x102, 15)
	if got := v.Get(); got != 0x255A {
		t.Fatalf("after flip Get = %#x, want 0x255A", got)
	}
}

func TestVar16Signed(t *testing.T) {
	m := testMemory(t)
	v := MustBind(m, "s", 0x104)
	v.SetSigned(-1234)
	if got := v.GetSigned(); got != -1234 {
		t.Fatalf("GetSigned = %d", got)
	}
	// Stores truncate to 16 bits like the target's store instruction.
	big := int32(70000)
	v.SetSigned(big) // 70000 mod 2^16 = 4464
	if got := v.Get(); got != uint16(int16(big)) {
		t.Fatalf("truncated store = %d", got)
	}
}

func TestVar16Add(t *testing.T) {
	m := testMemory(t)
	v := MustBind(m, "c", 0x106)
	v.Set(0xFFFF)
	if got := v.Add(1); got != 0 {
		t.Fatalf("Add wrap = %d, want 0", got)
	}
	v.Set(10)
	if got := v.AddSat(-20); got != 0 {
		t.Fatalf("AddSat floor = %d, want 0", got)
	}
	v.Set(0xFFF0)
	if got := v.AddSat(0x100); got != 0xFFFF {
		t.Fatalf("AddSat ceiling = %d, want 0xFFFF", got)
	}
	v.Set(100)
	if got := v.AddSat(23); got != 123 {
		t.Fatalf("AddSat = %d, want 123", got)
	}
}

// Get/Set round-trips for every value, and signed/unsigned views agree
// on the bit pattern.
func TestQuickVar16RoundTrip(t *testing.T) {
	m := testMemory(t)
	v := MustBind(m, "q", 0x108)
	f := func(x uint16) bool {
		v.Set(x)
		if v.Get() != x {
			return false
		}
		return uint16(int16(v.GetSigned())) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
