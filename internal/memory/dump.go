package memory

import (
	"fmt"
	"io"
)

// Dump writes a canonical hex dump of every region to w: 16 bytes per
// line with a region header, for debugging injected state and
// post-mortem inspection of experiment runs (cmd/arrest -dump).
func (m *Memory) Dump(w io.Writer) error {
	for _, r := range m.regions {
		if _, err := fmt.Fprintf(w, "region %q: 0x%04x..0x%04x (%d bytes)\n",
			r.spec.Name, r.spec.Base, r.spec.End()-1, r.spec.Size); err != nil {
			return err
		}
		for off := 0; off < len(r.data); off += 16 {
			end := off + 16
			if end > len(r.data) {
				end = len(r.data)
			}
			if _, err := fmt.Fprintf(w, "  %04x:", int(r.spec.Base)+off); err != nil {
				return err
			}
			for i := off; i < end; i++ {
				if _, err := fmt.Fprintf(w, " %02x", r.data[i]); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
	}
	return nil
}
