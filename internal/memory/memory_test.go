package memory

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func twoRegions(t *testing.T) *Memory {
	t.Helper()
	m, err := New(
		RegionSpec{Name: "ram", Base: 0x0000, Size: 417},
		RegionSpec{Name: "stack", Base: 0x4000, Size: 1008},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("no regions accepted")
	}
	if _, err := New(RegionSpec{Name: "z", Base: 0, Size: 0}); !errors.Is(err, ErrEmptyRegion) {
		t.Error("zero-size region accepted")
	}
	_, err := New(
		RegionSpec{Name: "a", Base: 0, Size: 100},
		RegionSpec{Name: "b", Base: 50, Size: 100},
	)
	if !errors.Is(err, ErrOverlap) {
		t.Errorf("overlap = %v, want ErrOverlap", err)
	}
	// Adjacent regions are fine.
	if _, err := New(
		RegionSpec{Name: "a", Base: 0, Size: 100},
		RegionSpec{Name: "b", Base: 100, Size: 100},
	); err != nil {
		t.Errorf("adjacent regions rejected: %v", err)
	}
	// A region may end exactly at the top of the address space.
	if _, err := New(RegionSpec{Name: "top", Base: 0xFFF0, Size: 16}); err != nil {
		t.Errorf("top-of-space region rejected: %v", err)
	}
	// Sorting: declaration order must not matter.
	if _, err := New(
		RegionSpec{Name: "hi", Base: 0x4000, Size: 8},
		RegionSpec{Name: "lo", Base: 0x0000, Size: 8},
	); err != nil {
		t.Errorf("unsorted specs rejected: %v", err)
	}
}

func TestByteAccess(t *testing.T) {
	m := twoRegions(t)
	if err := m.SetByteAt(0x4000, 0xAB); err != nil {
		t.Fatal(err)
	}
	b, err := m.ByteAt(0x4000)
	if err != nil || b != 0xAB {
		t.Fatalf("ByteAt = (%#x, %v), want (0xAB, nil)", b, err)
	}
	// Out of range: between the regions and past the end.
	for _, addr := range []uint16{417, 0x3FFF, 0x4000 + 1008, 0xFFFF} {
		if _, err := m.ByteAt(addr); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("ByteAt(%#x) = %v, want ErrOutOfRange", addr, err)
		}
		if err := m.SetByteAt(addr, 1); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("SetByteAt(%#x) = %v, want ErrOutOfRange", addr, err)
		}
	}
}

func TestWordAccessBigEndian(t *testing.T) {
	m := twoRegions(t)
	if err := m.WriteU16(10, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	hi, _ := m.ByteAt(10)
	lo, _ := m.ByteAt(11)
	if hi != 0xBE || lo != 0xEF {
		t.Fatalf("bytes = (%#x, %#x), want big-endian (0xBE, 0xEF)", hi, lo)
	}
	v, err := m.ReadU16(10)
	if err != nil || v != 0xBEEF {
		t.Fatalf("ReadU16 = (%#x, %v)", v, err)
	}
	// A word may not cross the region end.
	if _, err := m.ReadU16(416); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("word crossing region end: %v", err)
	}
	if err := m.WriteU16(416, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("word write crossing region end: %v", err)
	}
}

func TestFlipBit(t *testing.T) {
	m := twoRegions(t)
	m.SetByteAt(5, 0b0000_1000)
	if err := m.FlipBit(5, 3); err != nil {
		t.Fatal(err)
	}
	if b, _ := m.ByteAt(5); b != 0 {
		t.Fatalf("bit 3 not cleared: %#b", b)
	}
	if err := m.FlipBit(5, 8); !errors.Is(err, ErrBit) {
		t.Errorf("bit 8 = %v, want ErrBit", err)
	}
	if err := m.FlipBit(9999, 0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("flip out of range = %v, want ErrOutOfRange", err)
	}
}

func TestFlipWordBit(t *testing.T) {
	m := twoRegions(t)
	m.WriteU16(20, 0)
	for bit := uint8(0); bit < 16; bit++ {
		if err := m.FlipWordBit(20, bit); err != nil {
			t.Fatal(err)
		}
		v, _ := m.ReadU16(20)
		if v != 1<<bit {
			t.Fatalf("bit %d: word = %#x, want %#x", bit, v, 1<<bit)
		}
		m.FlipWordBit(20, bit) // restore
	}
	if err := m.FlipWordBit(20, 16); !errors.Is(err, ErrBit) {
		t.Errorf("word bit 16 = %v, want ErrBit", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := twoRegions(t)
	m.WriteU16(0, 0x1234)
	m.WriteU16(0x4000, 0x5678)
	snap := m.Snapshot()
	m.WriteU16(0, 0xFFFF)
	m.Zero()
	if v, _ := m.ReadU16(0x4000); v != 0 {
		t.Fatal("Zero did not clear")
	}
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadU16(0); v != 0x1234 {
		t.Errorf("restored ram word = %#x", v)
	}
	if v, _ := m.ReadU16(0x4000); v != 0x5678 {
		t.Errorf("restored stack word = %#x", v)
	}
	if err := m.Restore([][]byte{{1}}); err == nil {
		t.Error("mismatched snapshot accepted")
	}
	if err := m.Restore([][]byte{{1}, {2}}); err == nil {
		t.Error("mismatched region size accepted")
	}
}

func TestRegionsAndNamed(t *testing.T) {
	m := twoRegions(t)
	regs := m.Regions()
	if len(regs) != 2 || regs[0].Name != "ram" || regs[1].Name != "stack" {
		t.Fatalf("Regions() = %+v", regs)
	}
	r, ok := m.RegionNamed("stack")
	if !ok || r.Base != 0x4000 || r.Size != 1008 {
		t.Fatalf("RegionNamed(stack) = (%+v, %v)", r, ok)
	}
	if _, ok := m.RegionNamed("flash"); ok {
		t.Error("unknown region reported present")
	}
	if got := r.End(); got != 0x4000+1008 {
		t.Errorf("End() = %d", got)
	}
}

// Flipping the same bit twice is the identity (the involution that
// makes 20 ms re-injection toggle errors on and off).
func TestQuickFlipInvolution(t *testing.T) {
	m := twoRegions(t)
	f := func(addrRaw uint16, bit uint8, val byte) bool {
		addr := addrRaw % 417
		bit %= 8
		if err := m.SetByteAt(addr, val); err != nil {
			return false
		}
		m.FlipBit(addr, bit)
		m.FlipBit(addr, bit)
		got, _ := m.ByteAt(addr)
		return got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Word writes round-trip through byte storage for any value.
func TestQuickWordRoundTrip(t *testing.T) {
	m := twoRegions(t)
	f := func(addrRaw, v uint16) bool {
		addr := addrRaw % 415 // keep the word inside the ram region
		if err := m.WriteU16(addr, v); err != nil {
			return false
		}
		got, err := m.ReadU16(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDump(t *testing.T) {
	m := twoRegions(t)
	m.WriteU16(0, 0xBEEF)
	var buf strings.Builder
	if err := m.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`region "ram"`, `region "stack"`, "be ef", "0000:"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump lacks %q", want)
		}
	}
	// Every region byte appears: 417 + 1008 bytes over 16-byte lines.
	lines := strings.Count(out, "\n")
	want := 2 + (417+15)/16 + (1008+15)/16
	if lines != want {
		t.Errorf("dump has %d lines, want %d", lines, want)
	}
}
