// Package memory provides the byte-addressable simulated memory of the
// experiment target. The paper injects bit-flips into the physical RAM
// and stack of an embedded node via SWIFI; Go cannot safely flip bits
// in its own heap, so the target software of this reproduction keeps
// every application variable in a Memory instance and accesses it
// through 16-bit accessors (Var16). Bit-flips then corrupt exactly the
// words the software computes with, and errors propagate through
// genuine data flow as they would on hardware.
package memory

import (
	"errors"
	"fmt"
	"sort"
)

// RegionSpec describes one contiguous address range, e.g. the paper's
// application RAM (417 bytes) or stack (1008 bytes).
type RegionSpec struct {
	// Name identifies the region in injection reports ("ram", "stack").
	Name string
	// Base is the first address of the region.
	Base uint16
	// Size is the region length in bytes.
	Size uint16
}

// End returns the first address past the region.
func (r RegionSpec) End() uint32 { return uint32(r.Base) + uint32(r.Size) }

// Errors returned by Memory operations; match with errors.Is.
var (
	// ErrOverlap reports overlapping region specifications.
	ErrOverlap = errors.New("memory: regions overlap")
	// ErrEmptyRegion reports a zero-size region.
	ErrEmptyRegion = errors.New("memory: region size must be positive")
	// ErrOutOfRange reports an access outside every region.
	ErrOutOfRange = errors.New("memory: address out of range")
	// ErrBit reports a bit index outside 0..7 for byte operations or
	// 0..15 for word operations.
	ErrBit = errors.New("memory: bit index out of range")
)

type region struct {
	spec RegionSpec
	data []byte
}

// AccessSink observes the target software's memory traffic: every read
// and write the software performs through Memory or Var16 accessors.
// The fault injector's own primitives (FlipBit, FlipWordBit) and the
// checkpoint machinery (Snapshot, Capture, Restore*) are NOT reported —
// they are the experiment apparatus, not data flow of the program under
// test. The def/use liveness pass of internal/inject uses the sink to
// prove which injected bit-flips are dead or overwritten before their
// next read.
type AccessSink interface {
	// OnAccess reports one n-byte access starting at addr. write is
	// true for stores, false for loads; read-modify-write accessors
	// (Var16.Add, AddSat) report a load followed by a store.
	OnAccess(addr uint16, n int, write bool)
}

// Memory is a set of non-overlapping byte regions. The zero value is
// unusable; construct with New. Memory is not safe for concurrent use;
// each experiment run owns its own instance.
type Memory struct {
	regions []region
	sink    AccessSink
}

// SetAccessSink arms (or, with nil, disarms) the access sink. While
// armed, every software load and store through this Memory and its
// bound Var16 accessors is reported. The disarmed fast path is a nil
// check, so campaigns that never trace pay (almost) nothing.
func (m *Memory) SetAccessSink(s AccessSink) { m.sink = s }

// New builds a memory from the given region specifications. Regions
// may be listed in any order; they are kept sorted by base address.
func New(specs ...RegionSpec) (*Memory, error) {
	if len(specs) == 0 {
		return nil, errors.New("memory: at least one region is required")
	}
	sorted := append([]RegionSpec(nil), specs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Base < sorted[b].Base })
	m := &Memory{regions: make([]region, 0, len(sorted))}
	for i, s := range sorted {
		if s.Size == 0 {
			return nil, fmt.Errorf("%w: %q", ErrEmptyRegion, s.Name)
		}
		if s.End() > 1<<16 {
			return nil, fmt.Errorf("memory: region %q exceeds the 16-bit address space", s.Name)
		}
		if i > 0 && uint32(s.Base) < sorted[i-1].End() {
			return nil, fmt.Errorf("%w: %q and %q", ErrOverlap, sorted[i-1].Name, s.Name)
		}
		m.regions = append(m.regions, region{spec: s, data: make([]byte, s.Size)})
	}
	return m, nil
}

// find resolves addr to its region and offset.
func (m *Memory) find(addr uint16) (*region, uint16, error) {
	for i := range m.regions {
		r := &m.regions[i]
		if addr >= r.spec.Base && uint32(addr) < r.spec.End() {
			return r, addr - r.spec.Base, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: 0x%04x", ErrOutOfRange, addr)
}

// Regions returns the region specifications sorted by base address.
func (m *Memory) Regions() []RegionSpec {
	out := make([]RegionSpec, len(m.regions))
	for i, r := range m.regions {
		out[i] = r.spec
	}
	return out
}

// RegionNamed returns the specification of the named region.
func (m *Memory) RegionNamed(name string) (RegionSpec, bool) {
	for _, r := range m.regions {
		if r.spec.Name == name {
			return r.spec, true
		}
	}
	return RegionSpec{}, false
}

// ByteAt returns the byte stored at addr.
func (m *Memory) ByteAt(addr uint16) (byte, error) {
	r, off, err := m.find(addr)
	if err != nil {
		return 0, err
	}
	if m.sink != nil {
		m.sink.OnAccess(addr, 1, false)
	}
	return r.data[off], nil
}

// SetByteAt stores b at addr.
func (m *Memory) SetByteAt(addr uint16, b byte) error {
	r, off, err := m.find(addr)
	if err != nil {
		return err
	}
	if m.sink != nil {
		m.sink.OnAccess(addr, 1, true)
	}
	r.data[off] = b
	return nil
}

// ReadU16 returns the big-endian 16-bit word at addr. Both bytes must
// lie inside one region.
func (m *Memory) ReadU16(addr uint16) (uint16, error) {
	r, off, err := m.find(addr)
	if err != nil {
		return 0, err
	}
	if uint32(off)+1 >= uint32(len(r.data)) {
		return 0, fmt.Errorf("%w: word at 0x%04x crosses region end", ErrOutOfRange, addr)
	}
	if m.sink != nil {
		m.sink.OnAccess(addr, 2, false)
	}
	return uint16(r.data[off])<<8 | uint16(r.data[off+1]), nil
}

// WriteU16 stores v big-endian at addr. Both bytes must lie inside one
// region.
func (m *Memory) WriteU16(addr uint16, v uint16) error {
	r, off, err := m.find(addr)
	if err != nil {
		return err
	}
	if uint32(off)+1 >= uint32(len(r.data)) {
		return fmt.Errorf("%w: word at 0x%04x crosses region end", ErrOutOfRange, addr)
	}
	if m.sink != nil {
		m.sink.OnAccess(addr, 2, true)
	}
	r.data[off] = byte(v >> 8)
	r.data[off+1] = byte(v)
	return nil
}

// FlipBit inverts one bit (0 = least significant) of the byte at addr.
// It is the SWIFI primitive: the paper's injector downloads an
// (address, bit position) pair and triggers the flip at run time.
func (m *Memory) FlipBit(addr uint16, bit uint8) error {
	if bit > 7 {
		return fmt.Errorf("%w: %d", ErrBit, bit)
	}
	r, off, err := m.find(addr)
	if err != nil {
		return err
	}
	r.data[off] ^= 1 << bit
	return nil
}

// FlipWordBit inverts one bit (0 = least significant) of the 16-bit
// big-endian word at addr, matching the paper's per-bit-position E1
// errors on 16-bit signals.
func (m *Memory) FlipWordBit(addr uint16, bit uint8) error {
	if bit > 15 {
		return fmt.Errorf("%w: %d", ErrBit, bit)
	}
	if bit < 8 {
		return m.FlipBit(addr+1, bit)
	}
	return m.FlipBit(addr, bit-8)
}

// Zero clears every region to all-zero bytes.
func (m *Memory) Zero() {
	for i := range m.regions {
		for j := range m.regions[i].data {
			m.regions[i].data[j] = 0
		}
	}
}

// Snapshot copies the full memory contents for later Restore.
func (m *Memory) Snapshot() [][]byte {
	out := make([][]byte, len(m.regions))
	for i, r := range m.regions {
		out[i] = append([]byte(nil), r.data...)
	}
	return out
}

// Restore copies a Snapshot back. The snapshot must come from a memory
// with the same region layout.
func (m *Memory) Restore(snap [][]byte) error {
	if len(snap) != len(m.regions) {
		return fmt.Errorf("memory: snapshot has %d regions, memory has %d", len(snap), len(m.regions))
	}
	for i := range m.regions {
		if len(snap[i]) != len(m.regions[i].data) {
			return fmt.Errorf("memory: snapshot region %d size mismatch", i)
		}
		copy(m.regions[i].data, snap[i])
	}
	return nil
}

// bytesFor exposes a region's backing slice to Var16 for fast bound
// accessors.
func (m *Memory) bytesFor(addr uint16) ([]byte, uint16, error) {
	r, off, err := m.find(addr)
	if err != nil {
		return nil, 0, err
	}
	return r.data, off, nil
}
