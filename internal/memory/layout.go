package memory

import (
	"errors"
	"fmt"
	"sort"
)

// Layout allocates named variables sequentially inside one region and
// remembers the symbol table, so experiment reports can resolve an
// injected address back to the variable it hit (the paper's Table 6
// maps E1 error numbers to signals the same way).
type Layout struct {
	region RegionSpec
	next   uint32
	syms   []Symbol
}

// Symbol is one allocated variable: name, first address and size in
// bytes.
type Symbol struct {
	Name string
	Addr uint16
	Size uint16
}

// End returns the first address past the symbol.
func (s Symbol) End() uint32 { return uint32(s.Addr) + uint32(s.Size) }

// ErrRegionFull reports an allocation beyond the region size.
var ErrRegionFull = errors.New("memory: layout region is full")

// NewLayout starts allocating at the base of the given region.
func NewLayout(region RegionSpec) *Layout {
	return &Layout{region: region, next: uint32(region.Base)}
}

// Alloc reserves size bytes for name and returns the symbol.
func (l *Layout) Alloc(name string, size uint16) (Symbol, error) {
	if l.next+uint32(size) > l.region.End() {
		return Symbol{}, fmt.Errorf("%w: %q needs %d bytes, %d left in %q",
			ErrRegionFull, name, size, l.region.End()-l.next, l.region.Name)
	}
	s := Symbol{Name: name, Addr: uint16(l.next), Size: size}
	l.next += uint32(size)
	l.syms = append(l.syms, s)
	return s, nil
}

// Word reserves one 16-bit word for name.
func (l *Layout) Word(name string) (Symbol, error) { return l.Alloc(name, 2) }

// Words reserves an array of n 16-bit words for name and returns the
// symbol of the whole array.
func (l *Layout) Words(name string, n uint16) (Symbol, error) { return l.Alloc(name, 2*n) }

// Used returns the number of allocated bytes.
func (l *Layout) Used() uint16 { return uint16(l.next - uint32(l.region.Base)) }

// Free returns the number of unallocated bytes left in the region.
func (l *Layout) Free() uint16 { return uint16(l.region.End() - l.next) }

// Symbols returns the symbol table in allocation order.
func (l *Layout) Symbols() []Symbol { return append([]Symbol(nil), l.syms...) }

// Resolve returns the symbol containing addr, if any. Unallocated
// space (padding, spare RAM) resolves to false, which experiment
// reports render as "(unused)".
func (l *Layout) Resolve(addr uint16) (Symbol, bool) {
	i := sort.Search(len(l.syms), func(i int) bool { return l.syms[i].End() > uint32(addr) })
	if i < len(l.syms) && addr >= l.syms[i].Addr {
		return l.syms[i], true
	}
	return Symbol{}, false
}

// Lookup returns the symbol with the given name.
func (l *Layout) Lookup(name string) (Symbol, bool) {
	for _, s := range l.syms {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}
