package memory

import "fmt"

// Var16 is a 16-bit application variable bound to a fixed address in a
// Memory. The target software performs all reads and writes of its
// state through Var16 values, so injected bit-flips are visible to the
// software immediately and software writes overwrite injected
// corruption exactly as on the real target.
//
// The binding caches the backing region slice; Get and Set are a few
// nanoseconds, which keeps full 40-second, 1 ms-resolution experiment
// runs cheap enough for 27 400-run campaigns.
type Var16 struct {
	name string
	addr uint16
	buf  []byte  // region backing store
	off  uint16  // offset of the high byte inside buf
	mem  *Memory // owner, consulted for the armed access sink
}

// Bind creates a Var16 for the big-endian word at addr. Both bytes
// must lie inside one region.
func Bind(m *Memory, name string, addr uint16) (Var16, error) {
	buf, off, err := m.bytesFor(addr)
	if err != nil {
		return Var16{}, fmt.Errorf("memory: binding %q: %w", name, err)
	}
	if int(off)+1 >= len(buf) {
		return Var16{}, fmt.Errorf("memory: binding %q: word at 0x%04x crosses region end", name, addr)
	}
	return Var16{name: name, addr: addr, buf: buf, off: off, mem: m}, nil
}

// MustBind is Bind for statically known layouts; it panics on error.
// It is intended for package-internal memory maps whose addresses are
// compile-time constants covered by tests.
func MustBind(m *Memory, name string, addr uint16) Var16 {
	v, err := Bind(m, name, addr)
	if err != nil {
		panic(err)
	}
	return v
}

// Name returns the variable name used in reports.
func (v Var16) Name() string { return v.name }

// Addr returns the bound address of the high byte.
func (v Var16) Addr() uint16 { return v.addr }

// Valid reports whether the variable is bound.
func (v Var16) Valid() bool { return v.buf != nil }

// Get returns the current unsigned value.
func (v Var16) Get() uint16 {
	if v.mem != nil && v.mem.sink != nil {
		v.mem.sink.OnAccess(v.addr, 2, false)
	}
	return uint16(v.buf[v.off])<<8 | uint16(v.buf[v.off+1])
}

// Set stores the unsigned value.
func (v Var16) Set(x uint16) {
	if v.mem != nil && v.mem.sink != nil {
		v.mem.sink.OnAccess(v.addr, 2, true)
	}
	v.buf[v.off] = byte(x >> 8)
	v.buf[v.off+1] = byte(x)
}

// GetSigned returns the value interpreted as a two's-complement int16,
// widened to int32 for arithmetic convenience.
func (v Var16) GetSigned() int32 { return int32(int16(v.Get())) }

// SetSigned stores a signed value, truncating to 16 bits like the
// target's store instruction would.
func (v Var16) SetSigned(x int32) { v.Set(uint16(int16(x))) }

// Add adds d to the stored unsigned value with 16-bit wrap-around and
// returns the new value (the CLOCK module's millisecond counter relies
// on this wrap behaviour).
func (v Var16) Add(d uint16) uint16 {
	x := v.Get() + d
	v.Set(x)
	return x
}

// AddSat adds d (which may be negative) to the stored unsigned value,
// saturating at 0 and 65535 instead of wrapping.
func (v Var16) AddSat(d int32) uint16 {
	x := int32(v.Get()) + d
	if x < 0 {
		x = 0
	}
	if x > 0xFFFF {
		x = 0xFFFF
	}
	v.Set(uint16(x))
	return uint16(x)
}
