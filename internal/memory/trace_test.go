package memory

import (
	"reflect"
	"testing"
)

// access is one recorded sink event.
type access struct {
	Addr  uint16
	N     int
	Write bool
}

// recordSink is the test AccessSink.
type recordSink struct{ got []access }

func (r *recordSink) OnAccess(addr uint16, n int, write bool) {
	r.got = append(r.got, access{addr, n, write})
}

// traceMemory builds a two-region memory matching the target layout
// shape, with a variable bound into the first region.
func traceMemory(t *testing.T) (*Memory, Var16) {
	t.Helper()
	m, err := New(
		RegionSpec{Name: "ram", Base: 0x100, Size: 64},
		RegionSpec{Name: "stack", Base: 0x200, Size: 64},
	)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Bind(m, "sig", 0x110)
	if err != nil {
		t.Fatal(err)
	}
	return m, v
}

// TestAccessSinkSeesSoftwareTraffic checks that every software-visible
// accessor reports its loads and stores while the sink is armed.
func TestAccessSinkSeesSoftwareTraffic(t *testing.T) {
	m, v := traceMemory(t)
	sink := &recordSink{}
	m.SetAccessSink(sink)

	v.Set(0x1234)
	_ = v.Get()
	v.Add(1)    // read-modify-write: load then store
	v.AddSat(1) // same
	if err := m.WriteU16(0x204, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadU16(0x204); err != nil {
		t.Fatal(err)
	}
	if err := m.SetByteAt(0x120, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ByteAt(0x120); err != nil {
		t.Fatal(err)
	}

	want := []access{
		{0x110, 2, true},
		{0x110, 2, false},
		{0x110, 2, false}, {0x110, 2, true},
		{0x110, 2, false}, {0x110, 2, true},
		{0x204, 2, true},
		{0x204, 2, false},
		{0x120, 1, true},
		{0x120, 1, false},
	}
	if !reflect.DeepEqual(sink.got, want) {
		t.Fatalf("traced accesses:\n got %v\nwant %v", sink.got, want)
	}
}

// TestAccessSinkIgnoresInjectorAndCheckpoints checks that the SWIFI
// primitives and the snapshot machinery stay invisible: they are the
// experiment apparatus, not data flow of the program under test.
func TestAccessSinkIgnoresInjectorAndCheckpoints(t *testing.T) {
	m, _ := traceMemory(t)
	sink := &recordSink{}
	m.SetAccessSink(sink)

	if err := m.FlipBit(0x110, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.FlipWordBit(0x110, 12); err != nil {
		t.Fatal(err)
	}
	var img Image
	m.Capture(&img)
	if err := m.RestoreImage(&img); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	m.Zero()

	if len(sink.got) != 0 {
		t.Fatalf("injector/checkpoint traffic leaked into the sink: %v", sink.got)
	}
}

// TestAccessSinkDisarm checks SetAccessSink(nil) stops tracing.
func TestAccessSinkDisarm(t *testing.T) {
	m, v := traceMemory(t)
	sink := &recordSink{}
	m.SetAccessSink(sink)
	v.Set(1)
	m.SetAccessSink(nil)
	v.Set(2)
	_ = v.Get()
	if len(sink.got) != 1 {
		t.Fatalf("disarmed sink still traced: %v", sink.got)
	}
}
