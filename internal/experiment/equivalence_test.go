package experiment

import (
	"path/filepath"
	"reflect"
	"testing"

	"easig/internal/inject"
	"easig/internal/journal"
	"easig/internal/target"
)

// equivalenceConfig scales the campaign so the snapshot engine's
// quiet-window exit is actually exercised (the nominal stop of the
// grid-1 case is near 10.5 s, so a 16 s window leaves room for the
// stop, the quiet window and a post-quiet tail) while the literal
// reference stays affordable in CI.
func equivalenceConfig(seed int64, journalPath string, mode inject.Mode) (Config, *journal.Writer, error) {
	var w *journal.Writer
	var err error
	if journalPath != "" {
		w, err = journal.Create(journalPath)
		if err != nil {
			return Config{}, nil, err
		}
	}
	return Config{
		Spec: Spec{
			Grid:          1,
			ObservationMs: 16000,
			Seed:          seed,
			E2:            inject.E2Spec{RAM: 40, Stack: 16},
		},
		Exec: Exec{
			Journal: w,
			Mode:    mode,
		},
	}, w, nil
}

// loadRecords returns the journal's per-run records keyed by
// coordinates.
func loadRecords(t *testing.T, path, exp string) map[journal.Key]journal.Record {
	t.Helper()
	log, err := journal.Load(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	return log.Lookup(exp)
}

// diffRecords compares two journal record sets field by field.
func diffRecords(t *testing.T, mode string, got, want map[journal.Key]journal.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: journal has %d records, literal reference %d", mode, len(got), len(want))
	}
	mismatches := 0
	for k, a := range got {
		b, ok := want[k]
		if !ok {
			t.Fatalf("%s: run %+v missing from literal journal", mode, k)
		}
		if !reflect.DeepEqual(a, b) {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("%s run %+v:\n     got %+v\n literal %+v", mode, k, a, b)
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%s: %d of %d run outcomes differ", mode, mismatches, len(got))
	}
}

// engineMatrix runs one campaign under every engine mode and returns
// the result, rendered tables and journal records per mode. The
// literal mode is the ground truth (it simulates every run from time
// zero exactly as the paper's FIC3 hardware observed the target); the
// snapshot and memo runners must be observationally identical to it.
type matrixRow struct {
	mode    inject.Mode
	tables  []string
	records map[journal.Key]journal.Record
}

func runMatrix(t *testing.T, seed int64, exp string,
	run func(Config) (interface{ renderTables() []string }, error)) map[inject.Mode]matrixRow {
	t.Helper()
	dir := t.TempDir()
	out := make(map[inject.Mode]matrixRow)
	for _, mode := range []inject.Mode{inject.ModeLiteral, inject.ModeSnapshot, inject.ModeMemo} {
		path := filepath.Join(dir, mode.String()+".jsonl")
		cfg, w, err := equivalenceConfig(seed, path, mode)
		if err != nil {
			t.Fatal(err)
		}
		res, err := run(cfg)
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("%s campaign: %v", mode, err)
		}
		out[mode] = matrixRow{mode: mode, tables: res.renderTables(), records: loadRecords(t, path, exp)}
	}
	return out
}

// diffMatrix checks each non-literal row against the literal ground
// truth: byte-identical rendered tables and field-identical journal
// records.
func diffMatrix(t *testing.T, rows map[inject.Mode]matrixRow, tableNames []string) {
	t.Helper()
	ref := rows[inject.ModeLiteral]
	for _, mode := range []inject.Mode{inject.ModeSnapshot, inject.ModeMemo} {
		row := rows[mode]
		for i, name := range tableNames {
			if row.tables[i] != ref.tables[i] {
				t.Errorf("%s differs under %s:\n%s engine:\n%s\nliteral:\n%s",
					name, mode, mode, row.tables[i], ref.tables[i])
			}
		}
		diffRecords(t, mode.String(), row.records, ref.records)
	}
}

type e1Tables struct{ r *E1Result }

func (e e1Tables) renderTables() []string { return []string{Table7(e.r), Table8(e.r)} }

type e2Tables struct{ r *E2Result }

func (e e2Tables) renderTables() []string { return []string{Table9(e.r)} }

// TestE1EngineEquivalence is the three-way acceptance matrix for the
// Runner redesign: an E1 campaign served by the snapshot engine and by
// the memo/prune runner renders byte-identical Tables 7 and 8 and
// journals identical per-run outcomes versus the same campaign
// simulated literally from time zero with the same seed.
func TestE1EngineEquivalence(t *testing.T) {
	var last *E1Result
	rows := runMatrix(t, 11, ExperimentE1, func(cfg Config) (interface{ renderTables() []string }, error) {
		r, err := RunE1(cfg)
		last = r
		return e1Tables{r}, err
	})
	diffMatrix(t, rows, []string{"Table 7", "Table 8"})

	// Sanity: the campaign exercised detections, misses and failures,
	// so the equality above is not vacuous.
	vi := last.versionIndex(target.VersionAll)
	total := last.TotalCoverage(vi)
	if total.All.Detected == 0 || total.All.Detected == total.All.Total || total.Fail.Total == 0 {
		t.Fatalf("degenerate campaign: %+v", total)
	}
}

// TestE2EngineEquivalence is the same theorem for the random RAM/stack
// error set and Table 9. The E2 set samples with replacement, so this
// is also the path that exercises real memo hits (duplicate (addr,bit)
// draws) against the literal reference.
func TestE2EngineEquivalence(t *testing.T) {
	var last *E2Result
	rows := runMatrix(t, 23, ExperimentE2, func(cfg Config) (interface{ renderTables() []string }, error) {
		r, err := RunE2(cfg)
		last = r
		return e2Tables{r}, err
	})
	diffMatrix(t, rows, []string{"Table 9"})

	cov, _, _ := last.Total()
	if cov.All.Detected == 0 || cov.All.Detected == cov.All.Total {
		t.Fatalf("degenerate campaign: %+v", cov)
	}
}

// TestExhaustiveMemoSmoke runs the full 11 400-position exhaustive grid
// under the memo runner at a short window and checks that the liveness
// pass prunes a substantial share of the fault space — the property
// that makes the exhaustive protocol affordable at all — and that the
// campaign metrics account every error to exactly one serving path.
func TestExhaustiveMemoSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive grid is slow")
	}
	r, err := RunE2(Config{
		Spec: Spec{Grid: 1, Seed: 7, ObservationMs: 8000, Exhaustive: true},
		Exec: Exec{Mode: inject.ModeMemo},
	})
	if err != nil {
		t.Fatal(err)
	}
	// E2 campaigns run the fully instrumented build only (the paper's
	// Table 9 protocol): one run per fault-space position.
	wantErrors := len(inject.BuildExhaustive())
	if r.Runs != wantErrors {
		t.Fatalf("runs = %d, want %d", r.Runs, wantErrors)
	}
	m := r.Metrics
	if m.Errors != wantErrors {
		t.Fatalf("metrics.Errors = %d, want %d", m.Errors, wantErrors)
	}
	if got := m.Simulated + m.Pruned + m.MemoHits; got != m.Errors {
		t.Fatalf("serving paths do not partition the error set: %d+%d+%d != %d",
			m.Simulated, m.Pruned, m.MemoHits, m.Errors)
	}
	if m.PruneRate < 0.5 {
		t.Errorf("prune rate %.3f; the def/use pass should prove most of the 1425-byte space dead", m.PruneRate)
	}
	if m.MemoHits != 0 {
		t.Errorf("memo hits %d on an exhaustive grid; every (addr,bit) position is distinct", m.MemoHits)
	}
	if m.Runner != inject.ModeMemo.String() {
		t.Errorf("metrics runner = %q, want %q", m.Runner, inject.ModeMemo)
	}
	cov, _, _ := r.Total()
	if cov.All.Detected == 0 || cov.All.Detected == cov.All.Total {
		t.Fatalf("degenerate exhaustive campaign: %+v", cov)
	}
	t.Logf("exhaustive Pdetect %.1f%% (pruned %.1f%%, simulated %d of %d)",
		cov.All.Percent(), 100*m.PruneRate, m.Simulated, m.Errors)
}
