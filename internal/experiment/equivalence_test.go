package experiment

import (
	"path/filepath"
	"reflect"
	"testing"

	"easig/internal/inject"
	"easig/internal/journal"
	"easig/internal/target"
)

// equivalenceConfig scales the campaign so the snapshot engine's
// quiet-window exit is actually exercised (the nominal stop of the
// grid-1 case is near 10.5 s, so a 16 s window leaves room for the
// stop, the quiet window and a post-quiet tail) while the from-scratch
// reference stays affordable in CI.
func equivalenceConfig(seed int64, journalPath string, fromScratch bool) (Config, *journal.Writer, error) {
	var w *journal.Writer
	var err error
	if journalPath != "" {
		w, err = journal.Create(journalPath)
		if err != nil {
			return Config{}, nil, err
		}
	}
	return Config{
		Grid:          1,
		ObservationMs: 16000,
		Seed:          seed,
		E2:            inject.E2Spec{RAM: 40, Stack: 16},
		Journal:       w,
		FromScratch:   fromScratch,
	}, w, nil
}

// loadRecords returns the journal's per-run records keyed by
// coordinates.
func loadRecords(t *testing.T, path, exp string) map[journal.Key]journal.Record {
	t.Helper()
	log, err := journal.Load(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	return log.Lookup(exp)
}

// diffRecords compares two journal record sets field by field.
func diffRecords(t *testing.T, mode string, snap, scratch map[journal.Key]journal.Record) {
	t.Helper()
	if len(snap) != len(scratch) {
		t.Fatalf("%s: snapshot journal has %d records, from-scratch %d", mode, len(snap), len(scratch))
	}
	mismatches := 0
	for k, a := range snap {
		b, ok := scratch[k]
		if !ok {
			t.Fatalf("%s: run %+v missing from from-scratch journal", mode, k)
		}
		if !reflect.DeepEqual(a, b) {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("%s run %+v:\n snapshot %+v\n  scratch %+v", mode, k, a, b)
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%s: %d of %d run outcomes differ", mode, mismatches, len(snap))
	}
}

// TestE1SnapshotEquivalence is the tentpole acceptance test: an E1
// campaign served by the snapshot/fast-forward engine renders
// byte-identical Tables 7 and 8 and journals identical per-run
// outcomes versus the same campaign executed from scratch with the
// same seed.
func TestE1SnapshotEquivalence(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "snap.jsonl")
	scratchPath := filepath.Join(dir, "scratch.jsonl")

	cfgSnap, wSnap, err := equivalenceConfig(11, snapPath, false)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := RunE1(cfgSnap)
	if cerr := wSnap.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("snapshot E1: %v", err)
	}

	cfgScratch, wScratch, err := equivalenceConfig(11, scratchPath, true)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := RunE1(cfgScratch)
	if cerr := wScratch.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("from-scratch E1: %v", err)
	}

	if a, b := Table7(snap), Table7(scratch); a != b {
		t.Errorf("Table 7 differs:\nsnapshot:\n%s\nfrom scratch:\n%s", a, b)
	}
	if a, b := Table8(snap), Table8(scratch); a != b {
		t.Errorf("Table 8 differs:\nsnapshot:\n%s\nfrom scratch:\n%s", a, b)
	}
	diffRecords(t, ExperimentE1, loadRecords(t, snapPath, ExperimentE1), loadRecords(t, scratchPath, ExperimentE1))

	// Sanity: the campaign exercised detections, misses and failures,
	// so the equality above is not vacuous.
	vi := snap.versionIndex(target.VersionAll)
	total := snap.TotalCoverage(vi)
	if total.All.Detected == 0 || total.All.Detected == total.All.Total || total.Fail.Total == 0 {
		t.Fatalf("degenerate campaign: %+v", total)
	}
}

// TestE2SnapshotEquivalence is the same theorem for the random
// RAM/stack error set and Table 9.
func TestE2SnapshotEquivalence(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "snap.jsonl")
	scratchPath := filepath.Join(dir, "scratch.jsonl")

	cfgSnap, wSnap, err := equivalenceConfig(23, snapPath, false)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := RunE2(cfgSnap)
	if cerr := wSnap.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("snapshot E2: %v", err)
	}

	cfgScratch, wScratch, err := equivalenceConfig(23, scratchPath, true)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := RunE2(cfgScratch)
	if cerr := wScratch.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("from-scratch E2: %v", err)
	}

	if a, b := Table9(snap), Table9(scratch); a != b {
		t.Errorf("Table 9 differs:\nsnapshot:\n%s\nfrom scratch:\n%s", a, b)
	}
	diffRecords(t, ExperimentE2, loadRecords(t, snapPath, ExperimentE2), loadRecords(t, scratchPath, ExperimentE2))

	cov, _, _ := snap.Total()
	if cov.All.Detected == 0 || cov.All.Detected == cov.All.Total {
		t.Fatalf("degenerate campaign: %+v", cov)
	}
}
