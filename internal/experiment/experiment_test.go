package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"easig/internal/core"
	"easig/internal/inject"
	"easig/internal/stats"
	"easig/internal/target"
)

func TestRunSeedDeterministic(t *testing.T) {
	a := runSeed(1, 4)
	b := runSeed(1, 4)
	if a != b {
		t.Fatal("equal coordinates produced different seeds")
	}
	if a < 0 {
		t.Error("seed must be non-negative")
	}
	// The seed depends on the campaign seed and the test case only:
	// every (version, error) run of a case replays the same arrestment,
	// which is what lets the fast-forward engine share one snapshot per
	// case (see runSeed).
	seen := map[int64]bool{a: true}
	for _, s := range []int64{
		runSeed(2, 4),
		runSeed(1, 5),
		runSeed(1, 0),
		runSeed(0, 4),
	} {
		if seen[s] {
			t.Error("distinct coordinates collided")
		}
		seen[s] = true
	}
}

// smallE1 runs a fast E1: one test case, All version only, short
// observation window.
func smallE1(t *testing.T) *E1Result {
	t.Helper()
	r, err := RunE1(Config{Spec: Spec{
		Grid:          1,
		Seed:          3,
		ObservationMs: 6000,
		Versions:      []target.Version{target.VersionAll},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunE1Small(t *testing.T) {
	r := smallE1(t)
	if r.Runs != 112 {
		t.Fatalf("runs = %d, want 112 (one case, one version)", r.Runs)
	}
	total := r.TotalCoverage(0)
	if total.All.Total != 112 {
		t.Fatalf("total experiments = %d", total.All.Total)
	}
	// The counters (i, pulscnt, ms_slot_nbr, mscnt) detect everything
	// even in a short window — the paper's 100% columns.
	for _, sig := range []int{2, 3, 4, 5} {
		cov := r.Coverage[sig][0]
		if cov.All.Detected != cov.All.Total {
			t.Errorf("signal %s: %d/%d detected, want all",
				target.SignalNames()[sig], cov.All.Detected, cov.All.Total)
		}
	}
	// Continuous signals sit strictly between 0 and 100%.
	for _, sig := range []int{0, 1, 6} {
		cov := r.Coverage[sig][0]
		if cov.All.Detected == 0 || cov.All.Detected == cov.All.Total {
			t.Errorf("signal %s: %d/%d detected, want a partial rate",
				target.SignalNames()[sig], cov.All.Detected, cov.All.Total)
		}
	}
	// Latency aggregates exist exactly for rows with detections.
	for sig := 0; sig < target.NumEAs; sig++ {
		if (r.Latency[sig][0].Count() > 0) != (r.Coverage[sig][0].All.Detected > 0) {
			t.Errorf("signal %d: latency/detection bookkeeping disagrees", sig)
		}
	}
	if r.TotalLatency(0).Count() == 0 {
		t.Error("no total latency data")
	}
}

func TestRunE2Small(t *testing.T) {
	r, err := RunE2(Config{Spec: Spec{
		Grid:          1,
		Seed:          3,
		ObservationMs: 6000,
		E2:            inject.E2Spec{RAM: 24, Stack: 8},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Runs != 32 {
		t.Fatalf("runs = %d, want 32", r.Runs)
	}
	if r.Coverage[target.RegionRAM].All.Total != 24 || r.Coverage[target.RegionStack].All.Total != 8 {
		t.Fatalf("per-region totals wrong: %+v", r.Coverage)
	}
	cov, lat, latFail := r.Total()
	if cov.All.Total != 32 {
		t.Fatalf("total = %d", cov.All.Total)
	}
	if lat.Count() < latFail.Count() {
		t.Error("failure latencies exceed all latencies")
	}
}

func TestTable4Render(t *testing.T) {
	out := Table4()
	for _, want := range []string{"SetValue", "V_REG", "Co/Ra", "ms_slot_nbr", "Di/Se/Li", "CLOCK"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 lacks %q:\n%s", want, out)
		}
	}
}

func TestTable6Render(t *testing.T) {
	out := Table6(25)
	for _, want := range []string{"S1-S16", "S97-S112", "112", "2800", "EA7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 6 lacks %q:\n%s", want, out)
		}
	}
}

func TestTables789Render(t *testing.T) {
	e1 := smallE1(t)
	t7 := Table7(e1)
	for _, want := range []string{"P(d)", "P(d|fail)", "P(d|no fail)", "Total", "mscnt", "All"} {
		if !strings.Contains(t7, want) {
			t.Errorf("Table 7 lacks %q", want)
		}
	}
	t8 := Table8(e1)
	for _, want := range []string{"Min", "Average", "Max", "OutValue"} {
		if !strings.Contains(t8, want) {
			t.Errorf("Table 8 lacks %q", want)
		}
	}
	e2, err := RunE2(Config{Spec: Spec{Grid: 1, Seed: 3, ObservationMs: 4000, E2: inject.E2Spec{RAM: 6, Stack: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	t9 := Table9(e2)
	for _, want := range []string{"RAM", "Stack", "Total", "P(d|fail)"} {
		if !strings.Contains(t9, want) {
			t.Errorf("Table 9 lacks %q", want)
		}
	}
}

func TestComputeHeadline(t *testing.T) {
	e1 := smallE1(t)
	h := ComputeHeadline(e1, nil)
	if h.PdsPercent <= 0 || h.PdsPercent > 100 {
		t.Errorf("Pds = %g", h.PdsPercent)
	}
	if !strings.Contains(h.String(), "74%") {
		t.Error("headline block lacks the paper reference values")
	}
	empty := ComputeHeadline(nil, nil)
	if empty.PdsPercent != 0 {
		t.Error("empty headline not zero")
	}
}

func TestCoverageMergeMatchesTotals(t *testing.T) {
	e1 := smallE1(t)
	var manual stats.Coverage
	for sig := 0; sig < target.NumEAs; sig++ {
		manual.Merge(e1.Coverage[sig][0])
	}
	auto := e1.TotalCoverage(0)
	if manual != auto {
		t.Errorf("manual total %+v != TotalCoverage %+v", manual, auto)
	}
}

func TestFigure2TracesSatisfyOwnParams(t *testing.T) {
	for _, tr := range Figure2Traces(120, 9) {
		m, err := core.NewContinuousSingle(tr.Label, tr.Class, tr.Params)
		if err != nil {
			t.Fatalf("%s: params invalid for %v: %v", tr.Label, tr.Class, err)
		}
		for i, s := range tr.Samples {
			if _, v := m.Test(int64(i), s); v != nil {
				t.Fatalf("%s sample %d: %v", tr.Label, i, v)
			}
		}
	}
}

func TestFigure2Render(t *testing.T) {
	out := Figure2(40, 8, 1)
	if !strings.Contains(out, "(a) random") || !strings.Contains(out, "wrap-around") {
		t.Error("Figure 2 labels missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("Figure 2 has no plotted points")
	}
	lines := strings.Split(Figure2Traces(40, 1)[0].RenderASCII(8), "\n")
	if len(lines) < 9 {
		t.Errorf("plot has %d lines, want label + 8 rows", len(lines))
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Grid != 5 || cfg.ObservationMs != 40000 || cfg.Policy.PeriodMs != 20 {
		t.Errorf("defaults = %+v", cfg)
	}
	if len(cfg.Versions) != 8 {
		t.Errorf("default versions = %d", len(cfg.Versions))
	}
	if cfg.E2.RAM != 150 || cfg.E2.Stack != 50 {
		t.Errorf("default E2 = %+v", cfg.E2)
	}
	if cfg.Workers < 1 {
		t.Error("no workers")
	}
	if _, ok := cfg.Recovery.(core.NoRecovery); !ok {
		t.Error("default recovery is not detection-only")
	}
}

func TestVerifyNominal(t *testing.T) {
	// A small grid passes against every version.
	if err := VerifyNominal(Config{Spec: Spec{Grid: 2, Seed: 5, ObservationMs: 20000}}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyNominalCatchesBadParameters(t *testing.T) {
	// An unreachable observation window means the aircraft has not
	// stopped yet: the verification must complain.
	err := VerifyNominal(Config{Spec: Spec{
		Grid: 1, Seed: 5, ObservationMs: 1000,
		Versions: []target.Version{target.VersionAll},
	}})
	if err == nil {
		t.Fatal("truncated nominal run passed verification")
	}
}

func TestFitModel(t *testing.T) {
	e1 := smallE1(t)
	e2, err := RunE2(Config{Spec: Spec{Grid: 1, Seed: 3, ObservationMs: 6000, E2: inject.E2Spec{RAM: 24, Stack: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitModel(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fit.Model.Validate(); err != nil {
		t.Fatalf("fitted model invalid: %v", err)
	}
	// The model must reconstruct the measured Pdetect exactly (Pprop
	// was solved from it) unless clamped at zero.
	if fit.Model.Pprop > 0 {
		if got := fit.Model.Pdetect(); got < fit.MeasuredPdetect-1e-9 || got > fit.MeasuredPdetect+1e-9 {
			t.Errorf("model Pdetect = %g, measured %g", got, fit.MeasuredPdetect)
		}
	}
	// The direct-hit floor cannot exceed the measurement by more than
	// noise allows in this tiny sample, and Pem matches the layout: 14
	// monitored bytes of 1425 injectable.
	if fit.Model.Pem != 14.0/1425 {
		t.Errorf("Pem = %g", fit.Model.Pem)
	}
	if fit.String() == "" {
		t.Error("empty report")
	}
	// E1 without the All version cannot be fitted.
	bad := &E1Result{Versions: []target.Version{target.VersionEA1}}
	if _, err := FitModel(bad, e2); err == nil {
		t.Error("fit without All version accepted")
	}
}

func TestBreakdownRender(t *testing.T) {
	e1 := smallE1(t)
	out := TestBreakdown(e1, target.VersionAll)
	for _, want := range []string{"Violated assertion", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown lacks %q:\n%s", want, out)
		}
	}
	// The counters guarantee rate and transition firings.
	if !strings.Contains(out, "transition") {
		t.Errorf("no transition detections in breakdown:\n%s", out)
	}
	var total int
	for _, n := range e1.ByTest[0] {
		total += n
	}
	if total == 0 {
		t.Fatal("no per-test accounting")
	}
	if TestBreakdown(e1, target.VersionEA2) != "" {
		t.Error("breakdown for a version not in the result should be empty")
	}
}

// Campaigns are deterministic functions of the seed: identical
// configurations produce identical aggregates.
func TestCampaignDeterminism(t *testing.T) {
	run := func() *E1Result {
		r, err := RunE1(Config{
			Spec: Spec{
				Grid: 1, Seed: 77, ObservationMs: 3000,
				Versions: []target.Version{target.VersionAll},
			},
			Exec: Exec{Workers: 4}, // concurrency must not affect aggregation
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	for sig := 0; sig < target.NumEAs; sig++ {
		if a.Coverage[sig][0] != b.Coverage[sig][0] {
			t.Errorf("signal %d coverage diverged: %+v vs %+v", sig, a.Coverage[sig][0], b.Coverage[sig][0])
		}
		if a.Latency[sig][0] != b.Latency[sig][0] {
			t.Errorf("signal %d latency diverged", sig)
		}
	}
	for id, n := range a.ByTest[0] {
		if b.ByTest[0][id] != n {
			t.Errorf("breakdown diverged for %v: %d vs %d", id, n, b.ByTest[0][id])
		}
	}
}

func TestExportJSON(t *testing.T) {
	e1 := smallE1(t)
	e2, err := RunE2(Config{Spec: Spec{Grid: 1, Seed: 3, ObservationMs: 4000, E2: inject.E2Spec{RAM: 6, Stack: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, e1, e2); err != nil {
		t.Fatal(err)
	}
	var report ReportJSON
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if report.E1 == nil || report.E2 == nil || report.Headline == nil {
		t.Fatal("report missing sections")
	}
	if report.E1.Runs != 112 || len(report.E1.Cells) != 7 || len(report.E1.Totals) != 1 {
		t.Errorf("E1 export shape: runs=%d cells=%d totals=%d", report.E1.Runs, len(report.E1.Cells), len(report.E1.Totals))
	}
	if len(report.E2.Areas) != 3 {
		t.Errorf("E2 export has %d areas", len(report.E2.Areas))
	}
	// The mscnt cell is a 100% cell: percent set, no interval.
	for _, c := range report.E1.Cells {
		if c.Signal == "mscnt" {
			if c.Coverage.All.Percent == nil || *c.Coverage.All.Percent != 100 {
				t.Errorf("mscnt percent = %v", c.Coverage.All.Percent)
			}
			if c.Coverage.All.HalfWidth != nil {
				t.Error("degenerate 100% cell has an interval")
			}
		}
	}
	// Partial-coverage totals carry an interval.
	tot := report.E1.Totals[0]
	if tot.Coverage.All.HalfWidth == nil {
		t.Error("total lacks a confidence interval")
	}
	if len(report.E1.Breakdown["All"]) == 0 {
		t.Error("no breakdown in export")
	}
}
