package experiment

import (
	"path/filepath"
	"sync"
	"testing"

	"easig/internal/inject"
	"easig/internal/journal"
)

// TestPartitionQueuesContiguous checks the queue partition: every batch
// lands in exactly one queue, queues are contiguous blocks in the
// original (case-major) order, and sizes differ by at most one.
func TestPartitionQueuesContiguous(t *testing.T) {
	batches := make([]batch, 10)
	for i := range batches {
		batches[i].caseIdx = i
	}
	queues := PartitionQueues(batches, 4)
	if len(queues) != 4 {
		t.Fatalf("got %d queues, want 4", len(queues))
	}
	next := 0
	min, max := len(batches), 0
	for w, q := range queues {
		if n := len(q.items); n < min {
			min = n
		} else if n > max {
			max = n
		}
		for _, b := range q.items {
			if b.caseIdx != next {
				t.Fatalf("queue %d holds batch %d, want %d (partition not contiguous)", w, b.caseIdx, next)
			}
			next++
		}
	}
	if next != len(batches) {
		t.Fatalf("queues cover %d of %d batches", next, len(batches))
	}
	if max-min > 1 {
		t.Fatalf("queue sizes spread %d..%d; want near-equal", min, max)
	}
}

// TestNextBatchSteals checks the steal path: a worker whose own queue
// is empty claims the stragglers of loaded queues, and claims are
// flagged as stolen.
func TestNextBatchSteals(t *testing.T) {
	batches := make([]batch, 3)
	for i := range batches {
		batches[i].caseIdx = i
	}
	// Worker 1's queue is empty: 3 batches over 2 workers gives worker 0
	// two, worker 1 one — drain worker 1's own first.
	queues := PartitionQueues(batches, 2)
	if b, ok, stole := NextItem(queues, 1); !ok || stole {
		t.Fatalf("own-queue claim: ok=%v stole=%v batch=%d", ok, stole, b.caseIdx)
	}
	for i := 0; i < 2; i++ {
		b, ok, stole := NextItem(queues, 1)
		if !ok || !stole {
			t.Fatalf("steal %d: ok=%v stole=%v batch=%d", i, ok, stole, b.caseIdx)
		}
	}
	if _, ok, _ := NextItem(queues, 1); ok {
		t.Fatal("claimed a batch from fully drained queues")
	}
}

// TestWorkQueueConcurrentClaims is the -race stress on the lock-free
// cursor: many workers hammering take/steal must claim every batch
// exactly once.
func TestWorkQueueConcurrentClaims(t *testing.T) {
	const nBatches, nWorkers = 512, 8
	batches := make([]batch, nBatches)
	for i := range batches {
		batches[i].caseIdx = i
	}
	queues := PartitionQueues(batches, nWorkers)
	var mu sync.Mutex
	claims := make(map[int]int, nBatches)
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b, ok, _ := NextItem(queues, w)
				if !ok {
					return
				}
				mu.Lock()
				claims[b.caseIdx]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(claims) != nBatches {
		t.Fatalf("claimed %d distinct batches, want %d", len(claims), nBatches)
	}
	for i, n := range claims {
		if n != 1 {
			t.Fatalf("batch %d claimed %d times", i, n)
		}
	}
}

// runAtWorkers runs one campaign at a given worker count and returns
// its rendered tables, journal records and metrics.
func runAtWorkers(t *testing.T, exp string, workers int, mode inject.Mode,
	run func(Config) (interface{ renderTables() []string }, journal.Metrics, error)) matrixRow {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	cfg, w, err := equivalenceConfig(31, path, mode)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = workers
	res, metrics, err := run(cfg)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("%s campaign at %d workers: %v", mode, workers, err)
	}
	if got := len(metrics.Workers); got != workers {
		t.Fatalf("metrics report %d workers, want %d", got, workers)
	}
	total := 0
	for _, wm := range metrics.Workers {
		total += wm.Runs
	}
	if total != metrics.Runs {
		t.Fatalf("per-worker runs sum to %d, metrics.Runs = %d", total, metrics.Runs)
	}
	return matrixRow{mode: mode, tables: res.renderTables(), records: loadRecords(t, path, exp)}
}

// TestSchedulerWorkerCountEquivalence is the parallel-scheduler
// acceptance theorem: the same campaign dispatched at 1 and at 8
// workers — per-worker queues, stealing, shared profile cache, shared
// memo merges in nondeterministic order — renders byte-identical
// tables and journals identical per-run outcomes. E1 exercises the
// snapshot engine across every version; E2 under the memo runner
// exercises liveness pruning, cross-worker memoization (the E2 sample
// draws duplicates) and intra-case chunking.
func TestSchedulerWorkerCountEquivalence(t *testing.T) {
	runE1 := func(cfg Config) (interface{ renderTables() []string }, journal.Metrics, error) {
		r, err := RunE1(cfg)
		if err != nil {
			return nil, journal.Metrics{}, err
		}
		return e1Tables{r}, r.Metrics, nil
	}
	runE2 := func(cfg Config) (interface{ renderTables() []string }, journal.Metrics, error) {
		r, err := RunE2(cfg)
		if err != nil {
			return nil, journal.Metrics{}, err
		}
		return e2Tables{r}, r.Metrics, nil
	}

	t.Run("E1-snapshot", func(t *testing.T) {
		one := runAtWorkers(t, ExperimentE1, 1, inject.ModeSnapshot, runE1)
		eight := runAtWorkers(t, ExperimentE1, 8, inject.ModeSnapshot, runE1)
		for i := range one.tables {
			if one.tables[i] != eight.tables[i] {
				t.Errorf("table %d differs between 1 and 8 workers:\n8 workers:\n%s\n1 worker:\n%s",
					i, eight.tables[i], one.tables[i])
			}
		}
		diffRecords(t, "8-workers", eight.records, one.records)
	})
	t.Run("E2-memo", func(t *testing.T) {
		one := runAtWorkers(t, ExperimentE2, 1, inject.ModeMemo, runE2)
		eight := runAtWorkers(t, ExperimentE2, 8, inject.ModeMemo, runE2)
		for i := range one.tables {
			if one.tables[i] != eight.tables[i] {
				t.Errorf("table %d differs between 1 and 8 workers:\n8 workers:\n%s\n1 worker:\n%s",
					i, eight.tables[i], one.tables[i])
			}
		}
		diffRecords(t, "8-workers", eight.records, one.records)
	})
}
