package experiment

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"easig/internal/inject"
	"easig/internal/journal"
	"easig/internal/physics"
	"easig/internal/target"
)

// resumeTestConfig is a scaled E1/E2 campaign small enough for CI but
// large enough that an interruption partway leaves both journaled and
// missing runs.
func resumeTestConfig(seed int64) Config {
	return Config{
		Spec: Spec{
			Grid:          2,
			ObservationMs: 1500,
			Seed:          seed,
			Versions:      []target.Version{target.VersionAll, target.VersionEA4},
			E2:            inject.E2Spec{RAM: 8, Stack: 4},
		},
		Exec: Exec{Workers: 4},
	}
}

func TestE1InterruptResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scaled campaign three times")
	}
	const seed = 424242
	path := filepath.Join(t.TempDir(), "e1.jsonl")

	// Baseline: the uninterrupted campaign.
	baseline, err := RunE1(resumeTestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	wantT7, wantT8 := Table7(baseline), Table8(baseline)

	// Interrupted: cancel partway through via the context path, with
	// every completed run journaled.
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg := resumeTestConfig(seed)
	cfg.Context = ctx
	cfg.Journal = w
	stopAfter := baseline.Runs / 3
	var completed atomic.Int64
	cfg.Progress = func(ev journal.ProgressEvent) {
		if completed.Add(1) == int64(stopAfter) {
			cancel()
		}
	}
	if _, err := RunE1(cfg); err == nil {
		t.Fatal("interrupted campaign returned no error")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign error = %v, want context.Canceled", err)
	}
	cancel()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := journal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(log.Runs); n == 0 || n >= baseline.Runs {
		t.Fatalf("journal holds %d runs, want a strict partial campaign of %d", n, baseline.Runs)
	}
	if h, ok := log.Header(ExperimentE1); !ok || h.Total != baseline.Runs {
		t.Fatalf("journal header = %+v ok=%v, want total %d", h, ok, baseline.Runs)
	}

	// Resumed: replay the journal, dispatch only the missing runs.
	w2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg = resumeTestConfig(seed)
	cfg.Resume = log
	cfg.Journal = w2
	resumed, err := RunE1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if resumed.Runs != baseline.Runs {
		t.Fatalf("resumed campaign collected %d runs, want %d", resumed.Runs, baseline.Runs)
	}
	if resumed.Metrics.Resumed != len(log.Runs) {
		t.Errorf("metrics report %d resumed runs, journal holds %d", resumed.Metrics.Resumed, len(log.Runs))
	}
	if resumed.Metrics.Runs != baseline.Runs-len(log.Runs) {
		t.Errorf("metrics report %d live runs, want %d", resumed.Metrics.Runs, baseline.Runs-len(log.Runs))
	}
	if got := Table7(resumed); got != wantT7 {
		t.Errorf("resumed Table 7 differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", wantT7, got)
	}
	if got := Table8(resumed); got != wantT8 {
		t.Errorf("resumed Table 8 differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", wantT8, got)
	}

	// The journal now holds the complete campaign: a second resume
	// replays everything and executes nothing.
	log, err = journal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg = resumeTestConfig(seed)
	cfg.Resume = log
	full, err := RunE1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Metrics.Runs != 0 || full.Metrics.Resumed != baseline.Runs {
		t.Errorf("complete journal still executed %d live runs (resumed %d)", full.Metrics.Runs, full.Metrics.Resumed)
	}
	if got := Table7(full); got != wantT7 {
		t.Error("fully replayed Table 7 differs from uninterrupted run")
	}
}

func TestE2ResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scaled campaign twice")
	}
	const seed = 99
	path := filepath.Join(t.TempDir(), "e2.jsonl")

	baseline, err := RunE2(resumeTestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	wantT9 := Table9(baseline)

	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg := resumeTestConfig(seed)
	cfg.Context = ctx
	cfg.Journal = w
	var completed atomic.Int64
	cfg.Progress = func(journal.ProgressEvent) {
		if completed.Add(1) == int64(baseline.Runs/2) {
			cancel()
		}
	}
	if _, err := RunE2(cfg); err == nil {
		t.Fatal("interrupted campaign returned no error")
	}
	cancel()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := journal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg = resumeTestConfig(seed)
	cfg.Resume = log
	resumed, err := RunE2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Runs != baseline.Runs {
		t.Fatalf("resumed campaign collected %d runs, want %d", resumed.Runs, baseline.Runs)
	}
	if got := Table9(resumed); got != wantT9 {
		t.Errorf("resumed Table 9 differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", wantT9, got)
	}
}

func TestResumeRejectsForeignJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e1.jsonl")
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeTestConfig(1)
	cfg.Versions = []target.Version{target.VersionEA4}
	cfg.Grid = 1
	cfg.Journal = w
	if _, err := RunE1(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := journal.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	// Same shape, different campaign seed: the header check rejects it.
	bad := cfg
	bad.Journal = nil
	bad.Seed = 2
	bad.Resume = log
	if _, err := RunE1(bad); err == nil {
		t.Error("journal from a different seed accepted")
	} else if !strings.Contains(err.Error(), "seed") {
		t.Errorf("unhelpful mismatch error: %v", err)
	}
}

// TestResumeRejectsRunnerModeMismatch checks the runner assertion on
// the replay path: a journal recorded under one engine mode must not
// be replayed into a campaign dispatching under another, even though
// the modes are outcome-equivalent — a mode switch mid-campaign would
// silently launder an unproven equivalence into the tables.
func TestResumeRejectsRunnerModeMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e1.jsonl")
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeTestConfig(1)
	cfg.Versions = []target.Version{target.VersionEA4}
	cfg.Grid = 1
	cfg.Journal = w
	cfg.Mode = inject.ModeSnapshot
	if _, err := RunE1(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := journal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := log.Header(ExperimentE1); !ok || h.Runner != inject.ModeSnapshot.String() {
		t.Fatalf("journal header runner = %+v ok=%v, want %q", h, ok, inject.ModeSnapshot)
	}

	bad := cfg
	bad.Journal = nil
	bad.Resume = log
	bad.Mode = inject.ModeLiteral
	if _, err := RunE1(bad); err == nil {
		t.Error("journal from a different engine mode accepted")
	} else if !strings.Contains(err.Error(), "engine") {
		t.Errorf("unhelpful mode-mismatch error: %v", err)
	}

	// The matching mode resumes cleanly.
	good := bad
	good.Mode = inject.ModeSnapshot
	if _, err := RunE1(good); err != nil {
		t.Errorf("matching engine mode rejected: %v", err)
	}
}

// TestProgressRateCountsDispatchedRunsOnly pins the throughput contract
// of resumed campaigns: journal-replayed runs land in the aggregators at
// memory speed, so counting them as fresh completions would inflate
// RunsPerSec (and collapse the ETA) the moment a -resume campaign
// starts. Every progress event's rate and ETA must be derived from
// dispatched (live) runs alone.
func TestProgressRateCountsDispatchedRunsOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scaled campaign twice")
	}
	const seed = 31337
	path := filepath.Join(t.TempDir(), "e1.jsonl")

	// Record roughly half the campaign, then resume it.
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg := resumeTestConfig(seed)
	cfg.Context = ctx
	cfg.Journal = w
	total := 0
	var completed atomic.Int64
	cfg.Progress = func(ev journal.ProgressEvent) {
		total = ev.Total
		if completed.Add(1) == int64(ev.Total/2) {
			cancel()
		}
	}
	if _, err := RunE1(cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign error = %v, want context.Canceled", err)
	}
	cancel()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := journal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(log.Runs); n == 0 || n >= total {
		t.Fatalf("journal holds %d of %d runs, want a strict partial campaign", n, total)
	}

	cfg = resumeTestConfig(seed)
	cfg.Resume = log
	events := 0
	cfg.Progress = func(ev journal.ProgressEvent) {
		events++
		live := ev.Completed - ev.Resumed
		if ev.RunsPerSec == 0 {
			return // no live run finished yet (or zero elapsed)
		}
		// The rate must reconcile with the live count, not with
		// Completed: a rate derived from Completed would be off by the
		// resumed share (at least 2x here, since half the campaign
		// replays instantly).
		fromRate := ev.RunsPerSec * ev.Elapsed.Seconds()
		if diff := fromRate - float64(live); diff > 1.5 || diff < -1.5 {
			t.Fatalf("event %d: RunsPerSec %.1f x elapsed %v = %.1f runs, want the %d live runs (completed %d, resumed %d) — replayed runs counted as throughput",
				events, ev.RunsPerSec, ev.Elapsed, fromRate, live, ev.Completed, ev.Resumed)
		}
		if remaining := ev.Total - ev.Completed; remaining > 0 {
			wantETA := time.Duration(float64(remaining) / ev.RunsPerSec * float64(time.Second))
			if d := ev.ETA - wantETA; d > time.Millisecond || d < -time.Millisecond {
				t.Fatalf("event %d: ETA %v, want %v (remaining %d at %.1f live runs/s)",
					events, ev.ETA, wantETA, remaining, ev.RunsPerSec)
			}
		}
	}
	res, err := RunE1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Progress fires once per dispatched run; the replayed share only
	// pre-seeds Completed and Total.
	if events != total-len(log.Runs) {
		t.Errorf("progress delivered %d events, want one per dispatched run (%d)", events, total-len(log.Runs))
	}
	if res.Metrics.Resumed != len(log.Runs) || res.Metrics.Runs != total-len(log.Runs) {
		t.Errorf("metrics live/resumed = %d/%d, want %d/%d",
			res.Metrics.Runs, res.Metrics.Resumed, total-len(log.Runs), len(log.Runs))
	}
}

// TestRunAllCancelsOnWorkerError checks the failure path of the worker
// pool: one failing run must cancel the remaining workers promptly (no
// draining of the full grid) and surface the first error.
func TestRunAllCancelsOnWorkerError(t *testing.T) {
	cases := physics.Grid(2)
	bad := inject.Error{ID: "BAD", SignalIdx: -1, Region: target.RegionRAM, Addr: 0x0000, Bit: 0}
	good := inject.BuildE1()[0]
	var jobs []job
	jobs = append(jobs, job{version: target.VersionAll, errIdx: 0, err: bad, caseIdx: 0, tc: cases[0]})
	for i := 0; i < 400; i++ {
		jobs = append(jobs, job{version: target.VersionAll, errIdx: i + 1, err: good, caseIdx: 0, tc: cases[0]})
	}
	cfg := Config{
		Spec: Spec{
			Grid:          2,
			ObservationMs: 100,
			Policy:        inject.Policy{StartMs: 1, PeriodMs: 20},
			Seed:          7,
		},
		Exec: Exec{Workers: 4},
	}.withDefaults()

	mode, err := cfg.resolveMode()
	if err != nil {
		t.Fatal(err)
	}
	collected := 0
	_, err = runAll(cfg, ExperimentE1, mode, jobs, 0, func(outcome) { collected++ })
	if err == nil {
		t.Fatal("worker error not surfaced")
	}
	if !strings.Contains(err.Error(), "run failed") {
		t.Errorf("unexpected error: %v", err)
	}
	// The bad job fails on its first injection, long before the pool
	// could have drained 400 further jobs; cancellation must stop the
	// grid well short of completion.
	if collected >= len(jobs)/2 {
		t.Errorf("collected %d of %d outcomes after a failing run — workers drained instead of canceling", collected, len(jobs))
	}
}

// TestRunAllParentContext checks that a canceled parent context stops a
// campaign and is reported as an interruption, not a run failure.
func TestRunAllParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := resumeTestConfig(1)
	cfg.Context = ctx
	if _, err := RunE1(cfg); err == nil {
		t.Fatal("pre-canceled context ran the campaign")
	} else if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", err)
	}
}
