package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"easig/internal/inject"
	"easig/internal/journal"
)

// testLease and testBase pin the lease-board clock in tests.
const testLease = time.Minute

func testBase() time.Time { return time.Unix(1_000_000, 0) }

// The distributed campaign's core guarantee (ISSUE 8, SERVICE.md):
// shard journals executed by separate workers merge into tables
// byte-identical to a single-process run — under out-of-order shard
// completion, duplicated run records, a journal truncated mid-batch,
// and a lease-expiry re-execution.

// runE1Shard executes one shard of the campaign as a worker process
// would — the Spec restricted to the shard's cases, journaling to its
// own file — and returns the loaded shard journal.
func runE1Shard(t *testing.T, spec Spec, sh Shard) *journal.Log {
	t.Helper()
	path := filepath.Join(t.TempDir(), "shard.jsonl")
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: spec, Exec: Exec{Workers: 2, Journal: w}}
	cfg.Cases = sh.Cases
	if _, err := RunE1(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := journal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateShardJournal(spec, ExperimentE1, sh, "", log); err != nil {
		t.Fatalf("shard %d journal invalid: %v", sh.Index, err)
	}
	return log
}

// e1Baseline runs the single-process campaign and renders its tables.
func e1Baseline(t *testing.T, spec Spec) (t7, t8 string) {
	t.Helper()
	base, err := RunE1(Config{Spec: spec, Exec: Exec{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	return Table7(base), Table8(base)
}

// mergeE1 merges shard journals and renders the merged tables.
func mergeE1(t *testing.T, spec Spec, logs []*journal.Log) (t7, t8 string) {
	t.Helper()
	res, err := MergeShards(spec, ExperimentE1, inject.ModeAuto, logs)
	if err != nil {
		t.Fatal(err)
	}
	return Table7(res.E1), Table8(res.E1)
}

func TestMergedShardsMatchSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scaled campaign several times")
	}
	spec := shardTestSpec(515151)
	wantT7, wantT8 := e1Baseline(t, spec)

	shards, err := PlanShards(spec, ExperimentE1, 1)
	if err != nil {
		t.Fatal(err)
	}
	logs := make([]*journal.Log, len(shards))
	for i, sh := range shards {
		logs[i] = runE1Shard(t, spec, sh)
	}

	// In plan order.
	t7, t8 := mergeE1(t, spec, logs)
	if t7 != wantT7 || t8 != wantT8 {
		t.Fatal("in-order merged tables differ from the single-process run")
	}

	// Out-of-order shard completion: reversed and interleaved merge
	// orders produce the same bytes.
	rev := []*journal.Log{logs[3], logs[1], logs[2], logs[0]}
	t7, t8 = mergeE1(t, spec, rev)
	if t7 != wantT7 || t8 != wantT8 {
		t.Fatal("out-of-order merged tables differ from the single-process run")
	}

	// Overlapping/duplicate records: shard 2 uploaded twice (the
	// reclaimed-lease race) dedups to the same bytes.
	dup := append([]*journal.Log{logs[2]}, logs...)
	t7, t8 = mergeE1(t, spec, dup)
	if t7 != wantT7 || t8 != wantT8 {
		t.Fatal("duplicate-shard merged tables differ from the single-process run")
	}
}

func TestMergeRejectsTruncatedShardThenRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scaled campaign several times")
	}
	spec := shardTestSpec(626262)
	wantT7, wantT8 := e1Baseline(t, spec)

	shards, err := PlanShards(spec, ExperimentE1, 2)
	if err != nil {
		t.Fatal(err)
	}
	full := make([]*journal.Log, len(shards))
	for i, sh := range shards {
		full[i] = runE1Shard(t, spec, sh)
	}

	// Truncate shard 1's journal mid-batch: write it back without its
	// tail and with the final surviving line cut in half — exactly what
	// a worker killed mid write leaves behind.
	path := filepath.Join(t.TempDir(), "trunc.jsonl")
	wr, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	h := full[1].Headers[0]
	if err := wr.Header(h); err != nil {
		t.Fatal(err)
	}
	for _, rec := range full[1].Runs[:len(full[1].Runs)/2] {
		if err := wr.Run(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	truncated, err := journal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated.Truncated {
		t.Fatal("truncated journal not flagged")
	}

	// The upload validator rejects it, naming the incompleteness.
	if err := ValidateShardJournal(spec, ExperimentE1, shards[1], "", truncated); err == nil ||
		!strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("ValidateShardJournal(truncated) = %v, want incomplete", err)
	}

	// Merging it anyway trips the replay-only guard instead of silently
	// re-executing the lost runs.
	if _, err := MergeShards(spec, ExperimentE1, inject.ModeAuto, []*journal.Log{full[0], truncated}); err == nil ||
		!strings.Contains(err.Error(), "replay-only") {
		t.Fatalf("MergeShards(truncated) = %v, want replay-only error", err)
	}

	// Re-uploading the complete shard journal recovers byte-identical
	// tables.
	t7, t8 := mergeE1(t, spec, []*journal.Log{full[0], truncated, full[1]})
	if t7 != wantT7 || t8 != wantT8 {
		t.Fatal("recovered merged tables differ from the single-process run")
	}
}

func TestLeaseExpiryReclaimMergesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scaled campaign several times")
	}
	spec := shardTestSpec(737373)
	wantT7, wantT8 := e1Baseline(t, spec)

	shards, err := PlanShards(spec, ExperimentE1, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Worker a claims shard 0 and dies mid-shard, leaving a partial
	// journal; after the lease expires, worker b reclaims shard 0 and
	// re-executes it in full.
	board := NewShardBoard("c", ExperimentE1, shards, testLease, nil)
	base := testBase()
	if sh, ok, _ := board.Claim("a", base); !ok || sh.Index != 0 {
		t.Fatal("worker a could not claim shard 0")
	}
	full0 := runE1Shard(t, spec, shards[0])
	partial0 := &journal.Log{
		Headers:   full0.Headers,
		Runs:      full0.Runs[:len(full0.Runs)/3],
		Truncated: true,
	}
	reclaimed := board.ReclaimExpired(base.Add(2 * testLease))
	if len(reclaimed) != 1 || reclaimed[0].Index != 0 {
		t.Fatalf("ReclaimExpired = %+v, want shard 0", reclaimed)
	}
	if sh, ok, _ := board.Claim("b", base.Add(2*testLease)); !ok || sh.Index != 0 {
		t.Fatal("worker b could not reclaim shard 0")
	}
	redone0 := runE1Shard(t, spec, shards[0])
	log1 := runE1Shard(t, spec, shards[1])

	// The merge sees a's partial upload AND b's complete re-execution:
	// overlapping records dedup, and the tables are byte-identical to
	// the single-process campaign.
	res, err := MergeShards(spec, ExperimentE1, inject.ModeAuto, []*journal.Log{partial0, redone0, log1})
	if err != nil {
		t.Fatal(err)
	}
	if Table7(res.E1) != wantT7 || Table8(res.E1) != wantT8 {
		t.Fatal("lease-reclaim merged tables differ from the single-process run")
	}
}

func TestMergedE2MatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scaled campaign several times")
	}
	spec := shardTestSpec(848484)
	base, err := RunE2(Config{Spec: spec, Exec: Exec{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := Table9(base)

	shards, err := PlanShards(spec, ExperimentE2, 2)
	if err != nil {
		t.Fatal(err)
	}
	logs := make([]*journal.Log, len(shards))
	for i, sh := range shards {
		path := filepath.Join(t.TempDir(), "shard.jsonl")
		w, err := journal.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Spec: spec, Exec: Exec{Workers: 2, Journal: w}}
		cfg.Cases = sh.Cases
		if _, err := RunE2(cfg); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if logs[i], err = journal.Load(path); err != nil {
			t.Fatal(err)
		}
		if err := ValidateShardJournal(spec, ExperimentE2, sh, "", logs[i]); err != nil {
			t.Fatalf("shard %d journal invalid: %v", sh.Index, err)
		}
	}
	res, err := MergeShards(spec, ExperimentE2, inject.ModeAuto, []*journal.Log{logs[1], logs[0]})
	if err != nil {
		t.Fatal(err)
	}
	if Table9(res.E2) != want {
		t.Fatal("merged Table 9 differs from the single-process run")
	}
}
