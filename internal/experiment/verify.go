package experiment

import (
	"fmt"

	"easig/internal/inject"
	"easig/internal/physics"
	"easig/internal/target"
)

// VerifyNominal checks the precondition of the paper's §3.4: "All test
// cases are such that if they are run on the target system without
// error injection, none of the error detection mechanisms report
// detection." It runs the fault-free grid against every software
// version and returns an error naming the first test case that
// detects, fails, or overruns the runway.
//
// Campaigns whose assertion parameters have drifted (for example after
// retuning the plant) fail here instead of producing silently polluted
// coverage numbers.
func VerifyNominal(cfg Config) error {
	cfg = cfg.withDefaults()
	cases := physics.Grid(cfg.Grid)
	for _, version := range cfg.Versions {
		for ci, tc := range cases {
			res, err := inject.Run(inject.RunConfig{
				TestCase:        tc,
				Version:         version,
				ObservationMs:   cfg.ObservationMs,
				Seed:            runSeed(cfg.Seed, ci),
				Recovery:        cfg.Recovery,
				Placement:       cfg.Placement,
				FullObservation: true,
			})
			if err != nil {
				return fmt.Errorf("experiment: verifying %v %+v: %w", version, tc, err)
			}
			switch {
			case res.Detected:
				return fmt.Errorf("experiment: nominal run %v %+v reported %d detections (first at %d ms)",
					version, tc, res.Detections, res.FirstDetectionMs)
			case res.Failed:
				return fmt.Errorf("experiment: nominal run %v %+v failed: %v", version, tc, res.Failure)
			case !res.Stopped:
				return fmt.Errorf("experiment: nominal run %v %+v did not arrest (travel %.1f m)",
					version, tc, res.DistanceM)
			}
		}
	}
	return nil
}

// VerifyNominalAllVersions is VerifyNominal over the paper's eight
// versions at full grid scale.
func VerifyNominalAllVersions(seed int64) error {
	return VerifyNominal(Config{Spec: Spec{Seed: seed, Versions: target.Versions()}})
}
