package experiment

import (
	"sync/atomic"

	"easig/internal/inject"
	"easig/internal/target"
)

// This file is the campaign's parallel work-stealing scheduler: how the
// (test case × error-position) grid reaches the worker pool.
//
// Batches are partitioned upfront into per-worker queues in contiguous
// case-major blocks, so a worker mostly stays on few test cases and its
// per-case runners (snapshot engines, memo runners) are reused across
// batches. Each queue is an immutable batch slice with an atomic
// cursor: claiming a batch is one compare-and-swap, with no locks and
// no channel hops. A worker that drains its own queue steals from the
// other queues with the same CAS — idle workers finish the stragglers
// of loaded ones, so a skewed grid (memo batches vary from
// microseconds for all-pruned chunks to seconds for all-live ones)
// still saturates the pool.
//
// The expensive per-case state is shared, not stolen with the batch: an
// inject.ProfileCache computes each case's nominal-prefix snapshot (and
// for memo mode the full-window nominal profile + liveness map) exactly
// once per campaign, and every worker's runner is built from that
// read-only profile. Memoized outcomes cross workers through a
// per-case inject.SharedMemo, merged at batch barriers.
//
// Concurrency contract, structure by structure: WorkQueue claims are a
// single CAS on an atomic cursor over an immutable batch slice (no
// locks, no ABA — the cursor only advances); CaseProfiles are immutable
// after construction and shared read-only; SharedMemo reads are one
// atomic load of an immutable map, writes merge at batch barriers under
// a short mutex; journal appends flow through the writer's single
// drainer goroutine, which coalesces queued lines into 64 KiB
// line-aligned batches. None of this may change a cell of the paper's
// Tables 7-9: per-run seeds depend only on the test case (not the
// worker), the §3.4 protocol's aggregates are order-independent
// integer totals, and journal comparisons key on run coordinates.
// TestWorkQueueConcurrentClaims gates exactly-once batch claims under
// contention, and TestSchedulerWorkerCountEquivalence pins 1-worker vs
// 8-worker campaigns to byte-identical tables and record sets.

// WorkQueue is one worker's share of a work-item list. Take claims the
// next item lock-free; the same method is the steal path when another
// worker calls it. The item type is generic because two sweeps share
// this scheduler: the campaign layer queues version-run batches, and
// the optimizer's lattice sweep (internal/optimize) queues probe
// chunks over the same (case × error) grid.
type WorkQueue[T any] struct {
	items []T
	next  atomic.Int64
}

// Take claims the queue's next item, or reports an empty queue.
func (q *WorkQueue[T]) Take() (T, bool) {
	for {
		i := q.next.Load()
		if i >= int64(len(q.items)) {
			var zero T
			return zero, false
		}
		if q.next.CompareAndSwap(i, i+1) {
			return q.items[i], true
		}
	}
}

// PartitionQueues splits the item list into near-equal contiguous
// blocks, one per worker. Contiguity preserves the case-major item
// order inside each queue, which is what makes per-case runner reuse
// effective.
func PartitionQueues[T any](items []T, workers int) []*WorkQueue[T] {
	queues := make([]*WorkQueue[T], workers)
	per := len(items) / workers
	rem := len(items) % workers
	lo := 0
	for w := 0; w < workers; w++ {
		n := per
		if w < rem {
			n++
		}
		queues[w] = &WorkQueue[T]{items: items[lo : lo+n]}
		lo += n
	}
	return queues
}

// NextItem serves worker w: its own queue first, then a steal sweep
// over the other queues. stole reports whether the item came from
// another worker's queue.
func NextItem[T any](queues []*WorkQueue[T], w int) (item T, ok, stole bool) {
	if item, ok = queues[w].Take(); ok {
		return item, true, false
	}
	for off := 1; off < len(queues); off++ {
		if item, ok = queues[(w+off)%len(queues)].Take(); ok {
			return item, true, true
		}
	}
	var zero T
	return zero, false, false
}

// workerRunners is one worker's runner state: the per-case runners it
// has built so far (reused across every batch of the same case), the
// shared campaign caches they are built from, and the scratch slices
// of the batch loop.
type workerRunners struct {
	cfg    Config
	mode   inject.Mode
	cache  *inject.ProfileCache
	memos  map[int]*inject.SharedMemo
	byCase map[int]inject.Runner

	versions []target.Version
	results  []inject.RunResult
}

func newWorkerRunners(cfg Config, mode inject.Mode, cache *inject.ProfileCache, memos map[int]*inject.SharedMemo) *workerRunners {
	return &workerRunners{
		cfg:    cfg,
		mode:   mode,
		cache:  cache,
		memos:  memos,
		byCase: make(map[int]inject.Runner),
	}
}

// runner returns the worker's runner for b's test case, building it on
// first use. Snapshot engines fast-forward by restoring the shared
// profile snapshot instead of re-simulating the nominal prefix; memo
// runners additionally share the full nominal profile, the liveness
// map and the case's outcome memo.
func (wr *workerRunners) runner(b batch) (inject.Runner, error) {
	if r, ok := wr.byCase[b.caseIdx]; ok {
		return r, nil
	}
	rc := inject.RunConfig{
		TestCase:      b.tc,
		Policy:        wr.cfg.Policy,
		ObservationMs: wr.cfg.ObservationMs,
		Seed:          runSeed(wr.cfg.Seed, b.caseIdx),
		Recovery:      wr.cfg.Recovery,
		Placement:     wr.cfg.Placement,
	}
	var r inject.Runner
	var err error
	switch wr.mode {
	case inject.ModeSnapshot:
		var p *inject.CaseProfile
		if p, err = wr.cache.Get(b.caseIdx, rc, false); err == nil {
			r, err = inject.NewEngineFromProfile(p)
		}
	case inject.ModeMemo:
		var p *inject.CaseProfile
		if p, err = wr.cache.Get(b.caseIdx, rc, true); err == nil {
			r, err = inject.NewMemoRunnerFromProfile(p, wr.memos[b.caseIdx])
		}
	default:
		r, err = inject.NewRunner(wr.mode, rc)
	}
	if err != nil {
		return nil, err
	}
	wr.byCase[b.caseIdx] = r
	return r, nil
}

// stats folds the per-case runners' serving statistics; the worker
// calls it once on exit, so no per-draw synchronization is needed.
func (wr *workerRunners) stats() inject.RunnerStats {
	var st inject.RunnerStats
	for _, r := range wr.byCase {
		if sr, ok := r.(inject.StatsReporter); ok {
			st = st.Add(sr.Stats())
		}
	}
	return st
}

// runBatch serves one batch through the worker's per-case runner: one
// RunError per error with every version the batch's jobs request. At
// the batch barrier the runner's freshly memoized outcomes are merged
// into the case's shared memo.
func (wr *workerRunners) runBatch(b batch, emit func(outcome) bool) error {
	runner, err := wr.runner(b)
	if err != nil {
		return err
	}
	for i := 0; i < len(b.jobs); {
		j := i
		for j < len(b.jobs) && b.jobs[j].errIdx == b.jobs[i].errIdx {
			j++
		}
		group := b.jobs[i:j]
		wr.versions = wr.versions[:0]
		for _, g := range group {
			wr.versions = append(wr.versions, g.version)
		}
		if cap(wr.results) < len(group) {
			wr.results = make([]inject.RunResult, len(group))
		}
		results := wr.results[:len(group)]
		// Zeroed slots, not reused ones: emitted results are retained
		// by the collector, so the runner must not recycle their maps.
		for k := range results {
			results[k] = inject.RunResult{}
		}
		if err := runner.RunError(group[0].err, wr.versions, results); err != nil {
			return err
		}
		for gi, g := range group {
			if !emit(outcome{job: g, res: results[gi]}) {
				return nil
			}
		}
		i = j
	}
	if f, ok := runner.(interface{ FlushShared() }); ok {
		f.FlushShared()
	}
	return nil
}
