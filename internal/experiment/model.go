package experiment

import (
	"fmt"

	"easig/internal/stats"
	"easig/internal/target"
)

// ModelFit connects the two campaigns through the paper's §2.4
// expression Pdetect = (Pen*Pprop + Pem)*Pds:
//
//   - Pds comes from E1 (the Table 7 All-version total),
//   - Pem from the memory layout (monitored-signal bytes over
//     injectable bytes),
//   - Pdetect from E2 (the Table 9 total),
//   - Pprop is solved from the three, quantifying how often a random
//     memory error propagates into a monitored signal.
type ModelFit struct {
	// Model carries Pem, the solved Pprop and the E1-measured Pds.
	Model stats.DetectionModel
	// MeasuredPdetect is E2's overall detection probability.
	MeasuredPdetect float64
	// PredictedUniform is what Pdetect would be if errors never
	// propagated (Pprop = 0): the floor set by direct hits alone.
	PredictedUniform float64
}

// FitModel derives the §2.4 model from campaign results. E1 must
// include the All version; injectableBytes is the total size of the
// injected regions (RAM + stack for the paper's E2).
func FitModel(e1 *E1Result, e2 *E2Result) (ModelFit, error) {
	vi := e1.versionIndex(target.VersionAll)
	if vi < 0 {
		return ModelFit{}, fmt.Errorf("experiment: E1 result lacks the All version")
	}
	pds := e1.TotalCoverage(vi).All.Estimate()
	cov, _, _ := e2.Total()
	pdetect := cov.All.Estimate()
	// The seven monitored 16-bit signals over the injectable bytes.
	pem := stats.PemFromLayout(2*target.NumEAs, target.RAMSize+target.StackSize)
	m := stats.DetectionModel{Pem: pem, Pds: pds}
	floor := m.Pdetect()
	pprop, ok := stats.SolvePprop(pdetect, m)
	if !ok {
		return ModelFit{}, fmt.Errorf("experiment: degenerate model (Pds=%g, Pem=%g)", pds, pem)
	}
	if pprop < 0 {
		pprop = 0 // sampling noise can push the estimate slightly negative
	}
	m.Pprop = pprop
	return ModelFit{
		Model:            m,
		MeasuredPdetect:  pdetect,
		PredictedUniform: floor,
	}, nil
}

// String renders the fit for reports.
func (f ModelFit) String() string {
	return fmt.Sprintf(`Section 2.4 model fit: Pdetect = (Pen*Pprop + Pem)*Pds
  Pds  (from E1, All version):         %.3f
  Pem  (monitored bytes / injectable): %.4f
  Pdetect (from E2):                   %.3f
  direct-hit floor (Pprop = 0):        %.4f
  solved Pprop (propagation rate):     %.3f
`, f.Model.Pds, f.Model.Pem, f.MeasuredPdetect, f.PredictedUniform, f.Model.Pprop)
}
