package experiment

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"easig/internal/journal"
	"easig/internal/target"
)

func TestParseFormat(t *testing.T) {
	for name, want := range map[string]string{
		"": "text", "text": "text", "json": "json",
		"journal": "journal", "jsonl": "journal",
	} {
		f, err := ParseFormat(name)
		if err != nil || f.Name() != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %s", name, f, err, want)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("ParseFormat accepted xml")
	}
}

func TestTextFormatMatchesFicOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scaled campaign")
	}
	spec := shardTestSpec(959595)
	e1, err := RunE1(Config{Spec: spec, Exec: Exec{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := RunE2(Config{Spec: spec, Exec: Exec{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}

	// The byte sequence fic's table-printing path has always produced.
	var want bytes.Buffer
	cases := spec.Grid * spec.Grid
	fmt.Fprintln(&want, Table6(cases))
	fmt.Fprintln(&want, Table7(e1))
	fmt.Fprintln(&want, Table8(e1))
	fmt.Fprintln(&want, TestBreakdown(e1, target.VersionAll))
	fmt.Fprintln(&want, Table9(e2))
	fmt.Fprintln(&want, ComputeHeadline(e1, e2))
	if fit, err := FitModel(e1, e2); err == nil {
		fmt.Fprintln(&want, fit)
	}

	var got bytes.Buffer
	rep := Reporter{Format: TextFormat{}, Output: WriterOutput{W: &got}}
	if err := rep.Report(&Results{Spec: spec, E1: e1, E2: e2}); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("TextFormat diverges from fic's print sequence:\ngot:\n%s\nwant:\n%s", got.String(), want.String())
	}

	// JSONFormat renders the stable export schema.
	var js bytes.Buffer
	if err := (Reporter{Format: JSONFormat{}, Output: WriterOutput{W: &js}}).Report(&Results{Spec: spec, E1: e1, E2: e2}); err != nil {
		t.Fatal(err)
	}
	var wantJS bytes.Buffer
	if err := WriteJSON(&wantJS, e1, e2); err != nil {
		t.Fatal(err)
	}
	if js.String() != wantJS.String() {
		t.Fatal("JSONFormat diverges from WriteJSON")
	}
}

func TestJournalFormatRoundTrips(t *testing.T) {
	spec := shardTestSpec(13)
	log := fakeShardJournal(spec, ExperimentE1, []int{0}, "snapshot")
	log.Claims = []journal.Claim{{Kind: journal.KindClaim, Campaign: "c", Shard: 0, Worker: "w"}}

	path := filepath.Join(t.TempDir(), "out.jsonl")
	rep := Reporter{Format: JournalFormat{}, Output: FileOutput{Path: path}}
	if err := rep.Report(&Results{Spec: spec, Journal: log}); err != nil {
		t.Fatal(err)
	}
	loaded, err := journal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Headers) != 1 || len(loaded.Runs) != len(log.Runs) || len(loaded.Claims) != 1 {
		t.Fatalf("round-tripped journal has %d headers %d runs %d claims, want 1 %d 1",
			len(loaded.Headers), len(loaded.Runs), len(loaded.Claims), len(log.Runs))
	}
	if loaded.Truncated {
		t.Fatal("round-tripped journal flagged truncated")
	}

	// Without a journal the format refuses rather than writing nothing.
	var buf bytes.Buffer
	err = (Reporter{Format: JournalFormat{}, Output: WriterOutput{W: &buf}}).Report(&Results{Spec: spec})
	if err == nil || !strings.Contains(err.Error(), "no journal") {
		t.Fatalf("JournalFormat without journal = %v, want no-journal error", err)
	}
}

func TestFileOutputWriteError(t *testing.T) {
	rep := Reporter{Format: TextFormat{}, Output: FileOutput{Path: filepath.Join(t.TempDir(), "no", "such", "dir.txt")}}
	if err := rep.Report(&Results{}); err == nil {
		t.Fatal("FileOutput created a file under a missing directory")
	}
	if rep := (Reporter{Format: TextFormat{}}); rep.Report(&Results{}) == nil {
		t.Fatal("reporter without an output reported")
	}
}
