package experiment

import (
	"fmt"
	"strings"

	"easig/internal/core"
	"easig/internal/inject"
	"easig/internal/stats"
	"easig/internal/target"
)

// Text renderers for the paper's tables. Each returns a fixed-width
// table matching the corresponding table's rows and columns, so the
// reproduction's output can be diffed against the paper side by side.

// renderGrid lays out rows of cells with padded columns.
func renderGrid(rows [][]string) string {
	widths := map[int]int{}
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table4 renders the signal classification of the target (paper
// Table 4).
func Table4() string {
	rows := [][]string{{"Signal", "Test location", "Class"}}
	names := target.SignalNames()
	classes := target.SignalClasses()
	locs := target.TestLocations()
	for i := range names {
		rows = append(rows, []string{names[i], locs[i], classes[i].String()})
	}
	return "Table 4. Classification of the signals.\n" + renderGrid(rows)
}

// Table6 renders the E1 error-set distribution (paper Table 6) for the
// given test-case count per error.
func Table6(casesPerError int) string {
	errors := inject.BuildE1()
	perSignal := map[string][]inject.Error{}
	for _, e := range errors {
		perSignal[e.Signal] = append(perSignal[e.Signal], e)
	}
	rows := [][]string{{"Signal", "Executable assertion", "# errors (ns)", "Error numbers", "# injections"}}
	for i, name := range target.SignalNames() {
		es := perSignal[name]
		rows = append(rows, []string{
			name,
			fmt.Sprintf("EA%d", i+1),
			fmt.Sprintf("%d", len(es)),
			fmt.Sprintf("%s-%s", es[0].ID, es[len(es)-1].ID),
			fmt.Sprintf("%d", len(es)*casesPerError),
		})
	}
	rows = append(rows, []string{"Total", "-", fmt.Sprintf("%d", len(errors)), "-", fmt.Sprintf("%d", len(errors)*casesPerError)})
	return "Table 6. The distribution of errors in the error set E1.\n" + renderGrid(rows)
}

// Table7 renders the E1 detection probabilities with 95% confidence
// intervals (paper Table 7): one row group per signal with the P(d),
// P(d|fail) and P(d|no fail) measures, one column per version.
func Table7(r *E1Result) string {
	header := []string{"Signal", "Measure"}
	for _, v := range r.Versions {
		header = append(header, v.String())
	}
	rows := [][]string{header}
	appendGroup := func(name string, covs []stats.Coverage) {
		measures := []struct {
			label string
			pick  func(stats.Coverage) stats.Proportion
		}{
			{"P(d)", func(c stats.Coverage) stats.Proportion { return c.All }},
			{"P(d|fail)", func(c stats.Coverage) stats.Proportion { return c.Fail }},
			{"P(d|no fail)", func(c stats.Coverage) stats.Proportion { return c.NoFail }},
		}
		for _, m := range measures {
			row := []string{name, m.label}
			name = "" // only label the first row of the group
			for _, c := range covs {
				p := m.pick(c)
				if p.Detected == 0 {
					// Like the paper, cells with no registered
					// detection are left empty.
					row = append(row, "")
					continue
				}
				row = append(row, m.pick(c).String())
			}
			rows = append(rows, row)
		}
	}
	for sig, name := range target.SignalNames() {
		appendGroup(name, r.Coverage[sig])
	}
	totals := make([]stats.Coverage, len(r.Versions))
	for vi := range r.Versions {
		totals[vi] = r.TotalCoverage(vi)
	}
	appendGroup("Total", totals)
	return "Table 7. Error detection probabilities (%) with confidence intervals at 95%.\n" + renderGrid(rows)
}

// Table8 renders the E1 detection latencies in milliseconds (paper
// Table 8): min/average/max per signal and version, over all detected
// errors.
func Table8(r *E1Result) string {
	header := []string{"Signal", "Latency"}
	for _, v := range r.Versions {
		header = append(header, v.String())
	}
	rows := [][]string{header}
	appendGroup := func(name string, lats []stats.Latency) {
		for li, label := range []string{"Min", "Average", "Max"} {
			row := []string{name, label}
			name = ""
			for _, l := range lats {
				if l.Count() == 0 {
					row = append(row, "")
					continue
				}
				switch li {
				case 0:
					v, _ := l.Min()
					row = append(row, fmt.Sprintf("%d", v))
				case 1:
					v, _ := l.Average()
					row = append(row, fmt.Sprintf("%.0f", v))
				default:
					v, _ := l.Max()
					row = append(row, fmt.Sprintf("%d", v))
				}
			}
			rows = append(rows, row)
		}
	}
	for sig, name := range target.SignalNames() {
		appendGroup(name, r.Latency[sig])
	}
	totals := make([]stats.Latency, len(r.Versions))
	for vi := range r.Versions {
		totals[vi] = r.TotalLatency(vi)
	}
	appendGroup("Total", totals)
	return "Table 8. Error detection latencies for all errors (milliseconds).\n" + renderGrid(rows)
}

// Table9 renders the E2 results (paper Table 9): detection coverage
// and latency per memory area.
func Table9(r *E2Result) string {
	rows := [][]string{{"Area", "Measure", "Value", "Latency (all)", "Latency (failures)"}}
	appendArea := func(label string, cov stats.Coverage, lat, latFail stats.Latency) {
		latCell := func(l stats.Latency, pick int) string {
			if l.Count() == 0 {
				return ""
			}
			switch pick {
			case 0:
				v, _ := l.Min()
				return fmt.Sprintf("Min %d", v)
			case 1:
				v, _ := l.Average()
				return fmt.Sprintf("Average %.0f", v)
			default:
				v, _ := l.Max()
				return fmt.Sprintf("Max %d", v)
			}
		}
		cells := []struct {
			measure string
			p       stats.Proportion
		}{
			{"P(d)", cov.All},
			{"P(d|fail)", cov.Fail},
			{"P(d|no fail)", cov.NoFail},
		}
		for i, c := range cells {
			rows = append(rows, []string{label, c.measure, c.p.String(), latCell(lat, i), latCell(latFail, i)})
			label = ""
		}
	}
	appendArea("RAM", *r.Coverage[target.RegionRAM], *r.LatencyAll[target.RegionRAM], *r.LatencyFail[target.RegionRAM])
	appendArea("Stack", *r.Coverage[target.RegionStack], *r.LatencyAll[target.RegionStack], *r.LatencyFail[target.RegionStack])
	cov, lat, latFail := r.Total()
	appendArea("Total", cov, lat, latFail)
	return "Table 9. Results for error set E2.\n" + renderGrid(rows)
}

// TestBreakdown renders the per-constraint detection breakdown of one
// E1 version: how many violations each generic assertion kind (value
// bound, rate window, domain membership, transition legality) raised.
// The paper does not tabulate this, but it explains the coverage
// structure: counters are caught by rate and transition tests,
// continuous signals mostly by value bounds.
func TestBreakdown(r *E1Result, version target.Version) string {
	vi := r.versionIndex(version)
	if vi < 0 {
		return ""
	}
	ids := []core.TestID{
		core.TestMax, core.TestMin, core.TestIncrease, core.TestDecrease,
		core.TestUnchanged, core.TestDomain, core.TestTransition,
	}
	var total int
	for _, id := range ids {
		total += r.ByTest[vi][id]
	}
	rows := [][]string{{"Violated assertion", "Count", "Share"}}
	for _, id := range ids {
		n := r.ByTest[vi][id]
		if n == 0 {
			continue
		}
		share := ""
		if total > 0 {
			share = fmt.Sprintf("%.1f%%", float64(n)*100/float64(total))
		}
		rows = append(rows, []string{id.String(), fmt.Sprintf("%d", n), share})
	}
	rows = append(rows, []string{"total", fmt.Sprintf("%d", total), ""})
	return fmt.Sprintf("Detection breakdown by violated assertion (%v version).\n", version) + renderGrid(rows)
}

// Headline summarises the paper's headline numbers from campaign
// results: overall Pds, Pds for failing runs, average All-version
// latency, and the E2 RAM P(d|fail).
type Headline struct {
	// PdsPercent is the overall detection probability for errors in
	// monitored signals, All version (paper: 74%).
	PdsPercent float64
	// PdsFailPercent is the same conditioned on failing runs
	// (paper: >99%).
	PdsFailPercent float64
	// AvgLatencyAllMs is the average detection latency of the All
	// version (paper: 511 ms).
	AvgLatencyAllMs float64
	// E2RAMFailPercent is the E2 P(d|fail) in the RAM area
	// (paper: 81%).
	E2RAMFailPercent float64
	// E2StackFailPercent is the E2 P(d|fail) in the stack area
	// (paper: 13.7%).
	E2StackFailPercent float64
}

// ComputeHeadline extracts the headline numbers; e2 may be nil when
// only E1 ran.
func ComputeHeadline(e1 *E1Result, e2 *E2Result) Headline {
	var h Headline
	if e1 != nil {
		if vi := e1.versionIndex(target.VersionAll); vi >= 0 {
			cov := e1.TotalCoverage(vi)
			h.PdsPercent = r0(cov.All.Percent())
			h.PdsFailPercent = r0(cov.Fail.Percent())
			if avg, ok := e1.TotalLatency(vi).Average(); ok {
				h.AvgLatencyAllMs = avg
			}
		}
	}
	if e2 != nil {
		h.E2RAMFailPercent = r0(e2.Coverage[target.RegionRAM].Fail.Percent())
		h.E2StackFailPercent = r0(e2.Coverage[target.RegionStack].Fail.Percent())
	}
	return h
}

// r0 maps NaN (no failing runs) to 0 for report stability.
func r0(v float64) float64 {
	if v != v {
		return 0
	}
	return v
}

// String renders the headline comparison block.
func (h Headline) String() string {
	return fmt.Sprintf(`Headline results (paper -> measured):
  Pds overall (All version):        74%%   -> %.1f%%
  Pds for errors causing failure:  >99%%   -> %.1f%%
  Average detection latency (All): 511 ms -> %.0f ms
  E2 P(d|fail) in RAM:              81%%   -> %.1f%%
  E2 P(d|fail) in stack:            13.7%% -> %.1f%%
`, h.PdsPercent, h.PdsFailPercent, h.AvgLatencyAllMs, h.E2RAMFailPercent, h.E2StackFailPercent)
}
