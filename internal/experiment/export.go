package experiment

import (
	"encoding/json"
	"io"

	"easig/internal/stats"
	"easig/internal/target"
)

// Machine-readable export of campaign results, for downstream analysis
// outside this repository (plotting, regression tracking). The schema
// is stable: field renames are breaking changes.

// ProportionJSON is one coverage estimate with its 95% interval.
type ProportionJSON struct {
	Detected  int      `json:"detected"`
	Total     int      `json:"total"`
	Percent   *float64 `json:"percent,omitempty"`
	HalfWidth *float64 `json:"half_width_95,omitempty"`
}

func proportionJSON(p stats.Proportion) ProportionJSON {
	out := ProportionJSON{Detected: p.Detected, Total: p.Total}
	if p.Valid() {
		pc := p.Percent()
		out.Percent = &pc
		if hw, ok := p.HalfWidth95(); ok {
			out.HalfWidth = &hw
		}
	}
	return out
}

// CoverageJSON groups the three conditional estimates of a table cell.
type CoverageJSON struct {
	All    ProportionJSON `json:"all"`
	Fail   ProportionJSON `json:"fail"`
	NoFail ProportionJSON `json:"no_fail"`
}

func coverageJSON(c stats.Coverage) CoverageJSON {
	return CoverageJSON{
		All:    proportionJSON(c.All),
		Fail:   proportionJSON(c.Fail),
		NoFail: proportionJSON(c.NoFail),
	}
}

// LatencyJSON is one latency aggregate in milliseconds.
type LatencyJSON struct {
	Count int      `json:"count"`
	MinMs *int64   `json:"min_ms,omitempty"`
	AvgMs *float64 `json:"avg_ms,omitempty"`
	MaxMs *int64   `json:"max_ms,omitempty"`
}

func latencyJSON(l stats.Latency) LatencyJSON {
	out := LatencyJSON{Count: l.Count()}
	if mn, ok := l.Min(); ok {
		out.MinMs = &mn
	}
	if avg, ok := l.Average(); ok {
		out.AvgMs = &avg
	}
	if mx, ok := l.Max(); ok {
		out.MaxMs = &mx
	}
	return out
}

// E1CellJSON is one (signal, version) cell of Tables 7 and 8.
type E1CellJSON struct {
	Signal   string       `json:"signal"`
	Version  string       `json:"version"`
	Coverage CoverageJSON `json:"coverage"`
	Latency  LatencyJSON  `json:"latency"`
}

// E1JSON is the machine-readable E1 campaign result.
type E1JSON struct {
	Experiment string                    `json:"experiment"`
	Runs       int                       `json:"runs"`
	Cells      []E1CellJSON              `json:"cells"`
	Totals     []E1CellJSON              `json:"totals"`
	Breakdown  map[string]map[string]int `json:"breakdown_by_test"`
}

// ExportE1 converts an E1 result to its export form.
func ExportE1(r *E1Result) E1JSON {
	out := E1JSON{
		Experiment: "E1",
		Runs:       r.Runs,
		Breakdown:  map[string]map[string]int{},
	}
	names := target.SignalNames()
	for vi, v := range r.Versions {
		for sig, name := range names {
			out.Cells = append(out.Cells, E1CellJSON{
				Signal:   name,
				Version:  v.String(),
				Coverage: coverageJSON(r.Coverage[sig][vi]),
				Latency:  latencyJSON(r.Latency[sig][vi]),
			})
		}
		out.Totals = append(out.Totals, E1CellJSON{
			Signal:   "total",
			Version:  v.String(),
			Coverage: coverageJSON(r.TotalCoverage(vi)),
			Latency:  latencyJSON(r.TotalLatency(vi)),
		})
		byTest := map[string]int{}
		for id, n := range r.ByTest[vi] {
			byTest[id.String()] = n
		}
		out.Breakdown[v.String()] = byTest
	}
	return out
}

// E2AreaJSON is one memory area of Table 9.
type E2AreaJSON struct {
	Area        string       `json:"area"`
	Coverage    CoverageJSON `json:"coverage"`
	LatencyAll  LatencyJSON  `json:"latency_all"`
	LatencyFail LatencyJSON  `json:"latency_failures"`
}

// E2JSON is the machine-readable E2 campaign result.
type E2JSON struct {
	Experiment string       `json:"experiment"`
	Runs       int          `json:"runs"`
	Areas      []E2AreaJSON `json:"areas"`
}

// ExportE2 converts an E2 result to its export form.
func ExportE2(r *E2Result) E2JSON {
	out := E2JSON{Experiment: "E2", Runs: r.Runs}
	for _, region := range []string{target.RegionRAM, target.RegionStack} {
		out.Areas = append(out.Areas, E2AreaJSON{
			Area:        region,
			Coverage:    coverageJSON(*r.Coverage[region]),
			LatencyAll:  latencyJSON(*r.LatencyAll[region]),
			LatencyFail: latencyJSON(*r.LatencyFail[region]),
		})
	}
	cov, lat, latFail := r.Total()
	out.Areas = append(out.Areas, E2AreaJSON{
		Area:        "total",
		Coverage:    coverageJSON(cov),
		LatencyAll:  latencyJSON(lat),
		LatencyFail: latencyJSON(latFail),
	})
	return out
}

// ReportJSON bundles both campaigns with the headline and model fit.
type ReportJSON struct {
	E1       *E1JSON   `json:"e1,omitempty"`
	E2       *E2JSON   `json:"e2,omitempty"`
	Headline *Headline `json:"headline,omitempty"`
	Model    *ModelFit `json:"model_fit,omitempty"`
}

// WriteJSON writes the bundled report as indented JSON.
func WriteJSON(w io.Writer, e1 *E1Result, e2 *E2Result) error {
	var report ReportJSON
	if e1 != nil {
		x := ExportE1(e1)
		report.E1 = &x
	}
	if e2 != nil {
		x := ExportE2(e2)
		report.E2 = &x
	}
	if e1 != nil || e2 != nil {
		h := ComputeHeadline(e1, e2)
		report.Headline = &h
	}
	if e1 != nil && e2 != nil {
		if fit, err := FitModel(e1, e2); err == nil {
			report.Model = &fit
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
