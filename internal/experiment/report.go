package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"easig/internal/inject"
	"easig/internal/journal"
	"easig/internal/target"
)

// The runner/reporter split: campaigns produce Results, and a Reporter
// — a Format (how results render) paired with an Output (where the
// rendering goes) — turns them into the paper's tables. fic, the ficd
// service and cmd/bench all render through this one path, so the text a
// CI job diffs, the body an HTTP client downloads and the tables an
// operator reads in a terminal are byte-identical by construction.

// Results bundles the outputs of a campaign (one or both experiments)
// with the Spec that produced them — everything a Format needs to
// render the paper's tables, and nothing about how the runs were
// executed or distributed.
type Results struct {
	// Spec is the campaign protocol the results were measured under.
	Spec Spec `json:"spec"`
	// E1 holds the Tables 7-8 aggregates when E1 ran.
	E1 *E1Result `json:"-"`
	// E2 holds the Table 9 aggregates when E2 (or the exhaustive
	// census) ran.
	E2 *E2Result `json:"-"`
	// Journal, when non-nil, is the campaign's run journal (for a
	// distributed campaign: the merged shard journals). JournalFormat
	// renders it; the table formats ignore it.
	Journal *journal.Log `json:"-"`
}

// Format renders Results in one concrete representation.
type Format interface {
	// Name identifies the format ("text", "json", "journal") — the
	// value of fic's -format flag and ficd's ?format query parameter.
	Name() string
	// Render writes the formatted results to w.
	Render(w io.Writer, r *Results) error
}

// Output is a sink for one rendered report.
type Output interface {
	// Emit runs render against the output's destination.
	Emit(render func(io.Writer) error) error
}

// Reporter pairs a Format with an Output.
type Reporter struct {
	Format Format
	Output Output
}

// Report renders the results through the reporter's format into its
// output.
func (rep Reporter) Report(r *Results) error {
	if rep.Format == nil || rep.Output == nil {
		return fmt.Errorf("experiment: reporter needs both a format and an output")
	}
	return rep.Output.Emit(func(w io.Writer) error {
		return rep.Format.Render(w, r)
	})
}

// TextFormat renders the paper's fixed-width tables — the same bytes
// fic has always printed: Table 6 and Tables 7-8 with the detection
// breakdown for E1, Table 9 (plus the measured-Pdetect and runner lines
// of an exhaustive census) for E2, then the headline block and, when
// both experiments ran, the analytical model fit. The byte-for-byte
// stability of this rendering is what lets the CI smoke job diff a
// distributed campaign's merged tables against a single-process run.
type TextFormat struct{}

// Name returns "text".
func (TextFormat) Name() string { return "text" }

// Render writes the text tables.
func (TextFormat) Render(w io.Writer, r *Results) error {
	cfg := Config{Spec: r.Spec}.withDefaults()
	cases := cfg.Grid * cfg.Grid
	if r.E1 != nil {
		if _, err := fmt.Fprintln(w, Table6(cases)); err != nil {
			return err
		}
		fmt.Fprintln(w, Table7(r.E1))
		fmt.Fprintln(w, Table8(r.E1))
		fmt.Fprintln(w, TestBreakdown(r.E1, target.VersionAll))
	}
	if r.E2 != nil {
		if _, err := fmt.Fprintln(w, Table9(r.E2)); err != nil {
			return err
		}
		if r.Spec.Exhaustive {
			cov, _, _ := r.E2.Total()
			fmt.Fprintf(w, "Measured Pdetect over the full fault space (%d positions x %d cases): %.2f%%\n",
				len(inject.BuildExhaustive()), cases, cov.All.Percent())
			m := r.E2.Metrics
			fmt.Fprintf(w, "Runner: %s — %d errors served: %d simulated, %d pruned benign (%.1f%%), %d memo hits (%.1f%%)\n",
				m.Runner, m.Errors, m.Simulated,
				m.Pruned, 100*m.PruneRate,
				m.MemoHits, 100*m.MemoHitRate)
		}
	}
	if r.E1 != nil || r.E2 != nil {
		if _, err := fmt.Fprintln(w, ComputeHeadline(r.E1, r.E2)); err != nil {
			return err
		}
	}
	if r.E1 != nil && r.E2 != nil {
		if fit, err := FitModel(r.E1, r.E2); err == nil {
			if _, err := fmt.Fprintln(w, fit); err != nil {
				return err
			}
		}
	}
	return nil
}

// JSONFormat renders the machine-readable export (export.go's stable
// schema): cells, totals, breakdowns, headline and model fit as one
// indented JSON document.
type JSONFormat struct{}

// Name returns "json".
func (JSONFormat) Name() string { return "json" }

// Render writes the JSON export.
func (JSONFormat) Render(w io.Writer, r *Results) error {
	return WriteJSON(w, r.E1, r.E2)
}

// JournalFormat renders Results.Journal as JSONL journal lines —
// headers, then run records, then shard-ledger claims. This is the
// format behind ficd's journal download endpoint: a client can fetch a
// distributed campaign's merged journal and replay it locally with
// `fic -resume`. Within each kind, file order is preserved (which is
// all replay requires: Lookup is order-insensitive for runs, and claims
// replay latest-wins per shard).
type JournalFormat struct{}

// Name returns "journal".
func (JournalFormat) Name() string { return "journal" }

// Render writes the journal lines.
func (JournalFormat) Render(w io.Writer, r *Results) error {
	if r.Journal == nil {
		return fmt.Errorf("experiment: results carry no journal to render")
	}
	enc := json.NewEncoder(w)
	for _, h := range r.Journal.Headers {
		h.Kind = journal.KindHeader
		if err := enc.Encode(h); err != nil {
			return err
		}
	}
	for _, rec := range r.Journal.Runs {
		rec.Kind = journal.KindRun
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, c := range r.Journal.Claims {
		if err := enc.Encode(c); err != nil {
			return err
		}
	}
	return nil
}

// ParseFormat resolves a format name ("text", "json", "journal"/
// "jsonl") to its Format.
func ParseFormat(name string) (Format, error) {
	switch name {
	case "", "text":
		return TextFormat{}, nil
	case "json":
		return JSONFormat{}, nil
	case "journal", "jsonl":
		return JournalFormat{}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown report format %q (want text, json or journal)", name)
	}
}

// WriterOutput emits to an io.Writer — stdout, a buffer, or an HTTP
// response.
type WriterOutput struct{ W io.Writer }

// Emit renders into the writer.
func (o WriterOutput) Emit(render func(io.Writer) error) error {
	return render(o.W)
}

// FileOutput emits to a file, created (truncating) at Emit time.
type FileOutput struct{ Path string }

// Emit creates the file and renders into it.
func (o FileOutput) Emit(render func(io.Writer) error) error {
	f, err := os.Create(o.Path)
	if err != nil {
		return fmt.Errorf("experiment: creating report %s: %w", o.Path, err)
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
