// Package experiment reproduces the paper's evaluation: the E1 and E2
// error-injection campaigns (§3.4), the coverage and latency tables
// (Tables 6-9) and the Figure 2 example traces. Campaigns are
// deterministic functions of their seed and run in parallel across a
// worker pool; they can journal every run, report live progress, and
// resume an interrupted campaign from its journal with byte-identical
// tables (see internal/journal and ARCHITECTURE.md).
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"easig/internal/core"
	"easig/internal/inject"
	"easig/internal/journal"
	"easig/internal/physics"
	"easig/internal/stats"
	"easig/internal/target"
)

// Experiment names used in journal headers, records and progress
// events: the paper's two §3.4 error-injection campaigns.
const (
	// ExperimentE1 is the single-bit error set over monitored signals
	// (Tables 7 and 8).
	ExperimentE1 = "E1"
	// ExperimentE2 is the random RAM/stack error set (Table 9).
	ExperimentE2 = "E2"
	// ExperimentExhaustive is the full RAM/stack fault space (every
	// (byte, bit) position — 11 400 errors) that replaces E2's
	// 200-error sample when Spec.Exhaustive is set. It journals under
	// its own name so an exhaustive journal can never be replayed into
	// a sampled campaign (the error indices mean different errors).
	ExperimentExhaustive = "E2-exhaustive"
)

// Spec is the serializable protocol of a campaign: everything that
// determines WHICH runs exist and what their outcomes are. Two
// campaigns with equal Specs produce byte-identical tables regardless
// of their Exec options (engine mode, worker count, journaling) — that
// is the equivalence contract the runner matrix tests enforce, and it
// is what makes Spec the wire format for a future campaign service
// (ROADMAP item 1): a Spec can be marshalled, shipped and re-run.
type Spec struct {
	// Grid is the test-case grid edge: Grid*Grid <mass, velocity>
	// cases (default 5, the paper's 25 test cases).
	Grid int `json:"grid,omitempty"`
	// ObservationMs is the per-run observation window (default the
	// paper's 40 s).
	ObservationMs int64 `json:"observation_ms,omitempty"`
	// Policy is the injection schedule (default 20 ms period).
	Policy inject.Policy `json:"policy,omitempty"`
	// Seed derives all per-run seeds and the E2 error sample.
	Seed int64 `json:"seed,omitempty"`
	// E2 sizes the random error set (default 150 RAM + 50 stack).
	E2 inject.E2Spec `json:"e2,omitempty"`
	// Exhaustive replaces the E2 sample with the full fault space:
	// every (byte, bit) position of RAM and stack (8 × 1425 = 11 400
	// errors), turning the paper's estimated Pdetect into a measured
	// one. Runs as ExperimentExhaustive; E2 sizing is ignored.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Versions lists the software versions exercised by E1 (default
	// the paper's eight: EA1..EA7 and All).
	Versions []target.Version `json:"versions,omitempty"`
	// Placement selects consumer-side (paper) or producer-side
	// assertion execution (ablation).
	Placement target.Placement `json:"placement,omitempty"`
	// Cases, when non-empty, restricts the campaign to the listed
	// test-case indices of the Grid (0 <= index < Grid*Grid). This is
	// the shard selector of a distributed campaign (SERVICE.md): a
	// shard worker runs the campaign Spec with Cases set to its claimed
	// shard, and because every per-run seed is a function of the
	// campaign seed and the GLOBAL case index only, the shard's journal
	// records are byte-identical to the same runs of a single-process
	// campaign — which is what makes merging shard journals sound.
	Cases []int `json:"cases,omitempty"`
}

// Exec is the execution side of a campaign: how the Spec's runs are
// dispatched. None of it may change a single table cell.
type Exec struct {
	// Mode selects the execution engine behind the runs:
	// inject.ModeAuto (the zero value) resolves to the snapshot engine
	// for detection-only campaigns and to literal from-scratch runs
	// otherwise; ModeMemo adds liveness pruning and outcome
	// memoization on top of the snapshot engine. Snapshot and memo
	// modes are rejected for campaigns with an active recovery policy
	// (their equivalence argument needs detection-only runs).
	Mode inject.Mode
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// Recovery overrides the assertion recovery policy (default
	// detection-only, core.NoRecovery; see inject.RunConfig).
	Recovery core.RecoveryPolicy
	// Context, when non-nil, cancels an in-flight campaign: workers
	// stop promptly, the journal keeps every completed run, and the
	// campaign returns the context's error.
	Context context.Context
	// Journal, when non-nil, receives one record per completed run
	// (run coordinates, derived seed, detected/failed/latency/ByTest),
	// appended by the journal's writer goroutine. An interrupted
	// campaign can later be resumed from the file via Resume.
	Journal *journal.Writer
	// Resume, when non-nil, replays the loaded journal's outcomes
	// straight into the aggregators and dispatches only the missing
	// runs. Because per-run seeds are deterministic functions of the
	// campaign seed and run coordinates (see runSeed), a resumed
	// campaign reproduces the uninterrupted campaign's tables byte for
	// byte; a journal recorded under a different configuration — seed,
	// grid or runner mode — is rejected.
	Resume *journal.Log
	// Progress, when non-nil, is called from the collector goroutine
	// after every completed or replayed run with throughput,
	// completed/total and ETA.
	Progress func(journal.ProgressEvent)
	// ReplayOnly asserts that Resume covers the whole campaign: every
	// run must replay from the journal and none may be dispatched. It
	// is the merge guard of a distributed campaign — a missing record
	// in the merged shard journals means a shard was lost, and silently
	// re-executing it here would mask the loss instead of surfacing it
	// (see MergeShards and SERVICE.md's failure-mode table).
	ReplayOnly bool
}

// Config parameterises a campaign: the serializable protocol Spec plus
// the Exec dispatch options. The zero value runs the paper's full
// protocol on the auto-resolved engine; tests scale Grid and Errors
// down. Both halves' fields are promoted, so cfg.Grid and cfg.Workers
// read as before the split.
type Config struct {
	Spec
	Exec
}

func (c Config) withDefaults() Config {
	if c.Grid <= 0 {
		c.Grid = 5
	}
	if c.ObservationMs <= 0 {
		c.ObservationMs = inject.DefaultObservationMs
	}
	if c.Policy.PeriodMs <= 0 {
		c.Policy = inject.DefaultPolicy()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Recovery == nil {
		c.Recovery = core.NoRecovery{}
	}
	if c.E2.RAM == 0 && c.E2.Stack == 0 {
		c.E2 = inject.DefaultE2Spec()
	}
	if len(c.Versions) == 0 {
		c.Versions = target.Versions()
	}
	return c
}

// runSeed derives a deterministic per-run seed from the campaign seed
// and the run's test case, using splitmix64 mixing. The seed is a
// function of the test case ONLY — not of the version or the error —
// because that is what the real FIC3 protocol implies and what the
// fast-forward engine requires: every error of a test case replays the
// same arrestment (the same sensor-noise sequence), the injected error
// is the only difference between runs, and the version build does not
// touch the plant. One nominal prefix snapshot per test case therefore
// serves every (version, error) run of that case.
func runSeed(campaign int64, caseIdx int) int64 {
	x := uint64(campaign) ^ 0x9E3779B97F4A7C15
	x += (uint64(caseIdx) + 1) * 0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x & 0x7FFFFFFFFFFFFFFF)
}

// RunSeed exposes the campaign seed derivation to other sweeps over the
// same grid — the optimizer's lattice sweep (internal/optimize) derives
// its per-probe seeds with it, so an optimizer journal is checkable
// against the same determinism contract as a campaign journal.
func RunSeed(campaign int64, caseIdx int) int64 { return runSeed(campaign, caseIdx) }

// gridCase pairs a test case with its GLOBAL grid index; the index, not
// the position in a shard's case subset, keys journal records and
// per-run seeds.
type gridCase struct {
	idx int
	tc  physics.TestCase
}

// gridCases resolves the campaign's test cases: the full Grid*Grid set,
// or the Spec.Cases shard subset (validated against the grid bounds,
// with duplicates rejected — a duplicate case would double-count every
// run of that case in the tables).
func (c Config) gridCases() ([]gridCase, error) {
	all := physics.Grid(c.Grid)
	if len(c.Cases) == 0 {
		out := make([]gridCase, len(all))
		for i, tc := range all {
			out[i] = gridCase{idx: i, tc: tc}
		}
		return out, nil
	}
	seen := make(map[int]bool, len(c.Cases))
	out := make([]gridCase, 0, len(c.Cases))
	for _, idx := range c.Cases {
		if idx < 0 || idx >= len(all) {
			return nil, fmt.Errorf("experiment: case index %d out of range for a %dx%d grid", idx, c.Grid, c.Grid)
		}
		if seen[idx] {
			return nil, fmt.Errorf("experiment: case index %d listed twice", idx)
		}
		seen[idx] = true
		out = append(out, gridCase{idx: idx, tc: all[idx]})
	}
	return out, nil
}

// job is one run descriptor handed to the worker pool.
type job struct {
	version target.Version
	errIdx  int
	err     inject.Error
	caseIdx int
	tc      physics.TestCase
}

// outcome pairs a job with its run result.
type outcome struct {
	job job
	res inject.RunResult
}

// record converts one live outcome into its journal form.
func record(exp string, o outcome, seed int64) journal.Record {
	rec := journal.Record{
		Experiment: exp,
		Version:    int(o.job.version),
		ErrIdx:     o.job.errIdx,
		ErrID:      o.job.err.ID,
		CaseIdx:    o.job.caseIdx,
		Seed:       seed,
		Detected:   o.res.Detected,
		Failed:     o.res.Failed,
		LatencyMs:  o.res.LatencyMs,
	}
	if len(o.res.ByTest) > 0 {
		rec.ByTest = make(map[int]int, len(o.res.ByTest))
		for id, n := range o.res.ByTest {
			rec.ByTest[int(id)] = n
		}
	}
	return rec
}

// replayed converts a journaled record back into the outcome the
// aggregators would have collected live. Only the aggregated fields
// (detected/failed/latency/ByTest) round-trip; plant readouts do not,
// which is fine because no table consumes them.
func replayed(j job, rec journal.Record) outcome {
	res := inject.RunResult{
		Detected:  rec.Detected,
		Failed:    rec.Failed,
		LatencyMs: rec.LatencyMs,
	}
	if len(rec.ByTest) > 0 {
		res.ByTest = make(map[core.TestID]int, len(rec.ByTest))
		for id, n := range rec.ByTest {
			res.ByTest[core.TestID(id)] = n
		}
	}
	return outcome{job: j, res: res}
}

// partition splits the campaign jobs into journaled outcomes (to be
// replayed straight into the aggregators) and live jobs still to
// dispatch. It enforces the resume soundness checks: the journal's
// header must match the live configuration — seed, grid AND resolved
// runner mode — and every replayed record's stored seed must equal the
// seed re-derived from the run coordinates. The mode check closes the
// double-counting hole where e.g. a memo-mode journal would silently
// extend a literal-mode campaign: the engines are equivalence-tested,
// but a mixed-provenance table could no longer be attributed to either.
// Journals written before the Runner API carry no mode and resume under
// any engine.
func partition(cfg Config, exp string, mode inject.Mode, jobs []job) (live []job, replay []outcome, err error) {
	if cfg.Resume == nil {
		return jobs, nil, nil
	}
	if h, ok := cfg.Resume.Header(exp); ok {
		if h.Seed != cfg.Seed || h.Grid != cfg.Grid {
			return nil, nil, fmt.Errorf("experiment: journal was recorded for %s seed %d grid %d, not seed %d grid %d",
				exp, h.Seed, h.Grid, cfg.Seed, cfg.Grid)
		}
		if h.Runner != "" && h.Runner != mode.String() {
			return nil, nil, fmt.Errorf("experiment: journal was recorded by the %s engine, campaign resolves to %s — rerun with -engine=%s or a fresh journal",
				h.Runner, mode, h.Runner)
		}
	}
	byKey := cfg.Resume.Lookup(exp)
	if len(byKey) == 0 {
		return jobs, nil, nil
	}
	for _, j := range jobs {
		rec, ok := byKey[journal.Key{Version: int(j.version), ErrIdx: j.errIdx, CaseIdx: j.caseIdx}]
		if !ok {
			live = append(live, j)
			continue
		}
		if want := runSeed(cfg.Seed, j.caseIdx); rec.Seed != want {
			return nil, nil, fmt.Errorf("experiment: journaled %s run %s case %d has seed %d, want %d — journal is from a different campaign",
				exp, j.err.ID, j.caseIdx, rec.Seed, want)
		}
		replay = append(replay, replayed(j, rec))
	}
	return live, replay, nil
}

// checkReplayOnly enforces Exec.ReplayOnly after partitioning: a
// replay-only campaign (the merge step of a distributed campaign) must
// find every run in its journal.
func (c Config) checkReplayOnly(exp string, live []job, total int) error {
	if !c.ReplayOnly || len(live) == 0 {
		return nil
	}
	return fmt.Errorf("experiment: replay-only %s campaign is missing %d of %d journaled runs (first missing: version %d error %d case %d) — a shard journal is absent or incomplete",
		exp, len(live), total, int(live[0].version), live[0].errIdx, live[0].caseIdx)
}

// resolveMode resolves the configured engine mode against the recovery
// policy: auto picks snapshot for detection-only campaigns and literal
// otherwise; explicit snapshot/memo with active recovery is an error.
func (c Config) resolveMode() (inject.Mode, error) {
	return c.Mode.Resolve(c.Recovery)
}

// engineBatchErrors is the number of errors a worker serves from one
// fast-forwarded snapshot before handing control back to the pool: big
// enough to amortise the per-batch scheduling cost, small enough to
// keep the pool load-balanced on scaled grids.
const engineBatchErrors = 8

// memoBatchErrors is the memo-mode chunk. PR 6 scheduled each test
// case as ONE batch because splitting it would have rebuilt the
// expensive per-case liveness profile per chunk and hidden duplicate
// draws from the memo; with the profile and the memo shared through
// inject.ProfileCache and inject.SharedMemo that restriction is gone,
// and chunking lets the exhaustive census parallelize WITHIN a case
// (11 400 error positions per case versus only 25 cases). The chunk is
// larger than the snapshot engine's because most memo-mode errors are
// served by the liveness pruner in microseconds.
const memoBatchErrors = 64

// batch is the engine-mode work unit: a chunk of live jobs that share
// one test case, sorted so jobs of the same error are adjacent.
type batch struct {
	caseIdx int
	tc      physics.TestCase
	jobs    []job
}

// buildBatches groups the live jobs by test case and chunks each case's
// errors, preserving a deterministic order. The chunking follows the
// per-batch cost profile: literal runs share nothing (single-job
// batches, the old per-run dispatch); the snapshot engine serves
// chunks of engineBatchErrors from its restored checkpoint; the memo
// runner serves larger chunks (memoBatchErrors) because liveness-
// pruned errors cost microseconds. The per-case liveness profile and
// outcome memo that once forced whole-case memo batches now live in
// the campaign-wide ProfileCache/SharedMemo, shared by every chunk.
func buildBatches(live []job, mode inject.Mode) []batch {
	if mode == inject.ModeLiteral {
		batches := make([]batch, 0, len(live))
		for _, j := range live {
			batches = append(batches, batch{caseIdx: j.caseIdx, tc: j.tc, jobs: []job{j}})
		}
		return batches
	}
	chunk := engineBatchErrors
	if mode == inject.ModeMemo {
		chunk = memoBatchErrors
	}
	type caseKey struct {
		caseIdx int
		tc      physics.TestCase
	}
	perCase := make(map[caseKey]map[int][]job)
	var caseOrder []caseKey
	for _, j := range live {
		k := caseKey{j.caseIdx, j.tc}
		if perCase[k] == nil {
			perCase[k] = make(map[int][]job)
			caseOrder = append(caseOrder, k)
		}
		perCase[k][j.errIdx] = append(perCase[k][j.errIdx], j)
	}
	var batches []batch
	for _, k := range caseOrder {
		errIdxs := make([]int, 0, len(perCase[k]))
		for ei := range perCase[k] {
			errIdxs = append(errIdxs, ei)
		}
		sort.Ints(errIdxs)
		for from := 0; from < len(errIdxs); from += chunk {
			to := from + chunk
			if to > len(errIdxs) {
				to = len(errIdxs)
			}
			b := batch{caseIdx: k.caseIdx, tc: k.tc}
			for _, ei := range errIdxs[from:to] {
				b.jobs = append(b.jobs, perCase[k][ei]...)
			}
			batches = append(batches, b)
		}
	}
	return batches
}

// runAll executes the live jobs across the pool and streams outcomes to
// collect (called from a single goroutine, which also feeds the journal
// writer and the progress hook). Batches shaped for the resolved engine
// mode are partitioned into per-worker queues; workers claim them with
// a lock-free cursor and steal from each other's queues when their own
// drains (see scheduler.go). Per-case profiles are computed once per
// campaign in an inject.ProfileCache and shared read-only by every
// worker's runner; memo-mode workers additionally share each case's
// outcome memo, merged at batch barriers. The first worker error
// cancels the remaining workers via the run context, so a failing
// campaign stops promptly and the journal records a clean interruption
// point; the parent cfg.Context cancels the same way. The returned
// metrics cover the live runs (resumed only sizes the progress totals)
// and fold in the runners' prune/memo-hit accounting.
func runAll(cfg Config, exp string, mode inject.Mode, jobs []job, resumed int, collect func(outcome)) (journal.Metrics, error) {
	parent := cfg.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	total := resumed + len(jobs)
	if cfg.Journal != nil {
		if err := cfg.Journal.Header(journal.Header{
			Experiment: exp,
			Seed:       cfg.Seed,
			Grid:       cfg.Grid,
			Total:      total,
			Runner:     mode.String(),
		}); err != nil {
			return journal.Metrics{}, err
		}
	}

	batches := buildBatches(jobs, mode)
	queues := PartitionQueues(batches, cfg.Workers)
	cache := inject.NewProfileCache()
	var memos map[int]*inject.SharedMemo
	if mode == inject.ModeMemo {
		memos = make(map[int]*inject.SharedMemo)
		for _, b := range batches {
			if memos[b.caseIdx] == nil {
				memos[b.caseIdx] = &inject.SharedMemo{}
			}
		}
	}

	out := make(chan outcome)
	errCh := make(chan error, 1)
	busy := make([]time.Duration, cfg.Workers)
	runs := make([]int, cfg.Workers)
	stolen := make([]int, cfg.Workers)
	rstats := make([]inject.RunnerStats, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			wr := newWorkerRunners(cfg, mode, cache, memos)
			defer func() { rstats[w] = rstats[w].Add(wr.stats()) }()
			emit := func(o outcome) bool {
				select {
				case out <- o:
					runs[w]++
					return true
				case <-ctx.Done():
					return false
				}
			}
			for ctx.Err() == nil {
				b, ok, stole := NextItem(queues, w)
				if !ok {
					return
				}
				if stole {
					stolen[w]++
				}
				began := time.Now()
				err := wr.runBatch(b, emit)
				busy[w] += time.Since(began)
				if err != nil {
					select {
					case errCh <- err:
					default:
					}
					cancel()
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	start := time.Now()
	completed := resumed
	var journalErr error
	for o := range out {
		collect(o)
		completed++
		if cfg.Journal != nil && journalErr == nil {
			seed := runSeed(cfg.Seed, o.job.caseIdx)
			if err := cfg.Journal.Run(record(exp, o, seed)); err != nil {
				journalErr = err
				cancel()
			}
		}
		if cfg.Progress != nil {
			ev := journal.ProgressEvent{
				Experiment: exp,
				Completed:  completed,
				Resumed:    resumed,
				Total:      total,
				Elapsed:    time.Since(start),
			}
			if live := completed - resumed; ev.Elapsed > 0 && live > 0 {
				ev.RunsPerSec = float64(live) / ev.Elapsed.Seconds()
				ev.ETA = time.Duration(float64(total-completed) / ev.RunsPerSec * float64(time.Second))
			}
			cfg.Progress(ev)
		}
	}

	wall := time.Since(start)
	metrics := journal.Metrics{
		Experiment: exp,
		Runs:       completed - resumed,
		Resumed:    resumed,
		WallMs:     wall.Milliseconds(),
		Runner:     mode.String(),
	}
	if wall > 0 {
		metrics.RunsPerSec = float64(metrics.Runs) / wall.Seconds()
	}
	var st inject.RunnerStats
	for _, s := range rstats {
		st = st.Add(s)
	}
	metrics.Errors = st.Errors
	metrics.Simulated = st.Simulated
	metrics.Pruned = st.Pruned
	metrics.MemoHits = st.MemoHits
	metrics.PruneRate = st.PruneRate()
	metrics.MemoHitRate = st.MemoHitRate()
	for w := 0; w < cfg.Workers; w++ {
		wm := journal.WorkerMetrics{Worker: w, Runs: runs[w], BusyMs: busy[w].Milliseconds(), Stolen: stolen[w]}
		if wall > 0 {
			wm.Utilization = float64(busy[w]) / float64(wall)
		}
		metrics.Workers = append(metrics.Workers, wm)
	}

	switch {
	case journalErr != nil:
		return metrics, journalErr
	case len(errCh) > 0:
		return metrics, fmt.Errorf("experiment: run failed: %w", <-errCh)
	case parent.Err() != nil:
		return metrics, fmt.Errorf("experiment: campaign interrupted: %w", parent.Err())
	default:
		return metrics, nil
	}
}

// E1Result aggregates the E1 campaign into the cells of the paper's
// Tables 7 and 8: per (signal, version) coverage and latency, with
// per-version totals.
type E1Result struct {
	// Versions lists the exercised versions in column order.
	Versions []target.Version
	// Coverage is indexed [signal][versionIdx].
	Coverage [target.NumEAs][]stats.Coverage
	// Latency is indexed [signal][versionIdx]; it aggregates all
	// detected errors (failing and non-failing runs), as Table 8 does.
	Latency [target.NumEAs][]stats.Latency
	// ByTest is indexed [versionIdx] and counts violations per
	// violated assertion kind (which Table 2/3 constraint fired),
	// aggregated over all runs of that version.
	ByTest []map[core.TestID]int
	// Runs is the number of collected runs (live plus replayed).
	Runs int
	// Metrics summarizes the campaign's execution (throughput, wall
	// time, per-worker utilization).
	Metrics journal.Metrics
}

// versionIndex returns the column of v in r.Versions.
func (r *E1Result) versionIndex(v target.Version) int {
	for i, x := range r.Versions {
		if x == v {
			return i
		}
	}
	return -1
}

// TotalCoverage folds the per-signal coverage of one version column
// into the Table 7 "Total" row.
func (r *E1Result) TotalCoverage(versionIdx int) stats.Coverage {
	var total stats.Coverage
	for sig := 0; sig < target.NumEAs; sig++ {
		total.Merge(r.Coverage[sig][versionIdx])
	}
	return total
}

// TotalLatency folds the per-signal latency of one version column into
// the Table 8 "Total" row.
func (r *E1Result) TotalLatency(versionIdx int) stats.Latency {
	var total stats.Latency
	for sig := 0; sig < target.NumEAs; sig++ {
		total.Merge(r.Latency[sig][versionIdx])
	}
	return total
}

// RunE1 executes the E1 campaign: every error of Table 6 against every
// test case of the grid, once per software version (the paper's
// 2800 x 8 = 22 400 runs at full scale).
func RunE1(cfg Config) (*E1Result, error) {
	cfg = cfg.withDefaults()
	mode, err := cfg.resolveMode()
	if err != nil {
		return nil, err
	}
	errors := inject.BuildE1()
	cases, err := cfg.gridCases()
	if err != nil {
		return nil, err
	}
	res := &E1Result{Versions: cfg.Versions}
	for sig := range res.Coverage {
		res.Coverage[sig] = make([]stats.Coverage, len(cfg.Versions))
		res.Latency[sig] = make([]stats.Latency, len(cfg.Versions))
	}
	res.ByTest = make([]map[core.TestID]int, len(cfg.Versions))
	for i := range res.ByTest {
		res.ByTest[i] = make(map[core.TestID]int)
	}
	var jobs []job
	for _, v := range cfg.Versions {
		for ei, e := range errors {
			for _, gc := range cases {
				jobs = append(jobs, job{version: v, errIdx: ei, err: e, caseIdx: gc.idx, tc: gc.tc})
			}
		}
	}
	collect := func(o outcome) {
		vi := res.versionIndex(o.job.version)
		sig := o.job.err.SignalIdx
		res.Coverage[sig][vi].Add(o.res.Detected, o.res.Failed)
		if o.res.Detected {
			res.Latency[sig][vi].Add(o.res.LatencyMs)
		}
		for id, n := range o.res.ByTest {
			res.ByTest[vi][id] += n
		}
		res.Runs++
	}
	live, replay, err := partition(cfg, ExperimentE1, mode, jobs)
	if err != nil {
		return nil, err
	}
	if err := cfg.checkReplayOnly(ExperimentE1, live, len(jobs)); err != nil {
		return nil, err
	}
	for _, o := range replay {
		collect(o)
	}
	res.Metrics, err = runAll(cfg, ExperimentE1, mode, live, len(replay), collect)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// E2Result aggregates the E2 campaign into the paper's Table 9: RAM,
// stack and total coverage, plus the two latency aggregates the table
// reports (all detected errors, and detected errors of failing runs).
type E2Result struct {
	// Coverage maps region name ("ram", "stack") to its coverage.
	Coverage map[string]*stats.Coverage
	// LatencyAll maps region name to the latency over all detections.
	LatencyAll map[string]*stats.Latency
	// LatencyFail maps region name to the latency over detections in
	// failing runs.
	LatencyFail map[string]*stats.Latency
	// Runs is the number of collected runs (live plus replayed).
	Runs int
	// Metrics summarizes the campaign's execution (throughput, wall
	// time, per-worker utilization).
	Metrics journal.Metrics
}

// Total folds the regions into the Table 9 "Total" row.
func (r *E2Result) Total() (stats.Coverage, stats.Latency, stats.Latency) {
	var cov stats.Coverage
	var lat, latFail stats.Latency
	for _, c := range r.Coverage {
		cov.Merge(*c)
	}
	for _, l := range r.LatencyAll {
		lat.Merge(*l)
	}
	for _, l := range r.LatencyFail {
		latFail.Merge(*l)
	}
	return cov, lat, latFail
}

// RunE2 executes the E2 campaign: the random error set against every
// test case of the grid, on the All-assertions version (the paper's
// 5000 runs at full scale). With Spec.Exhaustive it swaps the 200-error
// sample for the full 11 400-position fault space and journals as
// ExperimentExhaustive.
func RunE2(cfg Config) (*E2Result, error) {
	cfg = cfg.withDefaults()
	mode, err := cfg.resolveMode()
	if err != nil {
		return nil, err
	}
	exp := ExperimentE2
	errors := inject.BuildE2(cfg.E2, cfg.Seed)
	if cfg.Exhaustive {
		exp = ExperimentExhaustive
		errors = inject.BuildExhaustive()
	}
	cases, err := cfg.gridCases()
	if err != nil {
		return nil, err
	}
	res := &E2Result{
		Coverage:    map[string]*stats.Coverage{},
		LatencyAll:  map[string]*stats.Latency{},
		LatencyFail: map[string]*stats.Latency{},
	}
	for _, region := range []string{target.RegionRAM, target.RegionStack} {
		res.Coverage[region] = &stats.Coverage{}
		res.LatencyAll[region] = &stats.Latency{}
		res.LatencyFail[region] = &stats.Latency{}
	}
	var jobs []job
	for ei, e := range errors {
		for _, gc := range cases {
			jobs = append(jobs, job{version: target.VersionAll, errIdx: ei, err: e, caseIdx: gc.idx, tc: gc.tc})
		}
	}
	collect := func(o outcome) {
		region := o.job.err.Region
		res.Coverage[region].Add(o.res.Detected, o.res.Failed)
		if o.res.Detected {
			res.LatencyAll[region].Add(o.res.LatencyMs)
			if o.res.Failed {
				res.LatencyFail[region].Add(o.res.LatencyMs)
			}
		}
		res.Runs++
	}
	live, replay, err := partition(cfg, exp, mode, jobs)
	if err != nil {
		return nil, err
	}
	if err := cfg.checkReplayOnly(exp, live, len(jobs)); err != nil {
		return nil, err
	}
	for _, o := range replay {
		collect(o)
	}
	res.Metrics, err = runAll(cfg, exp, mode, live, len(replay), collect)
	if err != nil {
		return nil, err
	}
	return res, nil
}
