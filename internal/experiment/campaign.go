// Package experiment reproduces the paper's evaluation: the E1 and E2
// error-injection campaigns (§3.4), the coverage and latency tables
// (Tables 6-9) and the Figure 2 example traces. Campaigns are
// deterministic functions of their seed and run in parallel across a
// worker pool.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"easig/internal/core"
	"easig/internal/inject"
	"easig/internal/physics"
	"easig/internal/stats"
	"easig/internal/target"
)

// Config parameterises a campaign. The zero value runs the paper's
// full protocol; tests scale Grid and Errors down.
type Config struct {
	// Grid is the test-case grid edge: Grid*Grid <mass, velocity>
	// cases (default 5, the paper's 25 test cases).
	Grid int
	// ObservationMs is the per-run observation window (default the
	// paper's 40 s).
	ObservationMs int64
	// Policy is the injection schedule (default 20 ms period).
	Policy inject.Policy
	// Seed derives all per-run seeds and the E2 error sample.
	Seed int64
	// Workers bounds the worker pool (default GOMAXPROCS).
	Workers int
	// Recovery overrides the assertion recovery policy (default
	// detection-only, core.NoRecovery; see inject.RunConfig).
	Recovery core.RecoveryPolicy
	// E2 sizes the random error set (default 150 RAM + 50 stack).
	E2 inject.E2Spec
	// Versions lists the software versions exercised by E1 (default
	// the paper's eight: EA1..EA7 and All).
	Versions []target.Version
	// Placement selects consumer-side (paper) or producer-side
	// assertion execution (ablation).
	Placement target.Placement
}

func (c Config) withDefaults() Config {
	if c.Grid <= 0 {
		c.Grid = 5
	}
	if c.ObservationMs <= 0 {
		c.ObservationMs = inject.DefaultObservationMs
	}
	if c.Policy.PeriodMs <= 0 {
		c.Policy = inject.DefaultPolicy()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Recovery == nil {
		c.Recovery = core.NoRecovery{}
	}
	if c.E2.RAM == 0 && c.E2.Stack == 0 {
		c.E2 = inject.DefaultE2Spec()
	}
	if len(c.Versions) == 0 {
		c.Versions = target.Versions()
	}
	return c
}

// runSeed derives a deterministic per-run seed from the campaign seed
// and the run coordinates, using splitmix64 mixing.
func runSeed(campaign int64, version target.Version, errIdx, caseIdx int) int64 {
	x := uint64(campaign) ^ 0x9E3779B97F4A7C15
	for _, v := range []uint64{uint64(int64(version)) + 1, uint64(errIdx) + 1, uint64(caseIdx) + 1} {
		x += v * 0xBF58476D1CE4E5B9
		x ^= x >> 30
		x *= 0x94D049BB133111EB
		x ^= x >> 31
	}
	return int64(x & 0x7FFFFFFFFFFFFFFF)
}

// job is one run descriptor handed to the worker pool.
type job struct {
	version target.Version
	errIdx  int
	err     inject.Error
	caseIdx int
	tc      physics.TestCase
}

// outcome pairs a job with its run result.
type outcome struct {
	job job
	res inject.RunResult
}

// runAll executes the jobs across the pool and streams outcomes to
// collect (called from a single goroutine).
func runAll(cfg Config, jobs []job, collect func(outcome)) error {
	in := make(chan job)
	out := make(chan outcome)
	errCh := make(chan error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			failed := false
			for j := range in {
				if failed {
					continue // drain remaining jobs after a failure
				}
				e := j.err
				res, err := inject.Run(inject.RunConfig{
					TestCase:      j.tc,
					Version:       j.version,
					Error:         &e,
					Policy:        cfg.Policy,
					ObservationMs: cfg.ObservationMs,
					Seed:          runSeed(cfg.Seed, j.version, j.errIdx, j.caseIdx),
					Recovery:      cfg.Recovery,
					Placement:     cfg.Placement,
				})
				if err != nil {
					errCh <- err
					failed = true
					continue
				}
				out <- outcome{job: j, res: res}
			}
		}()
	}
	go func() {
		for _, j := range jobs {
			in <- j
		}
		close(in)
		wg.Wait()
		close(out)
	}()
	for o := range out {
		collect(o)
	}
	select {
	case err := <-errCh:
		return fmt.Errorf("experiment: run failed: %w", err)
	default:
		return nil
	}
}

// E1Result aggregates the E1 campaign into the cells of the paper's
// Tables 7 and 8: per (signal, version) coverage and latency, with
// per-version totals.
type E1Result struct {
	// Versions lists the exercised versions in column order.
	Versions []target.Version
	// Coverage is indexed [signal][versionIdx].
	Coverage [target.NumEAs][]stats.Coverage
	// Latency is indexed [signal][versionIdx]; it aggregates all
	// detected errors (failing and non-failing runs), as Table 8 does.
	Latency [target.NumEAs][]stats.Latency
	// ByTest is indexed [versionIdx] and counts violations per
	// violated assertion kind (which Table 2/3 constraint fired),
	// aggregated over all runs of that version.
	ByTest []map[core.TestID]int
	// Runs is the number of executed runs.
	Runs int
}

// versionIndex returns the column of v in r.Versions.
func (r *E1Result) versionIndex(v target.Version) int {
	for i, x := range r.Versions {
		if x == v {
			return i
		}
	}
	return -1
}

// TotalCoverage folds the per-signal coverage of one version column
// into the Table 7 "Total" row.
func (r *E1Result) TotalCoverage(versionIdx int) stats.Coverage {
	var total stats.Coverage
	for sig := 0; sig < target.NumEAs; sig++ {
		total.Merge(r.Coverage[sig][versionIdx])
	}
	return total
}

// TotalLatency folds the per-signal latency of one version column into
// the Table 8 "Total" row.
func (r *E1Result) TotalLatency(versionIdx int) stats.Latency {
	var total stats.Latency
	for sig := 0; sig < target.NumEAs; sig++ {
		total.Merge(r.Latency[sig][versionIdx])
	}
	return total
}

// RunE1 executes the E1 campaign: every error of Table 6 against every
// test case of the grid, once per software version (the paper's
// 2800 x 8 = 22 400 runs at full scale).
func RunE1(cfg Config) (*E1Result, error) {
	cfg = cfg.withDefaults()
	errors := inject.BuildE1()
	cases := physics.Grid(cfg.Grid)
	res := &E1Result{Versions: cfg.Versions}
	for sig := range res.Coverage {
		res.Coverage[sig] = make([]stats.Coverage, len(cfg.Versions))
		res.Latency[sig] = make([]stats.Latency, len(cfg.Versions))
	}
	res.ByTest = make([]map[core.TestID]int, len(cfg.Versions))
	for i := range res.ByTest {
		res.ByTest[i] = make(map[core.TestID]int)
	}
	var jobs []job
	for _, v := range cfg.Versions {
		for ei, e := range errors {
			for ci, tc := range cases {
				jobs = append(jobs, job{version: v, errIdx: ei, err: e, caseIdx: ci, tc: tc})
			}
		}
	}
	err := runAll(cfg, jobs, func(o outcome) {
		vi := res.versionIndex(o.job.version)
		sig := o.job.err.SignalIdx
		res.Coverage[sig][vi].Add(o.res.Detected, o.res.Failed)
		if o.res.Detected {
			res.Latency[sig][vi].Add(o.res.LatencyMs)
		}
		for id, n := range o.res.ByTest {
			res.ByTest[vi][id] += n
		}
		res.Runs++
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// E2Result aggregates the E2 campaign into the paper's Table 9: RAM,
// stack and total coverage, plus the two latency aggregates the table
// reports (all detected errors, and detected errors of failing runs).
type E2Result struct {
	// Coverage maps region name ("ram", "stack") to its coverage.
	Coverage map[string]*stats.Coverage
	// LatencyAll maps region name to the latency over all detections.
	LatencyAll map[string]*stats.Latency
	// LatencyFail maps region name to the latency over detections in
	// failing runs.
	LatencyFail map[string]*stats.Latency
	// Runs is the number of executed runs.
	Runs int
}

// Total folds the regions into the Table 9 "Total" row.
func (r *E2Result) Total() (stats.Coverage, stats.Latency, stats.Latency) {
	var cov stats.Coverage
	var lat, latFail stats.Latency
	for _, c := range r.Coverage {
		cov.Merge(*c)
	}
	for _, l := range r.LatencyAll {
		lat.Merge(*l)
	}
	for _, l := range r.LatencyFail {
		latFail.Merge(*l)
	}
	return cov, lat, latFail
}

// RunE2 executes the E2 campaign: the random error set against every
// test case of the grid, on the All-assertions version (the paper's
// 5000 runs at full scale).
func RunE2(cfg Config) (*E2Result, error) {
	cfg = cfg.withDefaults()
	errors := inject.BuildE2(cfg.E2, cfg.Seed)
	cases := physics.Grid(cfg.Grid)
	res := &E2Result{
		Coverage:    map[string]*stats.Coverage{},
		LatencyAll:  map[string]*stats.Latency{},
		LatencyFail: map[string]*stats.Latency{},
	}
	for _, region := range []string{target.RegionRAM, target.RegionStack} {
		res.Coverage[region] = &stats.Coverage{}
		res.LatencyAll[region] = &stats.Latency{}
		res.LatencyFail[region] = &stats.Latency{}
	}
	var jobs []job
	for ei, e := range errors {
		for ci, tc := range cases {
			jobs = append(jobs, job{version: target.VersionAll, errIdx: ei, err: e, caseIdx: ci, tc: tc})
		}
	}
	err := runAll(cfg, jobs, func(o outcome) {
		region := o.job.err.Region
		res.Coverage[region].Add(o.res.Detected, o.res.Failed)
		if o.res.Detected {
			res.LatencyAll[region].Add(o.res.LatencyMs)
			if o.res.Failed {
				res.LatencyFail[region].Add(o.res.LatencyMs)
			}
		}
		res.Runs++
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
