package experiment

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"easig/internal/inject"
	"easig/internal/journal"
	"easig/internal/target"
)

// This file is the cross-process half of campaign scaling (ROADMAP
// item 1): the shard plan that cuts a campaign's (error × case ×
// version) grid into claimable work units, the lease state machine that
// hands shards to worker processes and reclaims them from crashed ones,
// and the merge step that folds completed shard journals back into the
// paper's Tables 7-9.
//
// Sharding is by test case. The determinism contract (ARCHITECTURE.md)
// derives every per-run seed from the campaign seed and the GLOBAL
// test-case index alone — runSeed(seed, caseIdx) — so a shard executed
// on any machine, any number of times, in any order produces journal
// records byte-identical to the same runs of a single-process campaign.
// That is what makes the whole protocol boring in the best sense:
// re-execution after a lease expiry is idempotent, merge order is
// irrelevant, and the merged tables are proved byte-identical by test
// (merge_test.go) and by the CI smoke job.

// Shard is one claimable work unit of a distributed campaign: a block
// of test-case indices plus the run count it contributes.
type Shard struct {
	// Index is the shard's position in the campaign's shard plan.
	Index int `json:"index"`
	// Cases lists the global grid case indices the shard covers.
	Cases []int `json:"cases"`
	// Runs is the number of (version, error, case) runs in the shard.
	Runs int `json:"runs"`
}

// ExperimentName canonicalizes a submitted campaign kind ("e1", "e2",
// "exhaustive") against the Spec into the journal experiment name.
func ExperimentName(kind string, spec Spec) (string, error) {
	switch kind {
	case "e1", "E1":
		return ExperimentE1, nil
	case "e2", "E2":
		if spec.Exhaustive {
			return ExperimentExhaustive, nil
		}
		return ExperimentE2, nil
	case "exhaustive", ExperimentExhaustive:
		return ExperimentExhaustive, nil
	default:
		return "", fmt.Errorf("experiment: unknown campaign kind %q (want e1, e2 or exhaustive)", kind)
	}
}

// errorCount returns the size of the experiment's error set under the
// Spec (after defaulting), without materializing E2's random sample.
func (s Spec) errorCount(exp string) (int, error) {
	switch exp {
	case ExperimentE1:
		return len(inject.BuildE1()), nil
	case ExperimentE2:
		e2 := s.E2
		if e2.RAM == 0 && e2.Stack == 0 {
			e2 = inject.DefaultE2Spec()
		}
		return e2.RAM + e2.Stack, nil
	case ExperimentExhaustive:
		return len(inject.BuildExhaustive()), nil
	default:
		return 0, fmt.Errorf("experiment: unknown experiment %q", exp)
	}
}

// shardVersions returns the version set the experiment exercises: E1
// runs the Spec's version list, E2 only the All-assertions build.
func (s Spec) shardVersions(exp string) []target.Version {
	if exp == ExperimentE1 {
		if len(s.Versions) == 0 {
			return target.Versions()
		}
		return s.Versions
	}
	return []target.Version{target.VersionAll}
}

// PlanShards cuts the campaign Spec into shards of casesPerShard
// contiguous test cases (the last shard may be smaller). The plan is a
// pure function of (Spec, experiment, casesPerShard): every service
// restart and every worker derives the same plan, so shard indices are
// stable identifiers across processes.
func PlanShards(spec Spec, exp string, casesPerShard int) ([]Shard, error) {
	cfg := Config{Spec: spec}.withDefaults()
	if len(spec.Cases) != 0 {
		return nil, fmt.Errorf("experiment: a sharded campaign Spec must cover the full grid (Spec.Cases is the per-shard selector)")
	}
	if casesPerShard <= 0 {
		casesPerShard = 1
	}
	nErr, err := cfg.Spec.errorCount(exp)
	if err != nil {
		return nil, err
	}
	runsPerCase := nErr * len(cfg.Spec.shardVersions(exp))
	nCases := cfg.Grid * cfg.Grid
	var shards []Shard
	for lo := 0; lo < nCases; lo += casesPerShard {
		hi := lo + casesPerShard
		if hi > nCases {
			hi = nCases
		}
		sh := Shard{Index: len(shards), Cases: make([]int, 0, hi-lo)}
		for c := lo; c < hi; c++ {
			sh.Cases = append(sh.Cases, c)
		}
		sh.Runs = runsPerCase * len(sh.Cases)
		shards = append(shards, sh)
	}
	return shards, nil
}

// ExpectedShardKeys enumerates the exact run coordinates a shard's
// journal must contain, mapped to their required per-run seeds. The
// service validates every uploaded shard journal against this set: a
// missing key means the upload is incomplete (e.g. truncated by a
// worker crash mid-batch), a foreign key means the worker ran the wrong
// shard, and a wrong seed means it ran a different campaign.
func ExpectedShardKeys(spec Spec, exp string, cases []int) (map[journal.Key]int64, error) {
	cfg := Config{Spec: spec}.withDefaults()
	nErr, err := cfg.Spec.errorCount(exp)
	if err != nil {
		return nil, err
	}
	versions := cfg.Spec.shardVersions(exp)
	keys := make(map[journal.Key]int64, nErr*len(versions)*len(cases))
	for _, v := range versions {
		for ei := 0; ei < nErr; ei++ {
			for _, ci := range cases {
				keys[journal.Key{Version: int(v), ErrIdx: ei, CaseIdx: ci}] = runSeed(cfg.Seed, ci)
			}
		}
	}
	return keys, nil
}

// ValidateShardJournal checks an uploaded shard journal against the
// campaign: header identity (experiment, seed, grid, runner mode),
// completeness (every expected run present — a truncated journal is
// rejected here, keeping the shard claimable), per-record seeds, and
// the absence of foreign runs.
func ValidateShardJournal(spec Spec, exp string, shard Shard, runner string, log *journal.Log) error {
	cfg := Config{Spec: spec}.withDefaults()
	h, ok := log.Header(exp)
	if !ok {
		return fmt.Errorf("experiment: shard %d journal has no %s header", shard.Index, exp)
	}
	if h.Seed != cfg.Seed || h.Grid != cfg.Grid {
		return fmt.Errorf("experiment: shard %d journal is from seed %d grid %d, campaign is seed %d grid %d",
			shard.Index, h.Seed, h.Grid, cfg.Seed, cfg.Grid)
	}
	if runner != "" && h.Runner != "" && h.Runner != runner {
		return fmt.Errorf("experiment: shard %d journal was recorded by the %s engine, campaign requires %s",
			shard.Index, h.Runner, runner)
	}
	want, err := ExpectedShardKeys(spec, exp, shard.Cases)
	if err != nil {
		return err
	}
	got := log.Lookup(exp)
	for k := range got {
		if _, ok := want[k]; !ok {
			return fmt.Errorf("experiment: shard %d journal contains foreign run %+v (not in the shard's cases)", shard.Index, k)
		}
	}
	for k, seed := range want {
		rec, ok := got[k]
		if !ok {
			return fmt.Errorf("experiment: shard %d journal is incomplete: %d of %d runs present (first missing: version %d error %d case %d)%s",
				shard.Index, len(got), len(want), k.Version, k.ErrIdx, k.CaseIdx,
				map[bool]string{true: " — journal has a truncated tail", false: ""}[log.Truncated])
		}
		if rec.Seed != seed {
			return fmt.Errorf("experiment: shard %d run %+v has seed %d, want %d — journal is from a different campaign",
				shard.Index, k, rec.Seed, seed)
		}
	}
	return nil
}

// MergeShards folds completed shard journals into campaign results: the
// journals are merged (journal.Merge validates their common identity
// and dedups re-executed runs) and replayed through the normal campaign
// aggregators under Exec.ReplayOnly, so a lost shard surfaces as an
// error instead of being silently re-simulated. The returned Results
// render Tables 7-9 byte-identical to a single-process campaign of the
// same Spec — the distributed campaign's core guarantee.
func MergeShards(spec Spec, exp string, mode inject.Mode, logs []*journal.Log) (*Results, error) {
	merged, err := journal.Merge(logs...)
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Spec: spec,
		Exec: Exec{Mode: mode, Workers: 1, Resume: merged, ReplayOnly: true},
	}
	res := &Results{Spec: cfg.Spec, Journal: merged}
	switch exp {
	case ExperimentE1:
		res.E1, err = RunE1(cfg)
	case ExperimentE2, ExperimentExhaustive:
		if exp == ExperimentExhaustive {
			cfg.Exhaustive = true
			res.Spec.Exhaustive = true
		}
		res.E2, err = RunE2(cfg)
	default:
		err = fmt.Errorf("experiment: unknown experiment %q", exp)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Shard lease states.
const (
	// ShardPending: unclaimed, or reclaimed after a lease expiry.
	ShardPending = "pending"
	// ShardLeased: a worker holds the shard's lease and must heartbeat
	// before it expires.
	ShardLeased = "leased"
	// ShardDone: the shard's journal was uploaded and validated.
	ShardDone = "done"
)

// ErrShardComplete reports a completion for a shard that is already
// done — the benign race of a reclaimed lease whose original worker
// finished anyway. Determinism makes both uploads byte-identical, so
// callers treat this as an idempotent success, not a failure.
var ErrShardComplete = errors.New("experiment: shard already complete")

// ShardStatus is one shard's observable state (the service's campaign
// status endpoint renders these).
type ShardStatus struct {
	Shard
	// State is ShardPending, ShardLeased or ShardDone.
	State string `json:"state"`
	// Worker is the current lease holder (leased shards) or the worker
	// that completed the shard (done shards).
	Worker string `json:"worker,omitempty"`
	// LeaseUntilMs is the lease expiry in Unix milliseconds.
	LeaseUntilMs int64 `json:"lease_until_ms,omitempty"`
	// Completed is the lease holder's last heartbeat-reported run count.
	Completed int `json:"completed_runs,omitempty"`
}

// ShardBoard is the lease state machine of one distributed campaign:
// pending -> leased (Claim) -> done (Complete), with leased -> pending
// on lease expiry (ReclaimExpired). All methods take explicit times so
// the machine is deterministic under test; the service passes
// time.Now(). The board is safe for concurrent use — every HTTP
// handler of the service may touch it.
//
// The board optionally appends every transition to a journal.Claim
// ledger sink (the "layered on the existing journal" half of the
// protocol): after a service restart, RestoreShardBoard replays the
// ledger to recover leases and completions, so a mid-campaign restart
// loses nothing but the in-flight heartbeats.
type ShardBoard struct {
	mu         sync.Mutex
	campaign   string
	experiment string
	lease      time.Duration
	shards     []Shard
	state      []string
	worker     []string
	leaseUntil []time.Time
	completed  []int
	record     func(journal.Claim) error
}

// NewShardBoard builds a board over the shard plan. lease is the claim
// lifetime between heartbeats; record, when non-nil, receives every
// claim/complete transition for the persistent ledger.
func NewShardBoard(campaign, experiment string, shards []Shard, lease time.Duration, record func(journal.Claim) error) *ShardBoard {
	b := &ShardBoard{
		campaign:   campaign,
		experiment: experiment,
		lease:      lease,
		shards:     shards,
		state:      make([]string, len(shards)),
		worker:     make([]string, len(shards)),
		leaseUntil: make([]time.Time, len(shards)),
		completed:  make([]int, len(shards)),
		record:     record,
	}
	for i := range b.state {
		b.state[i] = ShardPending
	}
	return b
}

// RestoreShardBoard rebuilds a board from its persisted ledger: claims
// re-establish leases (the latest line per shard wins) and shard_done
// lines retire shards. Expired leases are left leased — the next
// ReclaimExpired or Claim sweep returns them to pending, exactly as if
// the service had never restarted.
func RestoreShardBoard(campaign, experiment string, shards []Shard, lease time.Duration, claims []journal.Claim, record func(journal.Claim) error) *ShardBoard {
	b := NewShardBoard(campaign, experiment, shards, lease, record)
	for _, c := range claims {
		if c.Campaign != campaign || c.Shard < 0 || c.Shard >= len(shards) {
			continue
		}
		switch c.Kind {
		case journal.KindClaim:
			if b.state[c.Shard] != ShardDone {
				b.state[c.Shard] = ShardLeased
				b.worker[c.Shard] = c.Worker
				b.leaseUntil[c.Shard] = time.UnixMilli(c.GrantedMs + c.LeaseMs)
			}
		case journal.KindShardDone:
			b.state[c.Shard] = ShardDone
			b.worker[c.Shard] = c.Worker
			b.completed[c.Shard] = c.Runs
		}
	}
	return b
}

// claimLine journals one transition through the ledger sink.
func (b *ShardBoard) claimLine(kind string, shard int, now time.Time) error {
	if b.record == nil {
		return nil
	}
	c := journal.Claim{
		Kind:       kind,
		Experiment: b.experiment,
		Campaign:   b.campaign,
		Shard:      shard,
		Cases:      b.shards[shard].Cases,
		Worker:     b.worker[shard],
	}
	if kind == journal.KindClaim {
		c.GrantedMs = now.UnixMilli()
		c.LeaseMs = b.lease.Milliseconds()
	} else {
		c.Runs = b.completed[shard]
	}
	return b.record(c)
}

// reclaimLocked returns expired leases to pending. Caller holds b.mu.
func (b *ShardBoard) reclaimLocked(now time.Time) []Shard {
	var reclaimed []Shard
	for i, st := range b.state {
		if st == ShardLeased && now.After(b.leaseUntil[i]) {
			b.state[i] = ShardPending
			b.worker[i] = ""
			b.completed[i] = 0
			reclaimed = append(reclaimed, b.shards[i])
		}
	}
	return reclaimed
}

// ReclaimExpired returns every expired lease to pending and reports the
// reclaimed shards (the service broadcasts them as events).
func (b *ShardBoard) ReclaimExpired(now time.Time) []Shard {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reclaimLocked(now)
}

// Claim leases the lowest-indexed claimable shard to worker. Expired
// leases are swept first, so a crashed worker's shards are reclaimable
// the moment their lease runs out. ok is false when nothing is
// claimable (all shards leased or done).
func (b *ShardBoard) Claim(worker string, now time.Time) (Shard, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reclaimLocked(now)
	for i, st := range b.state {
		if st != ShardPending {
			continue
		}
		b.state[i] = ShardLeased
		b.worker[i] = worker
		b.leaseUntil[i] = now.Add(b.lease)
		b.completed[i] = 0
		if err := b.claimLine(journal.KindClaim, i, now); err != nil {
			return Shard{}, false, err
		}
		return b.shards[i], true, nil
	}
	return Shard{}, false, nil
}

// Heartbeat renews worker's lease on shard and records its progress.
// A heartbeat for a lease the worker no longer holds (expired and
// reclaimed, or completed by another worker) is an error — the worker
// should abandon the shard.
func (b *ShardBoard) Heartbeat(worker string, shard, completed int, now time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if shard < 0 || shard >= len(b.shards) {
		return fmt.Errorf("experiment: heartbeat for unknown shard %d", shard)
	}
	b.reclaimLocked(now)
	if b.state[shard] != ShardLeased || b.worker[shard] != worker {
		return fmt.Errorf("experiment: worker %s no longer holds the lease on shard %d (state %s, holder %q)",
			worker, shard, b.state[shard], b.worker[shard])
	}
	b.leaseUntil[shard] = now.Add(b.lease)
	if completed > b.completed[shard] {
		b.completed[shard] = completed
	}
	return nil
}

// Complete retires shard after its journal validated. The completion is
// accepted from the lease holder, and also from a worker whose lease
// expired but whose shard was not yet re-leased (pending) — its work is
// valid by determinism, and accepting it saves the re-execution. A
// shard already done returns ErrShardComplete (idempotent duplicate); a
// shard re-leased to another worker rejects the stale completion so the
// ledger names a single completing worker per shard.
func (b *ShardBoard) Complete(worker string, shard, runs int, now time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if shard < 0 || shard >= len(b.shards) {
		return fmt.Errorf("experiment: completion for unknown shard %d", shard)
	}
	b.reclaimLocked(now)
	switch {
	case b.state[shard] == ShardDone:
		return ErrShardComplete
	case b.state[shard] == ShardLeased && b.worker[shard] != worker:
		return fmt.Errorf("experiment: shard %d is leased to %s, rejecting stale completion from %s",
			shard, b.worker[shard], worker)
	}
	b.state[shard] = ShardDone
	b.worker[shard] = worker
	b.completed[shard] = runs
	return b.claimLine(journal.KindShardDone, shard, now)
}

// Done reports whether every shard is complete.
func (b *ShardBoard) Done() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, st := range b.state {
		if st != ShardDone {
			return false
		}
	}
	return true
}

// Statuses snapshots every shard's state for the status endpoint.
func (b *ShardBoard) Statuses() []ShardStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]ShardStatus, len(b.shards))
	for i, sh := range b.shards {
		out[i] = ShardStatus{
			Shard:     sh,
			State:     b.state[i],
			Worker:    b.worker[i],
			Completed: b.completed[i],
		}
		if b.state[i] == ShardLeased {
			out[i].LeaseUntilMs = b.leaseUntil[i].UnixMilli()
		}
	}
	return out
}
