package experiment

import (
	"errors"
	"strings"
	"testing"
	"time"

	"easig/internal/journal"
)

// shardTestSpec is the scaled campaign the shard tests plan against:
// 4 cases, 2 versions — small enough to enumerate by hand.
func shardTestSpec(seed int64) Spec {
	return resumeTestConfig(seed).Spec
}

func TestPlanShards(t *testing.T) {
	spec := shardTestSpec(7)
	shards, err := PlanShards(spec, ExperimentE1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("PlanShards(1 case/shard) = %d shards, want 4", len(shards))
	}
	nErr, err := spec.errorCount(ExperimentE1)
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := nErr * len(spec.Versions)
	for i, sh := range shards {
		if sh.Index != i {
			t.Errorf("shard %d has Index %d", i, sh.Index)
		}
		if len(sh.Cases) != 1 || sh.Cases[0] != i {
			t.Errorf("shard %d covers cases %v, want [%d]", i, sh.Cases, i)
		}
		if sh.Runs != wantRuns {
			t.Errorf("shard %d has %d runs, want %d", i, sh.Runs, wantRuns)
		}
	}

	// Uneven split: 3 cases per shard over 4 cases -> 3 + 1.
	shards, err = PlanShards(spec, ExperimentE1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || len(shards[0].Cases) != 3 || len(shards[1].Cases) != 1 {
		t.Fatalf("PlanShards(3 cases/shard) = %+v, want shards of 3 and 1 cases", shards)
	}

	// A Spec that is already a shard cannot be re-sharded.
	sub := spec
	sub.Cases = []int{1}
	if _, err := PlanShards(sub, ExperimentE1, 1); err == nil {
		t.Fatal("PlanShards accepted a Spec with Cases set")
	}
}

func TestExpectedShardKeys(t *testing.T) {
	spec := shardTestSpec(7)
	keys, err := ExpectedShardKeys(spec, ExperimentE1, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	nErr, _ := spec.errorCount(ExperimentE1)
	if want := nErr * len(spec.Versions); len(keys) != want {
		t.Fatalf("ExpectedShardKeys = %d keys, want %d", len(keys), want)
	}
	for k, seed := range keys {
		if k.CaseIdx != 2 {
			t.Fatalf("key %+v is outside the shard's case", k)
		}
		if want := runSeed(spec.Seed, 2); seed != want {
			t.Fatalf("key %+v has seed %d, want %d", k, seed, want)
		}
	}
	// E2 keys carry only the All version.
	keys, err = ExpectedShardKeys(spec, ExperimentE2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	nErr, _ = spec.errorCount(ExperimentE2)
	if want := nErr * 2; len(keys) != want {
		t.Fatalf("E2 ExpectedShardKeys = %d keys, want %d", len(keys), want)
	}
}

func TestExperimentName(t *testing.T) {
	spec := shardTestSpec(7)
	if exp, err := ExperimentName("e1", spec); err != nil || exp != ExperimentE1 {
		t.Fatalf("ExperimentName(e1) = %q, %v", exp, err)
	}
	if exp, err := ExperimentName("e2", spec); err != nil || exp != ExperimentE2 {
		t.Fatalf("ExperimentName(e2) = %q, %v", exp, err)
	}
	spec.Exhaustive = true
	if exp, err := ExperimentName("e2", spec); err != nil || exp != ExperimentExhaustive {
		t.Fatalf("ExperimentName(e2, exhaustive) = %q, %v", exp, err)
	}
	if _, err := ExperimentName("e3", spec); err == nil {
		t.Fatal("ExperimentName accepted e3")
	}
}

// fakeShardJournal fabricates a complete in-memory shard journal for
// validation tests (no campaign execution).
func fakeShardJournal(spec Spec, exp string, cases []int, runner string) *journal.Log {
	keys, err := ExpectedShardKeys(spec, exp, cases)
	if err != nil {
		panic(err)
	}
	cfg := Config{Spec: spec}.withDefaults()
	log := &journal.Log{Headers: []journal.Header{{
		Kind: journal.KindHeader, Experiment: exp,
		Seed: cfg.Seed, Grid: cfg.Grid, Total: len(keys), Runner: runner,
	}}}
	for k, seed := range keys {
		log.Runs = append(log.Runs, journal.Record{
			Kind: journal.KindRun, Experiment: exp,
			Version: k.Version, ErrIdx: k.ErrIdx, CaseIdx: k.CaseIdx,
			Seed: seed, Detected: true,
		})
	}
	return log
}

func TestValidateShardJournal(t *testing.T) {
	spec := shardTestSpec(7)
	shards, err := PlanShards(spec, ExperimentE1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh := shards[1]
	good := fakeShardJournal(spec, ExperimentE1, sh.Cases, "snapshot")
	if err := ValidateShardJournal(spec, ExperimentE1, sh, "snapshot", good); err != nil {
		t.Fatalf("complete shard journal rejected: %v", err)
	}

	// Incomplete: drop one run.
	short := *good
	short.Runs = good.Runs[:len(good.Runs)-1]
	if err := ValidateShardJournal(spec, ExperimentE1, sh, "snapshot", &short); err == nil ||
		!strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("incomplete journal error = %v, want incomplete", err)
	}

	// Foreign run: shard 1's journal validated against shard 0.
	if err := ValidateShardJournal(spec, ExperimentE1, shards[0], "snapshot", good); err == nil ||
		!strings.Contains(err.Error(), "foreign") {
		t.Fatalf("foreign-run error = %v, want foreign", err)
	}

	// Wrong campaign seed.
	other := spec
	other.Seed = spec.Seed + 1
	bad := fakeShardJournal(other, ExperimentE1, sh.Cases, "snapshot")
	if err := ValidateShardJournal(spec, ExperimentE1, sh, "snapshot", bad); err == nil {
		t.Fatal("journal from a different seed accepted")
	}

	// Wrong engine.
	if err := ValidateShardJournal(spec, ExperimentE1, sh, "memo", good); err == nil ||
		!strings.Contains(err.Error(), "engine") {
		t.Fatalf("engine-mismatch error = %v, want engine mismatch", err)
	}
}

func TestShardBoardLeaseLifecycle(t *testing.T) {
	spec := shardTestSpec(7)
	shards, err := PlanShards(spec, ExperimentE1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ledger []journal.Claim
	record := func(c journal.Claim) error { ledger = append(ledger, c); return nil }
	board := NewShardBoard("c1", ExperimentE1, shards, time.Minute, record)
	base := time.Unix(1_000_000, 0)

	// Worker a claims shard 0, worker b shard 1; nothing else claimable.
	shA, ok, err := board.Claim("a", base)
	if err != nil || !ok || shA.Index != 0 {
		t.Fatalf("Claim(a) = %+v, %v, %v", shA, ok, err)
	}
	shB, ok, err := board.Claim("b", base)
	if err != nil || !ok || shB.Index != 1 {
		t.Fatalf("Claim(b) = %+v, %v, %v", shB, ok, err)
	}
	if _, ok, _ := board.Claim("c", base); ok {
		t.Fatal("third claim succeeded on a fully leased board")
	}

	// Heartbeats renew a's lease; b goes silent (crashed).
	if err := board.Heartbeat("a", 0, 10, base.Add(30*time.Second)); err != nil {
		t.Fatal(err)
	}
	// At +80s, a's lease (renewed at +30s) is alive, b's has expired.
	reclaimed := board.ReclaimExpired(base.Add(80 * time.Second))
	if len(reclaimed) != 1 || reclaimed[0].Index != 1 {
		t.Fatalf("ReclaimExpired = %+v, want shard 1", reclaimed)
	}
	// b's stale heartbeat is rejected after the reclaim.
	if err := board.Heartbeat("b", 1, 5, base.Add(81*time.Second)); err == nil {
		t.Fatal("stale heartbeat accepted")
	}
	// a picks up the reclaimed shard.
	shA2, ok, err := board.Claim("a", base.Add(82*time.Second))
	if err != nil || !ok || shA2.Index != 1 {
		t.Fatalf("Claim(a) after reclaim = %+v, %v, %v", shA2, ok, err)
	}

	// b finishing anyway after the shard was re-leased is rejected...
	if err := board.Complete("b", 1, shB.Runs, base.Add(83*time.Second)); err == nil {
		t.Fatal("stale completion accepted while re-leased")
	}
	// ...but both of a's completions land, and a duplicate completion is
	// the idempotent ErrShardComplete.
	if err := board.Complete("a", 0, shA.Runs, base.Add(84*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := board.Complete("a", 1, shA2.Runs, base.Add(85*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := board.Complete("b", 1, shB.Runs, base.Add(86*time.Second)); !errors.Is(err, ErrShardComplete) {
		t.Fatalf("duplicate completion error = %v, want ErrShardComplete", err)
	}
	if !board.Done() {
		t.Fatal("board not done after all completions")
	}

	// The ledger replays into the same terminal state.
	restored := RestoreShardBoard("c1", ExperimentE1, shards, time.Minute, ledger, nil)
	if !restored.Done() {
		t.Fatalf("restored board not done; statuses %+v", restored.Statuses())
	}
}

func TestShardBoardCompleteFromExpiredUnreassignedLease(t *testing.T) {
	spec := shardTestSpec(7)
	shards, err := PlanShards(spec, ExperimentE1, 4)
	if err != nil {
		t.Fatal(err)
	}
	board := NewShardBoard("c2", ExperimentE1, shards, time.Minute, nil)
	base := time.Unix(1_000_000, 0)
	if _, ok, _ := board.Claim("a", base); !ok {
		t.Fatal("claim failed")
	}
	// The lease expires but nobody re-claims; a's completion is still
	// valid work (determinism) and is accepted.
	if err := board.Complete("a", 0, shards[0].Runs, base.Add(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if !board.Done() {
		t.Fatal("board not done")
	}
}

func TestRestoreShardBoardRecoversLeases(t *testing.T) {
	spec := shardTestSpec(7)
	shards, err := PlanShards(spec, ExperimentE1, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_000_000, 0)
	ledger := []journal.Claim{
		{Kind: journal.KindClaim, Campaign: "c3", Shard: 0, Worker: "a",
			GrantedMs: base.UnixMilli(), LeaseMs: time.Minute.Milliseconds()},
		{Kind: journal.KindClaim, Campaign: "c3", Shard: 1, Worker: "b",
			GrantedMs: base.UnixMilli(), LeaseMs: time.Minute.Milliseconds()},
		{Kind: journal.KindShardDone, Campaign: "c3", Shard: 1, Worker: "b", Runs: shards[1].Runs},
		// Foreign campaign and out-of-range lines are ignored.
		{Kind: journal.KindClaim, Campaign: "other", Shard: 0, Worker: "x"},
		{Kind: journal.KindClaim, Campaign: "c3", Shard: 99, Worker: "x"},
	}
	board := RestoreShardBoard("c3", ExperimentE1, shards, time.Minute, ledger, nil)

	// Within the lease window, a still holds shard 0.
	st := board.Statuses()
	if st[0].State != ShardLeased || st[0].Worker != "a" {
		t.Fatalf("restored shard 0 = %+v, want leased by a", st[0])
	}
	if st[1].State != ShardDone {
		t.Fatalf("restored shard 1 = %+v, want done", st[1])
	}
	// After expiry the lease is reclaimable by another worker.
	sh, ok, err := board.Claim("c", base.Add(2*time.Minute))
	if err != nil || !ok || sh.Index != 0 {
		t.Fatalf("post-restart claim = %+v, %v, %v", sh, ok, err)
	}
}
