package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"easig/internal/core"
)

// Figure 2 of the paper shows the three continuous signal shapes:
// (a) random, (b) static monotonic with wrap-around, (c) dynamic
// monotonic. This file generates example traces of each shape that
// provably satisfy their own parameter sets (the generator tests feed
// them back through CheckContinuous) and renders them as ASCII plots.

// Figure2Trace is one generated example signal.
type Figure2Trace struct {
	// Label names the subfigure, e.g. "(a) random".
	Label string
	// Class is the signal classification of the trace.
	Class core.Class
	// Params is the parameter set the trace satisfies.
	Params core.Continuous
	// Samples is the trace itself.
	Samples []int64
}

// Figure2Traces generates the three example traces with n samples
// each, deterministically from the seed.
func Figure2Traces(n int, seed int64) []Figure2Trace {
	if n < 2 {
		n = 2
	}
	rng := rand.New(rand.NewSource(seed))

	random := core.Continuous{
		Min: 0, Max: 100,
		Incr: core.Rate{Min: 0, Max: 12},
		Decr: core.Rate{Min: 0, Max: 12},
	}
	randomTrace := make([]int64, n)
	v := int64(50)
	for i := range randomTrace {
		randomTrace[i] = v
		step := rng.Int63n(2*12+1) - 12
		v += step
		if v > random.Max {
			v = random.Max
		}
		if v < random.Min {
			v = random.Min
		}
	}

	static := core.Continuous{
		Min: 0, Max: 100,
		Incr: core.Rate{Min: 4, Max: 4},
		Wrap: true,
	}
	staticTrace := make([]int64, n)
	v = 0
	for i := range staticTrace {
		staticTrace[i] = v
		v += 4
		if v > static.Max {
			// Wrap: the assertion identifies smax with smin, so the
			// step past smax re-enters above smin.
			v = static.Min + (v - static.Max)
		}
	}

	dynamic := core.Continuous{
		Min: 0, Max: 100,
		Incr: core.Rate{Min: 0, Max: 8},
	}
	dynamicTrace := make([]int64, n)
	v = 0
	for i := range dynamicTrace {
		dynamicTrace[i] = v
		v += rng.Int63n(8 + 1)
		if v > dynamic.Max {
			v = dynamic.Max
		}
	}

	return []Figure2Trace{
		{Label: "(a) random", Class: core.ContinuousRandom, Params: random, Samples: randomTrace},
		{Label: "(b) static monotonic (with wrap-around)", Class: core.ContinuousMonotonicStatic, Params: static, Samples: staticTrace},
		{Label: "(c) dynamic monotonic", Class: core.ContinuousMonotonicDynamic, Params: dynamic, Samples: dynamicTrace},
	}
}

// RenderASCII plots the trace as a rows-high ASCII chart.
func (t Figure2Trace) RenderASCII(rows int) string {
	if rows < 2 {
		rows = 2
	}
	lo, hi := t.Params.Min, t.Params.Max
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(t.Samples)))
	}
	for c, s := range t.Samples {
		r := int((s - lo) * int64(rows-1) / span)
		grid[rows-1-r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%v, %s]\n", t.Label, t.Class, t.Params)
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteString("\n")
	}
	return b.String()
}

// Figure2 renders all three subfigures.
func Figure2(samples, rows int, seed int64) string {
	var b strings.Builder
	b.WriteString("Figure 2. Continuous signals: (a) random, (b) static monotonic (with wrap-around), (c) dynamic monotonic.\n")
	for _, t := range Figure2Traces(samples, seed) {
		b.WriteString(t.RenderASCII(rows))
	}
	return b.String()
}
