package experiment

import (
	"fmt"
	"testing"
)

func TestCampaignShape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign shape preview is slow")
	}
	e1, err := RunE1(Config{Spec: Spec{Grid: 3, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(Table7(e1))
	e2, err := RunE2(Config{Spec: Spec{Grid: 3, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(Table9(e2))
	fmt.Println(ComputeHeadline(e1, e2))
}
