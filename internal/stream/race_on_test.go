//go:build race

package stream

// raceEnabled reports that this test binary was built with the race
// detector, whose shadow-memory bookkeeping shows up in allocation
// accounting and would fail the zero-alloc gates spuriously.
const raceEnabled = true
