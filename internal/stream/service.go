package stream

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"easig/internal/core"
)

// Policy selects what Ingest does when a shard's queue is full.
type Policy int

const (
	// PolicyBlock makes Ingest wait for queue space: no sample is ever
	// dropped, and backpressure propagates to the client as request
	// latency. The default, and the right choice when the client is a
	// replayer that must observe every detection (cmd/sigmon).
	PolicyBlock Policy = iota
	// PolicyShed makes Ingest drop a full shard's portion of the
	// request instead of waiting. The drop granularity is the whole
	// per-shard chunk of that request — never a partial chunk, so a
	// stream's accepted samples are always a prefix-free subsequence of
	// whole request-portions and the dropped counts are exact. Use for
	// live telemetry where stale samples are worth less than fresh
	// ones.
	PolicyShed
)

// ErrClosed reports an operation on a closed service.
var ErrClosed = errors.New("stream: service closed")

// Config parameterizes a Service.
type Config struct {
	// Shards is the number of monitor-pool shards (default 1). Stream
	// IDs are partitioned into Shards contiguous ranges.
	Shards int
	// MaxStreams bounds the stream-ID space: records with
	// Stream >= MaxStreams are rejected at validation (default 1024).
	MaxStreams int
	// QueueBatches is each shard's ingest-queue capacity in chunks
	// (default 64). Together with the wire format's 64 Ki-record batch
	// bound this caps per-shard buffered memory.
	QueueBatches int
	// Policy is the backpressure policy (default PolicyBlock).
	Policy Policy
	// JournalDir, when non-empty, is the directory for the per-shard
	// detection journals (detections-<i>.log). Empty keeps detections
	// in memory.
	JournalDir string
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 1024
	}
	if c.QueueBatches <= 0 {
		c.QueueBatches = 64
	}
}

// Service is the sigmond monitoring service: a sharded pool of
// per-stream Table 4 monitor suites fed by binary sample batches. See
// the package comment for the architecture and SIGMOND.md for the
// operator contract. Ingest, Flush, Metrics and StreamStats may be
// called from any number of goroutines; Close may be called once from
// any of them.
type Service struct {
	cfg    Config
	per    uint32 // stream IDs per shard
	shards []*shard

	chunks  sync.Pool // *chunk
	staging sync.Pool // *[]*chunk, len == len(shards)

	mu     sync.RWMutex // guards closed vs. queue sends/closes
	closed bool
	wg     sync.WaitGroup

	registry sync.Map // uint32 -> *streamState
	start    time.Time

	droppedBatches uint64
	droppedSamples uint64

	errMu sync.Mutex
	err   error
}

// New starts a service: one goroutine per shard, queues open.
func New(cfg Config) (*Service, error) {
	return newService(cfg, true)
}

// NewUnstarted builds a service whose shard goroutines are not
// running: Ingest enqueues as usual and the caller applies the queued
// chunks itself with DrainQueued. This is the measurement harness for
// the zero-allocation and throughput gates (testing.AllocsPerRun and
// cmd/bench), where the whole ingest->monitor path must run on one
// deterministic goroutine; it is not a serving mode.
func NewUnstarted(cfg Config) (*Service, error) {
	return newService(cfg, false)
}

// newService optionally skips starting the shard goroutines.
func newService(cfg Config, startShards bool) (*Service, error) {
	cfg.fill()
	s := &Service{cfg: cfg, start: time.Now()}
	s.per = uint32((cfg.MaxStreams + cfg.Shards - 1) / cfg.Shards)
	s.chunks.New = func() any { return new(chunk) }
	nshards := cfg.Shards
	s.staging.New = func() any {
		st := make([]*chunk, nshards)
		return &st
	}
	for i := 0; i < cfg.Shards; i++ {
		lo := uint32(i) * s.per
		hi := lo + s.per
		if m := uint32(cfg.MaxStreams); hi > m {
			hi = m
		}
		sink, err := newDetSink(cfg.JournalDir, i)
		if err != nil {
			return nil, err
		}
		sh := &shard{
			idx:     i,
			lo:      lo,
			hi:      hi,
			ch:      make(chan *chunk, cfg.QueueBatches),
			streams: make(map[uint32]*streamState),
			sink:    sink,
			svc:     s,
		}
		s.shards = append(s.shards, sh)
	}
	if startShards {
		for _, sh := range s.shards {
			s.wg.Add(1)
			go sh.run()
		}
	}
	return s, nil
}

func (s *Service) shardFor(id uint32) int {
	si := int(id / s.per)
	if si >= len(s.shards) {
		si = len(s.shards) - 1
	}
	return si
}

func (s *Service) getChunk() *chunk {
	return s.chunks.Get().(*chunk)
}

func (s *Service) putChunk(c *chunk) {
	c.recs = c.recs[:0]
	c.ack = nil
	s.chunks.Put(c)
}

func (s *Service) setErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

func (s *Service) firstErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// Ingest validates and dispatches one request payload (one or more
// wire batches back to back). Validation is all-or-nothing: a payload
// with any framing error or out-of-range stream ID is rejected whole,
// with no sample applied — a client killed mid-request can produce a
// short read, never a half-applied one. On success the records are
// partitioned into per-shard chunks in arrival order and enqueued;
// accepted is the number of samples queued, dropped the number shed by
// PolicyShed (always 0 under PolicyBlock).
//
// The per-sample work on this path — validation, partitioning and the
// shard-side monitor dispatch — performs zero heap allocations
// (chunks, staging tables and detection lines are pooled); the gate is
// TestIngestPathZeroAllocs.
func (s *Service) Ingest(payload []byte) (accepted, dropped int, err error) {
	maxID := uint32(s.cfg.MaxStreams)
	err = walkBatches(payload, func(recs []byte) error {
		for off := 0; off < len(recs); off += RecordBytes {
			if id := be32(recs[off:]); id >= maxID {
				return fmt.Errorf("stream: stream ID %d out of range (max %d)", id, maxID-1)
			}
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, 0, ErrClosed
	}

	stp := s.staging.Get().(*[]*chunk)
	st := *stp
	// The payload was just validated, so this walk cannot fail.
	walkBatches(payload, func(recs []byte) error {
		for off := 0; off < len(recs); off += RecordBytes {
			rec := recs[off : off+RecordBytes]
			si := s.shardFor(be32(rec))
			c := st[si]
			if c == nil {
				c = s.getChunk()
				st[si] = c
			}
			c.recs = append(c.recs, rec...)
		}
		return nil
	})
	for si, c := range st {
		if c == nil {
			continue
		}
		st[si] = nil
		n := len(c.recs) / RecordBytes
		if s.cfg.Policy == PolicyShed {
			select {
			case s.shards[si].ch <- c:
				accepted += n
			default:
				dropped += n
				atomic.AddUint64(&s.droppedSamples, uint64(n))
				atomic.AddUint64(&s.droppedBatches, 1)
				s.putChunk(c)
			}
		} else {
			s.shards[si].ch <- c
			accepted += n
		}
	}
	s.staging.Put(stp)
	return accepted, dropped, nil
}

// Flush blocks until every sample accepted before the call has been
// applied to its monitors and every detection line written so far is
// readable via DetectionsTo (or the journal files). It works by
// enqueueing a barrier chunk on every shard — even under PolicyShed a
// barrier is never dropped — and waiting for all of them.
func (s *Service) Flush() error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	acks := make([]chan struct{}, len(s.shards))
	for i, sh := range s.shards {
		acks[i] = make(chan struct{})
		sh.ch <- &chunk{ack: acks[i]}
	}
	s.mu.RUnlock()
	for _, a := range acks {
		<-a
	}
	return s.firstErr()
}

// Close drains and stops the service: queues are closed, every already
// accepted sample is applied, journals are flushed and closed. In-
// flight Ingest/Flush calls finish first (they hold the read lock);
// later calls return ErrClosed. Close returns the first error the
// service encountered, if any.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.firstErr()
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.firstErr()
}

// DrainQueued processes everything sitting in the shard queues on the
// calling goroutine. Only for services built with NewUnstarted; a
// started service's shards own their queues.
func (s *Service) DrainQueued() {
	for _, sh := range s.shards {
	drain:
		for {
			select {
			case c := <-sh.ch:
				sh.process(c)
			default:
				break drain
			}
		}
	}
}

// StreamStats returns a live stream's per-monitor accounting (the
// suite's Stats, safe concurrently with the shard applying samples)
// plus its sample counters. ok is false if the stream has never sent a
// sample.
func (s *Service) StreamStats(id uint32) (stats []core.MonitorStats, samples, detections, rejected uint64, ok bool) {
	v, ok := s.registry.Load(id)
	if !ok {
		return nil, 0, 0, 0, false
	}
	st := v.(*streamState)
	return st.suite.Stats(), st.Samples(), st.Detections(), st.Rejected(), true
}

// Metrics assembles the self-metrics snapshot.
func (s *Service) Metrics() Metrics {
	m := Metrics{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Shards:         len(s.shards),
		DroppedBatches: atomic.LoadUint64(&s.droppedBatches),
		DroppedSamples: atomic.LoadUint64(&s.droppedSamples),
		PerShard:       make([]ShardSnapshot, 0, len(s.shards)),
	}
	var hist [histBuckets]uint64
	var histTotal uint64
	for _, sh := range s.shards {
		snap := sh.snapshot()
		m.Samples += snap.Samples
		m.Detections += snap.Detections
		m.Rejected += snap.Rejected
		m.PerShard = append(m.PerShard, snap)
		for b := 0; b < histBuckets; b++ {
			v := atomic.LoadUint64(&sh.m.hist[b])
			hist[b] += v
			histTotal += v
		}
	}
	if m.UptimeSeconds > 0 {
		m.SignalsPerSec = float64(m.Samples*NumSignals) / m.UptimeSeconds
	}
	m.P99TickLatencyNs = p99FromHist(&hist, histTotal)
	return m
}

// DetectionsTo flushes the service and streams every shard's detection
// journal to w, in shard order. Combined with per-shard FIFO this
// yields all detections of all samples accepted before the call;
// canonicalize (CanonicalizeDetections) before comparing against
// another observer.
func (s *Service) DetectionsTo(w io.Writer) error {
	if err := s.Flush(); err != nil {
		return err
	}
	for _, sh := range s.shards {
		b, err := sh.sink.snapshot()
		if err != nil {
			return fmt.Errorf("stream: reading shard %d journal: %w", sh.idx, err)
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
