package stream

import (
	"fmt"
	"sync/atomic"

	"easig/internal/core"
	"easig/internal/target"
)

// streamState is the monitoring state of one plant stream: its own
// instances of the seven Table 4 assertion monitors, a suite wrapping
// them for live accounting, and per-stream counters. A streamState is
// owned by exactly one applier goroutine (its shard, or an Inline
// reference); the counters and the suite's Stats are the only parts
// other goroutines read, and both are atomic.
//
// The identical apply path is what makes the observer-equivalence
// guarantee hold by construction: the service's shards and the Inline
// reference both funnel records through streamState.apply, so they can
// only diverge if the wire bytes differ.
type streamState struct {
	id       uint32
	mode     int
	monitors [NumSignals]*core.Monitor
	suite    *core.Suite

	// Counters, updated by the applier, read atomically by metrics.
	samples    uint64
	detections uint64
	rejected   uint64
}

// newStreamState builds a stream's monitors with recovery disabled
// (the service is an observer: it reports errors, it cannot reach into
// the plant to repair values) and a sink that renders each violation
// as a detection line on out. onDetect, if non-nil, is bumped
// atomically per detection (the owning shard's aggregate counter).
func newStreamState(id uint32, out *detSink, onDetect *uint64) (*streamState, error) {
	st := &streamState{id: id, suite: core.NewSuite()}
	sink := core.SinkFunc(func(v core.Violation) {
		atomic.AddUint64(&st.detections, 1)
		if onDetect != nil {
			atomic.AddUint64(onDetect, 1)
		}
		out.add(st.id, v)
	})
	for k := 0; k < NumSignals; k++ {
		m, err := target.NewSignalMonitor(k,
			core.WithRecovery(core.NoRecovery{}),
			core.WithSink(sink))
		if err != nil {
			return nil, fmt.Errorf("stream %d: %w", id, err)
		}
		st.monitors[k] = m
		if err := st.suite.Add(m); err != nil {
			return nil, fmt.Errorf("stream %d: %w", id, err)
		}
	}
	return st, nil
}

// apply runs one encoded sample record (RecordBytes long, stream field
// already verified to be this stream) through the monitors. It
// allocates nothing. The returned flag reports whether the record was
// rejected because its mode is unknown to the monitors; rejected
// records are not tested at all, so one bad mode byte cannot smear a
// burst of spurious violations across all seven signals.
func (st *streamState) apply(rec []byte) (rejected bool) {
	if rec[8]&FlagReset != 0 {
		for _, m := range st.monitors {
			m.Reset()
		}
	}
	if mode := int(rec[9]); mode != st.mode {
		if !st.trySetMode(mode) {
			atomic.AddUint64(&st.rejected, 1)
			return true
		}
	}
	tick := int64(be32(rec[4:]))
	for k, m := range st.monitors {
		m.Test(tick, int64(be16(rec[10+2*k:])))
	}
	atomic.AddUint64(&st.samples, 1)
	return false
}

// trySetMode switches every monitor to mode, all or nothing: if any
// monitor has no parameter set for it, the ones already switched are
// rolled back and the stream stays in its current mode.
func (st *streamState) trySetMode(mode int) bool {
	for k, m := range st.monitors {
		if err := m.SetMode(mode); err != nil {
			for j := 0; j < k; j++ {
				st.monitors[j].SetMode(st.mode)
			}
			return false
		}
	}
	st.mode = mode
	return true
}

// Samples returns the stream's applied-sample count.
func (st *streamState) Samples() uint64 { return atomic.LoadUint64(&st.samples) }

// Detections returns the stream's violation count.
func (st *streamState) Detections() uint64 { return atomic.LoadUint64(&st.detections) }

// Rejected returns the stream's rejected-record count (unknown mode).
func (st *streamState) Rejected() uint64 { return atomic.LoadUint64(&st.rejected) }
