package stream

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets: bucket b
// holds samples whose per-sample processing time was in
// [2^(b-1), 2^b) nanoseconds (bucket 0 is <1 ns). 2^31 ns ≈ 2.1 s per
// sample is far beyond any real bucket, so the top bucket is a
// catch-all.
const histBuckets = 32

// shardMetrics is one shard's hot-path accounting. All fields are
// plain uint64s updated and read with sync/atomic, the same discipline
// as the core monitor counters: the shard goroutine is the only
// writer, metrics readers never block it.
//
// Latency is sampled per batch, not per sample: the shard timestamps a
// chunk once, divides the elapsed time by the record count and charges
// every sample the mean. This keeps time.Now off the per-sample path
// (two clock reads per chunk of up to 65535 samples) at the cost of
// flattening intra-batch variance, which is the documented trade-off
// of the p99 figure.
type shardMetrics struct {
	samples    uint64
	batches    uint64
	detections uint64
	rejected   uint64
	streams    uint64
	hist       [histBuckets]uint64
}

// observe charges a processed chunk of n samples taking d.
func (m *shardMetrics) observe(n int, d time.Duration) {
	if n <= 0 {
		return
	}
	atomic.AddUint64(&m.samples, uint64(n))
	atomic.AddUint64(&m.batches, 1)
	per := uint64(d.Nanoseconds()) / uint64(n)
	b := bits.Len64(per)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	atomic.AddUint64(&m.hist[b], uint64(n))
}

// ShardSnapshot is one shard's externally visible state.
type ShardSnapshot struct {
	// Index is the shard number.
	Index int `json:"index"`
	// StreamLo and StreamHi bound the shard's stream-ID range [lo, hi).
	StreamLo uint32 `json:"stream_lo"`
	StreamHi uint32 `json:"stream_hi"`
	// Streams is the number of streams the shard has instantiated.
	Streams uint64 `json:"streams"`
	// Samples is the number of samples applied to monitors.
	Samples uint64 `json:"samples"`
	// Batches is the number of chunks processed.
	Batches uint64 `json:"batches"`
	// Detections is the number of assertion violations reported.
	Detections uint64 `json:"detections"`
	// Rejected is the number of records refused for an unknown mode.
	Rejected uint64 `json:"rejected"`
	// QueueDepth and QueueCap describe the ingest queue right now.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
}

// Metrics is the service-level self-metrics snapshot served on
// /api/v1/metrics.
type Metrics struct {
	// UptimeSeconds is the time since the service started.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Shards is the shard count (constant for a service's lifetime).
	Shards int `json:"shards"`
	// Samples is the total number of samples applied.
	Samples uint64 `json:"samples"`
	// SignalsPerSec is signal observations per wall-clock second since
	// start (each sample carries NumSignals signals).
	SignalsPerSec float64 `json:"signals_per_sec"`
	// Detections is the total number of violations reported.
	Detections uint64 `json:"detections"`
	// Rejected is the total number of unknown-mode records refused.
	Rejected uint64 `json:"rejected"`
	// DroppedBatches and DroppedSamples count shed load (PolicyShed
	// only; always 0 under PolicyBlock).
	DroppedBatches uint64 `json:"dropped_batches"`
	DroppedSamples uint64 `json:"dropped_samples"`
	// P99TickLatencyNs bounds the per-sample processing latency of the
	// 99th percentile sample: the upper edge of the histogram bucket
	// holding it. 0 until anything was processed.
	P99TickLatencyNs uint64 `json:"p99_tick_latency_ns"`
	// PerShard is each shard's breakdown, in shard order.
	PerShard []ShardSnapshot `json:"per_shard"`
}

// p99FromHist returns the upper latency bound of the bucket containing
// the 99th-percentile sample of a merged histogram.
func p99FromHist(hist *[histBuckets]uint64, total uint64) uint64 {
	if total == 0 {
		return 0
	}
	rank := (total*99 + 99) / 100 // ceil(0.99 * total)
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += hist[b]
		if cum >= rank {
			if b == 0 {
				return 1
			}
			return uint64(1) << b
		}
	}
	return uint64(1) << (histBuckets - 1)
}
