package stream

import (
	"easig/internal/physics"
	"easig/internal/target"
)

// TraceRow is one tick's observation of the seven monitored signals,
// in Table 4 order.
type TraceRow struct {
	Tick   uint32
	Values [NumSignals]uint16
}

// NominalTrace runs the fault-free target plant (an arrestment of
// massKg at velocityMS) for ticks milliseconds and samples the master
// node's monitored signals after every step. A fault-free trace
// satisfies every Table 4 assertion at the 1 ms sampling cadence, so
// replaying it into sigmond yields zero detections; traces perturbed
// by FlipBit model the paper's injected data errors. cmd/sigmon's load
// generator and the stream benchmarks replay these traces.
func NominalTrace(ticks int, massKg, velocityMS float64, seed int64) ([]TraceRow, error) {
	sys, err := target.NewSystem(target.SystemConfig{
		TestCase: physics.TestCase{MassKg: massKg, VelocityMS: velocityMS},
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}
	rows := make([]TraceRow, 0, ticks)
	for i := 0; i < ticks; i++ {
		sys.StepMs()
		v := sys.Master().Vars()
		rows = append(rows, TraceRow{
			Tick: uint32(i),
			Values: [NumSignals]uint16{
				v.SetValue.Get(),
				v.IsValue.Get(),
				v.I.Get(),
				v.PulsCnt.Get(),
				v.MsSlotNbr.Get(),
				v.MsCnt.Get(),
				v.OutValue.Get(),
			},
		})
	}
	return rows, nil
}

// FlipBit returns a copy of rows with one bit flipped in one signal of
// one tick — the paper's data-error model applied to a trace. Out-of-
// range indices are a no-op copy.
func FlipBit(rows []TraceRow, tick, signal, bit int) []TraceRow {
	out := append([]TraceRow(nil), rows...)
	if tick >= 0 && tick < len(out) && signal >= 0 && signal < NumSignals && bit >= 0 && bit < 16 {
		out[tick].Values[signal] ^= 1 << bit
	}
	return out
}

// EncodeTrace renders a trace as wire batches for one stream:
// batchSize records per batch, FlagReset on the first record when
// reset is set. The result is a valid Ingest payload.
func EncodeTrace(dst []byte, streamID uint32, rows []TraceRow, batchSize int, reset bool) []byte {
	if batchSize <= 0 || batchSize > MaxBatchRecords {
		batchSize = MaxBatchRecords
	}
	for off := 0; off < len(rows); off += batchSize {
		end := off + batchSize
		if end > len(rows) {
			end = len(rows)
		}
		dst = AppendHeader(dst, end-off)
		for i := off; i < end; i++ {
			r := Record{Stream: streamID, Tick: rows[i].Tick, Values: rows[i].Values}
			if reset && i == 0 {
				r.Flags = FlagReset
			}
			dst = AppendRecord(dst, r)
		}
	}
	return dst
}
