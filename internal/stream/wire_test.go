package stream

import (
	"bytes"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Stream: 0, Tick: 1, Values: [NumSignals]uint16{100, 90, 3, 40, 2, 999, 80}},
		{Stream: 7, Tick: 2, Flags: FlagReset, Values: [NumSignals]uint16{65535, 0, 6, 1, 0, 0, 1750}},
		{Stream: 1 << 20, Tick: 1 << 30, Mode: 3},
	}
}

func TestWireRoundTrip(t *testing.T) {
	recs := sampleRecords()
	payload := AppendBatch(nil, recs)
	if want := HeaderBytes + len(recs)*RecordBytes; len(payload) != want {
		t.Fatalf("encoded batch is %d bytes, want %d", len(payload), want)
	}
	var got []Record
	err := walkBatches(payload, func(b []byte) error {
		for off := 0; off < len(b); off += RecordBytes {
			r, err := DecodeRecord(b[off:])
			if err != nil {
				return err
			}
			got = append(got, r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestWireConcatenatedBatches(t *testing.T) {
	recs := sampleRecords()
	payload := AppendBatch(nil, recs[:1])
	payload = AppendBatch(payload, recs[1:])
	n := 0
	if err := walkBatches(payload, func(b []byte) error {
		n += len(b) / RecordBytes
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("walked %d records across 2 batches, want %d", n, len(recs))
	}
}

func TestWireValidationErrors(t *testing.T) {
	good := AppendBatch(nil, sampleRecords())
	cases := []struct {
		name    string
		mangled []byte
	}{
		{"truncated header", good[:HeaderBytes-2]},
		{"bad magic", append([]byte("XXSB"), good[4:]...)},
		{"bad version", func() []byte {
			b := bytes.Clone(good)
			b[4] = 99
			return b
		}()},
		{"truncated records", good[:len(good)-1]},
		{"count overruns payload", func() []byte {
			b := bytes.Clone(good)
			b[6], b[7] = 0xff, 0xff
			return b
		}()},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := walkBatches(tt.mangled, func([]byte) error { return nil }); err == nil {
				t.Error("mangled payload validated")
			}
		})
	}
}

func TestEncodeTraceIsValidPayload(t *testing.T) {
	rows := []TraceRow{{Tick: 0}, {Tick: 1}, {Tick: 2}, {Tick: 3}, {Tick: 4}}
	payload := EncodeTrace(nil, 3, rows, 2, true)
	var got []Record
	if err := walkBatches(payload, func(b []byte) error {
		for off := 0; off < len(b); off += RecordBytes {
			r, _ := DecodeRecord(b[off:])
			got = append(got, r)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("%d records, want %d", len(got), len(rows))
	}
	if got[0].Flags&FlagReset == 0 {
		t.Error("first record lost FlagReset")
	}
	for i, r := range got {
		if r.Flags&FlagReset != 0 && i != 0 {
			t.Errorf("record %d has a spurious FlagReset", i)
		}
		if r.Stream != 3 || r.Tick != uint32(i) {
			t.Errorf("record %d: stream %d tick %d", i, r.Stream, r.Tick)
		}
	}
}

func TestCanonicalizeDetections(t *testing.T) {
	in := []byte("5\ta\n1\tb\n5\tc\n0\td\n1\te\npartial-tail")
	want := []byte("0\td\n1\tb\n1\te\n5\ta\n5\tc\n")
	if got := CanonicalizeDetections(in); !bytes.Equal(got, want) {
		t.Errorf("canonical form:\n%q\nwant:\n%q", got, want)
	}
	if got := CanonicalizeDetections([]byte("no-newline")); got != nil {
		t.Errorf("partial-only input canonicalized to %q", got)
	}
}
