package stream

import "fmt"

// Inline is the reference observer for the equivalence guarantee: it
// applies the same wire payloads through the same streamState path as
// the service, but single-goroutine and in strict arrival order, the
// way an inline monitor suite embedded in the plant node would see the
// samples. cmd/sigmon replays a trace into both a Service and an
// Inline and diffs the canonicalized detections byte for byte.
type Inline struct {
	maxStreams uint32
	streams    map[uint32]*streamState
	sink       *detSink
}

// NewInline builds a reference observer over an in-memory journal.
func NewInline(maxStreams int) *Inline {
	if maxStreams <= 0 {
		maxStreams = 1024
	}
	sink, _ := newDetSink("", 0) // in-memory sinks cannot fail to open
	return &Inline{
		maxStreams: uint32(maxStreams),
		streams:    make(map[uint32]*streamState),
		sink:       sink,
	}
}

// Ingest validates and applies one payload, all-or-nothing on
// validation errors, exactly like Service.Ingest — but synchronously:
// when it returns, every sample has been tested.
func (in *Inline) Ingest(payload []byte) error {
	maxID := in.maxStreams
	if err := walkBatches(payload, func(recs []byte) error {
		for off := 0; off < len(recs); off += RecordBytes {
			if id := be32(recs[off:]); id >= maxID {
				return fmt.Errorf("stream: stream ID %d out of range (max %d)", id, maxID-1)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return walkBatches(payload, func(recs []byte) error {
		for off := 0; off < len(recs); off += RecordBytes {
			rec := recs[off : off+RecordBytes]
			id := be32(rec)
			st := in.streams[id]
			if st == nil {
				var err error
				if st, err = newStreamState(id, in.sink, nil); err != nil {
					return err
				}
				in.streams[id] = st
			}
			st.apply(rec)
		}
		return nil
	})
}

// Detections returns every detection line so far.
func (in *Inline) Detections() ([]byte, error) {
	if err := in.sink.flush(); err != nil {
		return nil, err
	}
	return in.sink.snapshot()
}

// Stream returns a stream's state for counter inspection in tests, or
// nil if the stream never sent a sample.
func (in *Inline) Stream(id uint32) *streamState { return in.streams[id] }
