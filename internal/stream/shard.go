package stream

import (
	"fmt"
	"sync/atomic"
	"time"
)

// chunk is the unit of work handed from Ingest to a shard: encoded
// sample records (RecordBytes each, all belonging to the shard's
// stream range) in arrival order. Chunks are pooled; the recs buffer
// keeps its capacity across uses, so steady-state ingestion reuses the
// same backing arrays.
//
// A chunk with a non-nil ack and no records is a flush barrier: the
// shard flushes its detection journal and closes ack. Because the
// queue is FIFO and the shard goroutine is the only consumer, closing
// ack proves every chunk enqueued before the barrier has been fully
// applied and its detections are readable.
type chunk struct {
	recs []byte
	ack  chan struct{}
}

// shard owns a contiguous stream-ID range: the monitor instances of
// its streams, a bounded ingest queue, its slice of the metrics and a
// batched detection journal. All mutable monitoring state is touched
// only by the shard's goroutine (or, for an unstarted test service,
// by the test draining the queue itself), so the hot path takes no
// locks at all — the sharding IS the synchronization.
type shard struct {
	idx    int
	lo, hi uint32 // stream-ID range [lo, hi)
	ch     chan *chunk

	streams map[uint32]*streamState
	sink    *detSink
	m       shardMetrics
	svc     *Service
}

// run is the shard goroutine: drain chunks until the queue is closed,
// then flush and close the detection journal. Close(), which closes
// the queues, therefore guarantees every accepted sample has been
// applied and every detection is durable before it returns.
func (sh *shard) run() {
	defer sh.svc.wg.Done()
	for c := range sh.ch {
		sh.process(c)
	}
	if err := sh.sink.close(); err != nil {
		sh.svc.setErr(fmt.Errorf("stream: shard %d journal: %w", sh.idx, err))
	}
}

// process applies one chunk. It is the whole per-sample hot path:
// field reads straight off the wire bytes, a map lookup, the monitor
// tests, and a pooled-buffer detection line on violation — no
// allocation anywhere (gated by TestIngestPathZeroAllocs).
func (sh *shard) process(c *chunk) {
	if c.ack != nil {
		if err := sh.sink.flush(); err != nil {
			sh.svc.setErr(fmt.Errorf("stream: shard %d journal: %w", sh.idx, err))
		}
		close(c.ack)
		return
	}
	n := len(c.recs) / RecordBytes
	start := time.Now()
	for off := 0; off < len(c.recs); off += RecordBytes {
		rec := c.recs[off : off+RecordBytes]
		id := be32(rec)
		st := sh.streams[id]
		if st == nil {
			var err error
			if st, err = sh.addStream(id); err != nil {
				sh.svc.setErr(err)
				continue
			}
		}
		if st.apply(rec) {
			atomic.AddUint64(&sh.m.rejected, 1)
		}
	}
	sh.m.observe(n, time.Since(start))
	sh.svc.putChunk(c)
}

// addStream instantiates the monitors for a stream on its first
// sample. This is the one allocating step of a stream's lifetime;
// reconnects reuse the instances via FlagReset (the Monitor reuse
// contract), so a stream that flaps does not churn monitors.
func (sh *shard) addStream(id uint32) (*streamState, error) {
	st, err := newStreamState(id, sh.sink, &sh.m.detections)
	if err != nil {
		return nil, err
	}
	sh.streams[id] = st
	atomic.AddUint64(&sh.m.streams, 1)
	sh.svc.registry.Store(id, st)
	return st, nil
}

// snapshot reads the shard's metrics (any goroutine).
func (sh *shard) snapshot() ShardSnapshot {
	return ShardSnapshot{
		Index:      sh.idx,
		StreamLo:   sh.lo,
		StreamHi:   sh.hi,
		Streams:    atomic.LoadUint64(&sh.m.streams),
		Samples:    atomic.LoadUint64(&sh.m.samples),
		Batches:    atomic.LoadUint64(&sh.m.batches),
		Detections: atomic.LoadUint64(&sh.m.detections),
		Rejected:   atomic.LoadUint64(&sh.m.rejected),
		QueueDepth: len(sh.ch),
		QueueCap:   cap(sh.ch),
	}
}
