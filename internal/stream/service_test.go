package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// testTrace memoizes plant traces per test binary: running the physics
// is the expensive part of these tests.
var traceCache = map[int64][]TraceRow{}

func testTrace(t *testing.T, seed int64) []TraceRow {
	t.Helper()
	if rows, ok := traceCache[seed]; ok {
		return rows
	}
	rows, err := NominalTrace(2000, 14000, 55, seed)
	if err != nil {
		t.Fatal(err)
	}
	traceCache[seed] = rows
	return rows
}

// faultyTraces builds per-stream traces: nominal for even streams,
// bit-flipped (the paper's data-error model) for odd ones.
func faultyTraces(t *testing.T, streams int) map[uint32][]TraceRow {
	t.Helper()
	out := make(map[uint32][]TraceRow, streams)
	for id := 0; id < streams; id++ {
		rows := testTrace(t, int64(id%3))
		if id%2 == 1 {
			// Stream-dependent fault: high bit of a different signal at a
			// different tick per stream.
			rows = FlipBit(rows, 100+17*id, id%NumSignals, 15)
			rows = FlipBit(rows, 900+31*id, (id+3)%NumSignals, 14)
		}
		out[uint32(id)] = rows
	}
	return out
}

// interleave renders per-stream traces as one payload of mixed-stream
// batches, round-robin across streams, batchSize records per batch.
func interleave(traces map[uint32][]TraceRow, streams, batchSize int) []byte {
	var recs []Record
	maxLen := 0
	for _, rows := range traces {
		if len(rows) > maxLen {
			maxLen = len(rows)
		}
	}
	for i := 0; i < maxLen; i++ {
		for id := 0; id < streams; id++ {
			rows := traces[uint32(id)]
			if i < len(rows) {
				recs = append(recs, Record{Stream: uint32(id), Tick: rows[i].Tick, Values: rows[i].Values})
			}
		}
	}
	var payload []byte
	for off := 0; off < len(recs); off += batchSize {
		end := off + batchSize
		if end > len(recs) {
			end = len(recs)
		}
		payload = AppendBatch(payload, recs[off:end])
	}
	return payload
}

func TestNominalReplayYieldsNoDetections(t *testing.T) {
	svc, err := New(Config{Shards: 2, MaxStreams: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	payload := EncodeTrace(nil, 5, testTrace(t, 0), 500, false)
	accepted, dropped, err := svc.Ingest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || accepted != 2000 {
		t.Fatalf("accepted %d dropped %d, want 2000/0", accepted, dropped)
	}
	var det bytes.Buffer
	if err := svc.DetectionsTo(&det); err != nil {
		t.Fatal(err)
	}
	if det.Len() != 0 {
		t.Errorf("fault-free replay produced detections:\n%s", det.String())
	}
	m := svc.Metrics()
	if m.Samples != 2000 || m.Detections != 0 {
		t.Errorf("metrics: samples %d detections %d, want 2000/0", m.Samples, m.Detections)
	}
}

// TestObserverEquivalence is the headline guarantee: a sharded service
// and the inline reference observer, fed the same interleaved
// multi-stream payload with injected faults, report byte-identical
// canonical detections.
func TestObserverEquivalence(t *testing.T) {
	const streams = 6
	traces := faultyTraces(t, streams)
	payload := interleave(traces, streams, 96)

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			svc, err := New(Config{Shards: shards, MaxStreams: streams})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			if _, _, err := svc.Ingest(payload); err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := svc.DetectionsTo(&got); err != nil {
				t.Fatal(err)
			}

			in := NewInline(streams)
			if err := in.Ingest(payload); err != nil {
				t.Fatal(err)
			}
			want, err := in.Detections()
			if err != nil {
				t.Fatal(err)
			}

			cGot := CanonicalizeDetections(got.Bytes())
			cWant := CanonicalizeDetections(want)
			if len(cWant) == 0 {
				t.Fatal("fault injection produced no detections; the test is vacuous")
			}
			if !bytes.Equal(cGot, cWant) {
				t.Errorf("observers diverge:\nservice:\n%s\ninline:\n%s", cGot, cWant)
			}
		})
	}
}

// TestStreamReconnectReuse pins the recycle contract end to end: a
// stream that reconnects replays from tick 0. Without FlagReset the
// stale previous values of the old session smear spurious violations;
// with it the replay is clean and the lifetime counters span both
// sessions.
func TestStreamReconnectReuse(t *testing.T) {
	rows := testTrace(t, 0)

	svc, err := New(Config{Shards: 1, MaxStreams: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Session 1 on stream 0 and, without reset, session 2 on stream 1:
	// stream 1's "reconnect" does not announce itself.
	session := EncodeTrace(nil, 0, rows, 500, false)
	if _, _, err := svc.Ingest(session); err != nil {
		t.Fatal(err)
	}
	dirty := EncodeTrace(nil, 1, rows, 500, false)
	dirty = EncodeTrace(dirty, 1, rows, 500, false)
	if _, _, err := svc.Ingest(dirty); err != nil {
		t.Fatal(err)
	}
	// Session 2 on stream 0 announces the reconnect.
	clean := EncodeTrace(nil, 0, rows, 500, true)
	if _, _, err := svc.Ingest(clean); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}

	_, samples, det0, _, ok := svc.StreamStats(0)
	if !ok {
		t.Fatal("stream 0 unknown")
	}
	if samples != 2*uint64(len(rows)) {
		t.Errorf("stream 0 samples = %d across sessions, want %d", samples, 2*len(rows))
	}
	if det0 != 0 {
		t.Errorf("reconnect with FlagReset produced %d spurious detections", det0)
	}
	_, _, det1, _, ok := svc.StreamStats(1)
	if !ok {
		t.Fatal("stream 1 unknown")
	}
	if det1 == 0 {
		t.Error("reconnect without FlagReset was spuriously clean; the control leg proves nothing")
	}

	stats, _, _, _, _ := svc.StreamStats(0)
	var tests uint64
	for _, st := range stats {
		tests += st.Tests
	}
	if tests != 2*uint64(len(rows))*NumSignals {
		t.Errorf("monitor lifetime tests = %d, want %d: accounting must span sessions", tests, 2*len(rows)*NumSignals)
	}
}

func TestUnknownModeRejectsRecord(t *testing.T) {
	svc, err := New(Config{Shards: 1, MaxStreams: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	rows := testTrace(t, 0)[:10]
	recs := make([]Record, 0, len(rows))
	for i, r := range rows {
		rec := Record{Stream: 0, Tick: r.Tick, Values: r.Values}
		if i == 0 {
			// The Table 4 suite has only mode 0. The bad record leads the
			// stream: a rejected record mid-stream would additionally gap
			// the strict-increment signals (mscnt jumps by 2), which is a
			// real violation, not a leak.
			rec.Mode = 9
		}
		recs = append(recs, rec)
	}
	if _, _, err := svc.Ingest(AppendBatch(nil, recs)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	_, samples, det, rejected, _ := svc.StreamStats(0)
	if rejected != 1 || samples != uint64(len(rows)-1) {
		t.Errorf("samples %d rejected %d, want %d/1", samples, rejected, len(rows)-1)
	}
	if det != 0 {
		t.Errorf("a rejected record leaked %d violations into the detection journal", det)
	}
}

func TestBackpressureShed(t *testing.T) {
	svc, err := NewUnstarted(Config{Shards: 1, MaxStreams: 4, QueueBatches: 1, Policy: PolicyShed})
	if err != nil {
		t.Fatal(err)
	}
	rows := testTrace(t, 0)[:100]
	payload := EncodeTrace(nil, 0, rows, 100, false)

	a1, d1, err := svc.Ingest(payload)
	if err != nil || a1 != 100 || d1 != 0 {
		t.Fatalf("first ingest: %d/%d, %v; want 100/0", a1, d1, err)
	}
	a2, d2, err := svc.Ingest(payload) // queue full: shed whole
	if err != nil || a2 != 0 || d2 != 100 {
		t.Fatalf("second ingest: %d/%d, %v; want 0/100", a2, d2, err)
	}
	svc.DrainQueued()
	m := svc.Metrics()
	if m.DroppedSamples != 100 || m.DroppedBatches != 1 {
		t.Errorf("dropped samples %d batches %d, want 100/1", m.DroppedSamples, m.DroppedBatches)
	}
	if m.Samples != 100 {
		t.Errorf("applied %d samples, want exactly the accepted 100", m.Samples)
	}
}

func TestBackpressureBlockNeverDrops(t *testing.T) {
	svc, err := New(Config{Shards: 2, MaxStreams: 8, QueueBatches: 1, Policy: PolicyBlock})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	rows := testTrace(t, 0)[:200]
	total := 0
	for id := uint32(0); id < 8; id++ {
		payload := EncodeTrace(nil, id, rows, 25, false)
		a, d, err := svc.Ingest(payload)
		if err != nil || d != 0 {
			t.Fatalf("stream %d: dropped %d, err %v", id, d, err)
		}
		total += a
	}
	if err := svc.Flush(); err != nil {
		t.Fatal(err)
	}
	if m := svc.Metrics(); m.Samples != uint64(total) || m.DroppedSamples != 0 {
		t.Errorf("applied %d dropped %d, want %d/0", m.Samples, m.DroppedSamples, total)
	}
}

// TestCloseDrainsToJournalFiles proves the shutdown contract: Close
// returns only after every accepted sample is applied and the on-disk
// journals are complete, and the files agree with the inline observer.
func TestCloseDrainsToJournalFiles(t *testing.T) {
	dir := t.TempDir()
	const streams = 4
	traces := faultyTraces(t, streams)
	payload := interleave(traces, streams, 64)

	svc, err := New(Config{Shards: 2, MaxStreams: streams, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Ingest(payload); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Ingest(payload); err != ErrClosed {
		t.Errorf("Ingest after Close: %v, want ErrClosed", err)
	}

	var got []byte
	for i := 0; i < 2; i++ {
		b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("detections-%d.log", i)))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b...)
	}
	in := NewInline(streams)
	if err := in.Ingest(payload); err != nil {
		t.Fatal(err)
	}
	want, err := in.Detections()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(CanonicalizeDetections(got), CanonicalizeDetections(want)) {
		t.Error("journal files after Close diverge from the inline observer")
	}
}

// TestDetectionJournalCutMidWrite is the stream-side half of the
// shared truncation-tolerance contract (the journal-side half is
// TestLineBatcherCutMidWriteTolerance): a journal cut at an arbitrary
// byte keeps every complete detection line.
func TestDetectionJournalCutMidWrite(t *testing.T) {
	dir := t.TempDir()
	const streams = 4
	traces := faultyTraces(t, streams)
	svc, err := New(Config{Shards: 1, MaxStreams: streams, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Ingest(interleave(traces, streams, 64)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(filepath.Join(dir, "detections-0.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) == 0 {
		t.Fatal("no detections to cut; the test is vacuous")
	}
	for cut := len(whole) - 1; cut > len(whole)-40 && cut > 0; cut-- {
		kept := CompleteLines(whole[:cut])
		if !bytes.HasPrefix(whole, kept) {
			t.Fatalf("cut at %d: recovered lines are not a prefix of the journal", cut)
		}
		if tail := whole[len(kept):cut]; bytes.Contains(tail, []byte("\n")) {
			t.Fatalf("cut at %d: partial tail still holds a complete line", cut)
		}
	}
}

func TestHTTPAPI(t *testing.T) {
	const streams = 4
	traces := faultyTraces(t, streams)
	payload := interleave(traces, streams, 64)

	svc, err := New(Config{Shards: 2, MaxStreams: streams})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/api/v1/ingest", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var ack IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ack.Dropped != 0 || ack.Accepted == 0 {
		t.Fatalf("ingest: status %d ack %+v", resp.StatusCode, ack)
	}

	// Invalid payload: rejected whole, nothing applied.
	bad := AppendBatch(nil, []Record{{Stream: 999}})
	resp, err = http.Post(srv.URL+"/api/v1/ingest", "application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range stream: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/api/v1/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("flush: status %d, want 204", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Samples != uint64(ack.Accepted) || m.Shards != 2 || len(m.PerShard) != 2 {
		t.Errorf("metrics %+v inconsistent with ingest ack %+v", m, ack)
	}
	if m.Detections == 0 || m.SignalsPerSec <= 0 || m.P99TickLatencyNs == 0 {
		t.Errorf("metrics %+v missing derived figures", m)
	}

	resp, err = http.Get(srv.URL + "/api/v1/detections")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	in := NewInline(streams)
	if err := in.Ingest(payload); err != nil {
		t.Fatal(err)
	}
	want, _ := in.Detections()
	if !bytes.Equal(CanonicalizeDetections(got), CanonicalizeDetections(want)) {
		t.Error("HTTP detections diverge from the inline observer")
	}

	resp, err = http.Get(srv.URL + "/api/v1/streams/1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StreamStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Stream != 1 || st.Samples == 0 || len(st.Monitors) != NumSignals {
		t.Errorf("stream stats %+v", st)
	}
	if st.Detections == 0 {
		t.Error("stream 1 carries injected faults; expected detections")
	}

	resp, err = http.Get(srv.URL + "/api/v1/streams/99/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown stream: status %d, want 404", resp.StatusCode)
	}
}
