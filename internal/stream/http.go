package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// HTTP API of the sigmond service. Mirrors the ficd service idioms
// (method+path mux patterns, JSON envelopes); SIGMOND.md is the
// reference.
//
//	GET  /healthz                      liveness
//	POST /api/v1/ingest                binary sample batches (wire format)
//	POST /api/v1/flush                 barrier: applied + journaled
//	GET  /api/v1/metrics               Metrics JSON
//	GET  /api/v1/detections            all detection lines (TSV)
//	GET  /api/v1/streams/{id}/stats    one stream's live accounting

// IngestResponse acknowledges a POST /api/v1/ingest.
type IngestResponse struct {
	// Accepted is the number of samples queued to shards.
	Accepted int `json:"accepted"`
	// Dropped is the number of samples shed (PolicyShed on full
	// queues; always 0 under PolicyBlock).
	Dropped int `json:"dropped"`
}

// StreamStatsResponse is one stream's live accounting.
type StreamStatsResponse struct {
	Stream     uint32 `json:"stream"`
	Samples    uint64 `json:"samples"`
	Detections uint64 `json:"detections"`
	Rejected   uint64 `json:"rejected"`
	// Monitors is the per-assertion breakdown from the live suite.
	Monitors []StreamMonitorStats `json:"monitors"`
}

// StreamMonitorStats is one monitor's row in StreamStatsResponse.
type StreamMonitorStats struct {
	Name       string `json:"name"`
	Class      string `json:"class"`
	Tests      uint64 `json:"tests"`
	Violations uint64 `json:"violations"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

// bodyPool recycles ingest request bodies: batch payloads arrive at a
// high rate, and reading each into a fresh buffer would make the HTTP
// layer the only allocating stage of the ingest path.
var bodyPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64*1024)
		return &b
	},
}

// readBody reads r fully into a pooled buffer. The caller must return
// the buffer with putBody when done with the bytes.
func readBody(r io.Reader) (*[]byte, error) {
	bp := bodyPool.Get().(*[]byte)
	buf := (*bp)[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			*bp = buf
			return bp, nil
		}
		if err != nil {
			*bp = buf
			bodyPool.Put(bp)
			return nil, err
		}
	}
}

func putBody(bp *[]byte) { bodyPool.Put(bp) }

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /api/v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /api/v1/flush", s.handleFlush)
	mux.HandleFunc("GET /api/v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /api/v1/detections", s.handleDetections)
	mux.HandleFunc("GET /api/v1/streams/{id}/stats", s.handleStreamStats)
	return mux
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	bp, err := readBody(r.Body)
	if err != nil {
		// A client killed mid-request lands here: the short read is
		// rejected whole, nothing was applied.
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	accepted, dropped, err := s.Ingest(*bp)
	putBody(bp)
	if err != nil {
		status := http.StatusBadRequest
		if err == ErrClosed {
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Accepted: accepted, Dropped: dropped})
}

func (s *Service) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.Flush(); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Service) handleDetections(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/tab-separated-values")
	if err := s.DetectionsTo(w); err != nil {
		// Headers may be gone already; the line-oriented format lets the
		// client fall back to the complete-lines prefix (CompleteLines).
		return
	}
}

func (s *Service) handleStreamStats(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad stream ID %q", r.PathValue("id"))
		return
	}
	stats, samples, detections, rejected, ok := s.StreamStats(uint32(id))
	if !ok {
		writeErr(w, http.StatusNotFound, "no samples seen from stream %d", id)
		return
	}
	resp := StreamStatsResponse{
		Stream:     uint32(id),
		Samples:    samples,
		Detections: detections,
		Rejected:   rejected,
		Monitors:   make([]StreamMonitorStats, 0, len(stats)),
	}
	for _, st := range stats {
		resp.Monitors = append(resp.Monitors, StreamMonitorStats{
			Name:       st.Name,
			Class:      st.Class.String(),
			Tests:      st.Tests,
			Violations: st.Violations,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr writes an ErrorResponse.
func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}
