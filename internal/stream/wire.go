// Package stream is the sigmond streaming assertion-monitoring
// service: it multiplexes thousands of independent plant signal
// streams over the Table 1-3 monitor engine of internal/core, each
// stream carrying the seven monitored signals of the paper's Table 4.
//
// The service is a sharded monitor pool. Stream IDs are split into
// contiguous ranges, one range per shard; each shard owns a goroutine,
// the monitor instances of its streams, a bounded ingest queue and a
// batched violation sink, so the hot path never takes a cross-shard
// lock. Clients submit fixed-layout binary sample batches (the wire
// format below) that are decoded and dispatched with zero heap
// allocations per sample.
//
// Per-stream guarantee (observer equivalence): a sigmond stream fed a
// sequence of samples reports exactly the violations — same tick, same
// assertion, same offending value — that an inline core monitor suite
// fed the same sequence reports. Inline implements that reference
// observer; cmd/sigmon's replay mode checks the two byte for byte.
// See SIGMOND.md for the operator-level contract.
package stream

import (
	"fmt"

	"easig/internal/target"
)

// NumSignals is the number of signal values per sample record: one per
// Table 4 monitored signal (the wire format is fixed-layout, so this
// is a protocol constant, not a negotiable field).
const NumSignals = target.NumEAs

// Wire format. All integers are big-endian. A request body is one or
// more batches back to back; each batch is an 8-byte header followed
// by count fixed-size records:
//
//	header:  "EASB" | version uint8 | reserved uint8 | count uint16
//	record:  stream uint32 | tick uint32 | flags uint8 | mode uint8 |
//	         7 x value uint16
//
// A record carries one tick's observation of all seven monitored
// signals of one stream. The tick is the client's timestamp in
// milliseconds of plant time; it becomes Violation.Time.
const (
	// HeaderBytes is the fixed batch header size.
	HeaderBytes = 8
	// RecordBytes is the fixed sample record size.
	RecordBytes = 24
	// WireVersion is the protocol version this package speaks.
	WireVersion = 1
	// MaxBatchRecords bounds one batch (the count field is 16-bit).
	MaxBatchRecords = 1<<16 - 1
)

// Record flags.
const (
	// FlagReset marks the first sample of a new session on a stream
	// whose monitor instances are being reused (a reconnect): every
	// monitor is Reset before the sample is applied, so it is tested as
	// a first observation (bounds/domain only, no rate test against the
	// previous session's stale s'). Lifetime counters keep accumulating
	// — see the Monitor reuse contract in internal/core.
	FlagReset = 0x01
)

// magic opens every batch header.
var magic = [4]byte{'E', 'A', 'S', 'B'}

// Record is one decoded sample: one tick's observation of a stream's
// seven monitored signals. The hot path never materializes Records —
// shards read fields straight out of the wire bytes — but clients and
// tests build batches from them.
type Record struct {
	// Stream identifies the plant stream (must be < the service's
	// configured MaxStreams).
	Stream uint32
	// Tick is the sample's timestamp in ms of plant time.
	Tick uint32
	// Flags carries the Flag* bits.
	Flags uint8
	// Mode selects the monitors' parameter-set mode (the Table 4 suite
	// is single-mode, so 0; the field exists for multi-mode suites).
	Mode uint8
	// Values are the signal observations in Table 4 order
	// (SetValue, IsValue, i, pulscnt, ms_slot_nbr, mscnt, OutValue).
	Values [NumSignals]uint16
}

// AppendHeader appends a batch header for count records.
func AppendHeader(dst []byte, count int) []byte {
	dst = append(dst, magic[0], magic[1], magic[2], magic[3])
	dst = append(dst, WireVersion, 0)
	return append(dst, byte(count>>8), byte(count))
}

// AppendRecord appends one encoded sample record.
func AppendRecord(dst []byte, r Record) []byte {
	dst = append(dst,
		byte(r.Stream>>24), byte(r.Stream>>16), byte(r.Stream>>8), byte(r.Stream),
		byte(r.Tick>>24), byte(r.Tick>>16), byte(r.Tick>>8), byte(r.Tick),
		r.Flags, r.Mode)
	for _, v := range r.Values {
		dst = append(dst, byte(v>>8), byte(v))
	}
	return dst
}

// AppendBatch appends a whole batch: header plus every record. Batches
// longer than MaxBatchRecords must be split by the caller.
func AppendBatch(dst []byte, recs []Record) []byte {
	dst = AppendHeader(dst, len(recs))
	for _, r := range recs {
		dst = AppendRecord(dst, r)
	}
	return dst
}

// be32 and be16 read big-endian integers. The explicit bounds
// subslicing keeps the compiler's bounds checks off the per-field hot
// path.
func be32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func be16(b []byte) uint16 {
	_ = b[1]
	return uint16(b[0])<<8 | uint16(b[1])
}

// DecodeRecord decodes the record at the start of b (tests and the
// replay client's bookkeeping; the service hot path reads fields
// directly).
func DecodeRecord(b []byte) (Record, error) {
	if len(b) < RecordBytes {
		return Record{}, fmt.Errorf("stream: short record: %d bytes", len(b))
	}
	r := Record{
		Stream: be32(b),
		Tick:   be32(b[4:]),
		Flags:  b[8],
		Mode:   b[9],
	}
	for k := 0; k < NumSignals; k++ {
		r.Values[k] = be16(b[10+2*k:])
	}
	return r, nil
}

// walkBatches validates the framing of a payload (one or more batches
// back to back) and calls visit with each batch's record region. It
// performs no per-record work, so callers fold their own per-record
// pass into visit.
func walkBatches(payload []byte, visit func(records []byte) error) error {
	off := 0
	for off < len(payload) {
		rest := payload[off:]
		if len(rest) < HeaderBytes {
			return fmt.Errorf("stream: truncated batch header at offset %d", off)
		}
		if rest[0] != magic[0] || rest[1] != magic[1] || rest[2] != magic[2] || rest[3] != magic[3] {
			return fmt.Errorf("stream: bad batch magic at offset %d", off)
		}
		if rest[4] != WireVersion {
			return fmt.Errorf("stream: wire version %d, want %d", rest[4], WireVersion)
		}
		count := int(be16(rest[6:]))
		size := HeaderBytes + count*RecordBytes
		if len(rest) < size {
			return fmt.Errorf("stream: batch at offset %d declares %d records but only %d bytes follow",
				off, count, len(rest)-HeaderBytes)
		}
		if err := visit(rest[HeaderBytes:size]); err != nil {
			return err
		}
		off += size
	}
	return nil
}
