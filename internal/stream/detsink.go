package stream

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"easig/internal/core"
	"easig/internal/journal"
)

// AppendDetection renders one violation as the canonical detection
// line and appends it to dst: tab-separated stream ID, tick, signal
// name, failed test, offending value, previous value ('-' when the
// monitor was unprimed) and mode, newline-terminated. The rendering is
// the equivalence currency of SIGMOND.md — sigmond's journal and the
// inline reference observer emit the identical bytes for the identical
// violation — so its format is frozen alongside the wire format.
func AppendDetection(dst []byte, stream uint32, v core.Violation) []byte {
	dst = strconv.AppendUint(dst, uint64(stream), 10)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, v.Time, 10)
	dst = append(dst, '\t')
	dst = append(dst, v.Signal...)
	dst = append(dst, '\t')
	dst = append(dst, v.Test.String()...)
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, v.Value, 10)
	dst = append(dst, '\t')
	if v.HasPrev {
		dst = strconv.AppendInt(dst, v.Prev, 10)
	} else {
		dst = append(dst, '-')
	}
	dst = append(dst, '\t')
	dst = strconv.AppendInt(dst, int64(v.Mode), 10)
	return append(dst, '\n')
}

// memBuf is an in-memory detection journal (JournalDir ""): a locked
// buffer whose snapshots are consistent with concurrent appends.
type memBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (m *memBuf) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buf.Write(p)
}

func (m *memBuf) snapshot() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.buf.Bytes()...)
}

// detSink is one shard's violation journal: detection lines are staged
// in a journal.LineBatcher, so the shard goroutine issues one
// line-aligned write per ~64 KiB of detections instead of one write
// per violation, and a reader that catches the journal mid-write sees
// only whole lines plus at most one partial tail. Like the batcher it
// wraps, a detSink has a single owner; only snapshot may be called
// from other goroutines.
type detSink struct {
	b    *journal.LineBatcher
	line []byte
	file *os.File
	path string
	mem  *memBuf
}

// newDetSink opens shard idx's journal under dir, or an in-memory
// journal when dir is empty (tests, and services queried only over
// HTTP).
func newDetSink(dir string, idx int) (*detSink, error) {
	s := &detSink{}
	if dir == "" {
		s.mem = &memBuf{}
		s.b = journal.NewLineBatcher(s.mem)
		return s, nil
	}
	path := filepath.Join(dir, fmt.Sprintf("detections-%d.log", idx))
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("stream: opening detection journal: %w", err)
	}
	s.file, s.path = f, path
	s.b = journal.NewLineBatcher(f)
	return s, nil
}

// add stages one detection line. The line buffer is reused, so the
// violating hot path allocates nothing either.
func (s *detSink) add(stream uint32, v core.Violation) {
	s.line = AppendDetection(s.line[:0], stream, v)
	s.b.Add(s.line)
}

// flush forces staged lines out (owner goroutine only).
func (s *detSink) flush() error { return s.b.Flush() }

// snapshot returns the journal's written bytes. Safe to call from any
// goroutine; lines staged in the batcher but not yet flushed are not
// included, which is why readers flush first (Service.Flush).
func (s *detSink) snapshot() ([]byte, error) {
	if s.mem != nil {
		return s.mem.snapshot(), nil
	}
	return os.ReadFile(s.path)
}

// close flushes and releases the journal (owner goroutine only).
func (s *detSink) close() error {
	err := s.b.Flush()
	if s.file != nil {
		if cerr := s.file.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CompleteLines trims b to its newline-terminated prefix: a reader
// that raced a write (or read a journal cut mid-write by a crash)
// drops the partial tail and keeps every whole detection line.
func CompleteLines(b []byte) []byte {
	if i := bytes.LastIndexByte(b, '\n'); i >= 0 {
		return b[:i+1]
	}
	return nil
}

// CanonicalizeDetections reorders detection lines by ascending stream
// ID while preserving each stream's own line order. Per-stream order
// is the only order sigmond guarantees — a 4-shard service interleaves
// streams differently than a 1-shard one or the inline reference — so
// equivalence is checked on the canonical form: two observers agree
// iff their canonicalized journals are byte-identical. A trailing
// partial line is dropped (see CompleteLines).
func CanonicalizeDetections(b []byte) []byte {
	b = CompleteLines(b)
	if len(b) == 0 {
		return nil
	}
	var lines [][]byte
	for len(b) > 0 {
		i := bytes.IndexByte(b, '\n')
		lines = append(lines, b[:i+1])
		b = b[i+1:]
	}
	key := func(line []byte) uint64 {
		end := bytes.IndexByte(line, '\t')
		if end < 0 {
			end = len(line) - 1
		}
		n, _ := strconv.ParseUint(string(line[:end]), 10, 64)
		return n
	}
	keys := make([]uint64, len(lines))
	for i, l := range lines {
		keys[i] = key(l)
	}
	// Sort line indices, not the lines, so keys stay aligned.
	idx := make([]int, len(lines))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	var n int
	for _, l := range lines {
		n += len(l)
	}
	out := make([]byte, 0, n)
	for _, i := range idx {
		out = append(out, lines[i]...)
	}
	return out
}
