package stream

import (
	"testing"
)

// The zero-allocation gates, same discipline as internal/inject's: the
// service is built unstarted so the measured goroutine performs the
// whole ingest→monitor path itself (validation, partitioning, queue,
// monitor dispatch, detection rendering) with no scheduler noise, a
// few warm-up passes create the streams and size the pools, and then
// the steady state must allocate exactly nothing.

func allocPayload(t *testing.T, streams int, faulty bool) []byte {
	t.Helper()
	traces := make(map[uint32][]TraceRow, streams)
	for id := 0; id < streams; id++ {
		rows := testTrace(t, 0)[:64]
		if faulty && id%2 == 1 {
			rows = FlipBit(rows, 30, id%NumSignals, 15)
		}
		traces[uint32(id)] = rows
	}
	return interleave(traces, streams, 64)
}

func ingestGate(t *testing.T, svc *Service, payload []byte, samples int) {
	t.Helper()
	if raceEnabled {
		t.Skip("race-detector bookkeeping distorts allocation counts; the gate runs in the non-race jobs")
	}
	for i := 0; i < 4; i++ {
		if _, _, err := svc.Ingest(payload); err != nil {
			t.Fatal(err)
		}
		svc.DrainQueued()
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, _, err := svc.Ingest(payload); err != nil {
			t.Fatal(err)
		}
		svc.DrainQueued()
	})
	if avg != 0 {
		t.Errorf("ingest->monitor path allocates: %.2f allocs per %d-sample payload (%.4f/sample), want 0",
			avg, samples, avg/float64(samples))
	}
}

func TestIngestPathZeroAllocs(t *testing.T) {
	const streams = 8
	svc, err := NewUnstarted(Config{Shards: 4, MaxStreams: streams, QueueBatches: 64})
	if err != nil {
		t.Fatal(err)
	}
	ingestGate(t, svc, allocPayload(t, streams, false), streams*64)
}

// TestViolatingPathZeroAllocs covers the detection branch too: faulty
// streams render journal lines every pass (each pass replays from tick
// 0 without FlagReset, so the restart itself also violates), against a
// file journal as in production.
func TestViolatingPathZeroAllocs(t *testing.T) {
	const streams = 8
	svc, err := NewUnstarted(Config{Shards: 4, MaxStreams: streams, QueueBatches: 64, JournalDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ingestGate(t, svc, allocPayload(t, streams, true), streams*64)
	if svc.Metrics().Detections == 0 {
		t.Fatal("no detections; the violating-path gate is vacuous")
	}
}
