package inject

import (
	"testing"

	"easig/internal/core"
	"easig/internal/physics"
	"easig/internal/target"
)

func TestGoldenRunClean(t *testing.T) {
	res, err := Run(RunConfig{
		TestCase: physics.TestCase{MassKg: 14000, VelocityMS: 55},
		Version:  target.VersionAll,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected || res.Failed {
		t.Fatalf("golden run: detected=%v failed=%v", res.Detected, res.Failed)
	}
	if !res.Stopped || res.DistanceM >= 335 {
		t.Fatalf("golden run: stopped=%v d=%.1f", res.Stopped, res.DistanceM)
	}
	if res.Injections != 0 {
		t.Fatalf("golden run injected %d times", res.Injections)
	}
}

func TestRunInjectionSchedule(t *testing.T) {
	e := BuildE1()[0] // SetValue bit 0: harmless enough to run long
	res, err := Run(RunConfig{
		TestCase:        physics.TestCase{MassKg: 14000, VelocityMS: 55},
		Version:         target.VersionNone,
		Error:           &e,
		Policy:          Policy{StartMs: 100, PeriodMs: 50},
		ObservationMs:   1000,
		Seed:            1,
		FullObservation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Injections at 100, 150, ..., 950: 18 of them.
	if res.Injections != 18 {
		t.Fatalf("injections = %d, want 18", res.Injections)
	}
}

func TestRunDetectsCounterError(t *testing.T) {
	// mscnt is the sixth signal; any of its bits is detected almost
	// immediately by EA6 (the paper's 100% column).
	var e Error
	for _, cand := range BuildE1() {
		if cand.Signal == target.SigMsCnt {
			e = cand
			break
		}
	}
	res, err := Run(RunConfig{
		TestCase: physics.TestCase{MassKg: 14000, VelocityMS: 55},
		Version:  target.VersionAll,
		Error:    &e,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("mscnt bit-flip not detected")
	}
	if res.LatencyMs < 0 || res.LatencyMs > 40 {
		t.Errorf("latency = %d ms, want within two injection periods", res.LatencyMs)
	}
	if res.FirstDetectionMs < 500 {
		t.Errorf("first detection at %d ms, before the first injection", res.FirstDetectionMs)
	}
}

func TestRunVersionGatesDetection(t *testing.T) {
	// An mscnt error is invisible to a version with only EA1.
	var e Error
	for _, cand := range BuildE1() {
		if cand.Signal == target.SigMsCnt && cand.Bit == 0 {
			e = cand
			break
		}
	}
	res, err := Run(RunConfig{
		TestCase:      physics.TestCase{MassKg: 14000, VelocityMS: 55},
		Version:       target.VersionEA1,
		Error:         &e,
		ObservationMs: 4000,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Error("EA1-only version detected an mscnt LSB error within 4 s")
	}
}

func TestRunRecoveryAblation(t *testing.T) {
	// A high bit of SetValue on a light aircraft: detection-only lets
	// the corrupt set point drive the drums (failure); PreviousValue
	// recovery repairs it and the arrestment succeeds.
	var e Error
	for _, cand := range BuildE1() {
		if cand.Signal == target.SigSetValue && cand.Bit == 6 && cand.Addr%2 == 0 { // word bit 14
			e = cand
			break
		}
	}
	tc := physics.TestCase{MassKg: 8000, VelocityMS: 55}

	detOnly, err := Run(RunConfig{TestCase: tc, Version: target.VersionAll, Error: &e, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !detOnly.Detected {
		t.Fatal("bit-14 SetValue error not detected")
	}
	if !detOnly.Failed {
		t.Fatal("detection-only run should fail: full pressure on a light aircraft")
	}

	recovered, err := Run(RunConfig{
		TestCase: tc, Version: target.VersionAll, Error: &e, Seed: 2,
		Recovery:        core.PreviousValue{},
		FullObservation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !recovered.Detected {
		t.Fatal("recovery run must still detect")
	}
	if recovered.Failed {
		t.Errorf("recovery run failed: %v", recovered.Failure)
	}
}

func TestRunEarlyExitMatchesFullOutcome(t *testing.T) {
	var e Error
	for _, cand := range BuildE1() {
		if cand.Signal == target.SigPulsCnt && cand.Bit == 7 {
			e = cand
			break
		}
	}
	base := RunConfig{
		TestCase: physics.TestCase{MassKg: 17000, VelocityMS: 62.5},
		Version:  target.VersionAll,
		Error:    &e,
		Seed:     4,
	}
	fast, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	full := base
	full.FullObservation = true
	slow, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	// The campaign readouts must agree between the two modes.
	if fast.Detected != slow.Detected || fast.Failed != slow.Failed ||
		fast.LatencyMs != slow.LatencyMs || fast.FirstDetectionMs != slow.FirstDetectionMs {
		t.Errorf("early-exit run diverged: fast=%+v slow=%+v", fast, slow)
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := DefaultPolicy()
	if p.PeriodMs != 20 {
		t.Errorf("period = %d ms, want the paper's 20", p.PeriodMs)
	}
	if DefaultObservationMs != 40000 {
		t.Error("observation period deviates from the paper's 40 s")
	}
}

// Each executable assertion, enabled alone, detects a high-bit error
// in its own monitored signal (the boldface diagonal of the paper's
// Table 7).
func TestEAMatrixDiagonal(t *testing.T) {
	errors := BuildE1()
	for sig := 0; sig < target.NumEAs; sig++ {
		// The MSB error of signal sig (bit 15 is the last of its 16).
		e := errors[sig*16+15]
		res, err := Run(RunConfig{
			TestCase:      physics.TestCase{MassKg: 14000, VelocityMS: 55},
			Version:       target.Version(sig + 1),
			Error:         &e,
			ObservationMs: 10000,
			Seed:          3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Detected {
			t.Errorf("EA%d did not detect the MSB error in %s", sig+1, e.Signal)
		}
	}
}

// With every assertion disabled, no error is ever detected (the pin
// stays low): detection really comes from the mechanisms, not from the
// harness.
func TestNoVersionNoDetection(t *testing.T) {
	errors := BuildE1()
	for _, idx := range []int{15, 47, 95} { // SetValue, i, mscnt MSBs
		e := errors[idx]
		res, err := Run(RunConfig{
			TestCase:      physics.TestCase{MassKg: 14000, VelocityMS: 55},
			Version:       target.VersionNone,
			Error:         &e,
			ObservationMs: 6000,
			Seed:          3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			t.Errorf("detection with all assertions disabled (%s)", e.ID)
		}
	}
}
