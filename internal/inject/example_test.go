package inject_test

import (
	"fmt"

	"easig/internal/inject"
	"easig/internal/physics"
	"easig/internal/target"
)

// ExampleNewRunner builds a memo-mode runner for one test case and
// serves one Table 6 error against two version builds in a single
// call — the unified Runner API every campaign mode sits behind.
func ExampleNewRunner() {
	runner, err := inject.NewRunner(inject.ModeMemo, inject.RunConfig{
		TestCase:      physics.TestCase{MassKg: 14000, VelocityMS: 55},
		Seed:          12345,
		ObservationMs: 16000,
	})
	if err != nil {
		panic(err)
	}
	e := inject.BuildE1()[25] // S26: a bit flip in the IsValue signal word
	versions := []target.Version{target.VersionEA2, target.VersionAll}
	out := make([]inject.RunResult, len(versions))
	if err := runner.RunError(e, versions, out); err != nil {
		panic(err)
	}
	for i, v := range versions {
		fmt.Printf("%s under %v: detected=%v latency=%dms\n", e.ID, v, out[i].Detected, out[i].LatencyMs)
	}
	// Output:
	// S26 under EA2: detected=true latency=20ms
	// S26 under All: detected=true latency=20ms
}

// ExampleBuildExhaustive enumerates the full §3.4 fault space: every
// (byte, bit) position of application RAM and stack — the error set of
// the exhaustive census and the optimizer's deepest sweep.
func ExampleBuildExhaustive() {
	errs := inject.BuildExhaustive()
	fmt.Printf("%d positions, first %s, last %s\n", len(errs), errs[0].ID, errs[len(errs)-1].ID)
	// Output:
	// 11400 positions, first R0x0100.0, last K0x07ef.7
}
