// Package inject implements the fault-injection side of the paper's
// case study: the FIC3 campaign computer's error sets, the SWIFI
// bit-flip injector and the single-run experiment controller.
//
// The paper's §3.4 defines two error sets:
//
//   - E1: 112 errors — one bit-flip per bit position of each of the
//     seven monitored 16-bit signals (Table 6), used to estimate Pds,
//     the detection probability for errors in monitored signals;
//   - E2: 200 errors — bit-flips at uniformly random (address, bit)
//     positions, 150 in application RAM (417 bytes) and 50 in the
//     stack (1008 bytes), sampled with replacement, used to estimate
//     the total detection probability Pdetect.
//
// Errors are injected time-triggered with a 20 ms period during the
// 40-second observation window, so the same bit is flipped repeatedly
// (an intermittent fault model).
package inject

import (
	"fmt"
	"math/rand"

	"easig/internal/memory"
	"easig/internal/target"
)

// Error is one injectable error: a bit position at a byte address in
// one memory region of the master node.
type Error struct {
	// ID is the campaign identifier, e.g. "S17" (E1, Table 6 error
	// numbers) or "R42"/"K7" (E2 RAM/stack errors).
	ID string
	// Signal is the monitored signal name for E1 errors, "" for E2.
	Signal string
	// SignalIdx is the 0-based monitored-signal index for E1 errors,
	// -1 for E2.
	SignalIdx int
	// Region is the memory region name ("ram" or "stack").
	Region string
	// Addr is the byte address of the flipped byte.
	Addr uint16
	// Bit is the flipped bit within the byte (0 = least significant).
	Bit uint8
}

// Apply flips the error's bit in the given memory. Flipping is an
// involution: applying the same error twice restores the original
// contents, which is why periodic re-injection toggles the bit.
func (e Error) Apply(mem *memory.Memory) error {
	return mem.FlipBit(e.Addr, e.Bit)
}

// String renders the error for reports.
func (e Error) String() string {
	if e.Signal != "" {
		return fmt.Sprintf("%s: %s word-bit at 0x%04x bit %d", e.ID, e.Signal, e.Addr, e.Bit)
	}
	return fmt.Sprintf("%s: %s byte 0x%04x bit %d", e.ID, e.Region, e.Addr, e.Bit)
}

// BuildE1 builds the paper's error set E1 (Table 6): for each of the
// seven monitored signals, one bit-flip per bit position of its 16-bit
// word, 112 errors total, numbered S1..S112 in signal-major order
// (S1..S16 hit SetValue bit 0..15, S17..S32 hit IsValue, ...).
//
// The signals occupy the first seven words of the master's application
// RAM (see target.Vars); word bit b maps to byte bit b%8 of the low
// (b < 8) or high byte of the big-endian word.
func BuildE1() []Error {
	names := target.SignalNames()
	out := make([]Error, 0, len(names)*16)
	for sigIdx, name := range names {
		wordAddr := uint16(target.RAMBase + 2*sigIdx)
		for bit := 0; bit < 16; bit++ {
			byteAddr := wordAddr + 1 // low byte of the big-endian word
			byteBit := uint8(bit)
			if bit >= 8 {
				byteAddr = wordAddr
				byteBit = uint8(bit - 8)
			}
			out = append(out, Error{
				ID:        fmt.Sprintf("S%d", sigIdx*16+bit+1),
				Signal:    name,
				SignalIdx: sigIdx,
				Region:    target.RegionRAM,
				Addr:      byteAddr,
				Bit:       byteBit,
			})
		}
	}
	return out
}

// BuildExhaustive builds the full E2-style fault space: one bit-flip
// error per (byte, bit) position of the application RAM and the stack,
// 8×(417+1008) = 11,400 errors. Where the paper (and BuildE2) samples
// 200 random positions to *estimate* Pdetect, the exhaustive set lets
// the memoizing/pruning runner *measure* it over the whole space.
// Errors are ordered region-major, then address, then bit, with stable
// IDs "R0x%04x.%d" (RAM) and "K0x%04x.%d" (stack).
func BuildExhaustive() []Error {
	out := make([]Error, 0, 8*(target.RAMSize+target.StackSize))
	for off := 0; off < target.RAMSize; off++ {
		addr := uint16(target.RAMBase + off)
		for bit := uint8(0); bit < 8; bit++ {
			out = append(out, Error{
				ID:        fmt.Sprintf("R0x%04x.%d", addr, bit),
				SignalIdx: -1,
				Region:    target.RegionRAM,
				Addr:      addr,
				Bit:       bit,
			})
		}
	}
	for off := 0; off < target.StackSize; off++ {
		addr := uint16(target.StackBase + off)
		for bit := uint8(0); bit < 8; bit++ {
			out = append(out, Error{
				ID:        fmt.Sprintf("K0x%04x.%d", addr, bit),
				SignalIdx: -1,
				Region:    target.RegionStack,
				Addr:      addr,
				Bit:       bit,
			})
		}
	}
	return out
}

// E2Spec sizes the random error set; the zero value is not useful,
// use DefaultE2Spec.
type E2Spec struct {
	// RAM is the number of errors drawn in the application RAM region.
	RAM int `json:"ram"`
	// Stack is the number of errors drawn in the stack region.
	Stack int `json:"stack"`
}

// DefaultE2Spec returns the paper's E2 sizing: 150 RAM errors and 50
// stack errors.
func DefaultE2Spec() E2Spec { return E2Spec{RAM: 150, Stack: 50} }

// BuildE2 builds an E2-style error set: spec.RAM errors uniform over
// the application RAM bytes and spec.Stack errors uniform over the
// stack bytes, each with a uniform bit position, sampled with
// replacement as in the paper. The set is a deterministic function of
// the seed.
func BuildE2(spec E2Spec, seed int64) []Error {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Error, 0, spec.RAM+spec.Stack)
	for i := 0; i < spec.RAM; i++ {
		out = append(out, Error{
			ID:        fmt.Sprintf("R%d", i+1),
			SignalIdx: -1,
			Region:    target.RegionRAM,
			Addr:      uint16(target.RAMBase + rng.Intn(target.RAMSize)),
			Bit:       uint8(rng.Intn(8)),
		})
	}
	for i := 0; i < spec.Stack; i++ {
		out = append(out, Error{
			ID:        fmt.Sprintf("K%d", i+1),
			SignalIdx: -1,
			Region:    target.RegionStack,
			Addr:      uint16(target.StackBase + rng.Intn(target.StackSize)),
			Bit:       uint8(rng.Intn(8)),
		})
	}
	return out
}
