package inject

import (
	"testing"

	"easig/internal/core"
	"easig/internal/physics"
	"easig/internal/target"
)

// TestNominalTickZeroAlloc is the allocation gate on the simulator's
// per-tick hot path: once a system is built, stepping it — scheduler
// dispatch, both nodes' control calculations, every executable
// assertion, and the plant integration — must not touch the heap.
// Campaign throughput is ticks/second, so a single allocation here
// costs the full protocol tens of millions of allocations.
func TestNominalTickZeroAlloc(t *testing.T) {
	sys, err := target.NewSystem(target.SystemConfig{
		TestCase: physics.TestCase{MassKg: 14000, VelocityMS: 55},
		Seed:     1,
		Version:  target.VersionAll,
		Recovery: core.NoRecovery{},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.RunMs(1000) // past the priming transient
	if avg := testing.AllocsPerRun(200, sys.StepMs); avg != 0 {
		t.Fatalf("nominal tick allocates %.1f objects; the hot path must be allocation-free", avg)
	}
}

// TestViolatingTickZeroAlloc extends the gate to the violating path:
// an injected stuck-at error makes an assertion fire on every control
// cycle, and even then stepping must stay heap-free (the monitor's
// violation record is reused storage, the engine's recorder appends
// into retained buffers).
func TestViolatingTickZeroAlloc(t *testing.T) {
	errs := BuildE1()
	e := errs[6*16+14] // a high bit of a monitored signal: violates persistently
	eng, err := NewEngine(RunConfig{
		TestCase:      physics.TestCase{MassKg: 14000, VelocityMS: 55},
		ObservationMs: engineObsMs,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	versions := target.Versions()
	out := make([]RunResult, len(versions))
	// Warm-up: lets the recorder streams and capture buffers reach
	// their steady-state capacity.
	if err := eng.RunError(e, versions, out); err != nil {
		t.Fatal(err)
	}
	ticks := 2048
	avg := testing.AllocsPerRun(3, func() {
		if err := eng.sys.Restore(&eng.base); err != nil {
			t.Fatal(err)
		}
		eng.rec.truncate(&eng.baseLen, &eng.baseEA)
		for i := 0; i < ticks; i++ {
			if (i % int(eng.policy.PeriodMs)) == 0 {
				if err := e.Apply(eng.mem); err != nil {
					t.Fatal(err)
				}
			}
			eng.step()
		}
	})
	if perTick := avg / float64(ticks); perTick != 0 {
		t.Fatalf("violating run allocates %.2f objects/tick over %d ticks; want 0", perTick, ticks)
	}
}

// TestEngineErrorRunZeroAlloc gates the full per-error serving path —
// Engine.RunError with every version derived from one all-assertions
// profile — at zero allocations per run. The campaign calls this tens
// of thousands of times per experiment; the engine recycles the ByTest
// maps it finds in the caller's out slice (see RunError's reuse
// contract), so a steady-state caller that hands the same slice back
// never touches the heap.
func TestEngineErrorRunZeroAlloc(t *testing.T) {
	eng, err := NewEngine(RunConfig{
		TestCase:      physics.TestCase{MassKg: 14000, VelocityMS: 55},
		ObservationMs: engineObsMs,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	errs := BuildE1()
	versions := target.Versions()
	out := make([]RunResult, len(versions))
	// Warm-up over a spread of errors so every recorder stream, capture
	// buffer and the ByTest map pool reach steady-state capacity.
	for i := 0; i < len(errs); i += 7 {
		if err := eng.RunError(errs[i], versions, out); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(10, func() {
		if err := eng.RunError(errs[(i*7)%len(errs)], versions, out); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("engine error run allocates %.1f objects; want 0", avg)
	}
}
