package inject

import (
	"fmt"

	"easig/internal/core"
	"easig/internal/memory"
	"easig/internal/target"
)

// MemoRunner is the pruning and memoizing Runner: it wraps the snapshot
// Engine of one (test case, injection schedule) with two layers that
// serve errors without simulating them.
//
//  1. Liveness pruning. On first use the runner profiles the test case
//     fault-free over the full observation window with the def/use
//     Liveness pass armed. Errors whose byte is dead at every injection
//     time (never read between an injection epoch and the next store)
//     are provably benign — see the soundness argument on Liveness —
//     and their per-version results are derived from the cached nominal
//     profile with zero simulation.
//  2. Outcome memoization. For live errors, the post-injection state
//     delta against the case's snapshot — (address, post-flip byte,
//     flip mask) — is hashed; identical deltas under the identical
//     periodic schedule must produce identical trajectories, so repeat
//     faults (E2 samples with replacement) replay the memoized
//     per-version results.
//
// Everything else falls through to Engine.RunError. A MemoRunner is not
// safe for concurrent use; each campaign worker owns one.
type MemoRunner struct {
	eng   *Engine
	live  *Liveness
	baseM [][]byte // snapshot-time memory bytes, for the delta hash
	memo  map[uint64]memoEntry
	stats RunnerStats

	// shared, when non-nil, is the case-wide memo the parallel
	// scheduler hands every runner of the same test case: lookups fall
	// back to it lock-free, and FlushShared publishes this runner's
	// private entries into it at batch barriers.
	shared *SharedMemo
}

// memoEntry caches the derived results of one post-injection state
// delta for one version slice.
type memoEntry struct {
	versions []target.Version
	results  []RunResult
}

// NewMemoRunner builds the runner for one test case described by cfg.
// Like NewEngine, it requires detection-only runs; cfg.Error and
// cfg.Version are ignored. The liveness profile is computed lazily on
// the first RunError, so construction stays as cheap as NewEngine.
func NewMemoRunner(cfg RunConfig) (*MemoRunner, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &MemoRunner{
		eng:   eng,
		baseM: eng.mem.Snapshot(),
		memo:  make(map[uint64]memoEntry),
	}, nil
}

// Engine exposes the wrapped snapshot engine (tests and tools).
func (r *MemoRunner) Engine() *Engine { return r.eng }

// Liveness exposes the computed liveness map; nil before the first
// RunError.
func (r *MemoRunner) Liveness() *Liveness { return r.live }

// Stats implements StatsReporter. Simulated counts the errors the
// wrapped engine actually profiled (the one nominal liveness profile is
// not counted as an error).
func (r *MemoRunner) Stats() RunnerStats { return r.stats }

// profile runs the one-time nominal liveness profile.
func (r *MemoRunner) profile() error {
	live := NewLiveness(r.eng.mem.Regions())
	if err := r.eng.ProfileNominal(live, live.MarkInjection); err != nil {
		return err
	}
	r.live = live
	return nil
}

// stateHash hashes err's post-injection state delta against the
// runner's snapshot; see stateDeltaHash.
func (r *MemoRunner) stateHash(err Error) (uint64, error) {
	return stateDeltaHash(r.eng.mem.Regions(), r.baseM, err)
}

// stateDeltaHash is the FNV-1a hash of a post-injection state delta:
// which byte differs from the case's snapshot (baseM, indexed like
// regions), what it now holds, and the mask the periodic schedule keeps
// toggling. Two errors with equal hashes corrupt the snapshot into the
// same state and re-corrupt it on the same schedule, so their runs are
// the same run. The MemoRunner and the optimizer's Probe share this
// memo key.
func stateDeltaHash(regions []memory.RegionSpec, baseM [][]byte, err Error) (uint64, error) {
	var base byte
	found := false
	for i, spec := range regions {
		if err.Addr >= spec.Base && uint32(err.Addr) < spec.End() {
			base = baseM[i][err.Addr-spec.Base]
			found = true
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("inject: memo hash: address 0x%04x outside every region", err.Addr)
	}
	mask := byte(1) << err.Bit
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range [4]byte{byte(err.Addr >> 8), byte(err.Addr), base ^ mask, mask} {
		h ^= uint64(b)
		h *= prime64
	}
	return h, nil
}

// sameVersions reports whether a memo entry was derived for the same
// version slice in the same order.
func sameVersions(a, b []target.Version) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunError implements Runner.
func (r *MemoRunner) RunError(err Error, versions []target.Version, out []RunResult) error {
	if len(out) != len(versions) {
		return fmt.Errorf("inject: memo runner needs len(out)=%d, got %d", len(versions), len(out))
	}
	if r.live == nil {
		if perr := r.profile(); perr != nil {
			return perr
		}
	}
	r.stats.Errors++

	if !r.live.Live(err.Addr) {
		for i, v := range versions {
			res, derr := r.eng.DeriveNominal(v)
			if derr != nil {
				return derr
			}
			out[i] = res
		}
		r.stats.Pruned++
		return nil
	}

	h, herr := r.stateHash(err)
	if herr != nil {
		return herr
	}
	entry, ok := r.memo[h]
	if !ok && r.shared != nil {
		entry, ok = r.shared.lookup(h)
	}
	if ok && sameVersions(entry.versions, versions) {
		serveMemo(out, entry.results)
		r.stats.MemoHits++
		return nil
	}

	if rerr := r.eng.RunError(err, versions, out); rerr != nil {
		return rerr
	}
	r.stats.Simulated++
	r.memo[h] = memoEntry{
		versions: append([]target.Version(nil), versions...),
		results:  cloneResults(out),
	}
	return nil
}

// serveMemo copies a memo entry's results into out. ByTest maps are
// cloned: the entry's maps may be shared across workers and must stay
// immutable, while the engine is allowed to recycle maps it finds in
// out on the next call.
func serveMemo(out, results []RunResult) {
	copy(out, results)
	for i := range out {
		if out[i].ByTest != nil {
			m := make(map[core.TestID]int, len(out[i].ByTest))
			for k, v := range out[i].ByTest {
				m[k] = v
			}
			out[i].ByTest = m
		}
	}
}

// cloneResults deep-copies results for a memo entry, detaching the
// ByTest maps from the caller's out slice (whose maps the engine may
// recycle later).
func cloneResults(out []RunResult) []RunResult {
	res := append([]RunResult(nil), out...)
	for i := range res {
		if res[i].ByTest != nil {
			m := make(map[core.TestID]int, len(res[i].ByTest))
			for k, v := range res[i].ByTest {
				m[k] = v
			}
			res[i].ByTest = m
		}
	}
	return res
}

// FlushShared publishes the runner's private memo entries into the
// case-wide shared memo. The scheduler calls it at batch barriers —
// merging there instead of locking per draw is what keeps the memo off
// the per-run hot path. A runner without a shared memo flushes to
// nowhere; the private table keeps serving its own duplicates either
// way.
func (r *MemoRunner) FlushShared() {
	if r.shared == nil || len(r.memo) == 0 {
		return
	}
	r.shared.merge(r.memo)
}
