package inject

import (
	"fmt"

	"easig/internal/core"
	"easig/internal/target"
)

// Runner executes the errors of one (test case, injection schedule)
// and derives the RunResult of every requested software version. It is
// the single execution contract behind the campaign layer: the literal
// per-run simulation (the paper's §3.2 FIC3 protocol — one bit flip at
// the injection time, re-injected every 20 ms), the snapshot
// fast-forward Engine, and the memoizing/pruning MemoRunner all
// implement it, so internal/experiment composes runners instead of
// branching on flags.
//
// The modes are interchangeable by contract, not by convention: every
// mode must reproduce the §3.4 campaign tables (Tables 7-9) cell for
// cell. PERFORMANCE.md's "The proof obligations, as tests" section
// lists the proofs — TestEngineMatchesRun pins snapshot against
// literal field by field, TestMemoRunnerMatchesEngine adds the pruning
// and memo layers, and the campaign-level equivalence suites
// (TestE1EngineEquivalence, TestE2EngineEquivalence) re-verify all
// modes against each other on every change.
//
// len(out) must equal len(versions). Runners are not safe for
// concurrent use; each campaign worker owns one.
type Runner interface {
	RunError(err Error, versions []target.Version, out []RunResult) error
}

// RunnerStats counts how a Runner served its errors. Errors is the
// number of RunError calls; every error is either Simulated (at least
// one profile or per-version simulation executed), Pruned (classified
// benign by the def/use liveness pass, zero simulation), or a MemoHit
// (served from the outcome memo, zero simulation). For the literal
// runner Simulated counts individual version simulations, since each
// version build is a separate run there.
//
// These counters are the observable side of the pruning/memoization
// claims PERFORMANCE.md makes: the ~96% exhaustive-census prune rate
// and the memo-vs-snapshot speedup gate in cmd/bench both read
// RunnerStats, and `fic -metrics` reports them per campaign. Pruned
// and MemoHits may only ever replace simulations whose outcomes are
// provably identical (see Liveness's soundness argument and the
// stateDeltaHash contract) — a prune or memo hit that could change a
// Table 7-9 cell would be a correctness bug, not a tuning choice.
type RunnerStats struct {
	Errors    int
	Simulated int
	Pruned    int
	MemoHits  int
}

// Add folds o into s; campaign workers use it to aggregate per-batch
// runner stats.
func (s RunnerStats) Add(o RunnerStats) RunnerStats {
	s.Errors += o.Errors
	s.Simulated += o.Simulated
	s.Pruned += o.Pruned
	s.MemoHits += o.MemoHits
	return s
}

// PruneRate is the fraction of errors served without simulation by the
// liveness pass.
func (s RunnerStats) PruneRate() float64 {
	if s.Errors == 0 {
		return 0
	}
	return float64(s.Pruned) / float64(s.Errors)
}

// MemoHitRate is the fraction of errors served from the outcome memo.
func (s RunnerStats) MemoHitRate() float64 {
	if s.Errors == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(s.Errors)
}

// StatsReporter is implemented by runners that track RunnerStats.
type StatsReporter interface {
	Stats() RunnerStats
}

// Mode selects the execution strategy behind the Runner API.
type Mode int

const (
	// ModeAuto resolves to ModeSnapshot for detection-only campaigns
	// and to ModeLiteral when an active recovery policy makes version
	// builds diverge. It is the zero value, preserving the historical
	// default.
	ModeAuto Mode = iota
	// ModeLiteral simulates every (error, version) run from time zero
	// on a fresh system, as the paper's hardware FIC3 did.
	ModeLiteral
	// ModeSnapshot serves each test case from one fast-forwarded
	// checkpoint and derives all version builds from a single
	// all-assertions profile run per error (the PR 4 Engine).
	ModeSnapshot
	// ModeMemo wraps the snapshot engine with the def/use liveness
	// pruner and the post-injection-state outcome memo: faults in dead
	// or overwritten-before-read bytes are classified benign with zero
	// simulation, and repeat faults replay their memoized readouts.
	ModeMemo
)

// String names the mode as the -engine flag spells it.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeLiteral:
		return "literal"
	case ModeSnapshot:
		return "snapshot"
	case ModeMemo:
		return "memo"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a -engine flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "auto", "":
		return ModeAuto, nil
	case "literal":
		return ModeLiteral, nil
	case "snapshot":
		return ModeSnapshot, nil
	case "memo":
		return ModeMemo, nil
	default:
		return ModeAuto, fmt.Errorf("inject: unknown engine mode %q (want auto, literal, snapshot or memo)", s)
	}
}

// detectionOnly reports whether the recovery policy leaves corrupted
// state in place (nil or core.NoRecovery), the precondition of the
// snapshot and memo runners.
func detectionOnly(recovery core.RecoveryPolicy) bool {
	if recovery == nil {
		return true
	}
	_, ok := recovery.(core.NoRecovery)
	return ok
}

// Resolve maps ModeAuto to its concrete mode for the given recovery
// policy and rejects snapshot/memo execution of campaigns whose active
// recovery makes the version builds steer the plant differently.
func (m Mode) Resolve(recovery core.RecoveryPolicy) (Mode, error) {
	switch m {
	case ModeAuto:
		if detectionOnly(recovery) {
			return ModeSnapshot, nil
		}
		return ModeLiteral, nil
	case ModeLiteral:
		return ModeLiteral, nil
	case ModeSnapshot, ModeMemo:
		if !detectionOnly(recovery) {
			return m, fmt.Errorf("inject: %s engine requires detection-only runs (core.NoRecovery), got %T", m, recovery)
		}
		return m, nil
	default:
		return m, fmt.Errorf("inject: unknown engine mode %d", int(m))
	}
}

// NewRunner builds the mode's runner for one (test case, injection
// schedule) described by cfg. cfg.Error and cfg.Version are ignored —
// the error set and version builds arrive per RunError call.
func NewRunner(mode Mode, cfg RunConfig) (Runner, error) {
	resolved, err := mode.Resolve(cfg.Recovery)
	if err != nil {
		return nil, err
	}
	switch resolved {
	case ModeLiteral:
		return &literalRunner{cfg: cfg}, nil
	case ModeSnapshot:
		return NewEngine(cfg)
	case ModeMemo:
		return NewMemoRunner(cfg)
	default:
		return nil, fmt.Errorf("inject: unknown engine mode %d", int(resolved))
	}
}

// literalRunner is the Runner face of the pre-engine protocol: a fresh
// system per (error, version), simulated from time zero — exactly what
// the paper's FIC3 fault-injection computer drove.
type literalRunner struct {
	cfg   RunConfig
	stats RunnerStats
}

// RunError implements Runner.
func (r *literalRunner) RunError(err Error, versions []target.Version, out []RunResult) error {
	if len(out) != len(versions) {
		return fmt.Errorf("inject: literal runner needs len(out)=%d, got %d", len(versions), len(out))
	}
	r.stats.Errors++
	for i, v := range versions {
		cfg := r.cfg
		cfg.Version = v
		e := err
		cfg.Error = &e
		res, rerr := Run(cfg)
		if rerr != nil {
			return rerr
		}
		out[i] = res
		r.stats.Simulated++
	}
	return nil
}

// Stats implements StatsReporter.
func (r *literalRunner) Stats() RunnerStats { return r.stats }
