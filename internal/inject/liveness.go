package inject

import (
	"easig/internal/memory"
)

// Liveness is the def/use fault-liveness pass over the target's memory
// map (417 B application RAM + 1008 B stack): it observes one full
// nominal profile run through a memory.AccessSink and classifies every
// byte as live or dead with respect to the time-triggered injection
// schedule.
//
// The analysis: at every injection epoch (a tick boundary where the
// §3.4 schedule flips the bit, before that tick's software runs) every
// byte becomes "pending". A software load of a pending byte marks it
// live; a software store clears pending. A byte that is never read
// while pending — because it is never read at all, or because the
// software always overwrites it between an injection epoch and its
// next read — is dead: a bit-flip in it can never reach a computation.
//
// Soundness of pruning dead bytes follows by induction over ticks.
// Suppose the fault's byte is dead. At any point of the faulty run,
// assume every load so far returned its nominal value (true initially:
// injections start at a tick boundary and the first load of the byte,
// if any, is preceded by a store in the same epoch interval, which —
// by the hypothesis — wrote the nominal value over the corruption).
// Then every computed value is nominal, every store writes the nominal
// value, and the next load of the fault's byte again follows a store
// within the same epoch interval, returning the nominal value. So the
// whole trajectory — plant, signals, monitors, detections — equals the
// nominal run, and the outcome can be derived from the nominal profile
// with zero simulation. Re-injection is harmless for the same reason:
// the flip is an involution applied to whatever value rests in the
// byte, and that value is only ever observed after a nominal store.
//
// The nominal all-assertions profile is a sound access superset for
// every version build: a version's accesses are a subset of the
// profile's (omitted monitors just skip their Test calls), and every
// profile store with no counterpart in a reduced version — a monitor's
// StorePrev or a recovery write-back — is preceded in the same call by
// a load of the same byte (core.Monitor.Test calls LoadPrev before any
// StorePrev; Node.test reads the signal before writing the recovery),
// so removing the store cannot turn a dead byte live. The analysis is
// conservative in the other direction too: a read-while-pending marks
// live even if the corruption would have cancelled out, which only
// costs pruning opportunity, never correctness.
type Liveness struct {
	regions []memory.RegionSpec
	base    uint16 // first tracked address
	pending []bool // per byte of the span: injected-and-not-yet-stored
	live    []bool // per byte of the span: read while pending
}

// NewLiveness builds the pass for the given region layout (usually
// Memory.Regions() of the node under injection).
func NewLiveness(regions []memory.RegionSpec) *Liveness {
	if len(regions) == 0 {
		return &Liveness{}
	}
	lo := regions[0].Base
	hi := regions[0].End()
	for _, r := range regions[1:] {
		if r.Base < lo {
			lo = r.Base
		}
		if r.End() > hi {
			hi = r.End()
		}
	}
	span := int(hi) - int(lo)
	return &Liveness{
		regions: append([]memory.RegionSpec(nil), regions...),
		base:    lo,
		pending: make([]bool, span),
		live:    make([]bool, span),
	}
}

// MarkInjection marks an injection epoch: every byte becomes pending
// until the software stores over it.
func (l *Liveness) MarkInjection() {
	for i := range l.pending {
		l.pending[i] = true
	}
}

// OnAccess implements memory.AccessSink.
func (l *Liveness) OnAccess(addr uint16, n int, write bool) {
	for i := 0; i < n; i++ {
		a := int(addr) + i - int(l.base)
		if a < 0 || a >= len(l.pending) {
			continue
		}
		if write {
			l.pending[a] = false
		} else if l.pending[a] {
			l.live[a] = true
		}
	}
}

// Live reports whether a fault at addr can influence the run. Addresses
// outside the tracked regions are conservatively live.
func (l *Liveness) Live(addr uint16) bool {
	in := false
	for _, r := range l.regions {
		if addr >= r.Base && uint32(addr) < r.End() {
			in = true
			break
		}
	}
	if !in {
		return true
	}
	return l.live[addr-l.base]
}

// LiveBytes counts the live bytes across the tracked regions.
func (l *Liveness) LiveBytes() int {
	n := 0
	for _, r := range l.regions {
		for a := uint32(r.Base); a < r.End(); a++ {
			if l.live[uint16(a)-l.base] {
				n++
			}
		}
	}
	return n
}

// TrackedBytes counts all bytes of the tracked regions.
func (l *Liveness) TrackedBytes() int {
	n := 0
	for _, r := range l.regions {
		n += int(r.Size)
	}
	return n
}
