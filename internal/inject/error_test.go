package inject

import (
	"fmt"
	"testing"

	"easig/internal/memory"
	"easig/internal/target"
)

// TestBuildE1Table6 verifies the error-set distribution of the paper's
// Table 6: 16 errors per signal, 112 in total, numbered S1..S112 in
// signal-major order.
func TestBuildE1Table6(t *testing.T) {
	errors := BuildE1()
	if len(errors) != 112 {
		t.Fatalf("E1 has %d errors, want 112", len(errors))
	}
	perSignal := map[string]int{}
	for i, e := range errors {
		perSignal[e.Signal]++
		if want := fmt.Sprintf("S%d", i+1); e.ID != want {
			t.Errorf("error %d has ID %q, want %q", i, e.ID, want)
		}
		if e.Region != target.RegionRAM {
			t.Errorf("%s targets region %q", e.ID, e.Region)
		}
		if e.SignalIdx != i/16 {
			t.Errorf("%s has signal index %d, want %d", e.ID, e.SignalIdx, i/16)
		}
	}
	for _, name := range target.SignalNames() {
		if perSignal[name] != 16 {
			t.Errorf("signal %s has %d errors, want 16", name, perSignal[name])
		}
	}
}

// Each signal's 16 errors cover all 16 bit positions of its word
// exactly once.
func TestBuildE1CoversEveryBit(t *testing.T) {
	mem, err := memory.New(memory.RegionSpec{Name: target.RegionRAM, Base: target.RAMBase, Size: target.RAMSize})
	if err != nil {
		t.Fatal(err)
	}
	for sigIdx := 0; sigIdx < target.NumEAs; sigIdx++ {
		wordAddr := uint16(target.RAMBase + 2*sigIdx)
		seen := map[uint16]bool{}
		for _, e := range BuildE1()[sigIdx*16 : sigIdx*16+16] {
			mem.Zero()
			if err := e.Apply(mem); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			w, _ := mem.ReadU16(wordAddr)
			if w == 0 || w&(w-1) != 0 {
				t.Fatalf("%s did not flip exactly one bit of its word (%#x)", e.ID, w)
			}
			if seen[w] {
				t.Fatalf("%s repeats bit pattern %#x", e.ID, w)
			}
			seen[w] = true
		}
		if len(seen) != 16 {
			t.Fatalf("signal %d covers %d distinct bits", sigIdx, len(seen))
		}
	}
}

func TestBuildE2(t *testing.T) {
	spec := DefaultE2Spec()
	if spec.RAM != 150 || spec.Stack != 50 {
		t.Fatalf("default spec = %+v, want the paper's 150+50", spec)
	}
	errors := BuildE2(spec, 42)
	if len(errors) != 200 {
		t.Fatalf("E2 has %d errors", len(errors))
	}
	var ram, stack int
	for _, e := range errors {
		switch e.Region {
		case target.RegionRAM:
			ram++
			if e.Addr < target.RAMBase || int(e.Addr) >= target.RAMBase+target.RAMSize {
				t.Errorf("%s outside RAM: 0x%04x", e.ID, e.Addr)
			}
		case target.RegionStack:
			stack++
			if e.Addr < target.StackBase || int(e.Addr) >= target.StackBase+target.StackSize {
				t.Errorf("%s outside stack: 0x%04x", e.ID, e.Addr)
			}
		default:
			t.Errorf("%s in unknown region %q", e.ID, e.Region)
		}
		if e.Bit > 7 {
			t.Errorf("%s has bit %d", e.ID, e.Bit)
		}
		if e.SignalIdx != -1 || e.Signal != "" {
			t.Errorf("%s carries signal metadata", e.ID)
		}
	}
	if ram != 150 || stack != 50 {
		t.Errorf("distribution = %d RAM + %d stack", ram, stack)
	}
}

func TestBuildE2Deterministic(t *testing.T) {
	a := BuildE2(DefaultE2Spec(), 7)
	b := BuildE2(DefaultE2Spec(), 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("error %d differs between equal seeds", i)
		}
	}
	c := BuildE2(DefaultE2Spec(), 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical sample")
	}
}

func TestErrorString(t *testing.T) {
	e1 := BuildE1()[0]
	if got := e1.String(); got == "" || got[0] != 'S' {
		t.Errorf("E1 String = %q", got)
	}
	e2 := Error{ID: "R1", SignalIdx: -1, Region: "ram", Addr: 0x10, Bit: 3}
	want := "R1: ram byte 0x0010 bit 3"
	if got := e2.String(); got != want {
		t.Errorf("E2 String = %q, want %q", got, want)
	}
}
