package inject

import (
	"fmt"

	"easig/internal/core"
	"easig/internal/physics"
	"easig/internal/target"
)

// Policy is the time-triggered injection schedule of the paper's §3.4:
// the error is injected with a fixed period during the whole
// observation window ("errors may have been injected during the
// execution of the executable assertions").
type Policy struct {
	// StartMs is the time of the first injection.
	StartMs int64 `json:"start_ms"`
	// PeriodMs is the re-injection period (the paper uses 20 ms).
	PeriodMs int64 `json:"period_ms"`
}

// DefaultPolicy returns the paper's schedule: 20 ms period, starting
// half a second into the arrestment.
func DefaultPolicy() Policy { return Policy{StartMs: 500, PeriodMs: 20} }

// DefaultObservationMs is the paper's 40-second observation period.
const DefaultObservationMs = 40000

// RunConfig describes one experiment run: one <mass, velocity, error>
// combination against one software version.
type RunConfig struct {
	// TestCase is the aircraft mass and engagement velocity.
	TestCase physics.TestCase
	// Version selects the enabled executable assertions.
	Version target.Version
	// Error is the injected error; nil runs a fault-free golden run.
	Error *Error
	// Policy is the injection schedule (DefaultPolicy when zero).
	Policy Policy
	// ObservationMs is the observation window (DefaultObservationMs
	// when zero).
	ObservationMs int64
	// Seed drives the run's sensor noise.
	Seed int64
	// Recovery is the assertion recovery policy. The paper campaigns
	// run detection-only (core.NoRecovery): the pin is raised but the
	// corrupted state is left in place, which reproduces the paper's
	// high failure rates under injection. Pass core.PreviousValue for
	// the recovery ablation. Defaults to core.NoRecovery.
	Recovery core.RecoveryPolicy
	// Placement selects consumer-side (paper) or producer-side
	// assertion execution (ablation).
	Placement target.Placement
	// FullObservation disables the early exit that campaign runs use
	// once a run's outcome can no longer change; interactive tools set
	// it to obtain complete plant readouts.
	FullObservation bool
	// Constants and ForceTable override the plant defaults.
	Constants  *physics.Constants
	ForceTable *physics.ForceTable
}

// RunResult is one run's readout record: what the FIC3 stores from the
// detection pin and the environment simulator.
type RunResult struct {
	// Detected reports at least one detection during the observation
	// period (the paper's "successful error detection").
	Detected bool
	// FirstDetectionMs is the absolute time of the first detection.
	FirstDetectionMs int64
	// LatencyMs is the detection latency: time from the first
	// injection of the error to the first detection.
	LatencyMs int64
	// Detections is the total number of assertion violations.
	Detections int
	// ByTest counts violations per violated assertion (which Table 2/3
	// constraint fired); nil when no detection occurred.
	ByTest map[core.TestID]int
	// Injections is the number of performed bit-flips.
	Injections int
	// Failed reports a violated arrestment constraint.
	Failed bool
	// Failure is the first constraint violation when Failed.
	Failure physics.Failure
	// Stopped reports whether the aircraft came to a halt, and when.
	Stopped   bool
	StoppedMs int64
	// DistanceM is the final aircraft travel.
	DistanceM float64
	// PeakForceN and PeakRetardationMS2 are plant maxima.
	PeakForceN         float64
	PeakRetardationMS2 float64
}

// pinSink is the minimal detection recorder used by campaign runs: the
// time-stamped first rising edge of the detection pin, a count, and a
// per-constraint breakdown.
type pinSink struct {
	first    int64
	hasFirst bool
	count    int
	byTest   map[core.TestID]int
}

// Detect implements core.DetectionSink: it timestamps the first rising
// edge of the pin and accumulates the per-constraint counts.
func (p *pinSink) Detect(v core.Violation) {
	if !p.hasFirst {
		p.first = v.Time
		p.hasFirst = true
	}
	p.count++
	if p.byTest == nil {
		p.byTest = make(map[core.TestID]int, 4)
	}
	p.byTest[v.Test]++
}

// Run executes one experiment run and returns its readouts.
func Run(cfg RunConfig) (RunResult, error) {
	policy := cfg.Policy
	if policy.PeriodMs <= 0 {
		policy = DefaultPolicy()
	}
	obs := cfg.ObservationMs
	if obs <= 0 {
		obs = DefaultObservationMs
	}
	recovery := cfg.Recovery
	if recovery == nil {
		recovery = core.NoRecovery{}
	}
	pin := &pinSink{}
	sys, err := target.NewSystem(target.SystemConfig{
		Constants:  cfg.Constants,
		ForceTable: cfg.ForceTable,
		TestCase:   cfg.TestCase,
		Seed:       cfg.Seed,
		Version:    cfg.Version,
		Sink:       pin,
		Recovery:   recovery,
		Placement:  cfg.Placement,
	})
	if err != nil {
		return RunResult{}, fmt.Errorf("inject: building system: %w", err)
	}

	var res RunResult
	mem := sys.Master().Memory()
	for ms := int64(0); ms < obs; ms++ {
		if cfg.Error != nil && ms >= policy.StartMs && (ms-policy.StartMs)%policy.PeriodMs == 0 {
			if err := cfg.Error.Apply(mem); err != nil {
				return RunResult{}, fmt.Errorf("inject: applying %v: %w", cfg.Error, err)
			}
			res.Injections++
		}
		sys.StepMs()
		// Once the outcome of the run is fully determined — a detection
		// is recorded and the aircraft can no longer violate a
		// constraint (stopped) or already has (failed) — the remaining
		// observation time cannot change the campaign readouts.
		if pin.hasFirst && !cfg.FullObservation {
			if _, stopped := sys.Env().Stopped(); stopped {
				break
			}
			if _, failed := sys.Env().Failure(); failed {
				break
			}
		}
	}

	res.Detected = pin.hasFirst
	res.Detections = pin.count
	res.ByTest = pin.byTest
	if pin.hasFirst {
		res.FirstDetectionMs = pin.first
		res.LatencyMs = pin.first - policy.StartMs
		if cfg.Error == nil {
			res.LatencyMs = pin.first
		}
	}
	res.Failure, res.Failed = sys.Env().Failure()
	res.StoppedMs, res.Stopped = sys.Env().Stopped()
	res.DistanceM = sys.Env().Distance()
	res.PeakForceN = sys.Env().PeakForce()
	res.PeakRetardationMS2 = sys.Env().PeakRetardation()
	return res, nil
}
