package inject

import (
	"reflect"
	"sync"
	"testing"

	"easig/internal/physics"
	"easig/internal/target"
)

func profileTestConfig() RunConfig {
	return RunConfig{
		TestCase:      physics.TestCase{MassKg: 14000, VelocityMS: 55},
		ObservationMs: engineObsMs,
		Seed:          3,
	}
}

// TestEngineFromProfileMatchesEngine is the shared-profile soundness
// theorem: an engine fast-forwarded by restoring the cached snapshot
// must serve every error with results identical to an engine that
// simulated its own nominal prefix — otherwise the parallel scheduler
// would make tables depend on which worker built its runner first.
func TestEngineFromProfileMatchesEngine(t *testing.T) {
	cfg := profileTestConfig()
	ref, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewProfileCache()
	p, err := cache.Get(0, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngineFromProfile(p)
	if err != nil {
		t.Fatal(err)
	}

	versions := target.Versions()
	want := make([]RunResult, len(versions))
	got := make([]RunResult, len(versions))
	for i, e := range BuildE1() {
		if i%7 != 0 {
			continue // a sample is plenty; each error is a full profile run
		}
		for k := range want {
			want[k], got[k] = RunResult{}, RunResult{}
		}
		if err := ref.RunError(e, versions, want); err != nil {
			t.Fatal(err)
		}
		if err := eng.RunError(e, versions, got); err != nil {
			t.Fatal(err)
		}
		for vi := range versions {
			if !reflect.DeepEqual(got[vi], want[vi]) {
				t.Fatalf("error %s version %v: profile-built engine diverged\n got %+v\nwant %+v",
					e.ID, versions[vi], got[vi], want[vi])
			}
		}
	}
}

// TestProfileCacheComputesOnce checks the cache's contract under
// concurrency: many goroutines asking for the same case must get the
// same CaseProfile pointer, i.e. the prefix and full stages ran once.
func TestProfileCacheComputesOnce(t *testing.T) {
	cfg := profileTestConfig()
	cache := NewProfileCache()
	const n = 8
	ps := make([]*CaseProfile, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := cache.Get(0, cfg, i%2 == 0)
			if err != nil {
				t.Error(err)
				return
			}
			ps[i] = p
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ps[i] != ps[0] {
			t.Fatalf("goroutine %d got a distinct profile %p != %p", i, ps[i], ps[0])
		}
	}
	if ps[0].Live() == nil {
		t.Fatal("full stage requested by half the goroutines but liveness map is nil")
	}
}

// TestMemoRunnerFromProfileMatchesEngine checks the memo runner built
// from a shared profile against a privately profiled engine across a
// mixed live/pruned error sample.
func TestMemoRunnerFromProfileMatchesEngine(t *testing.T) {
	cfg := profileTestConfig()
	ref, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewProfileCache()
	p, err := cache.Get(0, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := NewMemoRunnerFromProfile(p, &SharedMemo{})
	if err != nil {
		t.Fatal(err)
	}

	versions := []target.Version{target.VersionAll}
	errs := BuildE2(E2Spec{RAM: 24, Stack: 8}, 5)
	want := make([]RunResult, 1)
	got := make([]RunResult, 1)
	for _, e := range errs {
		want[0], got[0] = RunResult{}, RunResult{}
		if err := ref.RunError(e, versions, want); err != nil {
			t.Fatal(err)
		}
		if err := mr.RunError(e, versions, got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[0], want[0]) {
			t.Fatalf("error %s: shared-profile memo runner diverged\n got %+v\nwant %+v", e.ID, got[0], want[0])
		}
	}
	st := mr.Stats()
	if st.Pruned == 0 {
		t.Errorf("no errors pruned — the shared liveness map is not in effect: %+v", st)
	}
	if st.Errors != len(errs) || st.Simulated+st.Pruned+st.MemoHits != st.Errors {
		t.Errorf("stats do not partition the error set: %+v", st)
	}
}

// TestSharedMemoCrossRunner checks the case-wide memo: a draw
// simulated by one worker's runner and flushed at the batch barrier
// must be served as a memo hit by another worker's runner, with
// identical results.
func TestSharedMemoCrossRunner(t *testing.T) {
	cfg := profileTestConfig()
	cache := NewProfileCache()
	p, err := cache.Get(0, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	shared := &SharedMemo{}
	a, err := NewMemoRunnerFromProfile(p, shared)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMemoRunnerFromProfile(p, shared)
	if err != nil {
		t.Fatal(err)
	}

	// A live error: pruned draws never reach the memo.
	var live Error
	found := false
	for _, e := range BuildExhaustive() {
		if p.Live().Live(e.Addr) {
			live, found = e, true
			break
		}
	}
	if !found {
		t.Fatal("no live error position in the exhaustive set")
	}

	versions := []target.Version{target.VersionAll}
	resA := make([]RunResult, 1)
	if err := a.RunError(live, versions, resA); err != nil {
		t.Fatal(err)
	}
	if shared.Len() != 0 {
		t.Fatalf("memo published before the batch barrier: %d entries", shared.Len())
	}
	a.FlushShared()
	if shared.Len() != 1 {
		t.Fatalf("flush published %d entries, want 1", shared.Len())
	}

	resB := make([]RunResult, 1)
	if err := b.RunError(live, versions, resB); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.MemoHits != 1 || st.Simulated != 0 {
		t.Fatalf("second runner did not hit the shared memo: %+v", st)
	}
	if !reflect.DeepEqual(resA[0], resB[0]) {
		t.Fatalf("shared memo hit diverged\n got %+v\nwant %+v", resB[0], resA[0])
	}
}
