package inject

import (
	"fmt"
	"sort"

	"easig/internal/core"
	"easig/internal/memory"
	"easig/internal/physics"
	"easig/internal/target"
)

// QuietWindowMs is the post-stop settling window of the fast-forward
// engine: once the aircraft has stopped, the failure verdict is final
// (the §3.3 constraints are only checked while arresting) and the only
// readout that can still change is a first detection raised by the
// decaying actuation transient — the set point slews to zero within
// 85 ms, the valves drain with a 150 ms time constant and the velocity
// estimator window is 128 ms. The engine therefore keeps observing for
// QuietWindowMs after the stop and then declares the outcome decided.
// Measured over full-observation sweeps of both error sets, the latest
// first detection ever seen was 100 ms after the stop; the equivalence
// tests in internal/experiment re-verify the window against from-scratch
// runs on every change.
const QuietWindowMs = 1024

// plantReadout is the subset of plant state a from-scratch run reads
// out at its early-exit tick and that keeps evolving until the aircraft
// stops: travelled distance and the force/retardation peaks.
type plantReadout struct {
	x, maxForce, maxAccel float64
}

// eaStream records one executable assertion's violations during a
// profile run: the violation times and fired Table 2/3 constraints in
// time order, plus the plant readout at the end of the first-violation
// tick (the candidate early-exit point of any version whose first
// detection this assertion is).
type eaStream struct {
	times []int64
	ids   []core.TestID

	readout     plantReadout
	haveReadout bool
}

// recorder is the profile run's detection sink: it demultiplexes the
// master node's violation stream per executable assertion, which is
// what lets one all-assertions run stand in for every version build.
type recorder struct {
	sigIdx map[string]int
	ea     [target.NumEAs]eaStream
}

func newRecorder() *recorder {
	r := &recorder{sigIdx: make(map[string]int, target.NumEAs)}
	for k, name := range target.SignalNames() {
		r.sigIdx[name] = k
	}
	return r
}

// Detect implements core.DetectionSink.
func (r *recorder) Detect(v core.Violation) {
	k, ok := r.sigIdx[v.Signal]
	if !ok {
		return
	}
	s := &r.ea[k]
	s.times = append(s.times, v.Time)
	s.ids = append(s.ids, v.Test)
}

// truncate rewinds the recorder to the stream lengths and first-tick
// readouts captured with the nominal prefix, reusing the stream
// buffers.
func (r *recorder) truncate(lens *[target.NumEAs]int, readouts *[target.NumEAs]eaStream) {
	for k := range r.ea {
		s := &r.ea[k]
		s.times = s.times[:lens[k]]
		s.ids = s.ids[:lens[k]]
		s.readout = readouts[k].readout
		s.haveReadout = readouts[k].haveReadout
	}
}

// Engine is the snapshot/fast-forward experiment controller: a
// DETOx-style optimisation of the campaigns that the paper's FIC3
// fault-injection computer drove with time-triggered injection (§3.2:
// one bit-flip at the injection time, repeated every 20 ms for
// intermittent errors). For one (test case, injection schedule) it
// simulates the deterministic nominal prefix up to the first injection
// once, captures the complete system state (target.SystemState), and
// then serves every error of the test case by restoring the snapshot,
// flipping the error's bit on the §3.2 schedule and profiling the run
// with all executable assertions enabled. Because campaign runs are detection-only (core.NoRecovery
// leaves the offending value in place and the assertion state s' only
// feeds its own monitor), the plant and signal trajectories are
// identical across version builds, so the single profile run derives
// the exact from-scratch readouts of every version — detection flag,
// first-detection time, latency, per-constraint counts, injections and
// plant verdict — via RunError.
//
// An Engine is not safe for concurrent use; each campaign worker owns
// one.
type Engine struct {
	cfg     RunConfig
	policy  Policy
	obs     int64
	sys     *target.System
	mem     *memory.Memory
	rec     *recorder
	base    target.SystemState
	baseLen [target.NumEAs]int
	baseEA  [target.NumEAs]eaStream

	failReadout     plantReadout
	haveFailReadout bool
	baseFailReadout plantReadout
	baseHaveFail    bool

	nominal *nominalProfile
	stats   RunnerStats

	// spareBT recycles ByTest maps donated by the caller's out slice
	// (see RunError): after a warm-up call the derive path allocates
	// nothing.
	spareBT []map[core.TestID]int
}

// nominalProfile is the readout of one full-observation, fault-free run
// of the engine's test case: the per-assertion violation streams, the
// plant verdict and the candidate early-exit readouts. The memo runner
// derives the outcome of every liveness-pruned (provably benign) fault
// from it with zero simulation.
type nominalProfile struct {
	ea    [target.NumEAs]eaStream
	fail  plantReadout
	final plantReadout

	stopMs  int64
	stopped bool
	failure physics.Failure
	failed  bool
}

// NewEngine builds the engine for one test case and fast-forwards it to
// the injection time. cfg.Error, cfg.Version and cfg.FullObservation
// are ignored: the engine profiles with every assertion enabled and
// derives per-version results. The recovery policy must be detection-
// only (nil or core.NoRecovery) — with an active recovery the assertion
// builds change the signal trajectory and the runs of different
// versions genuinely diverge, so campaigns with recovery fall back to
// from-scratch runs.
func NewEngine(cfg RunConfig) (*Engine, error) {
	e, err := newEngineShell(cfg)
	if err != nil {
		return nil, err
	}

	// Nominal prefix: every error of the test case shares the
	// trajectory up to the first injection, so it is simulated once.
	prefix := e.policy.StartMs
	if prefix > e.obs {
		prefix = e.obs
	}
	for ms := int64(0); ms < prefix; ms++ {
		e.step()
	}
	e.sys.Capture(&e.base)
	for k := range e.rec.ea {
		e.baseLen[k] = len(e.rec.ea[k].times)
		e.baseEA[k].readout = e.rec.ea[k].readout
		e.baseEA[k].haveReadout = e.rec.ea[k].haveReadout
	}
	e.baseFailReadout = e.failReadout
	e.baseHaveFail = e.haveFailReadout
	return e, nil
}

// newEngineShell builds the engine struct and its instrumented system
// without fast-forwarding it: NewEngine simulates the nominal prefix
// itself, NewEngineFromProfile restores a shared snapshot instead.
func newEngineShell(cfg RunConfig) (*Engine, error) {
	if cfg.Recovery != nil {
		if _, ok := cfg.Recovery.(core.NoRecovery); !ok {
			return nil, fmt.Errorf("inject: engine requires detection-only runs (core.NoRecovery), got %T", cfg.Recovery)
		}
	}
	e := &Engine{cfg: cfg, policy: cfg.Policy, obs: cfg.ObservationMs, rec: newRecorder()}
	if e.policy.PeriodMs <= 0 {
		e.policy = DefaultPolicy()
	}
	if e.obs <= 0 {
		e.obs = DefaultObservationMs
	}
	sys, err := target.NewSystem(target.SystemConfig{
		Constants:  cfg.Constants,
		ForceTable: cfg.ForceTable,
		TestCase:   cfg.TestCase,
		Seed:       cfg.Seed,
		Version:    target.VersionAll,
		Sink:       e.rec,
		Recovery:   core.NoRecovery{},
		Placement:  cfg.Placement,
	})
	if err != nil {
		return nil, fmt.Errorf("inject: building engine system: %w", err)
	}
	e.sys = sys
	e.mem = sys.Master().Memory()
	return e, nil
}

// step advances the system one tick and captures the candidate
// early-exit readouts: the plant state at the end of any tick that
// produced an assertion's first violation, and at the end of the tick
// that latched the failure.
func (e *Engine) step() {
	e.sys.StepMs()
	env := e.sys.Env()
	for k := range e.rec.ea {
		s := &e.rec.ea[k]
		if !s.haveReadout && len(s.times) > 0 {
			s.readout = plantReadout{x: env.Distance(), maxForce: env.PeakForce(), maxAccel: env.PeakRetardation()}
			s.haveReadout = true
		}
	}
	if !e.haveFailReadout {
		if _, failed := env.Failure(); failed {
			e.failReadout = plantReadout{x: env.Distance(), maxForce: env.PeakForce(), maxAccel: env.PeakRetardation()}
			e.haveFailReadout = true
		}
	}
}

// RunError serves one error of the engine's test case: it restores the
// nominal snapshot, runs the time-triggered injection profile until the
// outcome is decided (every version's early-exit point has passed, or
// the post-stop quiet window has elapsed, or the observation window
// ends) and derives the from-scratch RunResult of every requested
// version into out. len(out) must equal len(versions).
//
// Passing out slots still holding a previous RunError's results grants
// the engine reuse of their ByTest maps (this is what keeps the
// steady-state error run allocation-free); callers that retain results
// elsewhere — e.g. the campaign collector — must hand the engine
// zeroed slots instead.
func (e *Engine) RunError(err Error, versions []target.Version, out []RunResult) error {
	if len(out) != len(versions) {
		return fmt.Errorf("inject: engine needs len(out)=%d, got %d", len(versions), len(out))
	}
	e.stats.Errors++
	e.stats.Simulated++
	for vi := range out {
		if m := out[vi].ByTest; m != nil {
			clear(m)
			e.spareBT = append(e.spareBT, m)
			out[vi].ByTest = nil
		}
	}
	if rerr := e.rewind(); rerr != nil {
		return rerr
	}

	for ms := e.policy.StartMs; ms < e.obs; ms++ {
		if (ms-e.policy.StartMs)%e.policy.PeriodMs == 0 {
			if aerr := err.Apply(e.mem); aerr != nil {
				// err is passed by value: taking its address here would
				// force the parameter to the heap on every (non-failing)
				// call and break the zero-alloc gate.
				return fmt.Errorf("inject: applying %v: %w", err, aerr)
			}
		}
		e.step()
		// Quiet-window exit: the failure verdict is frozen by the stop,
		// and after QuietWindowMs of post-stop settling no assertion
		// fires a first violation anymore — the outcome of every
		// version is decided.
		if stopMs, stopped := e.sys.Env().Stopped(); stopped && ms-(stopMs-1) >= QuietWindowMs {
			break
		}
	}

	env := e.sys.Env()
	final := plantReadout{x: env.Distance(), maxForce: env.PeakForce(), maxAccel: env.PeakRetardation()}
	stopMs, stopped := env.Stopped()
	failure, failed := env.Failure()
	stopIter, failIter := int64(-1), int64(-1)
	if stopped {
		stopIter = stopMs - 1
	}
	if failed {
		failIter = failure.TimeMs - 1
	}

	for vi, v := range versions {
		out[vi] = e.deriveFrom(&e.rec.ea, e.failReadout, v, stopIter, failIter, stopMs, failure, final)
	}
	return nil
}

// rewind restores the engine to its captured nominal snapshot at the
// first injection time, ready to profile the next error.
func (e *Engine) rewind() error {
	if err := e.sys.Restore(&e.base); err != nil {
		return fmt.Errorf("inject: restoring snapshot: %w", err)
	}
	e.rec.truncate(&e.baseLen, &e.baseEA)
	e.failReadout = e.baseFailReadout
	e.haveFailReadout = e.baseHaveFail
	return nil
}

// Stats implements StatsReporter.
func (e *Engine) Stats() RunnerStats { return e.stats }

// ProfileNominal runs the engine's test case fault-free over the FULL
// observation window (no quiet-window exit) and caches its profile for
// DeriveNominal. While running, sink (if non-nil) is armed on the
// injectable memory and observes every software load and store, and
// onInject (if non-nil) is called at each tick boundary where the
// injection schedule would flip a bit — together these drive the
// Liveness pass. The engine is rewound to its snapshot afterwards, so
// RunError keeps working as before.
//
// The full window matters twice: the access trace must be a superset
// of any early-exiting faulty run's trace for the liveness argument,
// and the final plant readout must match the full-window exit of a
// benign run's literal simulation.
func (e *Engine) ProfileNominal(sink memory.AccessSink, onInject func()) error {
	if err := e.rewind(); err != nil {
		return err
	}
	e.mem.SetAccessSink(sink)
	for ms := e.policy.StartMs; ms < e.obs; ms++ {
		if onInject != nil && (ms-e.policy.StartMs)%e.policy.PeriodMs == 0 {
			onInject()
		}
		e.step()
	}
	e.mem.SetAccessSink(nil)

	np := &nominalProfile{fail: e.failReadout}
	for k := range e.rec.ea {
		s := &e.rec.ea[k]
		np.ea[k] = eaStream{
			times:       append([]int64(nil), s.times...),
			ids:         append([]core.TestID(nil), s.ids...),
			readout:     s.readout,
			haveReadout: s.haveReadout,
		}
	}
	env := e.sys.Env()
	np.final = plantReadout{x: env.Distance(), maxForce: env.PeakForce(), maxAccel: env.PeakRetardation()}
	np.stopMs, np.stopped = env.Stopped()
	np.failure, np.failed = env.Failure()
	e.nominal = np
	return e.rewind()
}

// DeriveNominal derives the from-scratch RunResult of a version under a
// provably benign error: the trajectory is the nominal one, so the
// result is read off the cached nominal profile — including the
// injection count the literal loop would have performed up to its exit
// tick. ProfileNominal must have run first.
func (e *Engine) DeriveNominal(v target.Version) (RunResult, error) {
	np := e.nominal
	if np == nil {
		return RunResult{}, fmt.Errorf("inject: DeriveNominal before ProfileNominal")
	}
	stopIter, failIter := int64(-1), int64(-1)
	if np.stopped {
		stopIter = np.stopMs - 1
	}
	if np.failed {
		failIter = np.failure.TimeMs - 1
	}
	return e.deriveFrom(&np.ea, np.fail, v, stopIter, failIter, np.stopMs, np.failure, np.final), nil
}

// deriveFrom reconstructs the from-scratch RunResult of one version
// from a profile (the live recorder's streams after RunError, or the
// cached nominal profile). A from-scratch campaign run iterates ticks
// 0..obs-1, injects at the start of each due tick, and breaks at the
// end of the first tick E where a detection has been recorded and the
// plant has settled (stopped or failed); its readouts are the state at
// the end of tick E. The candidate exit ticks are all covered by
// recorded readouts: at or after the stop the plant is frozen, the
// failure tick is recorded, and any later first detection is the first
// violation tick of some assertion, which is recorded too.
func (e *Engine) deriveFrom(ea *[target.NumEAs]eaStream, failReadout plantReadout, v target.Version, stopIter, failIter, stopMs int64, failure physics.Failure, final plantReadout) RunResult {
	const never = int64(1) << 62

	// First detection of this version: the earliest first violation
	// among its enabled assertions.
	first := never
	firstK := -1
	for k := range ea {
		s := &ea[k]
		if !v.Enables(k + 1) {
			continue
		}
		if len(s.times) > 0 && s.times[0] < first {
			first = s.times[0]
			firstK = k
		}
	}

	settle := never
	if stopIter >= 0 {
		settle = stopIter
	}
	if failIter >= 0 && failIter < settle {
		settle = failIter
	}

	// Exit tick of the from-scratch loop.
	exit := e.obs - 1
	if first != never && settle != never {
		if x := max64(first, settle); x < exit {
			exit = x
		}
	}

	var res RunResult
	res.Detected = first != never
	if res.Detected {
		res.FirstDetectionMs = first
		res.LatencyMs = first - e.policy.StartMs
	}

	// Per-constraint counts up to and including the exit tick.
	for k := range ea {
		if !v.Enables(k + 1) {
			continue
		}
		s := &ea[k]
		n := sort.Search(len(s.times), func(i int) bool { return s.times[i] > exit })
		if n == 0 {
			continue
		}
		res.Detections += n
		if res.ByTest == nil {
			res.ByTest = e.takeBT()
		}
		for _, id := range s.ids[:n] {
			res.ByTest[id]++
		}
	}

	// Injections performed by the from-scratch loop up to the exit tick.
	if exit >= e.policy.StartMs {
		res.Injections = int((exit-e.policy.StartMs)/e.policy.PeriodMs) + 1
	}

	// Plant verdict and readouts at the exit tick.
	if failIter >= 0 && failIter <= exit {
		res.Failed = true
		res.Failure = failure
	}
	if stopIter >= 0 && stopIter <= exit {
		res.Stopped = true
		res.StoppedMs = stopMs
	}
	switch {
	case res.Stopped:
		// The plant freezes when the aircraft stops: distance and the
		// peaks at any tick >= the stop equal the final profile state.
		res.DistanceM = final.x
		res.PeakForceN = final.maxForce
		res.PeakRetardationMS2 = final.maxAccel
	case res.Failed && exit == failIter:
		res.DistanceM = failReadout.x
		res.PeakForceN = failReadout.maxForce
		res.PeakRetardationMS2 = failReadout.maxAccel
	case firstK >= 0 && exit == first:
		r := ea[firstK].readout
		res.DistanceM = r.x
		res.PeakForceN = r.maxForce
		res.PeakRetardationMS2 = r.maxAccel
	default:
		// No early exit: the run observed the full window and reads the
		// final state (which the profile also reached, because without a
		// stop there is no quiet-window exit).
		res.DistanceM = final.x
		res.PeakForceN = final.maxForce
		res.PeakRetardationMS2 = final.maxAccel
	}
	return res
}

// takeBT pops a recycled (already cleared) ByTest map donated through
// a previous RunError's out slice, or allocates a fresh one. Keeping
// empty maps out of results preserves the "ByTest is nil when no
// detection occurred" contract the literal runner has.
func (e *Engine) takeBT() map[core.TestID]int {
	if n := len(e.spareBT); n > 0 {
		m := e.spareBT[n-1]
		e.spareBT[n-1] = nil
		e.spareBT = e.spareBT[:n-1]
		return m
	}
	return make(map[core.TestID]int, 4)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
