package inject

import (
	"testing"

	"easig/internal/core"
	"easig/internal/physics"
	"easig/internal/target"
)

// probeErrors is the equivalence sweep's error sample: a spread of E1
// signal errors (some detected fast, some never), an E2 sample with
// duplicate draws (exercising the probe memo), and a few exhaustive
// positions that the liveness pass prunes.
func probeErrors(t *testing.T) []Error {
	t.Helper()
	var errs []Error
	for i, e := range BuildE1() {
		if i%9 == 2 {
			errs = append(errs, e)
		}
	}
	errs = append(errs, BuildE2(E2Spec{RAM: 8, Stack: 4}, 77)...)
	ex := BuildExhaustive()
	for i := 0; i < len(ex); i += 1500 {
		errs = append(errs, ex[i])
	}
	return errs
}

// TestProbeModesMatchLiteral is the probe's equivalence theorem: for
// every error of the sweep, the snapshot-mode and memo-mode profiles —
// restored snapshots, quiet-window early exits, liveness pruning, memo
// hits — are identical, field by field, to the literal reference (a
// fresh dual-sink system simulated over the full window). This is what
// certifies the quiet window for the slave's streams too.
func TestProbeModesMatchLiteral(t *testing.T) {
	cfg := RunConfig{
		TestCase:      physics.TestCase{MassKg: 14000, VelocityMS: 55},
		Seed:          12345,
		ObservationMs: engineObsMs,
	}
	lit, err := NewProbe(ModeLiteral, cfg)
	if err != nil {
		t.Fatalf("NewProbe(literal): %v", err)
	}
	snap, err := NewProbe(ModeSnapshot, cfg)
	if err != nil {
		t.Fatalf("NewProbe(snapshot): %v", err)
	}
	memo, err := NewProbe(ModeAuto, cfg) // auto resolves to memo
	if err != nil {
		t.Fatalf("NewProbe(auto): %v", err)
	}

	for _, e := range probeErrors(t) {
		want, err := lit.ProfileError(e)
		if err != nil {
			t.Fatalf("literal ProfileError(%s): %v", e.ID, err)
		}
		gotSnap, err := snap.ProfileError(e)
		if err != nil {
			t.Fatalf("snapshot ProfileError(%s): %v", e.ID, err)
		}
		if gotSnap != want {
			t.Errorf("%s: snapshot profile %+v != literal %+v", e.ID, gotSnap, want)
		}
		gotMemo, err := memo.ProfileError(e)
		if err != nil {
			t.Fatalf("memo ProfileError(%s): %v", e.ID, err)
		}
		if gotMemo != want {
			t.Errorf("%s: memo profile %+v != literal %+v", e.ID, gotMemo, want)
		}
	}

	st := memo.Stats()
	if st.Pruned == 0 {
		t.Error("memo probe pruned nothing over an exhaustive sample; liveness layer inactive")
	}
	if st.Errors != st.Simulated+st.Pruned+st.MemoHits {
		t.Errorf("stats don't partition: %+v", st)
	}
}

// TestProbeFromProfileMatchesSelfComputed pins the shared-profile
// construction: a probe fast-forwarded from a ProfileCache profile must
// profile every error identically to a self-computed probe.
func TestProbeFromProfileMatchesSelfComputed(t *testing.T) {
	cfg := RunConfig{
		TestCase:      physics.TestCase{MassKg: 8000, VelocityMS: 70},
		Seed:          7,
		ObservationMs: engineObsMs,
	}
	own, err := NewProbe(ModeMemo, cfg)
	if err != nil {
		t.Fatalf("NewProbe: %v", err)
	}
	cache := NewProfileCache()
	p, err := cache.Get(0, cfg, true)
	if err != nil {
		t.Fatalf("ProfileCache.Get: %v", err)
	}
	shared, err := NewProbeFromProfile(ModeMemo, p)
	if err != nil {
		t.Fatalf("NewProbeFromProfile: %v", err)
	}
	for _, e := range probeErrors(t) {
		a, err := own.ProfileError(e)
		if err != nil {
			t.Fatalf("own ProfileError(%s): %v", e.ID, err)
		}
		b, err := shared.ProfileError(e)
		if err != nil {
			t.Fatalf("shared ProfileError(%s): %v", e.ID, err)
		}
		if a != b {
			t.Errorf("%s: shared-profile probe %+v != self-computed %+v", e.ID, b, a)
		}
	}
}

// TestProbeMasterMatchesEngine ties the probe to the campaign engine:
// the probe's master-side first-violation times must reproduce each
// single-EA version's first detection as the engine derives it, and the
// master-side minimum must reproduce the All version's. This is the
// subset-derivation argument of OPTIMIZER.md instantiated for the
// versions the engine can build.
func TestProbeMasterMatchesEngine(t *testing.T) {
	cfg := RunConfig{
		TestCase:      physics.TestCase{MassKg: 20000, VelocityMS: 40},
		Seed:          4242,
		ObservationMs: engineObsMs,
	}
	probe, err := NewProbe(ModeSnapshot, cfg)
	if err != nil {
		t.Fatalf("NewProbe: %v", err)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	versions := target.Versions()
	out := make([]RunResult, len(versions))
	for i, e := range BuildE1() {
		if i%5 != 0 {
			continue
		}
		prof, err := probe.ProfileError(e)
		if err != nil {
			t.Fatalf("ProfileError(%s): %v", e.ID, err)
		}
		if err := eng.RunError(e, versions, out); err != nil {
			t.Fatalf("RunError(%s): %v", e.ID, err)
		}
		for vi, v := range versions {
			if v == target.VersionAll {
				continue
			}
			k := int(v) - 1
			if out[vi].Detected != (prof.Master[k] >= 0) {
				t.Errorf("%s EA%d: engine detected=%v, probe master[%d]=%d", e.ID, k+1, out[vi].Detected, k, prof.Master[k])
				continue
			}
			if out[vi].Detected && out[vi].FirstDetectionMs != prof.Master[k] {
				t.Errorf("%s EA%d: engine first %d, probe %d", e.ID, k+1, out[vi].FirstDetectionMs, prof.Master[k])
			}
		}
		// All = min over the master row.
		allFirst := int64(-1)
		for _, ft := range prof.Master {
			if ft >= 0 && (allFirst < 0 || ft < allFirst) {
				allFirst = ft
			}
		}
		allIdx := len(versions) - 1
		if versions[allIdx] != target.VersionAll {
			t.Fatal("expected All last in target.Versions()")
		}
		if out[allIdx].Detected != (allFirst >= 0) {
			t.Errorf("%s All: engine detected=%v, probe min=%d", e.ID, out[allIdx].Detected, allFirst)
		} else if out[allIdx].Detected && out[allIdx].FirstDetectionMs != allFirst {
			t.Errorf("%s All: engine first %d, probe min %d", e.ID, out[allIdx].FirstDetectionMs, allFirst)
		}
	}
}

// TestProbeRejectsActiveRecovery pins the detection-only precondition.
func TestProbeRejectsActiveRecovery(t *testing.T) {
	cfg := RunConfig{
		TestCase: physics.TestCase{MassKg: 14000, VelocityMS: 55},
		Recovery: core.PreviousValue{},
	}
	if _, err := NewProbe(ModeAuto, cfg); err == nil {
		t.Fatal("NewProbe accepted an active recovery policy")
	}
}
