package inject

import (
	"reflect"
	"testing"

	"easig/internal/core"
	"easig/internal/memory"
	"easig/internal/physics"
	"easig/internal/target"
)

// TestParseModeRoundTrip checks the -engine flag spelling of every mode.
func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeAuto, ModeLiteral, ModeSnapshot, ModeMemo} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("turbo"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
	if m, err := ParseMode(""); err != nil || m != ModeAuto {
		t.Errorf("ParseMode(\"\") = %v, %v; want auto", m, err)
	}
}

// TestModeResolve checks the auto mapping and the recovery guard.
func TestModeResolve(t *testing.T) {
	if m, err := Mode.Resolve(ModeAuto, nil); err != nil || m != ModeSnapshot {
		t.Errorf("auto/nil -> %v, %v; want snapshot", m, err)
	}
	if m, err := Mode.Resolve(ModeAuto, core.NoRecovery{}); err != nil || m != ModeSnapshot {
		t.Errorf("auto/NoRecovery -> %v, %v; want snapshot", m, err)
	}
	if m, err := Mode.Resolve(ModeAuto, core.PreviousValue{}); err != nil || m != ModeLiteral {
		t.Errorf("auto/PreviousValue -> %v, %v; want literal", m, err)
	}
	if _, err := Mode.Resolve(ModeMemo, core.PreviousValue{}); err == nil {
		t.Error("memo mode accepted an active recovery policy")
	}
	if _, err := Mode.Resolve(ModeSnapshot, core.PreviousValue{}); err == nil {
		t.Error("snapshot mode accepted an active recovery policy")
	}
	if m, err := Mode.Resolve(ModeLiteral, core.PreviousValue{}); err != nil || m != ModeLiteral {
		t.Errorf("literal/PreviousValue -> %v, %v; want literal", m, err)
	}
}

// TestBuildExhaustive checks the full fault space: 8 bit positions per
// byte of RAM and stack, in region/address/bit order, unique IDs.
func TestBuildExhaustive(t *testing.T) {
	errs := BuildExhaustive()
	want := 8 * (target.RAMSize + target.StackSize)
	if len(errs) != want {
		t.Fatalf("BuildExhaustive: %d errors, want %d", len(errs), want)
	}
	seen := make(map[string]bool, len(errs))
	pos := make(map[[2]uint16]bool, len(errs))
	for _, e := range errs {
		if seen[e.ID] {
			t.Fatalf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
		k := [2]uint16{e.Addr, uint16(e.Bit)}
		if pos[k] {
			t.Fatalf("duplicate position 0x%04x.%d", e.Addr, e.Bit)
		}
		pos[k] = true
		if e.SignalIdx != -1 || e.Signal != "" {
			t.Fatalf("%s: exhaustive errors are not signal errors", e.ID)
		}
	}
	if errs[0].Region != target.RegionRAM || errs[0].Addr != target.RAMBase || errs[0].Bit != 0 {
		t.Errorf("first error %+v is not RAM byte 0 bit 0", errs[0])
	}
	last := errs[len(errs)-1]
	if last.Region != target.RegionStack || last.Addr != target.StackBase+target.StackSize-1 || last.Bit != 7 {
		t.Errorf("last error %+v is not the final stack bit", last)
	}
}

// TestLivenessSemantics drives the pass by hand: only bytes read while
// pending become live; stores clear pending; untracked addresses are
// conservatively live.
func TestLivenessSemantics(t *testing.T) {
	l := NewLiveness(nil) // no regions: everything conservative
	if !l.Live(0x1234) {
		t.Error("regionless liveness must report everything live")
	}

	l = NewLiveness([]memory.RegionSpec{
		{Name: "ram", Base: 0x100, Size: 64},
		{Name: "stack", Base: 0x400, Size: 64},
	})
	l.MarkInjection()
	l.OnAccess(0x100, 2, false) // read while pending -> live
	l.OnAccess(0x110, 2, true)  // write clears pending
	l.OnAccess(0x110, 2, false) // read after write -> stays dead
	l.OnAccess(0x400, 1, true)  // stack write
	if !l.Live(0x100) || !l.Live(0x101) {
		t.Error("read-while-pending bytes must be live")
	}
	if l.Live(0x110) || l.Live(0x111) {
		t.Error("written-before-read bytes must stay dead")
	}
	if l.Live(0x400) {
		t.Error("write-only byte must stay dead")
	}
	if l.Live(0x120) {
		t.Error("untouched byte must stay dead")
	}
	if !l.Live(0x300) {
		t.Error("address in the region gap must be conservatively live")
	}

	// A later injection epoch re-arms pending: the byte written above
	// becomes live if the next epoch's read precedes a store.
	l.MarkInjection()
	l.OnAccess(0x110, 2, false)
	if !l.Live(0x110) {
		t.Error("read in a later epoch must mark live")
	}
}

// TestMemoRunnerMatchesEngine is the memo/prune equivalence theorem at
// the inject level: over a mixed error set (every E1 error, an E2
// sample with duplicates, and a slice of the exhaustive grid) the memo
// runner's per-version results are identical, field by field, to the
// plain snapshot engine's — and the stats account for every error.
func TestMemoRunnerMatchesEngine(t *testing.T) {
	tc := physics.TestCase{MassKg: 14000, VelocityMS: 55}
	versions := target.Versions()
	cfg := RunConfig{TestCase: tc, Seed: 12345, ObservationMs: engineObsMs}

	mr, err := NewMemoRunner(cfg)
	if err != nil {
		t.Fatalf("NewMemoRunner: %v", err)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	errs := BuildE1()
	errs = append(errs, BuildE2(E2Spec{RAM: 30, Stack: 10}, 99)...)
	ex := BuildExhaustive()
	for i := 0; i < len(ex); i += 97 {
		errs = append(errs, ex[i])
	}

	got := make([]RunResult, len(versions))
	want := make([]RunResult, len(versions))
	for _, e := range errs {
		if err := mr.RunError(e, versions, got); err != nil {
			t.Fatalf("memo RunError(%s): %v", e.ID, err)
		}
		if err := eng.RunError(e, versions, want); err != nil {
			t.Fatalf("engine RunError(%s): %v", e.ID, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s:\n memo   %+v\n engine %+v", e.ID, got, want)
		}
	}

	st := mr.Stats()
	if st.Errors != len(errs) {
		t.Errorf("stats.Errors = %d, want %d", st.Errors, len(errs))
	}
	if st.Simulated+st.Pruned+st.MemoHits != st.Errors {
		t.Errorf("stats do not partition: %+v", st)
	}
	if st.Pruned == 0 {
		t.Error("expected some pruned errors over the exhaustive slice")
	}
	if lb := mr.Liveness().LiveBytes(); lb == 0 || lb == mr.Liveness().TrackedBytes() {
		t.Errorf("liveness map degenerate: %d of %d bytes live", lb, mr.Liveness().TrackedBytes())
	}
}

// TestMemoRunnerMemoHits checks that repeated (address, bit) positions
// — the with-replacement duplicates of the paper's E2 sampling — are
// served from the memo without re-simulation.
func TestMemoRunnerMemoHits(t *testing.T) {
	tc := physics.TestCase{MassKg: 8000, VelocityMS: 70}
	versions := []target.Version{target.VersionAll, target.VersionNone}
	cfg := RunConfig{TestCase: tc, Seed: 7, ObservationMs: 8000}

	mr, err := NewMemoRunner(cfg)
	if err != nil {
		t.Fatalf("NewMemoRunner: %v", err)
	}
	e1 := BuildE1()
	errs := []Error{e1[0], e1[5], e1[0], e1[5], e1[0]}
	out := make([]RunResult, len(versions))
	first := make([]RunResult, len(versions))
	for i, e := range errs {
		if err := mr.RunError(e, versions, out); err != nil {
			t.Fatalf("RunError(%d): %v", i, err)
		}
		if i == 0 {
			copy(first, out)
		}
		if e.ID == errs[0].ID && !reflect.DeepEqual(out, first) {
			t.Fatalf("repeat of %s diverged:\n got   %+v\n first %+v", e.ID, out, first)
		}
	}
	st := mr.Stats()
	if st.MemoHits != 3 {
		t.Errorf("MemoHits = %d, want 3 (duplicates in %d errors)", st.MemoHits, len(errs))
	}
	if st.Simulated != 2 {
		t.Errorf("Simulated = %d, want 2", st.Simulated)
	}
}

// TestPrunedFaultsAreBenign is the property test behind the pruning
// soundness argument: a sample of liveness-pruned errors is re-run
// under literal from-scratch simulation and must produce, field by
// field, the outcome the memo runner derived from the nominal profile.
func TestPrunedFaultsAreBenign(t *testing.T) {
	tc := physics.TestCase{MassKg: 20000, VelocityMS: 45}
	versions := []target.Version{target.VersionAll, target.VersionEA4, target.VersionNone}
	cfg := RunConfig{TestCase: tc, Seed: 4242, ObservationMs: 8000}

	mr, err := NewMemoRunner(cfg)
	if err != nil {
		t.Fatalf("NewMemoRunner: %v", err)
	}

	// Prime the liveness map, then collect pruned positions.
	warm := BuildE2(E2Spec{RAM: 1, Stack: 1}, 1)
	out := make([]RunResult, len(versions))
	if err := mr.RunError(warm[0], versions, out); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	var pruned []Error
	for i, e := range BuildExhaustive() {
		if !mr.Liveness().Live(e.Addr) && i%151 == 0 {
			pruned = append(pruned, e)
		}
	}
	if len(pruned) < 10 {
		t.Fatalf("only %d pruned sample errors; liveness map suspiciously dense", len(pruned))
	}

	for _, e := range pruned {
		before := mr.Stats()
		if err := mr.RunError(e, versions, out); err != nil {
			t.Fatalf("memo RunError(%s): %v", e.ID, err)
		}
		if mr.Stats().Pruned != before.Pruned+1 {
			t.Fatalf("%s was not served by the pruner", e.ID)
		}
		for vi, v := range versions {
			rcfg := cfg
			rcfg.Version = v
			ecopy := e
			rcfg.Error = &ecopy
			lit, lerr := Run(rcfg)
			if lerr != nil {
				t.Fatalf("literal Run(%s, %v): %v", e.ID, v, lerr)
			}
			if !reflect.DeepEqual(out[vi], lit) {
				t.Fatalf("%s version %v not benign:\n pruned  %+v\n literal %+v", e.ID, v, out[vi], lit)
			}
		}
	}
}
