package inject

import (
	"reflect"
	"testing"

	"easig/internal/core"
	"easig/internal/physics"
	"easig/internal/target"
)

// engineObsMs gives the equivalence sweeps a window long enough to
// exercise the quiet-window exit (the nominal stop is near 10.5 s)
// while staying far cheaper than the paper's 40 s.
const engineObsMs = 16000

// TestEngineMatchesRun is the run-level equivalence theorem of the
// fast-forward engine: for a sweep of E1 and E2 errors, the per-version
// results derived from one all-assertions profile run are identical,
// field by field, to from-scratch inject.Run executions — including the
// early-exit-truncated detection counts, injections and plant readouts.
func TestEngineMatchesRun(t *testing.T) {
	tc := physics.TestCase{MassKg: 14000, VelocityMS: 55}
	versions := target.Versions()
	cfg := RunConfig{TestCase: tc, Seed: 12345, ObservationMs: engineObsMs}

	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	var errs []Error
	for i, e := range BuildE1() {
		if i%7 == 3 {
			errs = append(errs, e)
		}
	}
	errs = append(errs, BuildE2(E2Spec{RAM: 6, Stack: 4}, 99)...)

	out := make([]RunResult, len(versions))
	for _, e := range errs {
		if err := eng.RunError(e, versions, out); err != nil {
			t.Fatalf("RunError(%s): %v", e.ID, err)
		}
		for vi, v := range versions {
			rcfg := cfg
			rcfg.Version = v
			ecopy := e
			rcfg.Error = &ecopy
			want, err := Run(rcfg)
			if err != nil {
				t.Fatalf("Run(%s, %v): %v", e.ID, v, err)
			}
			if !reflect.DeepEqual(out[vi], want) {
				t.Errorf("%s version %v:\n engine %+v\n  fresh %+v", e.ID, v, out[vi], want)
			}
		}
	}
}

// TestEngineLatencyNotTruncated spot-checks that the engine's early
// exits never clip a detection latency: for every detected (error,
// version) the first-detection time and latency equal those of a
// full-observation run, which has no early exit at all.
func TestEngineLatencyNotTruncated(t *testing.T) {
	tc := physics.TestCase{MassKg: 8000, VelocityMS: 70}
	versions := []target.Version{target.VersionAll, target.VersionEA2, target.VersionEA6}
	cfg := RunConfig{TestCase: tc, Seed: 7, ObservationMs: engineObsMs}

	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	out := make([]RunResult, len(versions))
	errs := BuildE1()
	detected := 0
	for i := 0; i < len(errs); i += 11 {
		e := errs[i]
		if err := eng.RunError(e, versions, out); err != nil {
			t.Fatalf("RunError(%s): %v", e.ID, err)
		}
		for vi, v := range versions {
			rcfg := cfg
			rcfg.Version = v
			ecopy := e
			rcfg.Error = &ecopy
			rcfg.FullObservation = true
			full, err := Run(rcfg)
			if err != nil {
				t.Fatalf("Run(%s, %v): %v", e.ID, v, err)
			}
			if out[vi].Detected != full.Detected {
				t.Errorf("%s %v: engine detected=%v, full observation %v", e.ID, v, out[vi].Detected, full.Detected)
				continue
			}
			if !full.Detected {
				continue
			}
			detected++
			if out[vi].FirstDetectionMs != full.FirstDetectionMs || out[vi].LatencyMs != full.LatencyMs {
				t.Errorf("%s %v: engine first=%d latency=%d, full observation first=%d latency=%d",
					e.ID, v, out[vi].FirstDetectionMs, out[vi].LatencyMs, full.FirstDetectionMs, full.LatencyMs)
			}
		}
	}
	if detected == 0 {
		t.Fatal("spot check exercised no detected runs")
	}
}

// TestEngineRejectsRecovery documents the engine's soundness
// precondition: with an active recovery policy the assertion build
// changes the signal trajectory, so per-version derivation from one
// profile run would be wrong and the engine refuses to build.
func TestEngineRejectsRecovery(t *testing.T) {
	_, err := NewEngine(RunConfig{
		TestCase: physics.TestCase{MassKg: 14000, VelocityMS: 55},
		Recovery: core.PreviousValue{},
	})
	if err == nil {
		t.Fatal("NewEngine accepted an active recovery policy")
	}
}
