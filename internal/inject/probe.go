package inject

import (
	"fmt"

	"easig/internal/core"
	"easig/internal/memory"
	"easig/internal/target"
)

// This file is the optimizer's measurement primitive: a dual-node
// variant of the fast-forward Engine that profiles one error into the
// per-node, per-assertion first-violation matrix from which
// internal/optimize derives the outcome of EVERY configuration of the
// lattice — all 2^7 assertion subsets × {master, slave, both} — with
// zero additional simulation (OPTIMIZER.md "Subset derivation").
//
// The campaign Engine wires a detection sink to the master node only,
// because the paper's Tables 7-9 score master builds. A configuration
// lattice that places assertions on the slave needs the slave's
// violation stream too: faults are injected into MASTER memory, and the
// slave can only see corruption that propagates over the set-point
// link, so its first-violation times are genuinely different data. The
// Probe therefore builds its system with BOTH nodes on the
// all-assertions build and a first-violation sink on each.

// EAProfile is one error's probe readout: for each node, each
// executable assertion's first-violation time (-1 when the assertion
// never fired), plus the plant's failure verdict. A configuration
// (mask, nodes) detects the error iff some enabled (node, assertion)
// slot is >= 0, and its first detection is the minimum such time —
// exactly the projection Engine.deriveFrom applies per Version, which
// is why one probe run scores the whole lattice.
type EAProfile struct {
	// Master[k] and Slave[k] are the first-violation times of EA k+1 on
	// that node, -1 when it never fired.
	Master [target.NumEAs]int64
	Slave  [target.NumEAs]int64
	// Failed reports a violated arrestment constraint; FailTickMs is the
	// tick index at which it latched (the engine's failIter clock, the
	// same clock as the violation times).
	Failed     bool
	FailTickMs int64
}

// firstSink records the first violation time per executable assertion;
// it is the probe's per-node detection sink.
type firstSink struct {
	sigIdx map[string]int
	first  [target.NumEAs]int64
}

func newFirstSink() *firstSink {
	s := &firstSink{sigIdx: make(map[string]int, target.NumEAs)}
	for k, name := range target.SignalNames() {
		s.sigIdx[name] = k
	}
	s.reset()
	return s
}

// Detect implements core.DetectionSink.
func (s *firstSink) Detect(v core.Violation) {
	k, ok := s.sigIdx[v.Signal]
	if !ok {
		return
	}
	if s.first[k] < 0 {
		s.first[k] = v.Time
	}
}

// reset rewinds the sink for the next error.
func (s *firstSink) reset() {
	for k := range s.first {
		s.first[k] = -1
	}
}

// clean reports an empty sink (no violation recorded yet).
func (s *firstSink) clean() bool {
	for _, t := range s.first {
		if t >= 0 {
			return false
		}
	}
	return true
}

// Probe profiles the errors of one (test case, injection schedule) into
// EAProfiles. Like the Engine it restores a nominal-prefix snapshot per
// error and exits early once the post-stop quiet window has elapsed; in
// memo mode it additionally serves liveness-pruned faults from the
// nominal verdict and duplicate state deltas from an outcome memo. A
// literal-mode probe runs every error from time zero over the FULL
// observation window on a fresh dual-sink system — the reference
// semantics the probe equivalence tests pin the fast modes against.
//
// Probe runs are detection-only by construction (core.NoRecovery on
// both nodes): recovery acts only on violations, so the trajectory up
// to any FIRST violation — all a probe records — is recovery-invariant
// (OPTIMIZER.md "Recovery invariance"). A Probe is not safe for
// concurrent use; each sweep worker owns one.
type Probe struct {
	cfg    RunConfig
	policy Policy
	obs    int64
	mode   Mode

	sys           *target.System
	mem           *memory.Memory
	master, slave *firstSink
	base          target.SystemState

	// Memo-mode layers (nil otherwise), shared read-only from the
	// CaseProfile's full stage.
	live    *Liveness
	baseM   [][]byte
	nominal *nominalProfile
	memo    map[uint64]EAProfile

	stats RunnerStats
}

// ProbeMode maps ModeAuto to the probe sweep's default, memo — liveness
// pruning is what makes a full-lattice census over the exhaustive fault
// space affordable, and the probe equivalence tests pin memo-mode
// profiles byte-identical to literal ones. Exported so the optimizer
// stamps the resolved mode into its journal header (the resume mode
// check needs the same resolution on both sides).
func ProbeMode(mode Mode) Mode {
	if mode == ModeAuto {
		return ModeMemo
	}
	return mode
}

// resolveProbeMode applies ProbeMode and the probe's detection-only
// precondition.
func resolveProbeMode(mode Mode, cfg RunConfig) (Mode, error) {
	if !detectionOnly(cfg.Recovery) {
		return mode, fmt.Errorf("inject: probe requires detection-only runs (core.NoRecovery), got %T", cfg.Recovery)
	}
	return ProbeMode(mode), nil
}

// NewProbe builds a self-contained probe for one (test case, injection
// schedule) described by cfg. cfg.Error and cfg.Version are ignored:
// the probe always runs the all-assertions build on both nodes and the
// errors arrive per ProfileError call. Snapshot and memo modes compute
// their own CaseProfile; sweeps that share profiles across workers use
// NewProbeFromProfile instead.
func NewProbe(mode Mode, cfg RunConfig) (*Probe, error) {
	resolved, err := resolveProbeMode(mode, cfg)
	if err != nil {
		return nil, err
	}
	if resolved == ModeLiteral {
		return &Probe{cfg: cfg, policy: normalPolicy(cfg), obs: normalObs(cfg), mode: resolved}, nil
	}
	e := &profileEntry{}
	if err := e.computePrefix(cfg); err != nil {
		return nil, err
	}
	if resolved == ModeMemo {
		if err := e.computeFull(); err != nil {
			return nil, err
		}
	}
	return NewProbeFromProfile(resolved, e.p)
}

// NewProbeFromProfile builds a probe from a shared CaseProfile, the way
// the optimizer's sweep workers do: a fresh dual-sink system is built
// from the same configuration and fast-forwarded by restoring the
// shared snapshot (the same construction as NewEngineFromProfile — the
// snapshot captures complete system state including the slave node, so
// it restores cleanly onto a differently-sinked system). Memo mode
// requires the profile's full stage (liveness map + nominal profile).
//
// The profile's prefix must be detection-free on the master (checked
// here against the recorded prefix streams) and on the slave (the §3.4
// nominal gate proves fault-free runs detection-free on BOTH nodes —
// RunNominal wires both sinks — and the prefix is a fault-free run):
// only then is everything the probe's post-restore sinks record the
// complete violation history of the run.
func NewProbeFromProfile(mode Mode, p *CaseProfile) (*Probe, error) {
	resolved, err := resolveProbeMode(mode, p.cfg)
	if err != nil {
		return nil, err
	}
	if resolved == ModeLiteral {
		return &Probe{cfg: p.cfg, policy: normalPolicy(p.cfg), obs: normalObs(p.cfg), mode: resolved}, nil
	}
	for k := range p.prefixEA {
		if len(p.prefixEA[k].times) > 0 {
			return nil, fmt.Errorf("inject: probe needs a detection-free nominal prefix, but EA%d fired at %d ms before the first injection", k+1, p.prefixEA[k].times[0])
		}
	}
	pr := &Probe{
		cfg:    p.cfg,
		policy: normalPolicy(p.cfg),
		obs:    normalObs(p.cfg),
		mode:   resolved,
		master: newFirstSink(),
		slave:  newFirstSink(),
		base:   p.base,
	}
	sys, err := target.NewSystem(target.SystemConfig{
		Constants:    p.cfg.Constants,
		ForceTable:   p.cfg.ForceTable,
		TestCase:     p.cfg.TestCase,
		Seed:         p.cfg.Seed,
		Version:      target.VersionAll,
		SlaveVersion: target.VersionAll,
		Sink:         pr.master,
		SlaveSink:    pr.slave,
		Recovery:     core.NoRecovery{},
		Placement:    p.cfg.Placement,
	})
	if err != nil {
		return nil, fmt.Errorf("inject: building probe system: %w", err)
	}
	pr.sys = sys
	pr.mem = sys.Master().Memory()
	if err := sys.Restore(&pr.base); err != nil {
		return nil, fmt.Errorf("inject: fast-forwarding probe from shared profile: %w", err)
	}
	if resolved == ModeMemo {
		if p.live == nil || p.nominal == nil {
			return nil, fmt.Errorf("inject: memo probe needs the full profile stage (ProfileCache.Get with full=true)")
		}
		pr.live = p.live
		pr.baseM = p.baseMem
		pr.nominal = p.nominal
		pr.memo = make(map[uint64]EAProfile)
	}
	return pr, nil
}

func normalPolicy(cfg RunConfig) Policy {
	if cfg.Policy.PeriodMs <= 0 {
		return DefaultPolicy()
	}
	return cfg.Policy
}

func normalObs(cfg RunConfig) int64 {
	if cfg.ObservationMs <= 0 {
		return DefaultObservationMs
	}
	return cfg.ObservationMs
}

// ProfileError profiles one error of the probe's test case into its
// dual-node EAProfile.
func (p *Probe) ProfileError(err Error) (EAProfile, error) {
	p.stats.Errors++
	if p.mode == ModeLiteral {
		prof, lerr := p.profileLiteral(err)
		if lerr != nil {
			return EAProfile{}, lerr
		}
		p.stats.Simulated++
		return prof, nil
	}

	if p.live != nil && !p.live.Live(err.Addr) {
		// Liveness-pruned: the fault is provably benign, the trajectory
		// is the nominal one, and the nominal run is detection-free on
		// both nodes (the §3.4 nominal gate) — so every first-violation
		// slot is -1 and the verdict is the nominal verdict.
		p.stats.Pruned++
		return p.nominalProfile(), nil
	}
	if p.memo != nil {
		h, herr := stateDeltaHash(p.mem.Regions(), p.baseM, err)
		if herr != nil {
			return EAProfile{}, herr
		}
		if prof, ok := p.memo[h]; ok {
			p.stats.MemoHits++
			return prof, nil
		}
		prof, serr := p.profileSnapshot(err)
		if serr != nil {
			return EAProfile{}, serr
		}
		p.stats.Simulated++
		p.memo[h] = prof
		return prof, nil
	}
	prof, serr := p.profileSnapshot(err)
	if serr != nil {
		return EAProfile{}, serr
	}
	p.stats.Simulated++
	return prof, nil
}

// nominalProfile is the EAProfile of a provably benign fault.
func (p *Probe) nominalProfile() EAProfile {
	prof := EAProfile{}
	for k := range prof.Master {
		prof.Master[k] = -1
		prof.Slave[k] = -1
	}
	if p.nominal != nil && p.nominal.failed {
		prof.Failed = true
		prof.FailTickMs = p.nominal.failure.TimeMs - 1
	}
	return prof
}

// profileSnapshot serves one error from the restored snapshot with the
// engine's injection loop and quiet-window exit.
func (p *Probe) profileSnapshot(err Error) (EAProfile, error) {
	if rerr := p.sys.Restore(&p.base); rerr != nil {
		return EAProfile{}, fmt.Errorf("inject: restoring probe snapshot: %w", rerr)
	}
	p.master.reset()
	p.slave.reset()
	for ms := p.policy.StartMs; ms < p.obs; ms++ {
		if (ms-p.policy.StartMs)%p.policy.PeriodMs == 0 {
			if aerr := err.Apply(p.mem); aerr != nil {
				return EAProfile{}, fmt.Errorf("inject: applying %v: %w", err, aerr)
			}
		}
		p.sys.StepMs()
		// The quiet-window exit is sound for the slave's streams for the
		// same reason it is for the master's: the window bounds the decay
		// of the shared actuation transient, and both nodes' assertions
		// observe the same physical signals (the probe equivalence suite
		// re-verifies this against full-window literal runs).
		if stopMs, stopped := p.sys.Env().Stopped(); stopped && ms-(stopMs-1) >= QuietWindowMs {
			break
		}
	}
	return readout(p.master, p.slave, p.sys), nil
}

// profileLiteral serves one error from a fresh system over the full
// observation window.
func (p *Probe) profileLiteral(err Error) (EAProfile, error) {
	master, slave := newFirstSink(), newFirstSink()
	sys, serr := target.NewSystem(target.SystemConfig{
		Constants:    p.cfg.Constants,
		ForceTable:   p.cfg.ForceTable,
		TestCase:     p.cfg.TestCase,
		Seed:         p.cfg.Seed,
		Version:      target.VersionAll,
		SlaveVersion: target.VersionAll,
		Sink:         master,
		SlaveSink:    slave,
		Recovery:     core.NoRecovery{},
		Placement:    p.cfg.Placement,
	})
	if serr != nil {
		return EAProfile{}, fmt.Errorf("inject: building literal probe system: %w", serr)
	}
	mem := sys.Master().Memory()
	for ms := int64(0); ms < p.obs; ms++ {
		if ms >= p.policy.StartMs && (ms-p.policy.StartMs)%p.policy.PeriodMs == 0 {
			if aerr := err.Apply(mem); aerr != nil {
				return EAProfile{}, fmt.Errorf("inject: applying %v: %w", err, aerr)
			}
		}
		sys.StepMs()
	}
	return readout(master, slave, sys), nil
}

// readout assembles the EAProfile from a run's sinks and environment.
func readout(master, slave *firstSink, sys *target.System) EAProfile {
	prof := EAProfile{Master: master.first, Slave: slave.first}
	if failure, failed := sys.Env().Failure(); failed {
		prof.Failed = true
		prof.FailTickMs = failure.TimeMs - 1
	}
	return prof
}

// Stats implements StatsReporter.
func (p *Probe) Stats() RunnerStats { return p.stats }
