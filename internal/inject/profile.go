package inject

import (
	"fmt"
	"sync"
	"sync/atomic"

	"easig/internal/core"
	"easig/internal/target"
)

// CaseProfile is the shared, read-only execution profile of one
// (test case, injection schedule, seed): everything a Runner needs that
// is a pure function of the case rather than of the error under
// injection. The parallel campaign scheduler computes it once per test
// case and hands it to every worker and every engine mode, instead of
// letting each worker's runner re-simulate it:
//
//   - the nominal-prefix snapshot at the first injection time plus the
//     recorder streams accumulated up to it (the snapshot engine's
//     starting point — PR 4 simulated this once per runner, so a case
//     split across N workers paid for it N times);
//   - optionally (the "full" stage) the full-observation-window nominal
//     profile and the def/use liveness map, which the memo runner uses
//     to prove dead-at-injection faults benign and to derive their
//     per-version readouts with zero simulation. Before the cache this
//     was the single most expensive per-runner cost — a complete
//     fault-free simulation of the whole window — and it is exactly
//     what forced PR 6 to schedule each case as one indivisible batch.
//
// A CaseProfile is immutable after construction. Engines built from it
// via NewEngineFromProfile share its buffers read-only (Restore only
// reads from the snapshot; the nominal profile is only consulted, never
// written), which is what makes one profile safe for any number of
// concurrent workers.
type CaseProfile struct {
	cfg RunConfig

	base       target.SystemState
	prefixEA   [target.NumEAs]eaStream
	prefixFail plantReadout
	prefixHave bool

	// Full-stage fields; nil until the full profile is computed.
	nominal *nominalProfile
	live    *Liveness
	baseMem [][]byte
}

// Live exposes the liveness map of the full stage (nil for a
// prefix-only profile).
func (p *CaseProfile) Live() *Liveness { return p.live }

// profileEntry is one cache slot. The two stages are guarded by
// separate sync.Onces so snapshot-mode campaigns never pay for the
// full-window profile that only the memo runner needs.
type profileEntry struct {
	prefixOnce sync.Once
	fullOnce   sync.Once
	prefixErr  error
	fullErr    error
	eng        *Engine
	p          *CaseProfile
}

// ProfileCache shares CaseProfiles across the workers of one campaign.
// Keys are caller-chosen (the campaign uses the test-case index); the
// caller guarantees that every Get for a key passes an equivalent
// RunConfig. Get is safe for concurrent use: the first caller of a key
// computes the stage, everyone else blocks on the same sync.Once and
// reuses the result.
//
// Sharing cannot change a campaign's readouts: a profile is a pure
// function of (test case, injection schedule, seed) — the same §3.4
// determinism that makes the paper's Tables 7-9 resumable makes it
// indifferent whether one runner or eight share the computation (the
// seed contract in PERFORMANCE.md "The seed contract that makes
// sharing sound"). TestProfileCacheComputesOnce gates the compute-once
// contract under concurrent access, and the engine-equivalence suites
// (TestEngineFromProfileMatchesEngine and
// TestMemoRunnerFromProfileMatchesEngine, listed under PERFORMANCE.md
// "The proof obligations, as tests") pin profile-built runners
// byte-identical to self-computed ones.
type ProfileCache struct {
	mu      sync.Mutex
	entries map[int]*profileEntry
}

// NewProfileCache returns an empty cache.
func NewProfileCache() *ProfileCache {
	return &ProfileCache{entries: make(map[int]*profileEntry)}
}

// Get returns the profile for key, computing the missing stages at
// most once per cache. With full=false only the nominal-prefix
// snapshot is guaranteed (what a snapshot Engine needs); with
// full=true the full-window nominal profile and liveness map are
// computed too (what a MemoRunner needs).
func (c *ProfileCache) Get(key int, cfg RunConfig, full bool) (*CaseProfile, error) {
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &profileEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	e.prefixOnce.Do(func() { e.prefixErr = e.computePrefix(cfg) })
	if e.prefixErr != nil {
		return nil, e.prefixErr
	}
	if full {
		e.fullOnce.Do(func() { e.fullErr = e.computeFull() })
		if e.fullErr != nil {
			return nil, e.fullErr
		}
	}
	return e.p, nil
}

// computePrefix builds the stage-one profile: a throwaway engine
// simulates the nominal prefix and its snapshot, prefix streams and
// readouts are lifted into the CaseProfile. The engine is retained for
// a later full stage.
func (e *profileEntry) computePrefix(cfg RunConfig) error {
	eng, err := NewEngine(cfg)
	if err != nil {
		return err
	}
	p := &CaseProfile{
		cfg:        eng.cfg,
		base:       eng.base,
		prefixFail: eng.baseFailReadout,
		prefixHave: eng.baseHaveFail,
	}
	for k := range eng.rec.ea {
		s := &eng.rec.ea[k]
		p.prefixEA[k] = eaStream{
			times:       append([]int64(nil), s.times[:eng.baseLen[k]]...),
			ids:         append([]core.TestID(nil), s.ids[:eng.baseLen[k]]...),
			readout:     eng.baseEA[k].readout,
			haveReadout: eng.baseEA[k].haveReadout,
		}
	}
	e.eng = eng
	e.p = p
	return nil
}

// computeFull runs the stage-two full-window nominal profile with the
// liveness pass armed, then drops the throwaway engine.
func (e *profileEntry) computeFull() error {
	live := NewLiveness(e.eng.mem.Regions())
	if err := e.eng.ProfileNominal(live, live.MarkInjection); err != nil {
		return err
	}
	e.p.nominal = e.eng.nominal
	e.p.live = live
	e.p.baseMem = e.eng.mem.Snapshot()
	e.eng = nil
	return nil
}

// NewEngineFromProfile builds a snapshot Engine for the profile's test
// case without re-simulating the nominal prefix: a fresh system is
// built from the same configuration and fast-forwarded by restoring
// the shared snapshot. The engine shares the profile's buffers
// read-only, so any number of engines (one per campaign worker) can be
// built from one profile concurrently.
func NewEngineFromProfile(p *CaseProfile) (*Engine, error) {
	e, err := newEngineShell(p.cfg)
	if err != nil {
		return nil, err
	}
	e.base = p.base
	for k := range e.rec.ea {
		s := &e.rec.ea[k]
		s.times = append(s.times, p.prefixEA[k].times...)
		s.ids = append(s.ids, p.prefixEA[k].ids...)
		s.readout = p.prefixEA[k].readout
		s.haveReadout = p.prefixEA[k].haveReadout
		e.baseLen[k] = len(p.prefixEA[k].times)
		e.baseEA[k].readout = p.prefixEA[k].readout
		e.baseEA[k].haveReadout = p.prefixEA[k].haveReadout
	}
	e.baseFailReadout = p.prefixFail
	e.baseHaveFail = p.prefixHave
	e.failReadout = p.prefixFail
	e.haveFailReadout = p.prefixHave
	e.nominal = p.nominal
	if err := e.sys.Restore(&e.base); err != nil {
		return nil, fmt.Errorf("inject: fast-forwarding from shared profile: %w", err)
	}
	return e, nil
}

// NewMemoRunnerFromProfile builds a memo runner whose liveness map,
// nominal profile and snapshot-time memory bytes all come from the
// shared profile (full stage required) instead of a private
// full-window simulation. shared, when non-nil, lets the runner
// publish and consume memoized outcomes across the workers of the
// case; pass nil for a private memo.
func NewMemoRunnerFromProfile(p *CaseProfile, shared *SharedMemo) (*MemoRunner, error) {
	if p.live == nil || p.nominal == nil {
		return nil, fmt.Errorf("inject: memo runner needs the full profile stage (ProfileCache.Get with full=true)")
	}
	eng, err := NewEngineFromProfile(p)
	if err != nil {
		return nil, err
	}
	return &MemoRunner{
		eng:    eng,
		live:   p.live,
		baseM:  p.baseMem,
		memo:   make(map[uint64]memoEntry),
		shared: shared,
	}, nil
}

// SharedMemo publishes outcome-memo entries across the runners of one
// test case. Reads are lock-free — the table is an immutable map
// behind an atomic pointer, so the per-draw lookup costs one atomic
// load — and writes are batched: each runner accumulates entries in
// its private table and merges them at batch barriers via
// MemoRunner.FlushShared, which rebuilds and republishes the map under
// a short mutex. Merging at barriers instead of locking per draw keeps
// the memo off the hot path; the cost is that a duplicate draw served
// on two workers inside the same batch window may be simulated twice,
// which affects throughput accounting only — identical state deltas
// produce identical results, so the §3.4 Table 9 cells and the
// exhaustive census's measured Pdetect are unchanged (the memo-table
// soundness argument in PERFORMANCE.md "The memo table").
// TestSharedMemoCrossRunner gates the cross-runner path: an outcome
// memoized by one runner must be served identically through another
// runner sharing the memo.
type SharedMemo struct {
	mu sync.Mutex
	v  atomic.Pointer[map[uint64]memoEntry]
}

// lookup consults the published table.
func (s *SharedMemo) lookup(h uint64) (memoEntry, bool) {
	m := s.v.Load()
	if m == nil {
		return memoEntry{}, false
	}
	e, ok := (*m)[h]
	return e, ok
}

// Len reports the number of published entries (tests and metrics).
func (s *SharedMemo) Len() int {
	m := s.v.Load()
	if m == nil {
		return 0
	}
	return len(*m)
}

// merge republishes the table extended with every entry of local.
// Existing keys win: both sides memoized the same run, and keeping the
// published entry means concurrent readers only ever see one result
// per key.
func (s *SharedMemo) merge(local map[uint64]memoEntry) {
	if len(local) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.v.Load()
	next := make(map[uint64]memoEntry, lenOf(old)+len(local))
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	for k, v := range local {
		if _, ok := next[k]; !ok {
			next[k] = v
		}
	}
	s.v.Store(&next)
}

func lenOf(m *map[uint64]memoEntry) int {
	if m == nil {
		return 0
	}
	return len(*m)
}
