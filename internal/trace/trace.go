// Package trace records signal time series from simulation runs and
// exports them as CSV, for the calibration workflow (fault-free traces
// feed core.Calibrator), the sigmon tool and the Figure-2 style plots.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Trace is one named integer time series with a fixed sampling period.
type Trace struct {
	// Name labels the series (usually a signal name).
	Name string
	// PeriodMs is the sampling period in milliseconds.
	PeriodMs int64
	// Samples holds the series.
	Samples []int64
}

// Append adds one sample.
func (t *Trace) Append(v int64) { t.Samples = append(t.Samples, v) }

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Samples) }

// Min returns the smallest sample; ok is false for an empty trace.
func (t *Trace) Min() (int64, bool) {
	if len(t.Samples) == 0 {
		return 0, false
	}
	m := t.Samples[0]
	for _, s := range t.Samples[1:] {
		if s < m {
			m = s
		}
	}
	return m, true
}

// Max returns the largest sample; ok is false for an empty trace.
func (t *Trace) Max() (int64, bool) {
	if len(t.Samples) == 0 {
		return 0, false
	}
	m := t.Samples[0]
	for _, s := range t.Samples[1:] {
		if s > m {
			m = s
		}
	}
	return m, true
}

// Set is an ordered collection of traces sharing a time base.
type Set struct {
	traces []*Trace
}

// ErrMismatch reports CSV rows whose arity does not match the header.
var ErrMismatch = errors.New("trace: row width does not match header")

// NewSet builds a set of empty traces with the given names and period.
func NewSet(periodMs int64, names ...string) *Set {
	s := &Set{}
	for _, n := range names {
		s.traces = append(s.traces, &Trace{Name: n, PeriodMs: periodMs})
	}
	return s
}

// Traces returns the traces in declaration order.
func (s *Set) Traces() []*Trace { return s.traces }

// Trace returns the trace with the given name.
func (s *Set) Trace(name string) (*Trace, bool) {
	for _, t := range s.traces {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}

// Append adds one sample row; values follow declaration order.
func (s *Set) Append(values ...int64) error {
	if len(values) != len(s.traces) {
		return fmt.Errorf("%w: %d values for %d traces", ErrMismatch, len(values), len(s.traces))
	}
	for i, v := range values {
		s.traces[i].Append(v)
	}
	return nil
}

// WriteCSV writes the set as CSV: a header of trace names preceded by
// "t_ms", then one row per sample.
func (s *Set) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"t_ms"}
	period := int64(1)
	for _, t := range s.traces {
		header = append(header, t.Name)
		if t.PeriodMs > 0 {
			period = t.PeriodMs
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	n := 0
	for _, t := range s.traces {
		if t.Len() > n {
			n = t.Len()
		}
	}
	row := make([]string, len(header))
	for i := 0; i < n; i++ {
		row[0] = strconv.FormatInt(int64(i)*period, 10)
		for j, t := range s.traces {
			if i < t.Len() {
				row[j+1] = strconv.FormatInt(t.Samples[i], 10)
			} else {
				row[j+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV stream in WriteCSV's format back into a set.
// The t_ms column is used only to infer the period.
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) < 2 || header[0] != "t_ms" {
		return nil, errors.New("trace: header must start with t_ms and name at least one trace")
	}
	s := NewSet(1, header[1:]...)
	var t0, t1 int64
	rows := 0
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading row: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("%w: row %d", ErrMismatch, rows+1)
		}
		ts, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad timestamp %q: %w", rows+1, rec[0], err)
		}
		switch rows {
		case 0:
			t0 = ts
		case 1:
			t1 = ts
		}
		for j, cell := range rec[1:] {
			if cell == "" {
				continue
			}
			v, err := strconv.ParseInt(cell, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d column %q: %w", rows+1, header[j+1], err)
			}
			s.traces[j].Append(v)
		}
		rows++
	}
	if rows >= 2 && t1 > t0 {
		for _, t := range s.traces {
			t.PeriodMs = t1 - t0
		}
	}
	return s, nil
}
