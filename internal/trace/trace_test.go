package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestTraceMinMax(t *testing.T) {
	var tr Trace
	if _, ok := tr.Min(); ok {
		t.Error("empty trace reported a minimum")
	}
	if _, ok := tr.Max(); ok {
		t.Error("empty trace reported a maximum")
	}
	for _, v := range []int64{5, -3, 9, 0} {
		tr.Append(v)
	}
	if mn, _ := tr.Min(); mn != -3 {
		t.Errorf("Min = %d", mn)
	}
	if mx, _ := tr.Max(); mx != 9 {
		t.Errorf("Max = %d", mx)
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestSetAppend(t *testing.T) {
	s := NewSet(7, "a", "b")
	if err := s.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1); !errors.Is(err, ErrMismatch) {
		t.Fatalf("short row = %v, want ErrMismatch", err)
	}
	a, ok := s.Trace("a")
	if !ok || a.Samples[0] != 1 {
		t.Fatalf("Trace(a) = (%+v, %v)", a, ok)
	}
	if _, ok := s.Trace("z"); ok {
		t.Error("unknown trace found")
	}
	if len(s.Traces()) != 2 {
		t.Error("Traces() wrong length")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := NewSet(7, "x", "y")
	s.Append(10, -1)
	s.Append(20, -2)
	s.Append(30, -3)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := got.Trace("x")
	y, _ := got.Trace("y")
	if x.PeriodMs != 7 {
		t.Errorf("period = %d, want inferred 7", x.PeriodMs)
	}
	if x.Len() != 3 || x.Samples[2] != 30 || y.Samples[0] != -1 {
		t.Errorf("round trip lost data: x=%v y=%v", x.Samples, y.Samples)
	}
}

func TestCSVHeader(t *testing.T) {
	s := NewSet(1, "sig")
	s.Append(5)
	var buf bytes.Buffer
	s.WriteCSV(&buf)
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if first != "t_ms,sig" {
		t.Errorf("header = %q", first)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":    "time,sig\n0,1\n",
		"no traces":     "t_ms\n0\n",
		"bad timestamp": "t_ms,sig\nxx,1\n",
		"bad value":     "t_ms,sig\n0,zz\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	// Empty cells are permitted (ragged trailing data).
	s, err := ReadCSV(strings.NewReader("t_ms,a,b\n0,1,\n7,2,5\n"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Trace("b")
	if b.Len() != 1 || b.Samples[0] != 5 {
		t.Errorf("ragged column = %v", b.Samples)
	}
}
