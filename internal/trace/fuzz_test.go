package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the parser is total: arbitrary input either
// parses into a consistent set or returns an error — never panics —
// and whatever parses round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("t_ms,a\n0,1\n7,2\n")
	f.Add("t_ms,a,b\n0,1,\n")
	f.Add("")
	f.Add("garbage")
	f.Add("t_ms,x\nnot,a,number\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(s.Traces()) == 0 {
			t.Fatal("parsed set without traces")
		}
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatalf("re-encoding a parsed set failed: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-parsing our own encoding failed: %v", err)
		}
		if len(again.Traces()) != len(s.Traces()) {
			t.Fatalf("round trip changed trace count %d -> %d", len(s.Traces()), len(again.Traces()))
		}
		for i, tr := range s.Traces() {
			got := again.Traces()[i]
			if got.Name != tr.Name || got.Len() != tr.Len() {
				t.Fatalf("round trip changed trace %q", tr.Name)
			}
			for j := range tr.Samples {
				if tr.Samples[j] != got.Samples[j] {
					t.Fatalf("round trip changed %q[%d]", tr.Name, j)
				}
			}
		}
	})
}
