package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Writer appends journal lines through a single writer goroutine, so
// the campaign collector never blocks on disk latency and the file sees
// one write call per line (a kill can truncate at most the final line).
// Writes go straight to the file descriptor — no userspace buffer — so
// everything before a truncated tail survives a killed process.
//
// Writer methods may be called from one goroutine at a time (the
// campaigns call them from the single collector goroutine); Close is
// idempotent and safe to defer alongside an explicit call.
type Writer struct {
	f    *os.File
	ch   chan []byte
	done chan struct{}

	mu     sync.Mutex
	closed bool
	err    error
}

// Create opens a fresh journal at path, truncating any previous file.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return newWriter(f), nil
}

// Open opens an existing journal at path for appending — the resume
// path: replayed runs are already on file, and newly executed runs
// extend it, so a twice-interrupted campaign still resumes cleanly.
func Open(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return newWriter(f), nil
}

func newWriter(f *os.File) *Writer {
	w := &Writer{
		f:    f,
		ch:   make(chan []byte, 256),
		done: make(chan struct{}),
	}
	go func() {
		defer close(w.done)
		for line := range w.ch {
			if _, err := w.f.Write(line); err != nil {
				w.setErr(fmt.Errorf("journal: writing: %w", err))
			}
		}
	}()
	return w
}

func (w *Writer) setErr(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = err
	}
}

// Err returns the first write error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// send marshals v as one JSONL line and hands it to the writer
// goroutine.
func (w *Writer) send(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: marshaling: %w", err)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("journal: write after close")
	}
	w.mu.Unlock()
	w.ch <- append(b, '\n')
	return w.Err()
}

// Header appends a campaign header line.
func (w *Writer) Header(h Header) error {
	h.Kind = KindHeader
	return w.send(h)
}

// Run appends one completed-run record.
func (w *Writer) Run(r Record) error {
	r.Kind = KindRun
	return w.send(r)
}

// Close drains pending lines, closes the file and returns the first
// write error. It is idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return w.Err()
	}
	w.closed = true
	w.mu.Unlock()
	close(w.ch)
	<-w.done
	if err := w.f.Close(); err != nil {
		w.setErr(fmt.Errorf("journal: closing: %w", err))
	}
	return w.Err()
}
