package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// writerQueueLines is the channel buffer between senders and the
// drainer: deep enough that a parallel campaign's workers never stall
// on a disk hiccup during a progress burst.
const writerQueueLines = 1024

// The coalesced-write cap and the line-aligned flush discipline live
// in LineBatcher (LineBatchBytes), shared with the stream service's
// violation sinks: batches always end on a line boundary, so a kill
// mid-batch truncates at most the final partial line of the final
// batch, which Load already tolerates.

// Writer appends journal lines through a single drainer goroutine, so
// campaign workers never block on disk latency. The drainer coalesces
// every line queued at the moment it wakes into one write call (capped
// at writerBatchBytes) — at parallel-campaign throughput this turns
// thousands of per-line write syscalls into a handful of batched ones.
// Writes go straight to the file descriptor — no userspace buffer that
// could outlive a crash — so everything before the final (possibly
// truncated) batch survives a killed process.
//
// Writer methods are safe for concurrent use; Close is idempotent and
// safe to defer alongside an explicit call.
type Writer struct {
	f    *os.File
	ch   chan []byte
	done chan struct{}

	mu     sync.Mutex // guards closed and the send/close ordering
	closed bool

	errMu sync.Mutex // guards err; separate so the drainer can record a
	// write error while a sender holds mu blocked on a full channel
	err error
}

// Create opens a fresh journal at path, truncating any previous file.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return newWriter(f), nil
}

// Open opens an existing journal at path for appending — the resume
// path: replayed runs are already on file, and newly executed runs
// extend it, so a twice-interrupted campaign still resumes cleanly.
//
// A truncated trailing line — the signature of a killed run, which Load
// drops on read — is cut off the file before appending. Without the cut
// the first appended line would fuse with the partial one into a
// malformed INTERIOR line, and while the immediate resume (which loaded
// the journal before appending) would succeed, the file itself would be
// unloadable ever after: a second resume would fail. The cut discards
// only bytes Load already ignores.
func Open(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := trimPartialLine(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	return newWriter(f), nil
}

// trimPartialLine truncates f after its final newline and seeks to the
// new end, scanning backwards in chunks so a large journal is not read
// whole.
func trimPartialLine(f *os.File) error {
	info, err := f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	end := int64(0) // file offset just past the last '\n'
	buf := make([]byte, 64*1024)
	for pos := size; pos > 0 && end == 0; {
		n := int64(len(buf))
		if n > pos {
			n = pos
		}
		pos -= n
		if _, err := f.ReadAt(buf[:n], pos); err != nil {
			return err
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				end = pos + i + 1
				break
			}
		}
	}
	if end < size {
		if err := f.Truncate(end); err != nil {
			return err
		}
	}
	_, err = f.Seek(end, 0)
	return err
}

func newWriter(f *os.File) *Writer {
	w := &Writer{
		f:    f,
		ch:   make(chan []byte, writerQueueLines),
		done: make(chan struct{}),
	}
	go w.drain()
	return w
}

// drain is the writer goroutine: it blocks for the next line, then
// opportunistically coalesces everything already queued behind it
// through the shared LineBatcher, which turns the queued lines into
// line-aligned batched writes.
func (w *Writer) drain() {
	defer close(w.done)
	b := NewLineBatcher(w.f)
	flush := func() {
		if err := b.Flush(); err != nil {
			w.setErr(fmt.Errorf("journal: writing: %w", err))
		}
	}
	for line := range w.ch {
		b.Add(line)
	coalesce:
		for {
			select {
			case more, ok := <-w.ch:
				if !ok {
					flush()
					return
				}
				b.Add(more)
			default:
				break coalesce
			}
		}
		flush()
	}
	flush()
}

func (w *Writer) setErr(err error) {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	if w.err == nil {
		w.err = err
	}
}

// Err returns the first write error, if any.
func (w *Writer) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

// send marshals v as one JSONL line and queues it for the drainer. The
// channel send happens under mu — the same lock Close takes before
// closing the channel — which is what makes concurrent senders safe
// against a racing Close (no send on a closed channel, ever). Holding
// mu across a full-channel stall is fine: the drainer never takes mu,
// so it keeps draining and the stall resolves.
func (w *Writer) send(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: marshaling: %w", err)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("journal: write after close")
	}
	w.ch <- append(b, '\n')
	w.mu.Unlock()
	return w.Err()
}

// Header appends a campaign header line.
func (w *Writer) Header(h Header) error {
	h.Kind = KindHeader
	return w.send(h)
}

// Run appends one completed-run record.
func (w *Writer) Run(r Record) error {
	r.Kind = KindRun
	return w.send(r)
}

// Probe appends one optimizer probe record.
func (w *Writer) Probe(p Probe) error {
	p.Kind = KindProbe
	return w.send(p)
}

// Cost appends one optimizer cost-calibration line.
func (w *Writer) Cost(c Cost) error {
	c.Kind = KindCost
	return w.send(c)
}

// Claim appends one shard-claim line (lease grant or renewal) to a
// service shard ledger.
func (w *Writer) Claim(c Claim) error {
	c.Kind = KindClaim
	return w.send(c)
}

// ShardDone appends one shard-completion line to a service shard
// ledger.
func (w *Writer) ShardDone(c Claim) error {
	c.Kind = KindShardDone
	return w.send(c)
}

// Close drains pending lines, closes the file and returns the first
// write error. It is idempotent and safe to call concurrently with
// senders: the channel is closed under the same lock send holds.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return w.Err()
	}
	w.closed = true
	close(w.ch)
	w.mu.Unlock()
	<-w.done
	if err := w.f.Close(); err != nil {
		w.setErr(fmt.Errorf("journal: closing: %w", err))
	}
	return w.Err()
}
