package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Header(Header{Experiment: "E1", Seed: 7, Grid: 2, Total: 3}); err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Experiment: "E1", Version: 8, ErrIdx: 0, ErrID: "S1", CaseIdx: 0, Seed: 11, Detected: true, LatencyMs: 40, ByTest: map[int]int{1: 3}},
		{Experiment: "E1", Version: 8, ErrIdx: 0, ErrID: "S1", CaseIdx: 1, Seed: 12, Failed: true},
		{Experiment: "E1", Version: 8, ErrIdx: 1, ErrID: "S2", CaseIdx: 0, Seed: 13},
	}
	for _, r := range recs {
		if err := w.Run(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	log, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Truncated {
		t.Error("clean journal flagged truncated")
	}
	if len(log.Headers) != 1 || log.Headers[0].Seed != 7 || log.Headers[0].Kind != KindHeader {
		t.Fatalf("headers = %+v", log.Headers)
	}
	if len(log.Runs) != len(recs) {
		t.Fatalf("got %d runs, want %d", len(log.Runs), len(recs))
	}
	got := log.Runs[0]
	if !got.Detected || got.LatencyMs != 40 || got.ByTest[1] != 3 || got.ErrID != "S1" {
		t.Errorf("run 0 round-trip: %+v", got)
	}

	byKey := log.Lookup("E1")
	if len(byKey) != 3 {
		t.Fatalf("Lookup returned %d entries", len(byKey))
	}
	if r, ok := byKey[Key{Version: 8, ErrIdx: 0, CaseIdx: 1}]; !ok || !r.Failed {
		t.Errorf("lookup by coordinates: %+v ok=%v", r, ok)
	}
	if _, ok := log.Header("E2"); ok {
		t.Error("found a header for an experiment never journaled")
	}
}

func TestLoadToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Header(Header{Experiment: "E1", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(Record{Experiment: "E1", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-write: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"run","experiment":"E1","ver`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !log.Truncated {
		t.Error("truncated tail not flagged")
	}
	if len(log.Runs) != 1 {
		t.Errorf("got %d runs, want the 1 complete record", len(log.Runs))
	}
}

func TestLoadRejectsMalformedInteriorLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := `{"kind":"header","experiment":"E1"}` + "\n" +
		"this is not a journal\n" +
		`{"kind":"run","experiment":"E1"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("malformed interior line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error does not locate the bad line: %v", err)
	}
}

func TestOpenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(Record{Experiment: "E1", ErrIdx: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(Record{Experiment: "E1", ErrIdx: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 2 {
		t.Fatalf("append lost records: %d runs", len(log.Runs))
	}
	// Lookup keeps the later occurrence when a run repeats.
	if err := func() error {
		w3, err := Open(path)
		if err != nil {
			return err
		}
		if err := w3.Run(Record{Experiment: "E1", ErrIdx: 2, Detected: true}); err != nil {
			return err
		}
		return w3.Close()
	}(); err != nil {
		t.Fatal(err)
	}
	log, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r := log.Lookup("E1")[Key{ErrIdx: 2}]; !r.Detected {
		t.Error("Lookup did not prefer the later duplicate")
	}
}
