package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Header(Header{Experiment: "E1", Seed: 7, Grid: 2, Total: 3}); err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Experiment: "E1", Version: 8, ErrIdx: 0, ErrID: "S1", CaseIdx: 0, Seed: 11, Detected: true, LatencyMs: 40, ByTest: map[int]int{1: 3}},
		{Experiment: "E1", Version: 8, ErrIdx: 0, ErrID: "S1", CaseIdx: 1, Seed: 12, Failed: true},
		{Experiment: "E1", Version: 8, ErrIdx: 1, ErrID: "S2", CaseIdx: 0, Seed: 13},
	}
	for _, r := range recs {
		if err := w.Run(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	log, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Truncated {
		t.Error("clean journal flagged truncated")
	}
	if len(log.Headers) != 1 || log.Headers[0].Seed != 7 || log.Headers[0].Kind != KindHeader {
		t.Fatalf("headers = %+v", log.Headers)
	}
	if len(log.Runs) != len(recs) {
		t.Fatalf("got %d runs, want %d", len(log.Runs), len(recs))
	}
	got := log.Runs[0]
	if !got.Detected || got.LatencyMs != 40 || got.ByTest[1] != 3 || got.ErrID != "S1" {
		t.Errorf("run 0 round-trip: %+v", got)
	}

	byKey := log.Lookup("E1")
	if len(byKey) != 3 {
		t.Fatalf("Lookup returned %d entries", len(byKey))
	}
	if r, ok := byKey[Key{Version: 8, ErrIdx: 0, CaseIdx: 1}]; !ok || !r.Failed {
		t.Errorf("lookup by coordinates: %+v ok=%v", r, ok)
	}
	if _, ok := log.Header("E2"); ok {
		t.Error("found a header for an experiment never journaled")
	}
}

func TestLoadToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Header(Header{Experiment: "E1", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(Record{Experiment: "E1", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-write: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"run","experiment":"E1","ver`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !log.Truncated {
		t.Error("truncated tail not flagged")
	}
	if len(log.Runs) != 1 {
		t.Errorf("got %d runs, want the 1 complete record", len(log.Runs))
	}
}

func TestLoadRejectsMalformedInteriorLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := `{"kind":"header","experiment":"E1"}` + "\n" +
		"this is not a journal\n" +
		`{"kind":"run","experiment":"E1"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("malformed interior line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error does not locate the bad line: %v", err)
	}
}

func TestOpenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(Record{Experiment: "E1", ErrIdx: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(Record{Experiment: "E1", ErrIdx: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 2 {
		t.Fatalf("append lost records: %d runs", len(log.Runs))
	}
	// Lookup keeps the later occurrence when a run repeats.
	if err := func() error {
		w3, err := Open(path)
		if err != nil {
			return err
		}
		if err := w3.Run(Record{Experiment: "E1", ErrIdx: 2, Detected: true}); err != nil {
			return err
		}
		return w3.Close()
	}(); err != nil {
		t.Fatal(err)
	}
	log, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r := log.Lookup("E1")[Key{ErrIdx: 2}]; !r.Detected {
		t.Error("Lookup did not prefer the later duplicate")
	}
}

// Open must cut a truncated trailing line before appending: otherwise
// the first appended record fuses with the partial line into a
// malformed interior line, and the journal — loadable once, right
// before that first resume — becomes unloadable for every resume after.
func TestOpenRepairsTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.Run(Record{Experiment: "E1", ErrIdx: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill: cut the final line in half.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(Record{Experiment: "E1", ErrIdx: 3}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := Load(path)
	if err != nil {
		t.Fatalf("journal unloadable after a resume appended to a truncated file: %v", err)
	}
	if log.Truncated {
		t.Error("repair left a partial line behind")
	}
	if len(log.Runs) != 3 {
		t.Errorf("got %d runs, want 2 surviving + 1 re-appended", len(log.Runs))
	}
}

func TestClaimRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Claim(Claim{Experiment: "E1", Campaign: "c1", Shard: 2, Cases: []int{2}, Worker: "w1", GrantedMs: 1000, LeaseMs: 30000}); err != nil {
		t.Fatal(err)
	}
	if err := w.Claim(Claim{Experiment: "E1", Campaign: "c1", Shard: 2, Cases: []int{2}, Worker: "w2", GrantedMs: 40000, LeaseMs: 30000}); err != nil {
		t.Fatal(err)
	}
	if err := w.ShardDone(Claim{Experiment: "E1", Campaign: "c1", Shard: 2, Worker: "w2", Runs: 224}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Claims) != 3 {
		t.Fatalf("got %d claim lines, want 3", len(log.Claims))
	}
	if log.Claims[0].Kind != KindClaim || log.Claims[0].Worker != "w1" || log.Claims[0].Cases[0] != 2 {
		t.Errorf("claim 0 round-trip: %+v", log.Claims[0])
	}
	if log.Claims[1].Worker != "w2" || log.Claims[1].GrantedMs != 40000 {
		t.Errorf("renewal round-trip: %+v", log.Claims[1])
	}
	if done := log.Claims[2]; done.Kind != KindShardDone || done.Runs != 224 {
		t.Errorf("shard_done round-trip: %+v", done)
	}
}

// TestMergeShardJournals exercises the reduce step of a distributed
// campaign: shard journals merged out of order, with duplicate records
// from a re-executed shard, must agree on headers and keep Lookup's
// last-wins dedup semantics.
func TestMergeShardJournals(t *testing.T) {
	shard := func(total int, runs ...Record) *Log {
		return &Log{
			Headers: []Header{{Experiment: "E1", Seed: 7, Grid: 2, Total: total, Runner: "snapshot"}},
			Runs:    runs,
		}
	}
	a := shard(2,
		Record{Experiment: "E1", Version: 8, ErrIdx: 0, CaseIdx: 0, Seed: 11, Detected: true},
		Record{Experiment: "E1", Version: 8, ErrIdx: 1, CaseIdx: 0, Seed: 11})
	b := shard(2,
		Record{Experiment: "E1", Version: 8, ErrIdx: 0, CaseIdx: 1, Seed: 12},
		Record{Experiment: "E1", Version: 8, ErrIdx: 1, CaseIdx: 1, Seed: 12, Failed: true})
	// A duplicate of one of a's runs, as a reclaimed-lease re-execution
	// would upload; determinism makes the payload identical.
	dup := shard(1,
		Record{Experiment: "E1", Version: 8, ErrIdx: 0, CaseIdx: 0, Seed: 11, Detected: true})

	for name, order := range map[string][]*Log{
		"in-order":     {a, b, dup},
		"out-of-order": {dup, b, a},
	} {
		m, err := Merge(order...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(m.Headers) != 1 || m.Headers[0].Total != 5 {
			t.Errorf("%s: merged headers = %+v, want one E1 header with summed total 5", name, m.Headers)
		}
		byKey := m.Lookup("E1")
		if len(byKey) != 4 {
			t.Errorf("%s: merged lookup has %d unique runs, want 4", name, len(byKey))
		}
		if r := byKey[Key{Version: 8, ErrIdx: 0, CaseIdx: 0}]; !r.Detected {
			t.Errorf("%s: duplicate run lost its payload: %+v", name, r)
		}
	}

	// Shards from different campaigns must not merge.
	foreign := shard(1, Record{Experiment: "E1", Version: 8, ErrIdx: 9, CaseIdx: 0, Seed: 99})
	foreign.Headers[0].Seed = 8
	if _, err := Merge(a, foreign); err == nil {
		t.Error("merge accepted shards with disagreeing seeds")
	}
	mixed := shard(1)
	mixed.Headers[0].Runner = "literal"
	if _, err := Merge(a, mixed); err == nil {
		t.Error("merge accepted shards from different engines")
	}
}
