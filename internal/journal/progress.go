package journal

import "time"

// ProgressEvent is one campaign progress sample, emitted after every
// completed (or replayed) run. At the paper's full protocol scale —
// 22 400 E1 runs plus 5000 E2 runs — these events are what turn an
// opaque batch call into an observable campaign.
type ProgressEvent struct {
	// Experiment names the campaign ("E1" or "E2").
	Experiment string
	// Completed counts finished runs, including replayed ones.
	Completed int
	// Resumed counts the journal-replayed runs included in Completed.
	Resumed int
	// Total is the campaign's total run count.
	Total int
	// Elapsed is the wall time since the campaign dispatched.
	Elapsed time.Duration
	// RunsPerSec is the live (non-replayed) completion throughput.
	RunsPerSec float64
	// ETA estimates the remaining wall time; zero when unknown.
	ETA time.Duration
}

// WorkerMetrics is one pool worker's share of a campaign.
type WorkerMetrics struct {
	// Worker is the worker's pool index.
	Worker int `json:"worker"`
	// Runs is the number of runs the worker executed.
	Runs int `json:"runs"`
	// BusyMs is the cumulative time the worker spent inside runs.
	BusyMs int64 `json:"busy_ms"`
	// Utilization is BusyMs over the campaign wall time (0..1).
	Utilization float64 `json:"utilization"`
	// Stolen counts batches this worker claimed from another worker's
	// queue after draining its own (see the work-stealing scheduler in
	// internal/experiment).
	Stolen int `json:"stolen,omitempty"`
}

// Metrics summarizes a finished (or interrupted) campaign: the numbers
// `fic -metrics` dumps as its final JSON block.
type Metrics struct {
	// Experiment names the campaign ("E1" or "E2").
	Experiment string `json:"experiment"`
	// Runs counts live (executed, non-replayed) runs.
	Runs int `json:"live_runs"`
	// Resumed counts journal-replayed runs.
	Resumed int `json:"resumed_runs"`
	// WallMs is the campaign wall time in milliseconds.
	WallMs int64 `json:"wall_ms"`
	// RunsPerSec is the live completion throughput.
	RunsPerSec float64 `json:"runs_per_sec"`
	// Runner names the execution engine ("literal", "snapshot", "memo").
	Runner string `json:"runner,omitempty"`
	// Errors counts the distinct injected errors the runners served
	// (every error is Simulated, Pruned or a MemoHit).
	Errors int `json:"errors,omitempty"`
	// Simulated counts errors that required actual simulation.
	Simulated int `json:"simulated,omitempty"`
	// Pruned counts errors classified benign by the def/use liveness
	// pass with zero simulation (memo runner only).
	Pruned int `json:"pruned,omitempty"`
	// MemoHits counts errors served from the outcome memo with zero
	// simulation (memo runner only).
	MemoHits int `json:"memo_hits,omitempty"`
	// PruneRate is Pruned/Errors (0 when no errors were served).
	PruneRate float64 `json:"prune_rate,omitempty"`
	// MemoHitRate is MemoHits/Errors.
	MemoHitRate float64 `json:"memo_hit_rate,omitempty"`
	// Workers holds per-worker utilization.
	Workers []WorkerMetrics `json:"workers"`
}
