package journal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestWriterConcurrentSenders is the -race stress on the batched
// writer: many goroutines appending records concurrently — including a
// concurrent Close racing the tail of the senders — must produce a
// journal whose complete records are exactly the sent ones.
func TestWriterConcurrentSenders(t *testing.T) {
	const senders, perSender = 8, 400
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				rec := Record{
					Experiment: "E1",
					Version:    s,
					ErrIdx:     i,
					Seed:       int64(s*perSender + i),
					ByTest:     map[int]int{1: i},
				}
				if err := w.Run(rec); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Truncated {
		t.Error("clean concurrent journal flagged truncated")
	}
	if len(log.Runs) != senders*perSender {
		t.Fatalf("got %d runs, want %d", len(log.Runs), senders*perSender)
	}
	seen := make(map[Key]Record, len(log.Runs))
	for _, r := range log.Runs {
		if _, dup := seen[r.Key()]; dup {
			t.Fatalf("record %+v appears twice", r.Key())
		}
		seen[r.Key()] = r
		if want := int64(r.Version*perSender + r.ErrIdx); r.Seed != want {
			t.Fatalf("record %+v carries seed %d, want %d (batching interleaved lines)", r.Key(), r.Seed, want)
		}
	}
}

// TestWriterSendAfterCloseRace checks that senders racing Close get a
// clean "write after close" error instead of a panic on a closed
// channel.
func TestWriterSendAfterCloseRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Errors are expected once Close wins the race; the test is
				// that this never panics and the writer never corrupts.
				_ = w.Run(Record{Experiment: "E1", ErrIdx: i})
			}
		}()
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := Load(path); err != nil {
		t.Fatalf("journal unreadable after racing close: %v", err)
	}
}

// TestLoadToleratesBatchCutMidWrite simulates a kill that lands inside
// a coalesced batch write: the file ends mid-record, but every
// complete line of the batch's prefix must survive. This is the
// truncation contract the batched writer keeps — batches are whole
// lines concatenated, so a cut can only split the final line.
func TestLoadToleratesBatchCutMidWrite(t *testing.T) {
	const runs = 50
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Header(Header{Experiment: "E1", Seed: 1, Total: runs}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < runs; i++ {
		if err := w.Run(Record{Experiment: "E1", ErrIdx: i, Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Cut the file mid-way through its final record, as a kill inside
	// the batch's write syscall would.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(full) - 12
	if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	log, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !log.Truncated {
		t.Error("batch cut not flagged truncated")
	}
	if len(log.Runs) != runs-1 {
		t.Fatalf("got %d runs after the cut, want %d complete ones", len(log.Runs), runs-1)
	}
	for i, r := range log.Runs {
		if r.ErrIdx != i {
			t.Fatalf("run %d has ErrIdx %d; the complete prefix must survive in order", i, r.ErrIdx)
		}
	}
}
