package journal

import (
	"bytes"
	"fmt"
	"testing"
)

// recordingWriter captures every Write call separately, so tests can
// check the batcher's write alignment, not just the concatenated bytes.
type recordingWriter struct {
	writes [][]byte
}

func (r *recordingWriter) Write(p []byte) (int, error) {
	r.writes = append(r.writes, append([]byte(nil), p...))
	return len(p), nil
}

// TestLineBatcherLineAlignedWrites is the shared flush contract of the
// campaign journal Writer and the stream service's violation sinks:
// every write the batcher issues ends on a line boundary, and the
// concatenation of all writes reproduces the input exactly.
func TestLineBatcherLineAlignedWrites(t *testing.T) {
	rw := &recordingWriter{}
	b := NewLineBatcher(rw)
	var want bytes.Buffer
	// Mixed line lengths, enough volume to force several auto-flushes
	// past LineBatchBytes.
	for i := 0; i < 4000; i++ {
		line := []byte(fmt.Sprintf("line %d %s\n", i, bytes.Repeat([]byte("x"), i%97)))
		want.Write(line)
		b.Add(line)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(rw.writes) < 2 {
		t.Fatalf("got %d writes; the volume should have forced multiple batches", len(rw.writes))
	}
	var got bytes.Buffer
	for i, w := range rw.writes {
		if len(w) == 0 || w[len(w)-1] != '\n' {
			t.Fatalf("write %d does not end on a line boundary: %q...", i, w[max(0, len(w)-20):])
		}
		if len(w) > LineBatchBytes+97+16 {
			t.Fatalf("write %d is %d bytes, far past the %d cap", i, len(w), LineBatchBytes)
		}
		got.Write(w)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("concatenated writes do not reproduce the input")
	}
}

// TestLineBatcherCutMidWriteTolerance proves the property both callers
// rely on: because no write splits a line except the one a kill lands
// in, cutting the output at ANY byte offset leaves a prefix whose
// complete lines are all intact input lines, in order — only the final
// partial line is lost. The journal Load path and the stream service's
// detection reader both lean on exactly this.
func TestLineBatcherCutMidWriteTolerance(t *testing.T) {
	var out bytes.Buffer
	b := NewLineBatcher(&out)
	var lines [][]byte
	for i := 0; i < 512; i++ {
		line := []byte(fmt.Sprintf("record %d payload %s\n", i, bytes.Repeat([]byte("y"), i%211)))
		lines = append(lines, line)
		b.Add(line)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	full := out.Bytes()

	// Cut at a spread of offsets, including mid-line and exactly on
	// line boundaries, and replay the complete-line prefix.
	for cut := 0; cut <= len(full); cut += 997 {
		prefix := full[:cut]
		end := bytes.LastIndexByte(prefix, '\n') + 1
		complete := bytes.Split(prefix[:end], []byte("\n"))
		complete = complete[:len(complete)-1] // Split leaves a trailing empty element
		for i, got := range complete {
			want := bytes.TrimSuffix(lines[i], []byte("\n"))
			if !bytes.Equal(got, want) {
				t.Fatalf("cut at %d: line %d = %q, want %q", cut, i, got, want)
			}
		}
		// The cut loses at most the one split line.
		if rest := prefix[end:]; len(rest) > 0 && bytes.IndexByte(rest, '\n') != -1 {
			t.Fatalf("cut at %d: partial tail contains a full line", cut)
		}
	}
}
