package journal

import "io"

// LineBatchBytes caps one coalesced LineBatcher write. Batches always
// end on a line boundary — lines are buffered whole — so a kill
// mid-write truncates at most the final partial line of the final
// write, which every journal reader in this repository (Load here,
// the stream service's detection reader) already tolerates.
const LineBatchBytes = 64 * 1024

// LineBatcher coalesces whole lines into line-aligned writes of about
// LineBatchBytes each. It is the shared flush discipline of the
// campaign journal's Writer drainer and the stream service's per-shard
// violation sinks: callers append lines one at a time, the batcher
// turns thousands of per-line write syscalls into a handful of batched
// ones, and no write ever splits a line — so a crash can only cost the
// tail of the last write, never corrupt an interior line.
//
// The internal buffer is retained and reused across flushes, so a
// steady-state caller allocates nothing per line. LineBatcher is not
// safe for concurrent use; each caller owns one (the journal Writer's
// single drainer goroutine, one sink per stream shard).
type LineBatcher struct {
	w   io.Writer
	buf []byte
	err error
}

// NewLineBatcher builds a batcher writing to w.
func NewLineBatcher(w io.Writer) *LineBatcher {
	return &LineBatcher{w: w, buf: make([]byte, 0, LineBatchBytes)}
}

// Add buffers one complete line (the caller includes the trailing
// newline). When adding the line would push the pending batch past
// LineBatchBytes, the batch is flushed first, so writes stay
// line-aligned; a single line longer than the cap is written alone.
// The line's bytes are copied — the caller may reuse its slice.
func (b *LineBatcher) Add(line []byte) {
	if len(b.buf) > 0 && len(b.buf)+len(line) > LineBatchBytes {
		b.flush()
	}
	b.buf = append(b.buf, line...)
	if len(b.buf) >= LineBatchBytes {
		b.flush()
	}
}

// Flush writes any pending lines and returns the first write error.
func (b *LineBatcher) Flush() error {
	b.flush()
	return b.err
}

// Err returns the first write error, if any.
func (b *LineBatcher) Err() error { return b.err }

// Buffered returns the number of pending (unflushed) bytes.
func (b *LineBatcher) Buffered() int { return len(b.buf) }

func (b *LineBatcher) flush() {
	if len(b.buf) == 0 {
		return
	}
	if _, err := b.w.Write(b.buf); err != nil && b.err == nil {
		b.err = err
	}
	b.buf = b.buf[:0]
}
