// Package journal implements the campaign run journal: the per-run
// result database that makes the paper's 27 400-run protocol (§3.4)
// observable and resumable.
//
// A journal is an append-only JSONL file. The first line of each
// campaign is a header naming the experiment, the campaign seed and the
// grid; every completed run then appends one Record carrying the run
// coordinates (version, error index, test-case index), the derived
// per-run seed and the readouts the campaign aggregators consume
// (detected / failed / latency / per-assertion breakdown). Records are
// written by a single writer goroutine that batches queued lines into
// one write call per wakeup; batches end on line boundaries, so a
// killed campaign leaves at most one truncated trailing line — which
// Load tolerates.
//
// Resume soundness rests on the determinism contract documented in
// ARCHITECTURE.md: every per-run seed is a pure function of the
// campaign seed and the run coordinates, so a journaled outcome can be
// replayed into the aggregators instead of re-executing the run, and an
// interrupted-then-resumed campaign reproduces the uninterrupted
// campaign's Tables 7-9 byte for byte. Each Record stores its seed so a
// resume against a different campaign configuration is detected instead
// of silently polluting the tables.
//
// The same format carries the distributed campaign protocol
// (SERVICE.md): Claim lines record shard leases and completions in the
// ficd service's shard ledger, and Merge folds the shard journals of a
// campaign executed across worker processes back into one logical
// journal whose replay renders the single-process tables byte for
// byte.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Line kinds distinguishing the journal's JSONL record types.
const (
	// KindHeader marks a campaign header line.
	KindHeader = "header"
	// KindRun marks a completed-run record line.
	KindRun = "run"
	// KindClaim marks a shard-claim (or lease-renewal) line of the
	// distributed campaign protocol: a worker holds a lease on a block
	// of test cases (see SERVICE.md). Appending a new claim for the
	// same shard renews or reassigns the lease; the latest line wins.
	KindClaim = "claim"
	// KindShardDone marks a shard-completion line: the shard's journal
	// has been uploaded and validated, and its lease is retired.
	KindShardDone = "shard_done"
	// KindProbe marks one optimizer probe record: the per-node,
	// per-assertion first-violation profile of one (error, test case)
	// that `fic optimize` scores every configuration of the lattice
	// from (see internal/optimize and OPTIMIZER.md).
	KindProbe = "probe"
	// KindCost marks the optimizer's journaled CPU cost calibration.
	// Calibration is a wall-clock measurement and therefore NOT a
	// deterministic function of the campaign seed; journaling it and
	// replaying it on resume is what makes `fic optimize -resume`
	// reproduce the Pareto front byte-identically.
	KindCost = "cost"
)

// Header is the campaign identification line written when a campaign
// starts (and again when it is resumed). On resume it is checked
// against the live configuration before any record is replayed.
type Header struct {
	// Kind is KindHeader.
	Kind string `json:"kind"`
	// Experiment names the campaign ("E1" or "E2", the paper's §3.4
	// error sets).
	Experiment string `json:"experiment"`
	// Seed is the campaign seed every per-run seed derives from.
	Seed int64 `json:"seed"`
	// Grid is the test-case grid edge (5 = the paper's 25 cases).
	Grid int `json:"grid"`
	// Total is the campaign's total run count at this configuration.
	Total int `json:"total_runs"`
	// Runner names the execution engine that produced the records
	// ("literal", "snapshot" or "memo"). Empty in journals written
	// before the unified Runner API; on resume a non-empty value must
	// match the live campaign's resolved engine mode, so e.g. a
	// memo-mode journal cannot silently extend a literal-mode table.
	Runner string `json:"runner,omitempty"`
}

// Record is one completed run: its coordinates in the campaign grid,
// the derived seed, and the readouts the Table 7-9 aggregators consume.
type Record struct {
	// Kind is KindRun.
	Kind string `json:"kind"`
	// Experiment names the campaign the run belongs to.
	Experiment string `json:"experiment"`
	// Version is the software version coordinate (target.Version).
	Version int `json:"version"`
	// ErrIdx is the error's index in the campaign error set.
	ErrIdx int `json:"err_idx"`
	// ErrID is the error's campaign identifier (e.g. "S17", "R42").
	ErrID string `json:"err_id,omitempty"`
	// CaseIdx is the test case's index in the campaign grid.
	CaseIdx int `json:"case_idx"`
	// Seed is the derived per-run seed; on resume it must equal the
	// seed re-derived from the live configuration.
	Seed int64 `json:"seed"`
	// Detected reports at least one assertion detection in the run.
	Detected bool `json:"detected,omitempty"`
	// Failed reports a violated arrestment constraint (§3.2).
	Failed bool `json:"failed,omitempty"`
	// LatencyMs is the detection latency when Detected.
	LatencyMs int64 `json:"latency_ms,omitempty"`
	// ByTest counts violations per assertion kind (core.TestID keys,
	// the Table 2/3 constraint that fired).
	ByTest map[int]int `json:"by_test,omitempty"`
}

// Claim is one line of the shard-claim/lease protocol that distributes
// a campaign across worker processes (the `ficd` service, SERVICE.md).
// The shard ledger is an append-only event log in the same JSONL
// journal format as run records, so the existing writer (single
// drainer goroutine, line-aligned batches) and loader (truncation
// tolerance) carry the distributed protocol unchanged. The ledger is
// replayed in file order to recover the shard state machine after a
// service restart: for each shard the latest claim line names the
// lease holder and expiry, and a shard_done line retires the shard.
type Claim struct {
	// Kind is KindClaim or KindShardDone.
	Kind string `json:"kind"`
	// Experiment names the campaign the shard belongs to.
	Experiment string `json:"experiment,omitempty"`
	// Campaign is the service-assigned campaign identifier.
	Campaign string `json:"campaign,omitempty"`
	// Shard is the shard index in the campaign's shard plan.
	Shard int `json:"shard"`
	// Cases lists the grid case indices the shard covers.
	Cases []int `json:"cases,omitempty"`
	// Worker identifies the lease holder.
	Worker string `json:"worker,omitempty"`
	// GrantedMs is the grant (or renewal) wall-clock time in Unix
	// milliseconds.
	GrantedMs int64 `json:"granted_ms,omitempty"`
	// LeaseMs is the lease duration from GrantedMs; a shard whose
	// latest claim has expired is reclaimable by any worker.
	LeaseMs int64 `json:"lease_ms,omitempty"`
	// Runs is the shard's validated run count (shard_done lines only).
	Runs int `json:"runs,omitempty"`
}

// Probe is one optimizer probe record: for one (error, test case) the
// first-violation time of every executable assertion on each node,
// under the all-assertions dual-sink probe run (internal/inject.Probe).
// Unlike a Record — which stores one version build's scalar outcome —
// a Probe stores the full 2×7 first-detection matrix, from which
// internal/optimize derives the outcome of all 2^7 assertion subsets ×
// 3 placements exactly (see OPTIMIZER.md's subset-derivation argument).
type Probe struct {
	// Kind is KindProbe.
	Kind string `json:"kind"`
	// Experiment names the sweep ("OPT-e1", "OPT-e2", "OPT-exhaustive").
	Experiment string `json:"experiment"`
	// ErrIdx is the error's index in the sweep error set.
	ErrIdx int `json:"err_idx"`
	// ErrID is the error's campaign identifier (e.g. "S17", "R0x0123.4").
	ErrID string `json:"err_id,omitempty"`
	// CaseIdx is the test case's index in the sweep grid.
	CaseIdx int `json:"case_idx"`
	// Seed is the derived per-run seed; on resume it must equal the seed
	// re-derived from the live configuration.
	Seed int64 `json:"seed"`
	// Failed reports a violated arrestment constraint during the probe.
	Failed bool `json:"failed,omitempty"`
	// FailTickMs is the tick at which the failure latched (valid when
	// Failed), on the same clock as the first-violation times.
	FailTickMs int64 `json:"fail_tick_ms,omitempty"`
	// Master and Slave hold each assertion's first-violation time on
	// that node, -1 when the assertion never fired (index k = EA k+1).
	Master []int64 `json:"master_first_ms"`
	Slave  []int64 `json:"slave_first_ms"`
}

// ProbeKey locates one probe inside a sweep: probes carry no version
// coordinate (one probe serves every configuration).
type ProbeKey struct {
	ErrIdx, CaseIdx int
}

// Key returns the probe's sweep coordinates.
func (p Probe) Key() ProbeKey { return ProbeKey{ErrIdx: p.ErrIdx, CaseIdx: p.CaseIdx} }

// Cost is the optimizer's journaled CPU cost calibration: the per-tick
// baseline and the marginal per-assertion, per-node overheads the cost
// model sums (OPTIMIZER.md "The cost model"). It is measured wall-clock
// once per sweep and replayed verbatim on resume.
type Cost struct {
	// Kind is KindCost.
	Kind string `json:"kind"`
	// Experiment names the sweep the calibration belongs to.
	Experiment string `json:"experiment"`
	// BaselineNs is the per-tick cost of the assertion-free build
	// (master None, slave None), in nanoseconds.
	BaselineNs float64 `json:"baseline_ns_per_tick"`
	// MasterNs[k] / SlaveNs[k] are the marginal per-tick costs of
	// enabling EA k+1 alone on that node, in nanoseconds.
	MasterNs []float64 `json:"master_ea_ns_per_tick"`
	SlaveNs  []float64 `json:"slave_ea_ns_per_tick"`
	// AllNs is the measured per-tick cost of the All/All build, kept to
	// validate the cost model's additivity assumption.
	AllNs float64 `json:"all_ns_per_tick"`
	// Ticks and Reps record the calibration's measurement parameters.
	Ticks int `json:"ticks,omitempty"`
	Reps  int `json:"reps,omitempty"`
}

// Key locates one run inside a campaign: the coordinates that, together
// with the campaign seed, determine the run completely.
type Key struct {
	// Version, ErrIdx and CaseIdx are the Record coordinates.
	Version, ErrIdx, CaseIdx int
}

// Key returns the record's campaign coordinates.
func (r Record) Key() Key {
	return Key{Version: r.Version, ErrIdx: r.ErrIdx, CaseIdx: r.CaseIdx}
}

// Log is a loaded journal: the campaign headers and every complete run
// record, in file order.
type Log struct {
	// Headers lists the campaign header lines (one per campaign start
	// or resume).
	Headers []Header
	// Runs lists the completed-run records.
	Runs []Record
	// Claims lists the shard-claim and shard-done lines of a service
	// shard ledger, in file order (replay order for lease recovery).
	Claims []Claim
	// Probes lists the optimizer probe records of a lattice sweep.
	Probes []Probe
	// Costs lists the optimizer cost calibrations (one per sweep start).
	Costs []Cost
	// Truncated reports that the final line was incomplete — the
	// signature of a killed campaign — and was dropped.
	Truncated bool
}

// Load reads a journal file. A malformed final line (interrupted mid
// write) is dropped and flagged via Truncated; a malformed interior
// line is an error, since it means the file is not a journal.
func Load(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	log, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	return log, nil
}

// Read parses a journal from a stream — the path a shard journal takes
// when a worker uploads it over HTTP (SERVICE.md) instead of leaving it
// on local disk. Semantics match Load: a malformed final line is
// dropped and flagged Truncated, a malformed interior line is an error.
func Read(r io.Reader) (*Log, error) {
	var lines [][]byte
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		line := make([]byte, len(sc.Bytes()))
		copy(line, sc.Bytes())
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading: %w", err)
	}

	log := &Log{}
	for i, line := range lines {
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			if i == len(lines)-1 {
				log.Truncated = true
				break
			}
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		switch probe.Kind {
		case KindHeader:
			var h Header
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			log.Headers = append(log.Headers, h)
		case KindRun:
			var r Record
			if err := json.Unmarshal(line, &r); err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			log.Runs = append(log.Runs, r)
		case KindClaim, KindShardDone:
			var c Claim
			if err := json.Unmarshal(line, &c); err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			log.Claims = append(log.Claims, c)
		case KindProbe:
			var p Probe
			if err := json.Unmarshal(line, &p); err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			log.Probes = append(log.Probes, p)
		case KindCost:
			var c Cost
			if err := json.Unmarshal(line, &c); err != nil {
				return nil, fmt.Errorf("line %d: %w", i+1, err)
			}
			log.Costs = append(log.Costs, c)
		default:
			// Unknown kinds are skipped so old readers survive future
			// record types.
		}
	}
	return log, nil
}

// Header returns the first header of the named experiment.
func (l *Log) Header(experiment string) (Header, bool) {
	for _, h := range l.Headers {
		if h.Experiment == experiment {
			return h, true
		}
	}
	return Header{}, false
}

// LookupProbes indexes the named experiment's probe records by their
// coordinates; when a probe appears twice (a journal resumed more than
// once) the last occurrence wins — re-executions are byte-identical by
// the determinism contract, matching Lookup's run semantics.
func (l *Log) LookupProbes(experiment string) map[ProbeKey]Probe {
	out := make(map[ProbeKey]Probe)
	for _, p := range l.Probes {
		if p.Experiment == experiment {
			out[p.Key()] = p
		}
	}
	return out
}

// Cost returns the named experiment's first cost calibration. First,
// not last: the first sweep measured it, every resume replays it, and
// the front's byte-identity depends on scoring against the original
// measurement.
func (l *Log) Cost(experiment string) (Cost, bool) {
	for _, c := range l.Costs {
		if c.Experiment == experiment {
			return c, true
		}
	}
	return Cost{}, false
}

// Lookup indexes the named experiment's runs by their coordinates; when
// a run appears twice (a journal resumed more than once) the last
// occurrence wins.
func (l *Log) Lookup(experiment string) map[Key]Record {
	out := make(map[Key]Record)
	for _, r := range l.Runs {
		if r.Experiment == experiment {
			out[r.Key()] = r
		}
	}
	return out
}

// Merge combines shard journals into one logical campaign journal — the
// reduce step of a distributed campaign (SERVICE.md): each worker
// process journals its shard's runs locally, and the service merges the
// uploaded shard journals before replaying them into the Table 7-9
// aggregators.
//
// Every experiment's headers must agree on seed, grid and runner mode
// (they were recorded by workers executing the same Spec); the merged
// header sums the shard totals. Duplicate run records — a shard
// re-executed after a lease expired under a worker that had in fact
// completed it — are tolerated: the determinism contract
// (seed = f(campaign seed, case)) makes every re-execution of a run
// byte-identical, so the merge keeps the last occurrence, matching
// Lookup's resume semantics. Merge order therefore cannot change a
// table cell; out-of-order shard completion is the normal case.
func Merge(logs ...*Log) (*Log, error) {
	merged := &Log{}
	byExp := make(map[string]*Header)
	var expOrder []string
	for i, l := range logs {
		if l == nil {
			return nil, fmt.Errorf("journal: merge: shard %d is nil", i)
		}
		for _, h := range l.Headers {
			have := byExp[h.Experiment]
			if have == nil {
				h := h
				byExp[h.Experiment] = &h
				expOrder = append(expOrder, h.Experiment)
				continue
			}
			if have.Seed != h.Seed || have.Grid != h.Grid {
				return nil, fmt.Errorf("journal: merge: %s shard headers disagree: seed %d grid %d vs seed %d grid %d — shards are from different campaigns",
					h.Experiment, have.Seed, have.Grid, h.Seed, h.Grid)
			}
			if have.Runner != h.Runner {
				return nil, fmt.Errorf("journal: merge: %s shards were recorded by different engines (%q vs %q) — tables must have a single provenance",
					h.Experiment, have.Runner, h.Runner)
			}
			have.Total += h.Total
		}
		merged.Runs = append(merged.Runs, l.Runs...)
		merged.Claims = append(merged.Claims, l.Claims...)
		if l.Truncated {
			merged.Truncated = true
		}
	}
	for _, exp := range expOrder {
		merged.Headers = append(merged.Headers, *byExp[exp])
	}
	return merged, nil
}

// MergeFiles loads and merges shard journal files.
func MergeFiles(paths ...string) (*Log, error) {
	logs := make([]*Log, len(paths))
	for i, p := range paths {
		l, err := Load(p)
		if err != nil {
			return nil, err
		}
		logs[i] = l
	}
	return Merge(logs...)
}
