package physics

import (
	"fmt"
)

// FailureKind classifies a constraint violation per the paper's §3.3.
type FailureKind int

const (
	// FailureNone means the arrestment honoured all constraints.
	FailureNone FailureKind = iota
	// FailureRetardation is constraint 1: retardation r >= 2.8 g.
	FailureRetardation
	// FailureForce is constraint 2: cable force >= Fmax(mass, velocity).
	FailureForce
	// FailureDistance is constraint 3: stopping distance >= 335 m.
	FailureDistance
)

// String names the failure kind.
func (k FailureKind) String() string {
	switch k {
	case FailureNone:
		return "none"
	case FailureRetardation:
		return "retardation"
	case FailureForce:
		return "force"
	case FailureDistance:
		return "distance"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// Failure records the first violated constraint of a run. The paper
// classifies a run as failed if one or more constraints were violated
// at any time during the arrestment.
type Failure struct {
	Kind   FailureKind
	TimeMs int64
	Detail string
}

// DrumMaster and DrumSlave index the two tape drums.
const (
	DrumMaster = 0
	DrumSlave  = 1
)

// Env is the environment simulator: aircraft, cable and drums, valve
// hydraulics, sensors. It advances in 1 ms steps driven by the
// experiment kernel, reads valve commands set by the computer nodes and
// produces sensor readings for them, and classifies failures.
//
// Env is not safe for concurrent use; each experiment run owns one.
type Env struct {
	cst   Constants
	tc    TestCase
	fmaxN float64
	rng   noiseRNG

	nowMs   int64
	x       float64 // pulled-out cable / aircraft travel (m)
	v       float64 // aircraft velocity (m/s)
	accel   float64 // current deceleration magnitude (m/s²)
	force   float64 // current total retarding force (N)
	p       [2]float64
	cmd     [2]float64
	cmdAt   [2]int64 // last CommandValve time per drum
	stopped bool
	stopMs  int64

	failure  Failure
	failed   bool
	maxForce float64
	maxAccel float64
}

// NewEnv builds an environment for one test case. The seed controls
// sensor noise only; two environments with equal seeds and inputs
// evolve identically.
func NewEnv(cst Constants, table ForceTable, tc TestCase, seed int64) (*Env, error) {
	if err := table.Validate(); err != nil {
		return nil, err
	}
	if tc.MassKg <= 0 || tc.VelocityMS <= 0 {
		return nil, fmt.Errorf("physics: invalid test case %+v", tc)
	}
	return &Env{
		cst:   cst,
		tc:    tc,
		fmaxN: table.Fmax(tc.MassKg, tc.VelocityMS),
		rng:   newNoiseRNG(seed),
		v:     tc.VelocityMS,
	}, nil
}

// TestCase returns the run's test case.
func (e *Env) TestCase() TestCase { return e.tc }

// FmaxN returns the allowed force for this test case in newtons.
func (e *Env) FmaxN() float64 { return e.fmaxN }

// StepMs advances the plant by one millisecond: valve lag, cable force,
// aircraft kinematics, and the failure monitor.
func (e *Env) StepMs() {
	const dt = 0.001
	e.nowMs++
	for i := range e.p {
		// Dead-man watchdog: a valve whose controller stopped
		// refreshing the command releases the pressure (fail-safe).
		if e.cst.ValveWatchdogMs > 0 && e.nowMs-e.cmdAt[i] > e.cst.ValveWatchdogMs {
			e.cmd[i] = 0
		}
		e.p[i] += (e.cmd[i] - e.p[i]) * dt / e.cst.ValveTau
		if e.p[i] < 0 {
			e.p[i] = 0
		}
		if e.p[i] > e.cst.MaxPressureKPa {
			e.p[i] = e.cst.MaxPressureKPa
		}
	}
	if e.stopped {
		e.accel, e.force = 0, 0
		return
	}
	e.force = e.cst.ForcePerKPa * (e.p[0] + e.p[1])
	e.accel = e.force / e.tc.MassKg
	if e.force > e.maxForce {
		e.maxForce = e.force
	}
	if e.accel > e.maxAccel {
		e.maxAccel = e.accel
	}
	// Failure constraints (paper §3.3), checked while the aircraft is
	// still being arrested; the first violation is latched.
	if !e.failed {
		switch {
		case e.accel >= e.cst.MaxRetardationG*e.cst.Gravity:
			e.fail(FailureRetardation, fmt.Sprintf("r=%.2fg", e.accel/e.cst.Gravity))
		case e.force >= e.fmaxN:
			e.fail(FailureForce, fmt.Sprintf("F=%.0fN Fmax=%.0fN", e.force, e.fmaxN))
		}
	}
	e.v -= e.accel * dt
	if e.v <= 0 {
		e.v = 0
		e.stopped = true
		e.stopMs = e.nowMs
		return
	}
	e.x += e.v * dt
	if !e.failed && e.x >= e.cst.RunwayLimitM {
		e.fail(FailureDistance, fmt.Sprintf("d=%.1fm", e.x))
	}
}

func (e *Env) fail(kind FailureKind, detail string) {
	e.failed = true
	e.failure = Failure{Kind: kind, TimeMs: e.nowMs, Detail: detail}
}

// PressureUnitKPa is the engineering unit of the pressure ADC and DAC:
// one count equals 10 kPa. The computer nodes see and command pressure
// in these counts, so the software's pressure signals span roughly
// 0..1700 of the 16-bit word — a realistic fixed-point layout that the
// executable assertions' value-domain tests exploit.
const PressureUnitKPa = 10

// RotationPulses returns the cumulative tooth-wheel pulse count of the
// master drum, modulo 2^16 like the real counter register.
func (e *Env) RotationPulses() uint16 {
	return uint16(int64(e.x * e.cst.PulsesPerMeter))
}

// ReadPressure returns the pressure sensor reading of one drum in ADC
// counts of PressureUnitKPa, including bounded uniform sensor noise,
// clamped to the converter's 16-bit range.
func (e *Env) ReadPressure(drum int) uint16 {
	v := (e.p[drum] + (e.rng.float64()*2-1)*e.cst.SensorNoiseKPa) / PressureUnitKPa
	if v < 0 {
		v = 0
	}
	if v > 65535 {
		v = 65535
	}
	return uint16(v)
}

// CommandValve latches a node's commanded pressure for one drum, in
// DAC counts of PressureUnitKPa. The hydraulics saturate at the
// physical maximum regardless of command.
func (e *Env) CommandValve(drum int, counts uint16) {
	c := float64(counts) * PressureUnitKPa
	if c > e.cst.MaxPressureKPa {
		c = e.cst.MaxPressureKPa
	}
	e.cmd[drum] = c
	e.cmdAt[drum] = e.nowMs
}

// Failure returns the first constraint violation and whether one
// occurred.
func (e *Env) Failure() (Failure, bool) { return e.failure, e.failed }

// Stopped reports whether the aircraft has come to a complete halt, and
// at what time.
func (e *Env) Stopped() (int64, bool) { return e.stopMs, e.stopped }

// NowMs returns the simulated time in milliseconds.
func (e *Env) NowMs() int64 { return e.nowMs }

// Distance returns the aircraft travel so far in meters.
func (e *Env) Distance() float64 { return e.x }

// Velocity returns the current aircraft velocity in m/s.
func (e *Env) Velocity() float64 { return e.v }

// AppliedPressure returns one drum's applied hydraulic pressure in kPa.
func (e *Env) AppliedPressure(drum int) float64 { return e.p[drum] }

// PeakForce returns the maximum retarding force seen so far (N).
func (e *Env) PeakForce() float64 { return e.maxForce }

// PeakRetardation returns the maximum deceleration seen so far (m/s²).
func (e *Env) PeakRetardation() float64 { return e.maxAccel }
