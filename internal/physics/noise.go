package physics

// noiseRNG is the sensor-noise generator: a splitmix64 stream reduced
// to float64. It replaces math/rand so the generator state is a single
// copyable word — the property the snapshot/fast-forward engine needs
// to checkpoint a plant mid-run and restore it bit-exactly (the paper's
// FIC3 campaigns re-run the same arrestment prefix for every error of a
// test case; cloning the generator keeps the noise sequence identical
// across those clones).
type noiseRNG struct {
	state uint64
}

// newNoiseRNG seeds the stream. Distinct seeds give uncorrelated
// streams; equal seeds give identical streams.
func newNoiseRNG(seed int64) noiseRNG {
	return noiseRNG{state: uint64(seed)}
}

// next returns the next 64-bit word of the stream (splitmix64).
func (r *noiseRNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform sample in [0, 1) with 53 bits of precision.
func (r *noiseRNG) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
