package physics

import (
	"math"
	"testing"
)

func newTestEnv(t *testing.T, tc TestCase, seed int64) *Env {
	t.Helper()
	e, err := NewEnv(DefaultConstants(), DefaultForceTable(), tc, seed)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(DefaultConstants(), DefaultForceTable(), TestCase{}, 0); err == nil {
		t.Error("zero test case accepted")
	}
	bad := DefaultForceTable()
	bad.Masses = bad.Masses[:1]
	if _, err := NewEnv(DefaultConstants(), bad, TestCase{MassKg: 10000, VelocityMS: 50}, 0); err == nil {
		t.Error("invalid force table accepted")
	}
}

func TestFreeRollWithoutPressure(t *testing.T) {
	e := newTestEnv(t, TestCase{MassKg: 10000, VelocityMS: 50}, 1)
	for i := 0; i < 1000; i++ {
		e.StepMs()
	}
	// No commanded pressure: no force, no deceleration, one meter of
	// travel per 20 ms at 50 m/s.
	if v := e.Velocity(); v != 50 {
		t.Errorf("velocity = %g, want unchanged 50", v)
	}
	if d := e.Distance(); math.Abs(d-50) > 0.5 {
		t.Errorf("distance after 1 s = %g, want ~50", d)
	}
	if f, failed := e.Failure(); failed {
		t.Errorf("unexpected failure %v before reaching the runway limit", f)
	}
}

func TestValveFirstOrderLag(t *testing.T) {
	e := newTestEnv(t, TestCase{MassKg: 20000, VelocityMS: 40}, 1)
	e.CommandValve(DrumMaster, 1000) // 10 MPa in 10 kPa counts
	prev := 0.0
	for i := 0; i < 150; i++ { // one time constant (150 ms)
		e.StepMs()
		e.CommandValve(DrumMaster, 1000) // keep the watchdog fed
		p := e.AppliedPressure(DrumMaster)
		if p < prev {
			t.Fatalf("pressure not monotone during step response at %d ms", i)
		}
		prev = p
	}
	p := e.AppliedPressure(DrumMaster)
	// After one time constant the first-order response reaches ~63%.
	if p < 0.55*10000 || p > 0.70*10000 {
		t.Errorf("pressure after one tau = %.0f kPa, want ~6300", p)
	}
	if e.AppliedPressure(DrumSlave) != 0 {
		t.Error("slave drum pressurised without a command")
	}
}

func TestValveWatchdogReleases(t *testing.T) {
	e := newTestEnv(t, TestCase{MassKg: 20000, VelocityMS: 40}, 1)
	e.CommandValve(DrumMaster, 1000)
	for i := 0; i < 400; i++ {
		e.StepMs() // no refresh: the dead-man releases after 50 ms
	}
	if p := e.AppliedPressure(DrumMaster); p > 1000 {
		t.Errorf("pressure %.0f kPa still applied after watchdog window", p)
	}
}

func TestRotationPulses(t *testing.T) {
	e := newTestEnv(t, TestCase{MassKg: 10000, VelocityMS: 60}, 1)
	for i := 0; i < 2000; i++ {
		e.StepMs()
	}
	// 2 s at 60 m/s = 120 m = 1200 pulses at 10 pulses/m.
	got := int64(e.RotationPulses())
	if got < 1190 || got > 1210 {
		t.Errorf("pulses after 2 s = %d, want ~1200", got)
	}
}

func TestPressureSensorNoiseBounded(t *testing.T) {
	e := newTestEnv(t, TestCase{MassKg: 10000, VelocityMS: 60}, 7)
	e.CommandValve(DrumMaster, 800)
	for i := 0; i < 600; i++ {
		e.StepMs()
		e.CommandValve(DrumMaster, 800)
	}
	truth := e.AppliedPressure(DrumMaster) / PressureUnitKPa
	for i := 0; i < 50; i++ {
		r := float64(e.ReadPressure(DrumMaster))
		if math.Abs(r-truth) > DefaultConstants().SensorNoiseKPa/PressureUnitKPa+1 {
			t.Fatalf("reading %g deviates from truth %g beyond the noise bound", r, truth)
		}
	}
}

func TestSensorDeterminism(t *testing.T) {
	a := newTestEnv(t, TestCase{MassKg: 12000, VelocityMS: 55}, 99)
	b := newTestEnv(t, TestCase{MassKg: 12000, VelocityMS: 55}, 99)
	for i := 0; i < 300; i++ {
		a.CommandValve(0, 500)
		b.CommandValve(0, 500)
		a.StepMs()
		b.StepMs()
		if a.ReadPressure(0) != b.ReadPressure(0) {
			t.Fatal("equal seeds diverged")
		}
	}
}

func TestFailureDistance(t *testing.T) {
	e := newTestEnv(t, TestCase{MassKg: 20000, VelocityMS: 70}, 1)
	for i := 0; i < 10000; i++ {
		e.StepMs()
	}
	f, failed := e.Failure()
	if !failed || f.Kind != FailureDistance {
		t.Fatalf("failure = (%v, %v), want distance failure on free roll", f, failed)
	}
	if f.TimeMs <= 0 {
		t.Error("failure time not recorded")
	}
}

func TestFailureForce(t *testing.T) {
	// Full pressure on a light aircraft exceeds its structural limit.
	e := newTestEnv(t, TestCase{MassKg: 8000, VelocityMS: 70}, 1)
	for i := 0; i < 4000; i++ {
		e.CommandValve(DrumMaster, 1700)
		e.CommandValve(DrumSlave, 1700)
		e.StepMs()
		if _, failed := e.Failure(); failed {
			break
		}
	}
	f, failed := e.Failure()
	if !failed || f.Kind != FailureForce {
		t.Fatalf("failure = (%v, %v), want force failure", f, failed)
	}
}

func TestFailureRetardation(t *testing.T) {
	// The 2.8 g limit requires more force than the drums can produce
	// for heavy aircraft, but a custom plant with a stronger drum
	// exercises the constraint.
	cst := DefaultConstants()
	cst.ForcePerKPa = 20
	table := DefaultForceTable()
	for i := range table.FmaxN {
		for j := range table.FmaxN[i] {
			table.FmaxN[i][j] *= 10 // force limit out of the way
		}
	}
	e, err := NewEnv(cst, table, TestCase{MassKg: 8000, VelocityMS: 70}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		e.CommandValve(DrumMaster, 1700)
		e.CommandValve(DrumSlave, 1700)
		e.StepMs()
		if _, failed := e.Failure(); failed {
			break
		}
	}
	f, failed := e.Failure()
	if !failed || f.Kind != FailureRetardation {
		t.Fatalf("failure = (%v, %v), want retardation failure", f, failed)
	}
}

func TestFirstFailureLatched(t *testing.T) {
	e := newTestEnv(t, TestCase{MassKg: 20000, VelocityMS: 70}, 1)
	for i := 0; i < 40000; i++ {
		e.StepMs()
	}
	f, _ := e.Failure()
	first := f
	// Keep going; the latched failure must not change.
	for i := 0; i < 1000; i++ {
		e.StepMs()
	}
	f, _ = e.Failure()
	if f != first {
		t.Errorf("failure changed from %+v to %+v", first, f)
	}
}

func TestStopsUnderConstantPressure(t *testing.T) {
	e := newTestEnv(t, TestCase{MassKg: 12000, VelocityMS: 50}, 1)
	for i := 0; i < 30000; i++ {
		e.CommandValve(DrumMaster, 700)
		e.CommandValve(DrumSlave, 700)
		e.StepMs()
		if _, stopped := e.Stopped(); stopped {
			break
		}
	}
	stopMs, stopped := e.Stopped()
	if !stopped {
		t.Fatal("aircraft did not stop under 7 MPa per drum")
	}
	if stopMs <= 0 || e.Velocity() != 0 {
		t.Errorf("stop bookkeeping: t=%d v=%g", stopMs, e.Velocity())
	}
	// Energy audit: kinetic energy must be fully dissipated within the
	// travelled distance at the applied force level.
	if e.PeakForce() <= 0 || e.PeakRetardation() <= 0 {
		t.Error("peak readouts missing")
	}
	// After the stop, further steps do not move the aircraft.
	d := e.Distance()
	for i := 0; i < 100; i++ {
		e.StepMs()
	}
	if e.Distance() != d {
		t.Error("aircraft moved after stopping")
	}
}

func TestFmaxNReadout(t *testing.T) {
	tc := TestCase{MassKg: 14000, VelocityMS: 55}
	e := newTestEnv(t, tc, 1)
	want := DefaultForceTable().Fmax(tc.MassKg, tc.VelocityMS)
	if e.FmaxN() != want {
		t.Errorf("FmaxN = %g, want %g", e.FmaxN(), want)
	}
	if e.TestCase() != tc {
		t.Errorf("TestCase = %+v", e.TestCase())
	}
}

func TestGrid(t *testing.T) {
	if got := len(Grid25()); got != 25 {
		t.Fatalf("Grid25 has %d cases", got)
	}
	g := Grid(3)
	if len(g) != 9 {
		t.Fatalf("Grid(3) has %d cases", len(g))
	}
	for _, tc := range g {
		if tc.MassKg < 8000 || tc.MassKg > 20000 || tc.VelocityMS < 40 || tc.VelocityMS > 70 {
			t.Errorf("case %+v outside the paper ranges", tc)
		}
	}
	// Corners are included.
	if g[0].MassKg != 8000 || g[0].VelocityMS != 40 || g[8].MassKg != 20000 || g[8].VelocityMS != 70 {
		t.Errorf("grid corners wrong: %+v ... %+v", g[0], g[8])
	}
	if Grid(0) != nil {
		t.Error("Grid(0) should be nil")
	}
	if one := Grid(1); len(one) != 1 || one[0].MassKg != 14000 {
		t.Errorf("Grid(1) = %+v, want the grid centre", one)
	}
}

func TestFailureKindString(t *testing.T) {
	for k, want := range map[FailureKind]string{
		FailureNone:        "none",
		FailureRetardation: "retardation",
		FailureForce:       "force",
		FailureDistance:    "distance",
		FailureKind(9):     "FailureKind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

// Energy balance: the work done by the retarding force equals the
// kinetic energy dissipated, within integration error.
func TestEnergyBalance(t *testing.T) {
	tc := TestCase{MassKg: 15000, VelocityMS: 60}
	e := newTestEnv(t, tc, 4)
	work := 0.0
	for i := 0; i < 30000; i++ {
		e.CommandValve(DrumMaster, 800)
		e.CommandValve(DrumSlave, 800)
		// Accumulate F * dx with the force acting over this step.
		before := e.Distance()
		e.StepMs()
		work += e.cst.ForcePerKPa * (e.AppliedPressure(DrumMaster) + e.AppliedPressure(DrumSlave)) * (e.Distance() - before)
		if _, stopped := e.Stopped(); stopped {
			break
		}
	}
	if _, stopped := e.Stopped(); !stopped {
		t.Fatal("did not stop")
	}
	ke := 0.5 * tc.MassKg * tc.VelocityMS * tc.VelocityMS
	if work < ke*0.98 || work > ke*1.02 {
		t.Errorf("work %.0f J vs kinetic energy %.0f J (%.2f%%)", work, ke, work/ke*100)
	}
}
