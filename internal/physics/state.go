package physics

import "fmt"

// State is a value-type checkpoint of a plant's complete mutable state:
// kinematics, valve pressures and commands, the failure/stop latches,
// the force/retardation peaks, and the sensor-noise generator state.
// Together with the node memory images captured by internal/target it
// forms the per-(test case, injection time) snapshot the fast-forward
// engine clones for every error of the paper's §3.4 campaigns.
//
// State is a plain struct with no references into the Env, so copying
// the value is a deep copy.
type State struct {
	nowMs   int64
	x       float64
	v       float64
	accel   float64
	force   float64
	p       [2]float64
	cmd     [2]float64
	cmdAt   [2]int64
	stopped bool
	stopMs  int64

	failure  Failure
	failed   bool
	maxForce float64
	maxAccel float64

	rng noiseRNG

	// Captured static identity, used to reject cross-plant restores.
	tc TestCase
}

// State captures the plant's mutable state. The returned value is
// self-contained; a later RestoreState rewinds the plant to this exact
// point, including the noise sequence.
func (e *Env) State() State {
	return State{
		nowMs:    e.nowMs,
		x:        e.x,
		v:        e.v,
		accel:    e.accel,
		force:    e.force,
		p:        e.p,
		cmd:      e.cmd,
		cmdAt:    e.cmdAt,
		stopped:  e.stopped,
		stopMs:   e.stopMs,
		failure:  e.failure,
		failed:   e.failed,
		maxForce: e.maxForce,
		maxAccel: e.maxAccel,
		rng:      e.rng,
		tc:       e.tc,
	}
}

// RestoreState rewinds the plant to a previously captured State. The
// state must come from an Env built for the same test case: constants
// and the force limit are construction-time properties, so a snapshot
// from a differently built plant would silently mix physics.
func (e *Env) RestoreState(s State) error {
	if s.tc != e.tc {
		return fmt.Errorf("physics: state captured for test case %+v, plant runs %+v", s.tc, e.tc)
	}
	e.nowMs = s.nowMs
	e.x = s.x
	e.v = s.v
	e.accel = s.accel
	e.force = s.force
	e.p = s.p
	e.cmd = s.cmd
	e.cmdAt = s.cmdAt
	e.stopped = s.stopped
	e.stopMs = s.stopMs
	e.failure = s.failure
	e.failed = s.failed
	e.maxForce = s.maxForce
	e.maxAccel = s.maxAccel
	e.rng = s.rng
	return nil
}
