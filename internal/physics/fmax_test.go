package physics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultForceTableValid(t *testing.T) {
	if err := DefaultForceTable().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestForceTableValidate(t *testing.T) {
	good := DefaultForceTable()
	tests := []struct {
		name    string
		mutate  func(*ForceTable)
		wantErr error
	}{
		{"too few masses", func(f *ForceTable) { f.Masses = f.Masses[:1] }, ErrTableShape},
		{"row count mismatch", func(f *ForceTable) { f.FmaxN = f.FmaxN[:2] }, ErrTableShape},
		{"column count mismatch", func(f *ForceTable) { f.FmaxN[1] = f.FmaxN[1][:2] }, ErrTableShape},
		{"unsorted masses", func(f *ForceTable) { f.Masses[0], f.Masses[1] = f.Masses[1], f.Masses[0] }, ErrTableOrder},
		{"duplicate velocity", func(f *ForceTable) { f.Velocities[1] = f.Velocities[0] }, ErrTableOrder},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := good
			f.Masses = append([]float64(nil), good.Masses...)
			f.Velocities = append([]float64(nil), good.Velocities...)
			f.FmaxN = make([][]float64, len(good.FmaxN))
			for i := range good.FmaxN {
				f.FmaxN[i] = append([]float64(nil), good.FmaxN[i]...)
			}
			tt.mutate(&f)
			if err := f.Validate(); !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestFmaxExactAtGridPoints(t *testing.T) {
	f := DefaultForceTable()
	for i, m := range f.Masses {
		for j, v := range f.Velocities {
			got := f.Fmax(m, v)
			if math.Abs(got-f.FmaxN[i][j]) > 1e-6 {
				t.Errorf("Fmax(%g, %g) = %g, want grid value %g", m, v, got, f.FmaxN[i][j])
			}
		}
	}
}

func TestFmaxBilinearMidpoint(t *testing.T) {
	f := ForceTable{
		Masses:     []float64{0, 10},
		Velocities: []float64{0, 10},
		FmaxN:      [][]float64{{0, 10}, {20, 30}},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := f.Fmax(5, 5); math.Abs(got-15) > 1e-9 {
		t.Errorf("midpoint = %g, want 15", got)
	}
	if got := f.Fmax(5, 0); math.Abs(got-10) > 1e-9 {
		t.Errorf("mass midpoint = %g, want 10", got)
	}
}

func TestFmaxExtrapolation(t *testing.T) {
	f := ForceTable{
		Masses:     []float64{0, 10},
		Velocities: []float64{0, 10},
		FmaxN:      [][]float64{{0, 10}, {20, 30}},
	}
	// Linear extrapolation continues the edge slope.
	if got := f.Fmax(20, 0); math.Abs(got-40) > 1e-9 {
		t.Errorf("mass extrapolation = %g, want 40", got)
	}
	if got := f.Fmax(0, -10); math.Abs(got-(-10)) > 1e-9 {
		t.Errorf("velocity extrapolation = %g, want -10", got)
	}
}

// The default table decreases with velocity and increases with mass —
// structural limits must derate with speed.
func TestQuickFmaxMonotonicity(t *testing.T) {
	f := DefaultForceTable()
	prop := func(mRaw, vRaw uint16) bool {
		m := 8000 + float64(mRaw%12000)
		v := 40 + float64(vRaw%30)
		fm := f.Fmax(m, v)
		return f.Fmax(m+500, v) >= fm && f.Fmax(m, v+2) <= fm
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// The nominal controller command (about v²/(2·290 m) of deceleration)
// stays well under the default Fmax over the whole paper grid.
func TestDefaultTableNominalMargin(t *testing.T) {
	f := DefaultForceTable()
	for _, tc := range Grid25() {
		nominal := tc.MassKg * tc.VelocityMS * tc.VelocityMS / (2 * 290)
		fmax := f.Fmax(tc.MassKg, tc.VelocityMS)
		if fmax < nominal*1.4 {
			t.Errorf("case %+v: Fmax %.0f too close to nominal force %.0f", tc, fmax, nominal)
		}
	}
}
