// Package physics implements the environment simulator of the paper's
// case study (Figure 7): the aircraft-arresting barrier — cable, tape
// drums, hydraulic pressure valves — the incoming aircraft, and the
// sensors and actuators that connect the barrier to the computer nodes.
// It also implements the failure classification of §3.3 (retardation,
// retardation force against the Fmax(mass, velocity) table, stopping
// distance).
//
// The paper's own evaluation drove a real controller implementation
// with an environment simulator; this package is that simulator's
// equivalent. Constants are synthetic but chosen so that the full
// 25-test-case grid (mass 8000–20000 kg, engagement velocity
// 40–70 m/s) arrests failure-free under the nominal controller, while
// corrupted pressure commands can violate each of the three constraints.
package physics

// Constants describes the physical plant. The zero value is not
// useful; start from DefaultConstants.
type Constants struct {
	// PulsesPerMeter is the rotation-sensor resolution: tooth-wheel
	// pulses generated per meter of pulled-out cable.
	PulsesPerMeter float64
	// ValveTau is the first-order time constant (seconds) with which a
	// drum's applied pressure follows the commanded pressure.
	ValveTau float64
	// ForcePerKPa converts one drum's applied hydraulic pressure (kPa)
	// into retarding force on the cable (N). Two drums act in parallel.
	ForcePerKPa float64
	// MaxPressureKPa is the physical saturation of the hydraulic
	// system.
	MaxPressureKPa float64
	// RunwayLimitM is the available runway: stopping beyond it is a
	// failure (paper constraint 3: d < 335 m).
	RunwayLimitM float64
	// MaxRetardationG is the pilot-safety limit (paper constraint 1:
	// r < 2.8 g).
	MaxRetardationG float64
	// SensorNoiseKPa bounds the uniform pressure-sensor noise.
	SensorNoiseKPa float64
	// ValveWatchdogMs is the valve's dead-man interval: if a node does
	// not refresh its valve command within this time, the hydraulics
	// fail safe and release the commanded pressure to zero (a dead
	// controller must not keep the brake locked). Zero disables the
	// watchdog.
	ValveWatchdogMs int64
	// Gravity is the standard acceleration used to convert the g
	// limit.
	Gravity float64
}

// DefaultConstants returns the plant constants used throughout the
// reproduction. See the package comment for how they were chosen.
func DefaultConstants() Constants {
	return Constants{
		PulsesPerMeter:  10,
		ValveTau:        0.15,
		ForcePerKPa:     7.0,
		MaxPressureKPa:  17000,
		RunwayLimitM:    335,
		MaxRetardationG: 2.8,
		SensorNoiseKPa:  2,
		ValveWatchdogMs: 50,
		Gravity:         9.80665,
	}
}

// TestCase is one experiment input: the paper's <m, v> pair of aircraft
// mass and engagement velocity.
type TestCase struct {
	// MassKg is the aircraft mass in kilograms (8000–20000 in the
	// paper's grid).
	MassKg float64
	// VelocityMS is the engagement velocity in meters per second
	// (40–70 in the paper's grid).
	VelocityMS float64
}

// Grid returns cases×cases test cases spanning the paper's ranges
// uniformly: mass 8000–20000 kg and velocity 40–70 m/s. Grid(5) is the
// 25-test-case set of §3.4.
func Grid(n int) []TestCase {
	if n < 1 {
		return nil
	}
	out := make([]TestCase, 0, n*n)
	for im := 0; im < n; im++ {
		for iv := 0; iv < n; iv++ {
			f := func(i int) float64 {
				if n == 1 {
					return 0.5
				}
				return float64(i) / float64(n-1)
			}
			out = append(out, TestCase{
				MassKg:     8000 + 12000*f(im),
				VelocityMS: 40 + 30*f(iv),
			})
		}
	}
	return out
}

// Grid25 returns the paper's 25-test-case grid.
func Grid25() []TestCase { return Grid(5) }
