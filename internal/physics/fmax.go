package physics

import (
	"errors"
	"fmt"
	"sort"
)

// ForceTable is the maximum-allowed-force table of the paper's failure
// constraint 2: "The maximum allowed forces (Fmax) are defined for
// several aircraft masses and engaging velocities in [15]. Force
// constraints for combinations of masses and velocities other than
// those given in [15] are obtained using interpolation and
// extrapolation." MIL-A-38202C itself is not public, so the default
// table is synthetic: structural limits scale with mass and derate with
// engagement speed.
type ForceTable struct {
	// Masses are the grid masses in kg, strictly increasing.
	Masses []float64
	// Velocities are the grid velocities in m/s, strictly increasing.
	Velocities []float64
	// FmaxN holds the allowed force in newtons, indexed
	// [massIndex][velocityIndex].
	FmaxN [][]float64
}

// Errors returned by ForceTable.Validate; match with errors.Is.
var (
	// ErrTableShape reports a table whose value matrix does not match
	// the axes.
	ErrTableShape = errors.New("physics: force table shape mismatch")
	// ErrTableOrder reports non-increasing axis values.
	ErrTableOrder = errors.New("physics: force table axes must be strictly increasing")
)

// DefaultForceTable returns the synthetic Fmax grid used by the
// reproduction: Fmax = mass × a_struct(v), with the structural
// deceleration limit a_struct derating linearly from 21 m/s² at 40 m/s
// to 17.5 m/s² at 70 m/s. Under these limits the nominal controller
// (which commands about v²/(2·290 m) ≤ 8.5 m/s²) has a wide margin,
// while a stuck-open valve (full 17 MPa on both drums, 238 kN) exceeds
// Fmax for light aircraft.
func DefaultForceTable() ForceTable {
	masses := []float64{8000, 12000, 16000, 20000}
	velocities := []float64{40, 50, 60, 70}
	aStruct := func(v float64) float64 { return 21 - (v-40)*(21-17.5)/30 }
	f := make([][]float64, len(masses))
	for i, m := range masses {
		f[i] = make([]float64, len(velocities))
		for j, v := range velocities {
			f[i][j] = m * aStruct(v)
		}
	}
	return ForceTable{Masses: masses, Velocities: velocities, FmaxN: f}
}

// Validate checks the table's internal consistency.
func (t ForceTable) Validate() error {
	if len(t.Masses) < 2 || len(t.Velocities) < 2 {
		return fmt.Errorf("%w: need at least a 2x2 grid", ErrTableShape)
	}
	if len(t.FmaxN) != len(t.Masses) {
		return fmt.Errorf("%w: %d mass rows for %d masses", ErrTableShape, len(t.FmaxN), len(t.Masses))
	}
	for i, row := range t.FmaxN {
		if len(row) != len(t.Velocities) {
			return fmt.Errorf("%w: row %d has %d columns for %d velocities", ErrTableShape, i, len(row), len(t.Velocities))
		}
	}
	if !sort.Float64sAreSorted(t.Masses) || !sort.Float64sAreSorted(t.Velocities) {
		return ErrTableOrder
	}
	for i := 1; i < len(t.Masses); i++ {
		if t.Masses[i] == t.Masses[i-1] {
			return fmt.Errorf("%w: duplicate mass %g", ErrTableOrder, t.Masses[i])
		}
	}
	for i := 1; i < len(t.Velocities); i++ {
		if t.Velocities[i] == t.Velocities[i-1] {
			return fmt.Errorf("%w: duplicate velocity %g", ErrTableOrder, t.Velocities[i])
		}
	}
	return nil
}

// Fmax returns the allowed force for the given mass and engagement
// velocity using bilinear interpolation inside the grid and linear
// extrapolation outside it, as the paper prescribes.
func (t ForceTable) Fmax(massKg, velocityMS float64) float64 {
	mi, mf := bracket(t.Masses, massKg)
	vi, vf := bracket(t.Velocities, velocityMS)
	f00 := t.FmaxN[mi][vi]
	f01 := t.FmaxN[mi][vi+1]
	f10 := t.FmaxN[mi+1][vi]
	f11 := t.FmaxN[mi+1][vi+1]
	low := f00 + (f01-f00)*vf
	high := f10 + (f11-f10)*vf
	return low + (high-low)*mf
}

// bracket returns the lower index of the segment used for x and the
// (possibly <0 or >1) interpolation fraction, implementing linear
// extrapolation beyond the axis ends.
func bracket(axis []float64, x float64) (int, float64) {
	i := sort.SearchFloat64s(axis, x) - 1
	if i < 0 {
		i = 0
	}
	if i > len(axis)-2 {
		i = len(axis) - 2
	}
	return i, (x - axis[i]) / (axis[i+1] - axis[i])
}
