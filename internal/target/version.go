package target

import "fmt"

// Version selects which executable assertions are compiled into the
// target software: the paper's §3.4 evaluates each assertion alone
// (EA1..EA7), all seven together ("All"), and the uninstrumented
// software ("None") serves as the control.
type Version int

// The software versions.
const (
	// VersionAll enables all seven assertions (the paper's "All"
	// version, also used for the E2 campaign).
	VersionAll Version = 0
	// VersionEA1..VersionEA7 enable a single assertion; VersionEA1+k-1
	// equals Version(k).
	VersionEA1 Version = 1
	VersionEA2 Version = 2
	VersionEA3 Version = 3
	VersionEA4 Version = 4
	VersionEA5 Version = 5
	VersionEA6 Version = 6
	VersionEA7 Version = 7
	// VersionNone disables every assertion.
	VersionNone Version = -1
)

// Versions returns the paper's eight evaluated software versions in
// Table 7 column order: EA1..EA7, then All.
func Versions() []Version {
	return []Version{
		VersionEA1, VersionEA2, VersionEA3, VersionEA4,
		VersionEA5, VersionEA6, VersionEA7, VersionAll,
	}
}

// Valid reports whether v names a buildable software version.
func (v Version) Valid() bool { return v >= VersionNone && v <= VersionEA7 }

// enables reports whether assertion ea (1-based) is active in this
// version.
func (v Version) enables(ea int) bool {
	return v == VersionAll || int(v) == ea
}

// Enables reports whether executable assertion ea (1-based, EA1..EA7)
// is active in this version build. The fast-forward engine of
// internal/inject uses it to project an all-assertions profile run onto
// each version's enabled subset.
func (v Version) Enables(ea int) bool { return v.enables(ea) }

// String renders the version as in the paper's tables.
func (v Version) String() string {
	switch {
	case v == VersionAll:
		return "All"
	case v == VersionNone:
		return "None"
	case v >= VersionEA1 && v <= VersionEA7:
		return fmt.Sprintf("EA%d", int(v))
	default:
		return fmt.Sprintf("Version(%d)", int(v))
	}
}
