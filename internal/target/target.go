// Package target implements the experiment target of the paper's case
// study (Figures 4-6): the control software of an aircraft arresting
// system, instrumented with the executable assertions of Table 4.
//
// The system consists of two computer nodes — a master and a slave —
// each controlling one tape drum of the arresting barrier. The master
// measures the rotation sensor, computes the pressure set point with an
// integer checkpoint control law, and sends the set point to the slave
// over a serial link; both nodes regulate their drum's hydraulic valve
// pressure against the set point. The software of one node is six
// modules driven by a 1 ms interrupt through a seven-slot dispatcher:
//
//	CLOCK   every ms     millisecond counter and dispatcher slot number
//	DIST_S  every ms     rotation-sensor sampling (master only)
//	CALC    every ms     checkpoint sequencing, velocity estimation and
//	                     the set-point control law (master only)
//	PRES_S  slot 0       pressure-sensor sampling for the node's drum
//	V_REG   slot 2       valve regulation: set point -> valve command
//	PRES_A  slot 4       valve actuation (DAC write)
//	(link)  slot 6       set-point transmission (master) — the slave
//	                     instead latches the last received value each ms
//
// Every application variable lives in the node's simulated memory
// (package memory): a 417-byte RAM region holding the seven monitored
// signals, the assertions' previous-value words and the control state,
// and a 1008-byte stack region holding the dispatcher frames, the
// stack canaries and the CALC background-process locals. The fault
// injector (package inject) flips bits in this memory, so errors
// propagate through genuine data flow exactly as on the paper's
// physical target: RAM errors are data errors that the assertions can
// see, while most stack errors become control-flow errors (a corrupted
// canary or frame halts the node) that signal-level assertions cannot
// detect — the paper's key E2 finding.
package target

import "easig/internal/core"

// Memory map of one node. The monitored signals occupy the first seven
// words of the RAM region (inject.BuildE1 depends on this layout); the
// assertion state and control-law state follow. The stack region holds
// the canaries, the CALC locals and the dispatcher frame area.
const (
	// RegionRAM and RegionStack name the two memory regions in
	// injection reports.
	RegionRAM   = "ram"
	RegionStack = "stack"

	// RAMBase and RAMSize describe the application RAM region: 417
	// bytes, as in the paper's Table 5.
	RAMBase = 0x0100
	RAMSize = 417

	// StackBase and StackSize describe the stack region: 1008 bytes.
	StackBase = 0x0400
	StackSize = 1008
)

// Per-assertion memory cost of the Table 4 instrumentation, per node —
// the RAM/stack terms of the optimizer's cost model (OPTIMIZER.md).
const (
	// AssertionRAMBytes is the application-RAM footprint of one enabled
	// executable assertion: its previous-value word s' (see addrPrevBase
	// in the RAM layout — one 2-byte word per assertion per node).
	AssertionRAMBytes = 2
	// AssertionStackBytes is the stack footprint of one enabled
	// executable assertion. The Table 4 checks run inline in the monitor
	// tick with no per-assertion locals spilled to the stack region in
	// this reproduction, so the footprint is zero; the constant exists
	// so the cost model states that explicitly rather than omitting the
	// term.
	AssertionStackBytes = 0
)

// RAM layout (all words, big-endian).
const (
	addrSignals   = RAMBase                    // 7 monitored signal words
	addrPrevBase  = RAMBase + 2*NumEAs         // 7 assertion previous-value words
	addrMassDial  = addrPrevBase + 2*NumEAs    // operator mass-dial setting (kg)
	addrPulsRaw   = addrMassDial + 2           // last raw rotation-sensor sample
	addrSetTarget = addrPulsRaw + 2            // control-law set-point target
	addrSP        = addrSetTarget + 2          // dispatcher stack pointer
	addrCkpt      = addrSP + 2                 // 6 checkpoint distances (dm)
	ramUsedEnd    = addrCkpt + 2*numCheckpoint // first spare RAM byte
)

// Stack layout.
const (
	addrNodeCanary = StackBase     // dispatcher context canary
	addrCalcCanary = StackBase + 2 // CALC background-process canary
	addrPulsMark   = StackBase + 4 // CALC local: pulse count at window mark
	addrMsCntMark  = StackBase + 6 // CALC local: mscnt at window mark
	addrVEst       = StackBase + 8 // CALC local: estimated velocity (dm/s)
	spInit         = StackBase + 16
	bootFillFrom   = StackBase + 32 // below here: boot fill pattern

	canaryMagic = 0x5A5A
	frameMagic  = 0xC000 // dispatcher frame tag, low bits carry the slot
	frameBytes  = 6
	bootFill    = 0xA5
)

// Signal indices into SignalNames, SignalClasses, TestLocations and
// Node monitors; EA number = index + 1.
const (
	sigSetValue = iota
	sigIsValue
	sigI
	sigPulsCnt
	sigMsSlotNbr
	sigMsCnt
	sigOutValue
)

// NumEAs is the number of executable assertions (and monitored
// signals) of the paper's Table 4.
const NumEAs = 7

// Names of the monitored signals (Table 4).
const (
	SigSetValue  = "SetValue"
	SigIsValue   = "IsValue"
	SigI         = "i"
	SigPulsCnt   = "pulscnt"
	SigMsSlotNbr = "ms_slot_nbr"
	SigMsCnt     = "mscnt"
	SigOutValue  = "OutValue"
)

// SignalNames returns the monitored signal names in Table 4 order,
// which is also their word order at the start of the RAM region.
func SignalNames() []string {
	return []string{SigSetValue, SigIsValue, SigI, SigPulsCnt, SigMsSlotNbr, SigMsCnt, SigOutValue}
}

// SignalClasses returns the Figure 1 classification of each monitored
// signal, in SignalNames order.
func SignalClasses() []core.Class {
	return []core.Class{
		core.ContinuousRandom,           // SetValue: pressure set point
		core.ContinuousRandom,           // IsValue: measured pressure
		core.DiscreteSequentialLinear,   // i: checkpoint counter
		core.ContinuousMonotonicDynamic, // pulscnt: rotation pulse count
		core.DiscreteSequentialLinear,   // ms_slot_nbr: dispatcher slot
		core.ContinuousMonotonicStatic,  // mscnt: millisecond counter
		core.ContinuousRandom,           // OutValue: valve command
	}
}

// TestLocations returns the module that executes each assertion (the
// consumer-side test locations of Table 4), in SignalNames order.
func TestLocations() []string {
	return []string{"V_REG", "V_REG", "CALC", "CALC", "CLOCK", "CALC", "PRES_A"}
}

// Placement selects where the assertions of the three produced-and-
// consumed pressure signals (SetValue, IsValue, OutValue) execute.
type Placement int

const (
	// PlacementConsumer tests a signal where it is used (the paper's
	// Table 4 locations): SetValue and IsValue at V_REG, OutValue at
	// PRES_A.
	PlacementConsumer Placement = iota
	// PlacementProducer tests a signal where it is written (ablation):
	// SetValue at CALC, IsValue at PRES_S, OutValue at V_REG. A
	// producer-side test runs right after the signal is recomputed, so
	// corruption injected between production and use goes unseen.
	PlacementProducer
)

// String names the placement.
func (p Placement) String() string {
	if p == PlacementProducer {
		return "producer"
	}
	return "consumer"
}
