package target

import (
	"testing"

	"easig/internal/core"
	"easig/internal/physics"
)

func newTestSystem(t *testing.T, cfg SystemConfig) *System {
	t.Helper()
	if cfg.TestCase == (physics.TestCase{}) {
		cfg.TestCase = physics.TestCase{MassKg: 14000, VelocityMS: 55}
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

// The seven monitored signals must occupy the first seven RAM words in
// Table 4 order: inject.BuildE1 computes their addresses from RAMBase.
func TestSignalMemoryLayout(t *testing.T) {
	sys := newTestSystem(t, SystemConfig{})
	v := sys.Master().Vars()
	got := []struct {
		name string
		addr uint16
	}{
		{SigSetValue, v.SetValue.Addr()},
		{SigIsValue, v.IsValue.Addr()},
		{SigI, v.I.Addr()},
		{SigPulsCnt, v.PulsCnt.Addr()},
		{SigMsSlotNbr, v.MsSlotNbr.Addr()},
		{SigMsCnt, v.MsCnt.Addr()},
		{SigOutValue, v.OutValue.Addr()},
	}
	for k, g := range got {
		want := uint16(RAMBase + 2*k)
		if g.addr != want {
			t.Errorf("signal %q at 0x%04x, want 0x%04x", g.name, g.addr, want)
		}
		if SignalNames()[k] != g.name {
			t.Errorf("SignalNames()[%d] = %q, want %q", k, SignalNames()[k], g.name)
		}
	}
	if ramUsedEnd > RAMBase+RAMSize {
		t.Errorf("RAM layout overflows the region: used end 0x%04x > 0x%04x", ramUsedEnd, RAMBase+RAMSize)
	}
	if len(SignalClasses()) != NumEAs || len(TestLocations()) != NumEAs {
		t.Fatalf("classes/locations length mismatch")
	}
}

// A nominal arrestment must stop the aircraft inside the runway with
// zero assertion violations on the fully instrumented build.
func TestNominalArrestment(t *testing.T) {
	rec := &core.Recorder{}
	sys := newTestSystem(t, SystemConfig{Version: VersionAll, Sink: rec, SlaveSink: rec})
	sys.RunMs(20000)
	if rec.Detected() {
		v := rec.Violations()[0]
		t.Fatalf("nominal run raised %d violations; first: %+v", rec.Count(), v)
	}
	if _, stopped := sys.Env().Stopped(); !stopped {
		t.Fatalf("aircraft did not stop (v=%.2f m/s at %.1f m)", sys.Env().Velocity(), sys.Env().Distance())
	}
	if _, failed := sys.Env().Failure(); failed {
		t.Fatalf("nominal run failed: %v", func() interface{} { f, _ := sys.Env().Failure(); return f }())
	}
	if d := sys.Env().Distance(); d >= 335 {
		t.Fatalf("stopped beyond the runway: %.1f m", d)
	}
}

// The slave must track the master's set point through the link.
func TestSlaveTracksSetPoint(t *testing.T) {
	sys := newTestSystem(t, SystemConfig{})
	sys.RunMs(3000)
	m := int64(sys.Master().Vars().SetValue.Get())
	s := int64(sys.Slave().Vars().SetValue.Get())
	if m == 0 {
		t.Fatalf("master set point still zero after 3 s")
	}
	// The link updates every 7 ms and CALC slews at most 20 counts/ms.
	if d := m - s; d < -140 || d > 140 {
		t.Fatalf("slave set point %d lags master %d by more than one link period", s, m)
	}
}

func TestVersions(t *testing.T) {
	vs := Versions()
	if len(vs) != 8 || vs[len(vs)-1] != VersionAll {
		t.Fatalf("Versions() = %v, want EA1..EA7 then All", vs)
	}
	for k, v := range vs[:7] {
		if int(v) != k+1 || !v.Valid() || v.String() == "" {
			t.Fatalf("Versions()[%d] = %v", k, v)
		}
	}
	if VersionNone.Valid() != true || Version(8).Valid() {
		t.Fatalf("Valid() boundaries wrong")
	}
	if _, err := NewSystem(SystemConfig{
		TestCase: physics.TestCase{MassKg: 14000, VelocityMS: 55},
		Version:  Version(9),
	}); err == nil {
		t.Fatalf("NewSystem accepted an invalid version")
	}
}

// Corrupting the dispatcher canary must crash the node: control flow is
// lost, no module runs again, and the signals freeze — the stack-error
// failure mode the paper's E2 campaign shows assertions cannot detect.
func TestCanaryCorruptionCrashesNode(t *testing.T) {
	rec := &core.Recorder{}
	sys := newTestSystem(t, SystemConfig{Version: VersionAll, Sink: rec})
	sys.RunMs(1000)
	if err := sys.Master().Memory().FlipBit(addrNodeCanary, 3); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	sys.StepMs()
	if !sys.Master().Dead() {
		t.Fatalf("node survived a corrupted dispatcher canary")
	}
	ms := sys.Master().Vars().MsCnt.Get()
	sys.RunMs(100)
	if got := sys.Master().Vars().MsCnt.Get(); got != ms {
		t.Fatalf("dead node still counting: mscnt %d -> %d", ms, got)
	}
	if rec.Detected() {
		t.Fatalf("assertions claimed to detect a control-flow crash")
	}
}

// The dispatcher must leave the stack pointer balanced after every tick.
func TestDispatcherStackBalanced(t *testing.T) {
	sys := newTestSystem(t, SystemConfig{})
	for k := 0; k < 50; k++ {
		sys.StepMs()
		if sp, err := sys.Master().Memory().ReadU16(addrSP); err != nil || sp != spInit {
			t.Fatalf("after tick %d: sp = 0x%04x (err %v), want 0x%04x", k, sp, err, spInit)
		}
	}
}
