package target

import (
	"testing"

	"easig/internal/core"
	"easig/internal/physics"
)

// trace samples the observable state that a diverging restore would
// corrupt: plant kinematics, both drums' pressures, and the master's
// monitored signals.
func trace(s *System) [12]float64 {
	v := s.Master().Vars()
	return [12]float64{
		s.Env().Distance(),
		s.Env().Velocity(),
		s.Env().AppliedPressure(0),
		s.Env().AppliedPressure(1),
		s.Env().PeakForce(),
		float64(v.SetValue.Get()),
		float64(v.IsValue.Get()),
		float64(v.I.Get()),
		float64(v.PulsCnt.Get()),
		float64(v.MsCnt.Get()),
		float64(v.OutValue.Get()),
		float64(s.Env().NowMs()),
	}
}

// TestSystemSnapshotRoundTrip proves the snapshot is complete: a system
// restored to a mid-arrestment checkpoint replays the exact trajectory
// it took the first time — including the sensor-noise sequence — and
// matches an identically seeded reference system that never detoured.
func TestSystemSnapshotRoundTrip(t *testing.T) {
	build := func() *System {
		sys, err := NewSystem(SystemConfig{
			TestCase: physics.TestCase{MassKg: 14000, VelocityMS: 55},
			Seed:     42,
			Version:  VersionAll,
			Recovery: core.NoRecovery{},
		})
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		return sys
	}

	sys := build()
	ref := build()
	sys.RunMs(2000)
	ref.RunMs(2000)

	var st SystemState
	sys.Capture(&st)

	// Detour: run ahead, then rewind.
	sys.RunMs(1500)
	if trace(sys) == trace(ref) {
		t.Fatal("detour did not change the observable state; trace is too weak")
	}
	if err := sys.Restore(&st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := trace(sys), trace(ref); got != want {
		t.Fatalf("restored state diverged: got %v, want %v", got, want)
	}

	// Replay: the restored system and the reference must stay in
	// lockstep for the rest of the arrestment.
	for i := 0; i < 12000; i++ {
		sys.StepMs()
		ref.StepMs()
		if i%997 == 0 {
			if got, want := trace(sys), trace(ref); got != want {
				t.Fatalf("tick %d after restore: got %v, want %v", i, got, want)
			}
		}
	}
	if got, want := trace(sys), trace(ref); got != want {
		t.Fatalf("final state diverged: got %v, want %v", got, want)
	}

	// Capture is reusable in place: a second capture into the same
	// state must not allocate new buffers.
	before := st.Master.Mem.Len()
	sys.Capture(&st)
	if st.Master.Mem.Len() != before {
		t.Fatalf("recapture changed image size: %d -> %d", before, st.Master.Mem.Len())
	}
}

// TestRestoreRejectsForeignPlant guards against mixing snapshots across
// test cases: the plant refuses a state captured for different physics.
func TestRestoreRejectsForeignPlant(t *testing.T) {
	a, err := NewSystem(SystemConfig{TestCase: physics.TestCase{MassKg: 14000, VelocityMS: 55}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSystem(SystemConfig{TestCase: physics.TestCase{MassKg: 8000, VelocityMS: 70}})
	if err != nil {
		t.Fatal(err)
	}
	var st SystemState
	a.Capture(&st)
	if err := b.Restore(&st); err == nil {
		t.Fatal("restore accepted a snapshot from a different test case")
	}
}
