package target

import (
	"easig/internal/core"
	"easig/internal/memory"
	"easig/internal/physics"
)

// numSlots is the dispatcher period: the 1 ms interrupt cycles
// ms_slot_nbr through 0..6 and each time-critical module owns one slot.
const numSlots = 7

// Vars exposes the seven monitored signal variables of a node for
// tracing and direct memory experiments (cmd/arrest).
type Vars struct {
	SetValue  memory.Var16
	IsValue   memory.Var16
	I         memory.Var16
	PulsCnt   memory.Var16
	MsSlotNbr memory.Var16
	MsCnt     memory.Var16
	OutValue  memory.Var16
}

// link is the master-to-slave serial channel carrying the pressure set
// point. The master transmits in dispatcher slot 6; the slave latches
// the last received value every millisecond until it goes stale.
type link struct {
	val   uint16
	at    int64
	valid bool
}

// ramPrev binds a monitor's previous-value state s' to a word of the
// node's injectable RAM: on the real target the assertion state lives in
// the same memory the fault injector corrupts.
type ramPrev struct{ v memory.Var16 }

func (p ramPrev) LoadPrev() int64   { return int64(p.v.Get()) }
func (p ramPrev) StorePrev(x int64) { p.v.Set(uint16(x)) }

// Node is one computer node of the arresting system: the master (drum 0,
// runs DIST_S and CALC and transmits the set point) or the slave (drum
// 1, receives the set point). All application state lives in the node's
// Memory.
type Node struct {
	name   string
	master bool
	drum   int
	env    *physics.Env
	mem    *memory.Memory
	lnk    *link

	// The seven monitored signals (RAM words 0..6) and their assertion
	// monitors; mons[k] is nil when the built version omits EA k+1.
	sig  [NumEAs]memory.Var16
	mons [NumEAs]*core.Monitor

	// Control state in RAM.
	massDial  memory.Var16
	pulsRaw   memory.Var16
	setTarget memory.Var16
	sp        memory.Var16
	ckpt      [numCheckpoint]memory.Var16

	// CALC background-process locals and canaries in the stack region.
	nodeCanary memory.Var16
	calcCanary memory.Var16
	pulsMark   memory.Var16
	msCntMark  memory.Var16
	vEst       memory.Var16

	placement Placement

	// dead latches a node crash (corrupted dispatcher canary or stack
	// pointer): control flow is lost and no module runs again — the
	// failure mode signal-level assertions cannot see. calcDead latches
	// a crash of only the CALC background process.
	dead     bool
	calcDead bool
}

// newNode allocates a node's memory, writes the boot image and builds
// the executable-assertion monitors the version enables.
func newNode(name string, isMaster bool, drum int, env *physics.Env, lnk *link,
	version Version, sink core.DetectionSink, recovery core.RecoveryPolicy,
	placement Placement, massKg float64) (*Node, error) {

	mem, err := memory.New(
		memory.RegionSpec{Name: RegionRAM, Base: RAMBase, Size: RAMSize},
		memory.RegionSpec{Name: RegionStack, Base: StackBase, Size: StackSize},
	)
	if err != nil {
		return nil, err
	}
	n := &Node{
		name:      name,
		master:    isMaster,
		drum:      drum,
		env:       env,
		mem:       mem,
		lnk:       lnk,
		placement: placement,
	}

	names := SignalNames()
	for k := 0; k < NumEAs; k++ {
		n.sig[k] = memory.MustBind(mem, names[k], uint16(addrSignals+2*k))
	}
	n.massDial = memory.MustBind(mem, "mass_dial", addrMassDial)
	n.pulsRaw = memory.MustBind(mem, "puls_raw", addrPulsRaw)
	n.setTarget = memory.MustBind(mem, "set_target", addrSetTarget)
	n.sp = memory.MustBind(mem, "sp", addrSP)
	for k := range n.ckpt {
		n.ckpt[k] = memory.MustBind(mem, "ckpt", uint16(addrCkpt+2*k))
	}
	n.nodeCanary = memory.MustBind(mem, "node_canary", addrNodeCanary)
	n.calcCanary = memory.MustBind(mem, "calc_canary", addrCalcCanary)
	n.pulsMark = memory.MustBind(mem, "puls_mark", addrPulsMark)
	n.msCntMark = memory.MustBind(mem, "mscnt_mark", addrMsCntMark)
	n.vEst = memory.MustBind(mem, "v_est", addrVEst)

	// Boot image: canaries, stack pointer, checkpoint table, the
	// operator's mass-dial setting, and the unused stack area filled
	// with the boot pattern. The dispatcher slot starts at 6 so the
	// first tick dispatches slot 0 (PRES_S samples the pressure before
	// V_REG first uses it).
	n.nodeCanary.Set(canaryMagic)
	n.calcCanary.Set(canaryMagic)
	n.sp.Set(spInit)
	n.sig[sigMsSlotNbr].Set(numSlots - 1)
	n.massDial.Set(uint16(massKg))
	for k, d := range ckptTable {
		n.ckpt[k].Set(d)
	}
	for a := uint32(bootFillFrom); a < uint32(StackBase)+StackSize; a++ {
		if err := mem.SetByteAt(uint16(a), bootFill); err != nil {
			return nil, err
		}
	}

	classes := SignalClasses()
	for k := 0; k < NumEAs; k++ {
		if !version.enables(k + 1) {
			continue
		}
		opts := []core.MonitorOption{
			core.WithPrevStore(ramPrev{memory.MustBind(mem, names[k]+"'", uint16(addrPrevBase+2*k))}),
			core.WithSink(sink),
			core.WithRecovery(recovery),
		}
		var m *core.Monitor
		if classes[k].IsContinuous() {
			m, err = core.NewContinuousSingle(names[k], classes[k], eaContinuous(k), opts...)
		} else {
			m, err = core.NewDiscreteSingle(names[k], classes[k], eaDiscrete(k), opts...)
		}
		if err != nil {
			return nil, err
		}
		n.mons[k] = m
	}
	return n, nil
}

// Name returns "master" or "slave".
func (n *Node) Name() string { return n.name }

// Memory returns the node's injectable memory.
func (n *Node) Memory() *memory.Memory { return n.mem }

// Vars returns accessors for the monitored signals.
func (n *Node) Vars() Vars {
	return Vars{
		SetValue:  n.sig[sigSetValue],
		IsValue:   n.sig[sigIsValue],
		I:         n.sig[sigI],
		PulsCnt:   n.sig[sigPulsCnt],
		MsSlotNbr: n.sig[sigMsSlotNbr],
		MsCnt:     n.sig[sigMsCnt],
		OutValue:  n.sig[sigOutValue],
	}
}

// Dead reports whether the node has crashed (lost control flow after
// stack corruption). A dead node never runs another module.
func (n *Node) Dead() bool { return n.dead }

// test runs the signal's executable assertion — when this version
// enables it — on the current in-memory value at its Table 4 test
// location, writes any recovery back to the signal's RAM word and
// returns the accepted value.
func (n *Node) test(sig int, now int64) int64 {
	s := int64(n.sig[sig].Get())
	m := n.mons[sig]
	if m == nil {
		return s
	}
	rec, viol := m.Test(now, s)
	if viol != nil {
		n.sig[sig].Set(uint16(rec))
		return rec
	}
	return s
}

// tick is the node's 1 ms interrupt: CLOCK, the per-ms modules and the
// dispatched slot module.
func (n *Node) tick(now int64) {
	if n.dead {
		return
	}
	if n.nodeCanary.Get() != canaryMagic {
		n.dead = true
		return
	}

	// CLOCK: advance the millisecond counter and the dispatcher slot.
	// EA6 (mscnt) is tested in CALC; EA5 (ms_slot_nbr) here.
	n.sig[sigMsCnt].Add(1)
	n.sig[sigMsSlotNbr].Set((n.sig[sigMsSlotNbr].Get() + 1) % numSlots)
	slot := n.test(sigMsSlotNbr, now)

	if n.master {
		n.distS()
		n.calc(now)
	} else {
		n.rx(now)
	}

	n.dispatch(int(slot)%numSlots, now)
}

// distS is the rotation-sensor module: it accumulates sensor pulses
// (one per decimeter of cable) into pulscnt.
func (n *Node) distS() {
	raw := n.env.RotationPulses()
	if d := raw - n.pulsRaw.Get(); d != 0 {
		n.sig[sigPulsCnt].Add(d)
		n.pulsRaw.Set(raw)
	}
}

// calc is the master's background process: velocity estimation,
// checkpoint sequencing and the integer set-point control law. Its
// persistent locals live in the stack region; a corrupted CALC canary
// kills only this process.
func (n *Node) calc(now int64) {
	if n.calcDead {
		return
	}
	if n.calcCanary.Get() != canaryMagic {
		n.calcDead = true
		return
	}

	ms := uint16(n.test(sigMsCnt, now))
	puls := uint16(n.test(sigPulsCnt, now))
	i := n.test(sigI, now)

	// Velocity estimation: pulses per window of at least velWindowMs.
	// Implausible windows (counter corruption under VersionNone) are
	// skipped but still re-mark, so estimation can recover.
	if dms := ms - n.msCntMark.Get(); dms >= velWindowMs {
		if dpuls := puls - n.pulsMark.Get(); dms <= 8*velWindowMs && dpuls <= 4096 {
			n.vEst.Set(uint16(uint32(dpuls) * 1000 / uint32(dms)))
		}
		n.msCntMark.Set(ms)
		n.pulsMark.Set(puls)
	}

	// Checkpoint sequencing: advance i each time the cable pays out past
	// the next checkpoint distance. Reaching the first checkpoint arms
	// the brake program.
	if i >= 0 && i < numCheckpoint && puls >= n.ckpt[i].Get() {
		i++
		n.sig[sigI].Set(uint16(i))
	}

	// Control law: aim the deceleration so the aircraft stops at
	// stopTargetDm (a = v^2 / 2*remaining), clamped into the comfort/
	// structural band, then convert to pressure counts for the dialled
	// mass and slew-rate-limit the set point.
	var aDms int64
	if v := int64(n.vEst.Get()); i >= 1 && v > 0 {
		rem := stopTargetDm - int64(puls)
		if rem < 10 {
			aDms = maxDecelDms
		} else {
			aDms = clamp(v*v/(2*rem), minDecelDms, maxDecelDms)
		}
	}
	st := int64(n.massDial.Get()) * aDms / 1400
	if st > maxCommandCounts {
		st = maxCommandCounts
	}
	n.setTarget.Set(uint16(st))

	sv := int64(n.sig[sigSetValue].Get())
	sv += clamp(st-sv, -setSlewPerMs, setSlewPerMs)
	n.sig[sigSetValue].Set(uint16(sv))
	if n.placement == PlacementProducer {
		n.test(sigSetValue, now)
	}
}

// rx is the slave's link receiver: every millisecond it latches the last
// set point the master transmitted, unless the link has gone stale.
func (n *Node) rx(now int64) {
	if n.lnk.valid && now-n.lnk.at <= linkStaleMs {
		n.sig[sigSetValue].Set(n.lnk.val)
		if n.placement == PlacementProducer {
			n.test(sigSetValue, now)
		}
	}
}

// dispatch pushes the dispatcher frame onto the stack, runs the slot's
// module and pops the frame. A corrupted stack pointer makes the frame
// writes land elsewhere (or outside memory entirely); a frame that does
// not read back intact means the return context is gone and the node
// crashes.
func (n *Node) dispatch(slot int, now int64) {
	sp := n.sp.Get()
	frame := uint16(frameMagic | uint16(slot))
	if n.mem.WriteU16(sp, frame) != nil ||
		n.mem.WriteU16(sp+2, n.sig[sigMsSlotNbr].Get()) != nil ||
		n.mem.WriteU16(sp+4, n.sig[sigSetValue].Get()) != nil {
		n.dead = true
		return
	}
	n.sp.Set(sp + frameBytes)

	switch slot {
	case 0:
		n.presS(now)
	case 2:
		n.vReg(now)
	case 4:
		n.presA(now)
	case 6:
		if n.master {
			n.txLink(now)
		}
	}

	base := n.sp.Get() - frameBytes
	got, err := n.mem.ReadU16(base)
	if err != nil || got != frame {
		n.dead = true
		return
	}
	n.sp.Set(base)
}

// presS samples the drum's pressure sensor into IsValue (slot 0).
func (n *Node) presS(now int64) {
	n.sig[sigIsValue].Set(n.env.ReadPressure(n.drum))
	if n.placement == PlacementProducer {
		n.test(sigIsValue, now)
	}
}

// vReg is the valve regulator (slot 2): it mixes the set point with a
// bounded proportional correction against the measured pressure and
// slews the valve command toward the mix — opening fast, closing slowly,
// as the hydraulics demand. EA1 and EA2 run here in the consumer
// placement.
func (n *Node) vReg(now int64) {
	var sv, iv int64
	if n.placement == PlacementConsumer {
		sv = n.test(sigSetValue, now)
		iv = n.test(sigIsValue, now)
	} else {
		sv = int64(n.sig[sigSetValue].Get())
		iv = int64(n.sig[sigIsValue].Get())
	}
	mix := clamp(sv+clamp((sv-iv)/4, -mixBoost, mixBoost), 0, maxCommandCounts)

	ov := int64(n.sig[sigOutValue].Get())
	ov += clamp(mix-ov, -valveClosePerSlot, valveOpenPerSlot)
	n.sig[sigOutValue].Set(uint16(ov))
	if n.placement == PlacementProducer {
		n.test(sigOutValue, now)
	}
}

// presA writes the valve command to the DAC (slot 4). EA7 runs here in
// the consumer placement.
func (n *Node) presA(now int64) {
	ov := int64(n.sig[sigOutValue].Get())
	if n.placement == PlacementConsumer {
		ov = n.test(sigOutValue, now)
	}
	n.env.CommandValve(n.drum, uint16(ov))
}

// txLink transmits the master's set point to the slave (slot 6).
func (n *Node) txLink(now int64) {
	n.lnk.val = n.sig[sigSetValue].Get()
	n.lnk.at = now
	n.lnk.valid = true
}

// clamp limits x into [lo, hi].
func clamp(x, lo, hi int64) int64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
