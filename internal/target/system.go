package target

import (
	"fmt"

	"easig/internal/core"
	"easig/internal/physics"
)

// SystemConfig configures one built instance of the target software.
// The zero value of every field is a sensible default: default physics,
// the 14-tonne nominal test case is NOT defaulted (a zero TestCase is
// rejected by physics.NewEnv), VersionAll on both nodes, no sinks,
// detection-only (no recovery), consumer placement.
type SystemConfig struct {
	// Constants overrides the physical constants (nil = defaults).
	Constants *physics.Constants
	// ForceTable overrides the structural force limit table (nil =
	// defaults).
	ForceTable *physics.ForceTable
	// TestCase is the arrestment scenario (mass, engagement velocity).
	TestCase physics.TestCase
	// Seed seeds the environment's sensor-noise generator.
	Seed int64
	// Version selects the master node's assertion build.
	Version Version
	// Sink receives the master's assertion violations (nil = discard).
	Sink core.DetectionSink
	// Recovery is applied by both nodes' monitors after a violation
	// (nil = NoRecovery: detect and keep the corrupted value).
	Recovery core.RecoveryPolicy
	// Placement selects consumer-side (Table 4) or producer-side
	// assertion placement on both nodes.
	Placement Placement
	// SlaveVersion selects the slave node's assertion build. The zero
	// value is VersionAll, matching the paper's uniform builds; use
	// VersionNone to strip the slave.
	SlaveVersion Version
	// SlaveSink receives the slave's assertion violations (nil =
	// discard).
	SlaveSink core.DetectionSink
}

// System is the complete arresting system: the physical environment,
// the master node and the slave node coupled by the set-point link.
type System struct {
	env    *physics.Env
	lnk    link
	master *Node
	slave  *Node
}

// NewSystem boots the target software against a fresh environment.
func NewSystem(cfg SystemConfig) (*System, error) {
	cst := physics.DefaultConstants()
	if cfg.Constants != nil {
		cst = *cfg.Constants
	}
	table := physics.DefaultForceTable()
	if cfg.ForceTable != nil {
		table = *cfg.ForceTable
	}
	if !cfg.Version.Valid() {
		return nil, fmt.Errorf("target: invalid version %d", int(cfg.Version))
	}
	if !cfg.SlaveVersion.Valid() {
		return nil, fmt.Errorf("target: invalid slave version %d", int(cfg.SlaveVersion))
	}
	recovery := cfg.Recovery
	if recovery == nil {
		recovery = core.NoRecovery{}
	}

	env, err := physics.NewEnv(cst, table, cfg.TestCase, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sys := &System{env: env}
	sys.master, err = newNode("master", true, physics.DrumMaster, env, &sys.lnk,
		cfg.Version, cfg.Sink, recovery, cfg.Placement, cfg.TestCase.MassKg)
	if err != nil {
		return nil, err
	}
	sys.slave, err = newNode("slave", false, physics.DrumSlave, env, &sys.lnk,
		cfg.SlaveVersion, cfg.SlaveSink, recovery, cfg.Placement, cfg.TestCase.MassKg)
	if err != nil {
		return nil, err
	}
	return sys, nil
}

// StepMs advances the system by one millisecond: both nodes take their
// 1 ms interrupt against the current environment state, then the
// environment integrates the physics.
func (s *System) StepMs() {
	now := s.env.NowMs()
	s.master.tick(now)
	s.slave.tick(now)
	s.env.StepMs()
}

// RunMs advances the system n milliseconds.
func (s *System) RunMs(n int) {
	for k := 0; k < n; k++ {
		s.StepMs()
	}
}

// Master returns the master node.
func (s *System) Master() *Node { return s.master }

// Slave returns the slave node.
func (s *System) Slave() *Node { return s.slave }

// Env returns the physical environment.
func (s *System) Env() *physics.Env { return s.env }
