package target

import "easig/internal/core"

// Control-law and plant-interface constants of the target software.
// Pressure values are in counts of physics.PressureUnitKPa (10 kPa),
// distances in decimeters (one rotation pulse per dm of cable), and
// velocities in dm/s.
const (
	// numCheckpoint is the length of the checkpoint distance table the
	// CALC module sequences through (signal i counts 0..6).
	numCheckpoint = 6

	// stopTargetDm is the distance (dm) at which the control law aims
	// to have the aircraft stopped: 290 m, inside the 335 m runway.
	stopTargetDm = 2900

	// minDecelDms and maxDecelDms clamp the commanded deceleration
	// (dm/s²): a floor so every arrestment terminates, and a ceiling
	// below the structural and pilot-safety limits.
	minDecelDms = 30
	maxDecelDms = 140

	// maxCommandCounts caps the pressure set point and valve command
	// (1700 counts = 17 MPa, the hydraulic saturation).
	maxCommandCounts = 1700

	// setSlewPerMs rate-limits the CALC module's set-point output.
	setSlewPerMs = 20

	// mixBoost bounds the proportional (SetValue - IsValue) correction
	// the valve regulator adds on top of the set point.
	mixBoost = 60

	// valveOpenPerSlot and valveClosePerSlot rate-limit the valve
	// command per V_REG activation (every 7 ms): the hydraulics apply
	// pressure fast but release it slowly to avoid cable slack.
	valveOpenPerSlot  = 120
	valveClosePerSlot = 40

	// velWindowMs is the CALC velocity-estimation window length.
	velWindowMs = 128

	// linkStaleMs is how long the slave trusts the last received set
	// point before treating the link as dead.
	linkStaleMs = 50
)

// ckptTable is the checkpoint distance table (dm): CALC advances i when
// the pulse count passes entry i. The first checkpoint arms the brake.
var ckptTable = [numCheckpoint]uint16{50, 400, 800, 1200, 1600, 2000}

// eaContinuous returns the Pcont parameter set of the given signal's
// assertion, instantiated per Table 4 from the calibrated nominal
// behaviour of the target software.
func eaContinuous(sig int) core.Continuous {
	switch sig {
	case sigSetValue:
		// EA1: set point 0..1700 counts plus slack; CALC slews it at
		// most 20/ms, so 200 covers the longest consumer test interval.
		return core.Continuous{
			Min: 0, Max: 1750,
			Incr: core.Rate{Min: 0, Max: 200},
			Decr: core.Rate{Min: 0, Max: 200},
		}
	case sigIsValue:
		// EA2: measured pressure; the valve time constant limits the
		// applied-pressure slew to well under 150 counts per 7 ms.
		return core.Continuous{
			Min: 0, Max: 1750,
			Incr: core.Rate{Min: 0, Max: 150},
			Decr: core.Rate{Min: 0, Max: 150},
		}
	case sigPulsCnt:
		// EA4: the pulse count is monotonically increasing with a
		// dynamic rate; at 70 m/s the cable pays out under one pulse
		// per ms.
		return core.Continuous{
			Min: 0, Max: 65535,
			Incr: core.Rate{Min: 0, Max: 2},
			Decr: core.Rate{Min: 0, Max: 0},
		}
	case sigMsCnt:
		// EA6: the millisecond counter increments by exactly one per
		// test and wraps at the 16-bit boundary.
		return core.Continuous{
			Min: 0, Max: 65536,
			Incr: core.Rate{Min: 1, Max: 1},
			Decr: core.Rate{Min: 0, Max: 0},
			Wrap: true,
		}
	case sigOutValue:
		// EA7: valve command, rate-limited by V_REG itself.
		return core.Continuous{
			Min: 0, Max: 1750,
			Incr: core.Rate{Min: 0, Max: 150},
			Decr: core.Rate{Min: 0, Max: 150},
		}
	default:
		panic("target: no continuous parameters for signal")
	}
}

// eaDiscrete returns the Pdisc parameter set of the given signal's
// assertion.
func eaDiscrete(sig int) core.Discrete {
	switch sig {
	case sigI:
		// EA3: the checkpoint counter walks 0..6 one step at a time and
		// may hold its value between tests.
		return core.NewLinear([]int64{0, 1, 2, 3, 4, 5, 6}, false, true)
	case sigMsSlotNbr:
		// EA5: the dispatcher slot cycles 0..6 and never repeats.
		return core.NewLinear([]int64{0, 1, 2, 3, 4, 5, 6}, true, false)
	default:
		panic("target: no discrete parameters for signal")
	}
}
