package target

import (
	"fmt"

	"easig/internal/core"
)

// NewSignalMonitor builds a fresh Table 4 executable-assertion monitor
// for signal index k (0..NumEAs-1): the signal's name, Figure 1 class
// and calibrated parameter set, exactly as a node instantiates them at
// boot. The stream service uses this to give every monitored plant
// stream its own instances of the paper's assertions, so an external
// observer fed the same samples detects the same violations as the
// inline monitors (the observer-equivalence guarantee of SIGMOND.md).
func NewSignalMonitor(k int, opts ...core.MonitorOption) (*core.Monitor, error) {
	if k < 0 || k >= NumEAs {
		return nil, fmt.Errorf("target: no signal %d (want 0..%d)", k, NumEAs-1)
	}
	names, classes := SignalNames(), SignalClasses()
	if classes[k].IsContinuous() {
		return core.NewContinuousSingle(names[k], classes[k], eaContinuous(k), opts...)
	}
	return core.NewDiscreteSingle(names[k], classes[k], eaDiscrete(k), opts...)
}
