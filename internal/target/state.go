package target

import (
	"easig/internal/core"
	"easig/internal/memory"
	"easig/internal/physics"
)

// NodeState is a checkpoint of one node: its full memory image (RAM and
// stack, which covers the seven signals, the control state, the CALC
// locals, the canaries and the monitors' previous values s'), the crash
// latches, and the non-memory monitor state.
type NodeState struct {
	// Mem is the node's RAM+stack image.
	Mem memory.Image
	// Dead and CalcDead are the crash latches.
	Dead, CalcDead bool
	// Mons holds the per-EA monitor state; entries for monitors the
	// built version omits are zero and ignored on restore.
	Mons [NumEAs]core.MonitorState
}

// SystemState is a checkpoint of the complete arresting system — both
// nodes, the set-point link and the plant. The fast-forward engine of
// internal/inject captures one SystemState per (test case, injection
// time) at the moment before the first bit-flip of the paper's §3.4
// time-triggered injection (FIC3, 20 ms period starting at 500 ms) and
// restores it for every error of the test case, so the shared nominal
// prefix is simulated once instead of once per error.
//
// A SystemState is reusable: Capture overwrites it in place, and after
// the first Capture neither Capture nor Restore allocates.
type SystemState struct {
	// Master and Slave are the node checkpoints.
	Master, Slave NodeState
	// LinkVal, LinkAt and LinkValid mirror the set-point link latch.
	LinkVal   uint16
	LinkAt    int64
	LinkValid bool
	// Env is the plant checkpoint.
	Env physics.State
}

// capture fills st from the node.
func (n *Node) capture(st *NodeState) {
	n.mem.Capture(&st.Mem)
	st.Dead = n.dead
	st.CalcDead = n.calcDead
	for k, m := range n.mons {
		if m != nil {
			st.Mons[k] = m.State()
		}
	}
}

// restore rewinds the node to st.
func (n *Node) restore(st *NodeState) error {
	if err := n.mem.RestoreImage(&st.Mem); err != nil {
		return err
	}
	n.dead = st.Dead
	n.calcDead = st.CalcDead
	for k, m := range n.mons {
		if m != nil {
			m.RestoreState(st.Mons[k])
		}
	}
	return nil
}

// Capture checkpoints the complete system state into st, reusing st's
// buffers when it has been captured into before.
func (s *System) Capture(st *SystemState) {
	s.master.capture(&st.Master)
	s.slave.capture(&st.Slave)
	st.LinkVal = s.lnk.val
	st.LinkAt = s.lnk.at
	st.LinkValid = s.lnk.valid
	st.Env = s.env.State()
}

// Restore rewinds the system to a state captured from a system with the
// same build (test case, versions, placement): the snapshot carries
// only mutable state, so restoring into a differently built system is
// rejected where detectable (region layout, test case) and undefined
// otherwise.
func (s *System) Restore(st *SystemState) error {
	if err := s.master.restore(&st.Master); err != nil {
		return err
	}
	if err := s.slave.restore(&st.Slave); err != nil {
		return err
	}
	s.lnk.val = st.LinkVal
	s.lnk.at = st.LinkAt
	s.lnk.valid = st.LinkValid
	return s.env.RestoreState(st.Env)
}
