package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"easig/internal/experiment"
	"easig/internal/inject"
	"easig/internal/journal"
)

// WorkerOptions configures a shard worker.
type WorkerOptions struct {
	// Server is the ficd base URL (e.g. "http://localhost:7070").
	Server string
	// Name identifies this worker in leases and the shard ledger; it
	// must be unique among concurrently attached workers.
	Name string
	// Workers sizes the in-process pool each shard runs on (0 =
	// GOMAXPROCS) — the PR 7 work-stealing scheduler operates within
	// every claimed shard.
	Workers int
	// Poll is the idle claim-retry interval (default 500 ms).
	Poll time.Duration
	// Client overrides the HTTP client.
	Client *http.Client
	// Logf, when non-nil, receives one line per worker event.
	Logf func(format string, args ...any)
}

// Worker is the `fic worker` client: it polls the service for running
// campaigns, claims shards under lease, executes each shard with the
// in-process campaign machinery (journaling every run), heartbeats at
// a third of the lease interval, and uploads the shard journal on
// completion. A worker that loses its lease — the service reclaimed the
// shard after missed heartbeats — abandons the shard and claims fresh
// work; the re-executed shard is byte-identical by determinism.
type Worker struct {
	opts WorkerOptions
}

// ErrLeaseLost reports a heartbeat rejected by the service: the shard's
// lease expired and was reclaimed (or completed) while this worker held
// it.
var ErrLeaseLost = errors.New("service: shard lease lost")

// NewWorker validates the options and builds a Worker.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Server == "" {
		return nil, fmt.Errorf("service: worker needs a server URL")
	}
	opts.Server = strings.TrimRight(opts.Server, "/")
	if opts.Name == "" {
		host, _ := os.Hostname()
		opts.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 5 * time.Minute}
	}
	return &Worker{opts: opts}, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// Run attaches to the service and processes shards until the context is
// cancelled or every known campaign is terminal. It returns nil on a
// clean drain (all campaigns complete or failed).
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		var list ListResponse
		if err := w.getJSON(ctx, "/api/v1/campaigns", &list); err != nil {
			w.logf("worker %s: listing campaigns: %v", w.opts.Name, err)
			if !w.sleep(ctx) {
				return nil
			}
			continue
		}
		claimed := false
		running := 0
		for _, info := range list.Campaigns {
			if info.State != StateRunning {
				continue
			}
			running++
			cl, err := w.claim(ctx, info.ID)
			if err != nil {
				w.logf("worker %s: claiming from %s: %v", w.opts.Name, info.ID, err)
				continue
			}
			if cl.Shard == nil {
				continue // done or wait — nothing grantable right now
			}
			claimed = true
			if err := w.runShard(ctx, info.ID, cl); err != nil {
				if errors.Is(err, context.Canceled) {
					return nil
				}
				w.logf("worker %s: campaign %s shard %d: %v",
					w.opts.Name, info.ID, cl.Shard.Index, err)
			}
		}
		if len(list.Campaigns) > 0 && running == 0 {
			// Every campaign is terminal; the worker's job is done.
			return nil
		}
		if !claimed && !w.sleep(ctx) {
			return nil
		}
	}
}

// sleep waits one poll interval; false means the context ended.
func (w *Worker) sleep(ctx context.Context) bool {
	select {
	case <-time.After(w.opts.Poll):
		return true
	case <-ctx.Done():
		return false
	}
}

// claim requests a shard lease.
func (w *Worker) claim(ctx context.Context, id string) (ClaimResponse, error) {
	var resp ClaimResponse
	err := w.postJSON(ctx, "/api/v1/campaigns/"+id+"/claims", ClaimRequest{Worker: w.opts.Name}, &resp)
	return resp, err
}

// runShard executes one claimed shard end to end: run the shard's cases
// with the claimed Spec (journaling locally), heartbeat under the
// lease, and upload the journal.
func (w *Worker) runShard(ctx context.Context, id string, cl ClaimResponse) error {
	shard := *cl.Shard
	w.logf("worker %s: campaign %s shard %d claimed (%d cases, %d runs)",
		w.opts.Name, id, shard.Index, len(shard.Cases), shard.Runs)

	dir, err := os.MkdirTemp("", "fic-shard-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "shard.jsonl")
	jw, err := journal.Create(path)
	if err != nil {
		return err
	}

	mode, err := inject.ParseMode(cl.Engine)
	if err != nil {
		jw.Close()
		return err
	}

	// The shard context ends with the lease: a rejected heartbeat
	// cancels the in-flight campaign promptly instead of wasting work
	// on a shard another worker now owns.
	shardCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	var completed atomic.Int64
	hbDone := make(chan struct{})
	go w.heartbeat(shardCtx, cancel, id, shard.Index, cl.LeaseMs, &completed, hbDone)

	cfg := experiment.Config{
		Spec: *cl.Spec,
		Exec: experiment.Exec{
			Mode:    mode,
			Workers: w.opts.Workers,
			Context: shardCtx,
			Journal: jw,
			Progress: func(ev journal.ProgressEvent) {
				completed.Store(int64(ev.Completed - ev.Resumed))
			},
		},
	}
	switch cl.Kind {
	case "e1":
		_, err = experiment.RunE1(cfg)
	default:
		_, err = experiment.RunE2(cfg)
	}
	cancel(nil)
	<-hbDone
	if cerr := jw.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		if errors.Is(context.Cause(shardCtx), ErrLeaseLost) {
			w.logf("worker %s: campaign %s shard %d lease lost, abandoning", w.opts.Name, id, shard.Index)
			return nil
		}
		return err
	}
	return w.upload(ctx, id, shard.Index, path)
}

// heartbeat renews the shard lease at a third of its duration until the
// context ends; a rejected heartbeat cancels the shard with
// ErrLeaseLost.
func (w *Worker) heartbeat(ctx context.Context, cancel context.CancelCauseFunc, id string, shard int, leaseMs int64, completed *atomic.Int64, done chan<- struct{}) {
	defer close(done)
	interval := time.Duration(leaseMs/3) * time.Millisecond
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			req := HeartbeatRequest{Worker: w.opts.Name, CompletedRuns: int(completed.Load())}
			err := w.postJSON(ctx, fmt.Sprintf("/api/v1/campaigns/%s/shards/%d/heartbeat", id, shard), req, &struct{}{})
			var he *apiError
			if errors.As(err, &he) && he.status == http.StatusConflict {
				cancel(fmt.Errorf("%w: %s", ErrLeaseLost, he.msg))
				return
			}
			// Transient transport errors are tolerated: the next tick
			// retries well within the lease.
		}
	}
}

// upload sends the completed shard journal. A conflict (the shard was
// re-leased and completed by another worker after this worker's lease
// expired) is logged and dropped — the other worker's byte-identical
// upload already covers the shard.
func (w *Worker) upload(ctx context.Context, id string, shard int, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/api/v1/campaigns/%s/shards/%d/journal?worker=%s",
		w.opts.Server, id, shard, w.opts.Name)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	var resp CompleteResponse
	if err := w.do(req, &resp); err != nil {
		var he *apiError
		if errors.As(err, &he) && he.status == http.StatusConflict {
			w.logf("worker %s: campaign %s shard %d: stale completion dropped: %s",
				w.opts.Name, id, shard, he.msg)
			return nil
		}
		return err
	}
	switch {
	case resp.Duplicate:
		w.logf("worker %s: campaign %s shard %d was already complete", w.opts.Name, id, shard)
	default:
		w.logf("worker %s: campaign %s shard %d uploaded (%d/%d shards done)",
			w.opts.Name, id, shard, resp.Campaign.DoneShards, resp.Campaign.ShardCount)
	}
	return nil
}

// apiError is a non-2xx API response.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.status, e.msg)
}

func (w *Worker) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.opts.Server+path, nil)
	if err != nil {
		return err
	}
	return w.do(req, out)
}

func (w *Worker) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Server+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.do(req, out)
}

// do executes a request and decodes the JSON response; non-2xx statuses
// surface as *apiError carrying the server's ErrorResponse message.
func (w *Worker) do(req *http.Request, out any) error {
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		return &apiError{status: resp.StatusCode, msg: e.Error}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
