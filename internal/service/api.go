// Package service implements the ficd campaign service and its worker
// client: the cross-process half of campaign scaling (ROADMAP item 1).
// A campaign Spec submitted over HTTP/JSON is cut into claimable shards
// (blocks of test cases); worker processes claim shards under expiring
// leases, execute them with the normal in-process campaign machinery,
// and upload their shard journals; the service validates each upload,
// merges the shard journals, and renders Tables 7-9 byte-identical to a
// single-process run. Progress streams to any number of subscribers
// over SSE.
//
// The wire protocol, the shard-claim/lease state machine and the
// failure-mode table are documented in SERVICE.md; the determinism
// argument that makes the merge sound is in ARCHITECTURE.md.
package service

import "easig/internal/experiment"

// SubmitRequest is the body of POST /api/v1/campaigns: the campaign
// protocol plus distribution parameters.
type SubmitRequest struct {
	// Kind selects the campaign: "e1", "e2" or "exhaustive".
	Kind string `json:"kind"`
	// Spec is the serializable campaign protocol. Spec.Cases must be
	// empty (the service assigns cases via shards); Spec.Exhaustive is
	// implied by Kind "exhaustive".
	Spec experiment.Spec `json:"spec"`
	// Engine selects the execution engine every worker must use
	// ("auto", "literal", "snapshot", "memo"; default auto, which
	// resolves to snapshot — service campaigns are detection-only). All
	// shards of a campaign must share one engine so the merged tables
	// have a single provenance.
	Engine string `json:"engine,omitempty"`
	// CasesPerShard sizes the shards (default 1 test case per shard —
	// the finest work units, and the best load balance).
	CasesPerShard int `json:"cases_per_shard,omitempty"`
	// LeaseMs overrides the service's default shard lease duration.
	LeaseMs int64 `json:"lease_ms,omitempty"`
}

// Campaign states reported by the API.
const (
	// StateRunning: shards are pending, leased or partially done.
	StateRunning = "running"
	// StateComplete: every shard is done and the merged results are
	// available at /results.
	StateComplete = "complete"
	// StateFailed: the final merge failed (see CampaignInfo.Error).
	StateFailed = "failed"
)

// CampaignInfo is the campaign summary returned by submit, list and
// status responses.
type CampaignInfo struct {
	// ID is the service-assigned campaign identifier.
	ID string `json:"id"`
	// Kind is the submitted campaign kind.
	Kind string `json:"kind"`
	// Experiment is the canonical journal experiment name ("E1", "E2",
	// "E2-exhaustive").
	Experiment string `json:"experiment"`
	// Engine is the resolved execution engine every shard runs under.
	Engine string `json:"engine"`
	// State is StateRunning, StateComplete or StateFailed.
	State string `json:"state"`
	// ShardCount is the number of shards in the campaign's plan.
	ShardCount int `json:"shards"`
	// DoneShards counts completed shards.
	DoneShards int `json:"done_shards"`
	// TotalRuns is the campaign's total run count.
	TotalRuns int `json:"total_runs"`
	// CompletedRuns counts runs in completed shards plus the lease
	// holders' heartbeat-reported progress.
	CompletedRuns int `json:"completed_runs"`
	// LeaseMs is the shard lease duration.
	LeaseMs int64 `json:"lease_ms"`
	// Error carries the failure reason when State is StateFailed.
	Error string `json:"error,omitempty"`
}

// ListResponse is the body of GET /api/v1/campaigns.
type ListResponse struct {
	Campaigns []CampaignInfo `json:"campaigns"`
}

// StatusResponse is the body of GET /api/v1/campaigns/{id}: the summary
// plus the Spec and per-shard lease states.
type StatusResponse struct {
	CampaignInfo
	// Spec is the campaign protocol as submitted.
	Spec experiment.Spec `json:"spec"`
	// Shards lists every shard's lease state.
	Shards []experiment.ShardStatus `json:"shard_states"`
}

// ClaimRequest is the body of POST /api/v1/campaigns/{id}/claims.
type ClaimRequest struct {
	// Worker identifies the claiming worker (unique per process).
	Worker string `json:"worker"`
}

// ClaimResponse is the claim outcome. Exactly one of Shard, Wait and
// Done describes it: a granted shard, nothing claimable right now
// (every shard leased — retry after a poll interval), or nothing left
// ever (the campaign is terminal).
type ClaimResponse struct {
	// Done reports a terminal campaign: the worker should move on.
	Done bool `json:"done,omitempty"`
	// Wait reports that all shards are currently leased or done; the
	// worker should poll again (a lease may yet expire).
	Wait bool `json:"wait,omitempty"`
	// Shard is the granted work unit.
	Shard *experiment.Shard `json:"shard,omitempty"`
	// Spec is the campaign protocol with Cases set to the shard — a
	// self-contained campaign config for the worker.
	Spec *experiment.Spec `json:"spec,omitempty"`
	// Kind is the campaign kind ("e1", "e2", "exhaustive"), telling the
	// worker which campaign entry point to run.
	Kind string `json:"kind,omitempty"`
	// Experiment is the canonical journal experiment name.
	Experiment string `json:"experiment,omitempty"`
	// Engine is the engine mode the worker must run the shard under.
	Engine string `json:"engine,omitempty"`
	// LeaseMs is the lease duration; the worker must heartbeat well
	// within it (LeaseMs/3 is the client default).
	LeaseMs int64 `json:"lease_ms,omitempty"`
}

// HeartbeatRequest is the body of
// POST /api/v1/campaigns/{id}/shards/{shard}/heartbeat: it renews the
// worker's lease and reports shard progress.
type HeartbeatRequest struct {
	// Worker must be the lease holder.
	Worker string `json:"worker"`
	// CompletedRuns is the shard's completed run count so far.
	CompletedRuns int `json:"completed_runs"`
}

// CompleteResponse is the body returned by the shard journal upload
// endpoint (POST /api/v1/campaigns/{id}/shards/{shard}/journal).
type CompleteResponse struct {
	// Accepted reports the journal validated and the shard is done.
	Accepted bool `json:"accepted"`
	// Duplicate reports the shard was already complete (the benign
	// reclaimed-lease race); the upload was discarded as redundant —
	// determinism makes it byte-identical to the accepted one.
	Duplicate bool `json:"duplicate,omitempty"`
	// Campaign is the campaign summary after the completion (State
	// flips to complete with the last shard).
	Campaign CampaignInfo `json:"campaign"`
}

// ErrorResponse is the JSON body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Event is one SSE payload on GET /api/v1/campaigns/{id}/events. The
// SSE `event:` field duplicates Type.
type Event struct {
	// Type is one of "submitted", "claim", "heartbeat", "reclaim",
	// "shard_done", "complete", "failed".
	Type string `json:"type"`
	// Campaign is the campaign ID.
	Campaign string `json:"campaign"`
	// Shard is the shard index for shard-scoped events.
	Shard *int `json:"shard,omitempty"`
	// Worker is the acting worker for claim/heartbeat/shard_done.
	Worker string `json:"worker,omitempty"`
	// State is the campaign state after the event.
	State string `json:"state"`
	// CompletedRuns and TotalRuns snapshot campaign progress.
	CompletedRuns int `json:"completed_runs"`
	TotalRuns     int `json:"total_runs"`
	// Message carries the failure reason on "failed" events.
	Message string `json:"message,omitempty"`
}
