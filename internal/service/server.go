package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"easig/internal/core"
	"easig/internal/experiment"
	"easig/internal/inject"
	"easig/internal/journal"
)

// DefaultLease is the shard lease duration when neither the server
// options nor the submit request override it: long enough that a
// healthy worker heartbeating at lease/3 never loses a shard to a
// scheduling hiccup, short enough that a crashed worker's shards are
// back in circulation quickly.
const DefaultLease = 30 * time.Second

// maxJournalBytes bounds one shard journal upload (a full-protocol
// 27 400-run campaign journals in the low tens of MB; one shard is a
// fraction of that).
const maxJournalBytes = 256 << 20

// Options configures a Server.
type Options struct {
	// Lease is the default shard lease duration (DefaultLease if zero);
	// a SubmitRequest may override it per campaign.
	Lease time.Duration
	// CasesPerShard is the default shard size (1 if zero).
	CasesPerShard int
	// StateDir, when non-empty, persists every campaign (submit
	// request, shard ledger, uploaded shard journals) so a restarted
	// service resumes its campaigns: leases recover from the ledger,
	// completed shards from their journals, and a campaign that was
	// fully uploaded but not yet merged re-merges deterministically.
	StateDir string
	// Now supplies the clock (time.Now if nil); tests pin it.
	Now func() time.Time
	// Logf, when non-nil, receives one line per notable event.
	Logf func(format string, args ...any)
}

// Server is the ficd campaign service: campaign registry, shard lease
// boards, journal validation and merge, and the SSE event hub.
type Server struct {
	opts Options

	mu        sync.Mutex
	seq       int
	campaigns map[string]*campaign
	order     []string
}

// campaign is one submitted campaign's full service-side state.
type campaign struct {
	mu sync.Mutex

	id         string
	req        SubmitRequest // as submitted (normalized)
	spec       experiment.Spec
	experiment string
	engine     inject.Mode // resolved concrete engine
	lease      time.Duration

	shards []experiment.Shard
	board  *experiment.ShardBoard
	total  int

	logs    map[int]*journal.Log // validated shard journals
	ledger  *journal.Writer      // persistent shard ledger (StateDir only)
	dir     string               // campaign state directory (StateDir only)
	state   string
	failure string
	results *experiment.Results

	subs map[chan []byte]struct{}
}

// New builds a Server, restoring persisted campaigns from StateDir.
func New(opts Options) (*Server, error) {
	if opts.Lease <= 0 {
		opts.Lease = DefaultLease
	}
	if opts.CasesPerShard <= 0 {
		opts.CasesPerShard = 1
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Server{opts: opts, campaigns: make(map[string]*campaign)}
	if opts.StateDir != "" {
		if err := s.restore(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Close releases the campaigns' ledger writers.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, c := range s.campaigns {
		c.mu.Lock()
		if c.ledger != nil {
			if err := c.ledger.Close(); err != nil && first == nil {
				first = err
			}
			c.ledger = nil
		}
		c.mu.Unlock()
	}
	return first
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("POST /api/v1/campaigns/{id}/claims", s.handleClaim)
	mux.HandleFunc("POST /api/v1/campaigns/{id}/shards/{shard}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /api/v1/campaigns/{id}/shards/{shard}/journal", s.handleJournal)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/events", s.handleEvents)
	return mux
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr writes an ErrorResponse.
func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// normalize canonicalizes a submit request: kind, exhaustive flag,
// engine resolution, shard and lease defaults.
func (s *Server) normalize(req SubmitRequest) (SubmitRequest, string, inject.Mode, error) {
	req.Kind = strings.ToLower(req.Kind)
	if req.Kind == "exhaustive" {
		req.Spec.Exhaustive = true
	}
	exp, err := experiment.ExperimentName(req.Kind, req.Spec)
	if err != nil {
		return req, "", 0, err
	}
	mode, err := inject.ParseMode(req.Engine)
	if err != nil {
		return req, "", 0, err
	}
	if mode == inject.ModeAuto && exp == experiment.ExperimentExhaustive {
		// Match fic: pruning + memoization is what makes the full fault
		// space affordable.
		mode = inject.ModeMemo
	}
	resolved, err := mode.Resolve(core.NoRecovery{})
	if err != nil {
		return req, "", 0, err
	}
	req.Engine = resolved.String()
	if req.CasesPerShard <= 0 {
		req.CasesPerShard = s.opts.CasesPerShard
	}
	if req.LeaseMs <= 0 {
		req.LeaseMs = s.opts.Lease.Milliseconds()
	}
	return req, exp, resolved, nil
}

// build constructs a campaign (no persistence, no registration) from a
// normalized request.
func (s *Server) build(id string, req SubmitRequest, exp string, mode inject.Mode) (*campaign, error) {
	shards, err := experiment.PlanShards(req.Spec, exp, req.CasesPerShard)
	if err != nil {
		return nil, err
	}
	c := &campaign{
		id:         id,
		req:        req,
		spec:       req.Spec,
		experiment: exp,
		engine:     mode,
		lease:      time.Duration(req.LeaseMs) * time.Millisecond,
		shards:     shards,
		logs:       make(map[int]*journal.Log),
		state:      StateRunning,
		subs:       make(map[chan []byte]struct{}),
	}
	for _, sh := range shards {
		c.total += sh.Runs
	}
	return c, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	req, exp, mode, err := s.normalize(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	s.seq++
	id := "c" + strconv.Itoa(s.seq)
	s.mu.Unlock()

	c, err := s.build(id, req, exp, mode)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.opts.StateDir != "" {
		if err := s.persistNew(c); err != nil {
			writeErr(w, http.StatusInternalServerError, "persisting campaign: %v", err)
			return
		}
	}
	c.board = experiment.NewShardBoard(id, exp, c.shards, c.lease, c.recordClaim)

	s.mu.Lock()
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.mu.Unlock()

	s.logf("campaign %s submitted: %s, %d shards, %d runs, %s engine",
		id, exp, len(c.shards), c.total, c.req.Engine)
	s.broadcast(c, Event{Type: "submitted", Campaign: id})
	writeJSON(w, http.StatusCreated, c.info())
}

// persistNew creates the campaign's state directory: meta.json (the
// normalized submit request) and the shard ledger.
func (s *Server) persistNew(c *campaign) error {
	c.dir = filepath.Join(s.opts.StateDir, c.id)
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	meta, err := json.MarshalIndent(c.req, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(c.dir, "meta.json"), meta, 0o644); err != nil {
		return err
	}
	led, err := journal.Create(filepath.Join(c.dir, "ledger.jsonl"))
	if err != nil {
		return err
	}
	c.ledger = led
	return nil
}

// recordClaim is the board's ledger sink.
func (c *campaign) recordClaim(cl journal.Claim) error {
	if c.ledger == nil {
		return nil
	}
	cl.Experiment = c.experiment
	if cl.Kind == journal.KindShardDone {
		return c.ledger.ShardDone(cl)
	}
	return c.ledger.Claim(cl)
}

// restore rebuilds campaigns from the state directory.
func (s *Server) restore() error {
	entries, err := os.ReadDir(s.opts.StateDir)
	if err != nil {
		if os.IsNotExist(err) {
			return os.MkdirAll(s.opts.StateDir, 0o755)
		}
		return err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	// Restore in submission order (c1, c2, ...).
	sort.Slice(ids, func(i, j int) bool {
		ni, _ := strconv.Atoi(strings.TrimPrefix(ids[i], "c"))
		nj, _ := strconv.Atoi(strings.TrimPrefix(ids[j], "c"))
		return ni < nj
	})
	for _, id := range ids {
		if err := s.restoreCampaign(id); err != nil {
			return fmt.Errorf("service: restoring campaign %s: %w", id, err)
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "c")); err == nil && n > s.seq {
			s.seq = n
		}
	}
	return nil
}

func (s *Server) restoreCampaign(id string) error {
	dir := filepath.Join(s.opts.StateDir, id)
	meta, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return err
	}
	var req SubmitRequest
	if err := json.Unmarshal(meta, &req); err != nil {
		return err
	}
	req, exp, mode, err := s.normalize(req)
	if err != nil {
		return err
	}
	c, err := s.build(id, req, exp, mode)
	if err != nil {
		return err
	}
	c.dir = dir

	// Replay the shard ledger into the lease board. A lease that was
	// live at the crash is honored until it expires; its worker's
	// heartbeats keep it alive across the restart.
	ledPath := filepath.Join(dir, "ledger.jsonl")
	var claims []journal.Claim
	if led, err := journal.Load(ledPath); err == nil {
		claims = led.Claims
	} else if !os.IsNotExist(err) {
		return err
	}
	c.board = experiment.RestoreShardBoard(id, exp, c.shards, c.lease, claims, c.recordClaim)

	// Reload the uploaded shard journals of completed shards.
	for _, st := range c.board.Statuses() {
		if st.State != experiment.ShardDone {
			continue
		}
		log, err := journal.Load(filepath.Join(dir, shardFile(st.Index)))
		if err != nil {
			return fmt.Errorf("shard %d journal: %w", st.Index, err)
		}
		if err := experiment.ValidateShardJournal(c.spec, exp, st.Shard, c.req.Engine, log); err != nil {
			return err
		}
		c.logs[st.Index] = log
	}

	led, err := journal.Open(ledPath)
	if os.IsNotExist(err) {
		led, err = journal.Create(ledPath)
	}
	if err != nil {
		return err
	}
	c.ledger = led

	// A campaign whose last upload landed just before the crash —
	// including mid-merge — re-merges here; merge is a deterministic
	// replay, so the restart cannot change a table cell.
	if c.board.Done() {
		c.merge()
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.logf("campaign %s restored: %s, state %s", id, exp, c.state)
	return nil
}

func shardFile(idx int) string { return fmt.Sprintf("shard-%d.jsonl", idx) }

// info snapshots the campaign summary. Callers need not hold c.mu.
func (c *campaign) info() CampaignInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.infoLocked()
}

func (c *campaign) infoLocked() CampaignInfo {
	info := CampaignInfo{
		ID:         c.id,
		Kind:       c.req.Kind,
		Experiment: c.experiment,
		Engine:     c.req.Engine,
		State:      c.state,
		ShardCount: len(c.shards),
		TotalRuns:  c.total,
		LeaseMs:    c.lease.Milliseconds(),
		Error:      c.failure,
	}
	for _, st := range c.board.Statuses() {
		switch st.State {
		case experiment.ShardDone:
			info.DoneShards++
			info.CompletedRuns += st.Runs
		case experiment.ShardLeased:
			info.CompletedRuns += st.Completed
		}
	}
	return info
}

// lookup resolves a campaign by path ID.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *campaign {
	s.mu.Lock()
	c := s.campaigns[r.PathValue("id")]
	s.mu.Unlock()
	if c == nil {
		writeErr(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
	}
	return c
}

// shardArg parses the {shard} path segment against the campaign plan.
func shardArg(w http.ResponseWriter, r *http.Request, c *campaign) (int, bool) {
	n, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || n < 0 || n >= len(c.shards) {
		writeErr(w, http.StatusNotFound, "no shard %q in campaign %s", r.PathValue("shard"), c.id)
		return 0, false
	}
	return n, true
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	resp := ListResponse{Campaigns: []CampaignInfo{}}
	for _, id := range ids {
		s.mu.Lock()
		c := s.campaigns[id]
		s.mu.Unlock()
		if c != nil {
			resp.Campaigns = append(resp.Campaigns, c.info())
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	c.mu.Lock()
	resp := StatusResponse{
		CampaignInfo: c.infoLocked(),
		Spec:         c.spec,
		Shards:       c.board.Statuses(),
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	var req ClaimRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil || req.Worker == "" {
		writeErr(w, http.StatusBadRequest, "claim needs a worker name")
		return
	}
	c.mu.Lock()
	if c.state != StateRunning {
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, ClaimResponse{Done: true})
		return
	}
	now := s.opts.Now()
	for _, sh := range c.board.ReclaimExpired(now) {
		idx := sh.Index
		s.logf("campaign %s shard %d lease expired, reclaimed", c.id, idx)
		s.broadcastLocked(c, Event{Type: "reclaim", Campaign: c.id, Shard: &idx})
	}
	sh, ok, err := c.board.Claim(req.Worker, now)
	if err != nil {
		c.mu.Unlock()
		writeErr(w, http.StatusInternalServerError, "recording claim: %v", err)
		return
	}
	if !ok {
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, ClaimResponse{Wait: true})
		return
	}
	spec := c.spec
	spec.Cases = sh.Cases
	resp := ClaimResponse{
		Shard:      &sh,
		Spec:       &spec,
		Kind:       c.req.Kind,
		Experiment: c.experiment,
		Engine:     c.req.Engine,
		LeaseMs:    c.lease.Milliseconds(),
	}
	idx := sh.Index
	s.logf("campaign %s shard %d leased to %s", c.id, idx, req.Worker)
	s.broadcastLocked(c, Event{Type: "claim", Campaign: c.id, Shard: &idx, Worker: req.Worker})
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	n, ok := shardArg(w, r, c)
	if !ok {
		return
	}
	var req HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil || req.Worker == "" {
		writeErr(w, http.StatusBadRequest, "heartbeat needs a worker name")
		return
	}
	c.mu.Lock()
	err := c.board.Heartbeat(req.Worker, n, req.CompletedRuns, s.opts.Now())
	if err == nil {
		s.broadcastLocked(c, Event{Type: "heartbeat", Campaign: c.id, Shard: &n, Worker: req.Worker})
	}
	c.mu.Unlock()
	if err != nil {
		// The lease was lost (expired and reclaimed, or completed by
		// another worker): 409 tells the worker to abandon the shard.
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	n, ok := shardArg(w, r, c)
	if !ok {
		return
	}
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeErr(w, http.StatusBadRequest, "journal upload needs a ?worker= name")
		return
	}
	log, err := journal.Read(http.MaxBytesReader(w, r.Body, maxJournalBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "parsing journal: %v", err)
		return
	}
	// Validate outside the lock: completeness, seeds, provenance. An
	// invalid upload leaves the lease untouched — the worker keeps the
	// shard (a truncated upload will be re-sent; a foreign one 422s).
	if err := experiment.ValidateShardJournal(c.spec, c.experiment, c.shards[n], c.req.Engine, log); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}

	c.mu.Lock()
	err = c.board.Complete(worker, n, c.shards[n].Runs, s.opts.Now())
	switch {
	case err == experiment.ErrShardComplete:
		// Benign duplicate from a reclaimed lease's original worker:
		// determinism makes both uploads byte-identical, so the redundant
		// copy is acknowledged and discarded.
		resp := CompleteResponse{Duplicate: true, Campaign: c.infoLocked()}
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	case err != nil:
		c.mu.Unlock()
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	c.logs[n] = log
	if c.dir != "" {
		if perr := persistShardJournal(filepath.Join(c.dir, shardFile(n)), log); perr != nil {
			s.logf("campaign %s shard %d: persisting journal: %v", c.id, n, perr)
		}
	}
	s.logf("campaign %s shard %d completed by %s (%d/%d shards)",
		c.id, n, worker, len(c.logs), len(c.shards))
	s.broadcastLocked(c, Event{Type: "shard_done", Campaign: c.id, Shard: &n, Worker: worker})
	if c.board.Done() {
		c.merge()
		if c.state == StateComplete {
			s.logf("campaign %s complete: %d runs merged", c.id, c.total)
			s.broadcastLocked(c, Event{Type: "complete", Campaign: c.id})
		} else {
			s.logf("campaign %s failed: %s", c.id, c.failure)
			s.broadcastLocked(c, Event{Type: "failed", Campaign: c.id, Message: c.failure})
		}
		c.closeSubsLocked()
	}
	resp := CompleteResponse{Accepted: true, Campaign: c.infoLocked()}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// persistShardJournal writes a validated shard journal to the campaign
// state directory (render-and-rename, so a crash never leaves a partial
// file that a restore would reject).
func persistShardJournal(path string, log *journal.Log) error {
	tmp := path + ".tmp"
	rep := experiment.Reporter{Format: experiment.JournalFormat{}, Output: experiment.FileOutput{Path: tmp}}
	if err := rep.Report(&experiment.Results{Journal: log}); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// merge folds the shard journals into the campaign results. Caller
// holds c.mu.
func (c *campaign) merge() {
	logs := make([]*journal.Log, 0, len(c.logs))
	for i := 0; i < len(c.shards); i++ {
		if l := c.logs[i]; l != nil {
			logs = append(logs, l)
		}
	}
	res, err := experiment.MergeShards(c.spec, c.experiment, c.engine, logs)
	if err != nil {
		c.state = StateFailed
		c.failure = err.Error()
		return
	}
	c.results = res
	c.state = StateComplete
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	format, err := experiment.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.mu.Lock()
	res, state, failure := c.results, c.state, c.failure
	c.mu.Unlock()
	switch state {
	case StateFailed:
		writeErr(w, http.StatusConflict, "campaign %s failed: %s", c.id, failure)
		return
	case StateRunning:
		writeErr(w, http.StatusConflict, "campaign %s is still running", c.id)
		return
	}
	switch format.(type) {
	case experiment.JSONFormat:
		w.Header().Set("Content-Type", "application/json")
	case experiment.JournalFormat:
		w.Header().Set("Content-Type", "application/x-ndjson")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	rep := experiment.Reporter{Format: format, Output: experiment.WriterOutput{W: w}}
	if err := rep.Report(res); err != nil {
		s.logf("campaign %s: rendering results: %v", c.id, err)
	}
}

// sseEvent frames one Event as an SSE message.
func sseEvent(ev Event) []byte {
	data, _ := json.Marshal(ev)
	return []byte("event: " + ev.Type + "\ndata: " + string(data) + "\n\n")
}

// fill stamps the campaign snapshot fields onto an event. Caller holds
// c.mu.
func (c *campaign) fill(ev Event) Event {
	info := c.infoLocked()
	ev.State = info.State
	ev.CompletedRuns = info.CompletedRuns
	ev.TotalRuns = info.TotalRuns
	return ev
}

// broadcast delivers an event to every subscriber.
func (s *Server) broadcast(c *campaign, ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.broadcastLocked(c, ev)
}

// broadcastLocked is broadcast with c.mu held. Sends never block: a
// subscriber whose channel is full misses the event (it can poll the
// status endpoint; SSE is a progress feed, not a reliable log).
func (s *Server) broadcastLocked(c *campaign, ev Event) {
	msg := sseEvent(c.fill(ev))
	for ch := range c.subs {
		select {
		case ch <- msg:
		default:
		}
	}
}

// closeSubsLocked ends every event stream (terminal campaign). Caller
// holds c.mu.
func (c *campaign) closeSubsLocked() {
	for ch := range c.subs {
		close(ch)
	}
	c.subs = make(map[chan []byte]struct{})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	c.mu.Lock()
	// Every stream opens with a status snapshot.
	snap := sseEvent(c.fill(Event{Type: "status", Campaign: c.id}))
	terminal := c.state != StateRunning
	var ch chan []byte
	if !terminal {
		ch = make(chan []byte, 64)
		c.subs[ch] = struct{}{}
	}
	c.mu.Unlock()

	w.Write(snap)
	fl.Flush()
	if terminal {
		return
	}
	defer func() {
		c.mu.Lock()
		delete(c.subs, ch)
		c.mu.Unlock()
	}()
	for {
		select {
		case msg, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(msg); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
