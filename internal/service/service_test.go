package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"easig/internal/experiment"
	"easig/internal/inject"
	"easig/internal/target"
)

// testSpec is the scaled campaign the service tests distribute: 4
// cases, 2 versions — the same shape the in-process resume tests use.
func testSpec(seed int64) experiment.Spec {
	return experiment.Spec{
		Grid:          2,
		ObservationMs: 1500,
		Seed:          seed,
		Versions:      []target.Version{target.VersionAll, target.VersionEA4},
		E2:            inject.E2Spec{RAM: 8, Stack: 4},
	}
}

// baselineText renders the single-process reference: the same campaign
// Spec run in one process, through the same TextFormat the service
// serves — the bytes a distributed run must reproduce exactly.
func baselineText(t *testing.T, spec experiment.Spec) string {
	t.Helper()
	e1, err := experiment.RunE1(experiment.Config{Spec: spec, Exec: experiment.Exec{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep := experiment.Reporter{Format: experiment.TextFormat{}, Output: experiment.WriterOutput{W: &buf}}
	if err := rep.Report(&experiment.Results{Spec: spec, E1: e1}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// startServer launches a ficd API on an httptest listener.
func startServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// submit posts a campaign and returns its info.
func submit(t *testing.T, base string, req SubmitRequest) CampaignInfo {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	var info CampaignInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// fetch GETs a path and returns status and body.
func fetch(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// runWorker attaches one worker client until it drains.
func runWorker(t *testing.T, base, name string) chan error {
	t.Helper()
	w, err := NewWorker(WorkerOptions{
		Server: base, Name: name, Workers: 2,
		Poll: 50 * time.Millisecond,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	return done
}

func waitDrained(t *testing.T, done ...chan error) {
	t.Helper()
	for i, ch := range done {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("worker %d: %v", i, err)
			}
		case <-time.After(3 * time.Minute):
			t.Fatalf("worker %d did not drain", i)
		}
	}
}

func TestDistributedCampaignByteIdenticalTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scaled campaign several times")
	}
	spec := testSpec(101010)
	want := baselineText(t, spec)

	_, ts := startServer(t, Options{Logf: t.Logf})
	info := submit(t, ts.URL, SubmitRequest{Kind: "e1", Spec: spec})
	if info.ShardCount != 4 || info.TotalRuns == 0 || info.State != StateRunning {
		t.Fatalf("submit info = %+v", info)
	}

	// Two worker processes share the campaign.
	waitDrained(t, runWorker(t, ts.URL, "alpha"), runWorker(t, ts.URL, "beta"))

	code, body := fetch(t, ts.URL, "/api/v1/campaigns/"+info.ID)
	if code != http.StatusOK {
		t.Fatalf("status: HTTP %d: %s", code, body)
	}
	var st StatusResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete || st.DoneShards != 4 || st.CompletedRuns != st.TotalRuns {
		t.Fatalf("campaign did not complete: %+v", st.CampaignInfo)
	}

	// The merged tables are byte-identical to the single-process run.
	code, got := fetch(t, ts.URL, "/api/v1/campaigns/"+info.ID+"/results?format=text")
	if code != http.StatusOK {
		t.Fatalf("results: HTTP %d", code)
	}
	if got != want {
		t.Fatalf("distributed tables differ from single-process run:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// JSON and journal formats serve from the same results.
	if code, body := fetch(t, ts.URL, "/api/v1/campaigns/"+info.ID+"/results?format=json"); code != http.StatusOK || !strings.Contains(body, `"experiment": "E1"`) {
		t.Fatalf("json results: HTTP %d: %.120s", code, body)
	}
	if code, body := fetch(t, ts.URL, "/api/v1/campaigns/"+info.ID+"/results?format=journal"); code != http.StatusOK || !strings.Contains(body, `"kind":"header"`) {
		t.Fatalf("journal results: HTTP %d: %.120s", code, body)
	}
}

func TestKilledWorkerLeaseExpiryByteIdenticalTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scaled campaign several times")
	}
	spec := testSpec(121212)
	want := baselineText(t, spec)

	_, ts := startServer(t, Options{Logf: t.Logf})
	// Short lease so the dead worker's shard is reclaimed quickly.
	info := submit(t, ts.URL, SubmitRequest{Kind: "e1", Spec: spec, CasesPerShard: 2, LeaseMs: 400})

	// Worker "doomed" claims a shard and is killed mid-campaign: it
	// never heartbeats and never uploads.
	body, _ := json.Marshal(ClaimRequest{Worker: "doomed"})
	resp, err := http.Post(ts.URL+"/api/v1/campaigns/"+info.ID+"/claims", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var cl ClaimResponse
	if err := json.NewDecoder(resp.Body).Decode(&cl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cl.Shard == nil {
		t.Fatalf("doomed worker got no shard: %+v", cl)
	}

	// The survivor finishes the whole campaign, including the dead
	// worker's shard once its lease expires.
	waitDrained(t, runWorker(t, ts.URL, "survivor"))

	code, got := fetch(t, ts.URL, "/api/v1/campaigns/"+info.ID+"/results?format=text")
	if code != http.StatusOK {
		t.Fatalf("results: HTTP %d: %s", code, got)
	}
	if got != want {
		t.Fatal("tables after lease-expiry reclaim differ from single-process run")
	}

	// The doomed worker's late heartbeat is rejected.
	hb, _ := json.Marshal(HeartbeatRequest{Worker: "doomed", CompletedRuns: 1})
	resp, err = http.Post(fmt.Sprintf("%s/api/v1/campaigns/%s/shards/%d/heartbeat", ts.URL, info.ID, cl.Shard.Index),
		"application/json", bytes.NewReader(hb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("late heartbeat: HTTP %d, want 409", resp.StatusCode)
	}
}

func TestServiceRestartRestoresCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scaled campaign several times")
	}
	spec := testSpec(131313)
	want := baselineText(t, spec)
	dir := t.TempDir()

	srv, ts := startServer(t, Options{StateDir: dir, Logf: t.Logf})
	info := submit(t, ts.URL, SubmitRequest{Kind: "e1", Spec: spec, CasesPerShard: 2})
	waitDrained(t, runWorker(t, ts.URL, "alpha"))
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// A restarted service restores the campaign from its state
	// directory — including the merged results, recomputed from the
	// persisted shard journals (the mid-merge-restart failure mode).
	_, ts2 := startServer(t, Options{StateDir: dir, Logf: t.Logf})
	code, body := fetch(t, ts2.URL, "/api/v1/campaigns/"+info.ID)
	if code != http.StatusOK {
		t.Fatalf("restored status: HTTP %d: %s", code, body)
	}
	var st StatusResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateComplete {
		t.Fatalf("restored campaign state = %s, want complete", st.State)
	}
	code, got := fetch(t, ts2.URL, "/api/v1/campaigns/"+info.ID+"/results?format=text")
	if code != http.StatusOK || got != want {
		t.Fatalf("restored results differ (HTTP %d)", code)
	}

	// A new submission on the restarted service gets a fresh ID.
	info2 := submit(t, ts2.URL, SubmitRequest{Kind: "e1", Spec: spec})
	if info2.ID == info.ID {
		t.Fatalf("restarted service reused campaign ID %s", info2.ID)
	}
}

func TestEventsStreamAndAPIErrors(t *testing.T) {
	spec := testSpec(141414)
	_, ts := startServer(t, Options{})
	info := submit(t, ts.URL, SubmitRequest{Kind: "e1", Spec: spec})

	// The SSE stream opens with a status snapshot.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/v1/campaigns/"+info.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var first []string
	for sc.Scan() && len(first) < 2 {
		if line := sc.Text(); line != "" {
			first = append(first, line)
		}
	}
	if len(first) < 2 || first[0] != "event: status" || !strings.Contains(first[1], `"total_runs"`) {
		t.Fatalf("SSE opening = %q", first)
	}

	// Results before completion conflict; unknown campaigns 404;
	// unknown formats 400.
	if code, _ := fetch(t, ts.URL, "/api/v1/campaigns/"+info.ID+"/results"); code != http.StatusConflict {
		t.Fatalf("early results: HTTP %d, want 409", code)
	}
	if code, _ := fetch(t, ts.URL, "/api/v1/campaigns/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown campaign: HTTP %d, want 404", code)
	}
	if code, _ := fetch(t, ts.URL, "/api/v1/campaigns/"+info.ID+"/results?format=xml"); code != http.StatusBadRequest {
		t.Fatalf("unknown format: HTTP %d, want 400", code)
	}

	// Submissions with broken kinds or pre-set Cases are rejected.
	for _, bad := range []SubmitRequest{
		{Kind: "e9", Spec: spec},
		{Kind: "e1", Spec: experiment.Spec{Grid: 2, Cases: []int{0}}},
		{Kind: "e1", Spec: spec, Engine: "warp"},
	} {
		body, _ := json.Marshal(bad)
		resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad submit %+v: HTTP %d, want 400", bad, resp.StatusCode)
		}
	}

	// Journal uploads validate: garbage bodies are rejected and leave
	// the shard claimable.
	u := fmt.Sprintf("%s/api/v1/campaigns/%s/shards/0/journal?worker=w", ts.URL, info.ID)
	up, err := http.Post(u, "application/x-ndjson", strings.NewReader("{\"kind\":\"header\",\"experiment\":\"E1\",\"seed\":9}\n"))
	if err != nil {
		t.Fatal(err)
	}
	up.Body.Close()
	if up.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bogus journal upload: HTTP %d, want 422", up.StatusCode)
	}
}
