package easig

import (
	"io"

	"easig/internal/core"
	"easig/internal/experiment"
	"easig/internal/inject"
	"easig/internal/physics"
	"easig/internal/target"
)

// Reproduction entry points: the paper's case study and evaluation,
// re-exported so the examples, tools and benchmarks drive everything
// through the public package.

// TestCase is one experiment input: aircraft mass and engagement
// velocity, a point of the §3.4 test-case grid.
type TestCase = physics.TestCase

// Grid returns an n x n test-case grid over the paper's mass and
// velocity ranges; Grid(5) is the paper's 25-case set.
func Grid(n int) []TestCase { return physics.Grid(n) }

// Version selects which executable assertions are active in the
// target software (the paper's eight versions).
type Version = target.Version

// The software versions of the paper's §3.4.
const (
	VersionAll  = target.VersionAll
	VersionEA1  = target.VersionEA1
	VersionEA2  = target.VersionEA2
	VersionEA3  = target.VersionEA3
	VersionEA4  = target.VersionEA4
	VersionEA5  = target.VersionEA5
	VersionEA6  = target.VersionEA6
	VersionEA7  = target.VersionEA7
	VersionNone = target.VersionNone
)

// Versions returns the paper's eight software versions.
func Versions() []Version { return target.Versions() }

// ArrestingSystem is the complete experiment target of the paper's §3:
// environment simulator, master node and slave node.
type ArrestingSystem = target.System

// ArrestingSystemConfig assembles an ArrestingSystem (test case,
// software version, sinks, recovery, Table 4 assertion placement).
type ArrestingSystemConfig = target.SystemConfig

// NewArrestingSystem builds and boots a system for one run.
func NewArrestingSystem(cfg ArrestingSystemConfig) (*ArrestingSystem, error) {
	return target.NewSystem(cfg)
}

// InjectionError is one injectable bit-flip error (a Table 6 E1 error
// or a random E2 error).
type InjectionError = inject.Error

// InjectionPolicy is the time-triggered injection schedule of §3.4
// (20 ms period at paper defaults).
type InjectionPolicy = inject.Policy

// RunConfig describes one fault-injection experiment run: one
// <mass, velocity, error> combination against one software version.
type RunConfig = inject.RunConfig

// RunResult is one run's readout record: what the paper's FIC3 stores
// from the detection pin and the environment simulator.
type RunResult = inject.RunResult

// Run executes one §3.4 experiment run.
func Run(cfg RunConfig) (RunResult, error) { return inject.Run(cfg) }

// BuildE1 builds the paper's Table 6 error set (112 errors).
func BuildE1() []InjectionError { return inject.BuildE1() }

// BuildE2 builds a paper-style random error set (150 RAM + 50 stack at
// default spec).
func BuildE2(seed int64) []InjectionError {
	return inject.BuildE2(inject.DefaultE2Spec(), seed)
}

// BuildExhaustive builds the full RAM/stack fault space: one error per
// (byte, bit) position, 11 400 errors — the measured-Pdetect
// counterpart of the paper's 200-error E2 sample.
func BuildExhaustive() []InjectionError { return inject.BuildExhaustive() }

// Runner is the unified execution contract behind campaigns: literal
// from-scratch simulation, the fast-forward snapshot engine, and the
// memoizing/pruning runner all serve errors through it.
type Runner = inject.Runner

// RunnerStats accounts how a Runner served its errors (simulated,
// liveness-pruned, memo hits).
type RunnerStats = inject.RunnerStats

// RunnerStatsReporter is implemented by runners that track RunnerStats.
type RunnerStatsReporter = inject.StatsReporter

// EngineMode selects the campaign execution engine.
type EngineMode = inject.Mode

// The engine modes (Discrete-by-value, like Version and Placement).
const (
	// EngineAuto resolves to EngineSnapshot for detection-only
	// campaigns and EngineLiteral otherwise (the zero value).
	EngineAuto = inject.ModeAuto
	// EngineLiteral simulates every run from time zero, as the paper's
	// FIC3 hardware did.
	EngineLiteral = inject.ModeLiteral
	// EngineSnapshot serves each test case from one fast-forwarded
	// checkpoint (PR 4's engine).
	EngineSnapshot = inject.ModeSnapshot
	// EngineMemo adds def/use liveness pruning and outcome memoization
	// on top of the snapshot engine.
	EngineMemo = inject.ModeMemo
)

// ParseEngineMode parses an -engine flag value
// (auto|literal|snapshot|memo).
func ParseEngineMode(s string) (EngineMode, error) { return inject.ParseMode(s) }

// NewRunner builds the mode's runner for one test case; campaigns
// compose runners per worker batch through the same constructor.
func NewRunner(mode EngineMode, cfg RunConfig) (Runner, error) {
	return inject.NewRunner(mode, cfg)
}

// CampaignSpec is the serializable protocol half of a campaign
// configuration: everything that determines which runs exist and what
// their outcomes are (grid, window, schedule, seed, error sets,
// versions, placement).
type CampaignSpec = experiment.Spec

// CampaignExec is the execution half: engine mode, worker pool,
// recovery policy, context, journal, resume and progress hooks. It
// cannot change a table cell.
type CampaignExec = experiment.Exec

// CampaignConfig parameterises a campaign; the zero value runs the
// paper's full §3.4 protocol. It embeds CampaignSpec (the serializable
// protocol) and CampaignExec (dispatch options). Set Journal, Resume,
// Progress and Context (see JournalWriter, JournalLog and
// ProgressEvent) to record, resume and observe a long campaign.
type CampaignConfig = experiment.Config

// E1Result aggregates an E1 campaign (Tables 7 and 8).
type E1Result = experiment.E1Result

// E2Result aggregates an E2 campaign (Table 9).
type E2Result = experiment.E2Result

// RunE1 executes the E1 campaign (22 400 runs at full scale).
func RunE1(cfg CampaignConfig) (*E1Result, error) { return experiment.RunE1(cfg) }

// RunE2 executes the E2 campaign (5000 runs at full scale).
func RunE2(cfg CampaignConfig) (*E2Result, error) { return experiment.RunE2(cfg) }

// Table renderers for the paper's tables.
var (
	// Table4 renders the target signal classification.
	Table4 = experiment.Table4
	// Table6 renders the E1 error-set distribution.
	Table6 = experiment.Table6
	// Table7 renders E1 detection probabilities.
	Table7 = experiment.Table7
	// Table8 renders E1 detection latencies.
	Table8 = experiment.Table8
	// Table9 renders E2 results.
	Table9 = experiment.Table9
	// Figure2 renders the three continuous-signal example traces.
	Figure2 = experiment.Figure2
)

// WriteJSON writes machine-readable campaign results (either argument
// may be nil).
func WriteJSON(w io.Writer, e1 *E1Result, e2 *E2Result) error {
	return experiment.WriteJSON(w, e1, e2)
}

// DetectionBreakdown renders the per-constraint detection breakdown of
// one E1 version (which Table 2/3 assertion kind fired).
func DetectionBreakdown(e1 *E1Result, v Version) string {
	return experiment.TestBreakdown(e1, v)
}

// ModelFit is the paper's §2.4 Pdetect model fitted from both
// campaigns.
type ModelFit = experiment.ModelFit

// FitModel derives the §2.4 model (Pem, Pds, solved Pprop) from
// campaign results.
func FitModel(e1 *E1Result, e2 *E2Result) (ModelFit, error) {
	return experiment.FitModel(e1, e2)
}

// VerifyNominal checks the §3.4 precondition: the fault-free grid is
// detection- and failure-free for every version.
func VerifyNominal(cfg CampaignConfig) error { return experiment.VerifyNominal(cfg) }

// Placement selects consumer-side (paper) or producer-side assertion
// execution for the pressure signals (ablation).
type Placement = target.Placement

// The placements.
const (
	PlacementConsumer = target.PlacementConsumer
	PlacementProducer = target.PlacementProducer
)

// Headline carries the paper's abstract-level headline numbers (the
// 74% / >99% detection probabilities) computed from campaign results.
type Headline = experiment.Headline

// ComputeHeadline extracts the headline numbers from campaign results.
func ComputeHeadline(e1 *E1Result, e2 *E2Result) Headline {
	return experiment.ComputeHeadline(e1, e2)
}

// DetectionOnly is the campaign default policy: violations raise the
// detection pin but leave state unrepaired, matching the paper's
// observed failure rates under injection.
func DetectionOnly() RecoveryPolicy { return core.NoRecovery{} }
