package main

import (
	"flag"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestFlagValidation(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	cases := [][]string{
		{"-policy", "bogus"},
		{"stray-arg"},
	}
	for _, args := range cases {
		fs := flag.NewFlagSet("sigmond", flag.ContinueOnError)
		fs.SetOutput(devnull)
		if err := run(fs, args, devnull); err == nil {
			t.Errorf("args %q accepted", args)
		}
	}
}

// TestServeAndInterrupt boots the real binary path: listen on an
// ephemeral port, answer /healthz, then drain cleanly on SIGINT — the
// lifecycle the CI smoke job scripts against.
func TestServeAndInterrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	bin := t.TempDir() + "/sigmond"
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building sigmond: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-shards", "2")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first log line carries the bound address.
	buf := make([]byte, 4096)
	n, err := stderr.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	line := string(buf[:n])
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("no listen line in %q", line)
	}
	addr := strings.Fields(line[i+len(marker):])[0]

	var resp *http.Response
	for attempt := 0; attempt < 50; attempt++ {
		resp, err = http.Get("http://" + addr + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("healthz never came up: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sigmond exited uncleanly on SIGINT: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("sigmond did not drain within 15s of SIGINT")
	}
}
