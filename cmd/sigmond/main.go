// Command sigmond is the streaming assertion-monitoring service: a
// long-running HTTP server that multiplexes thousands of independent
// plant signal streams over the paper's Table 4 executable assertions.
// Each stream gets its own monitor instances; streams are partitioned
// into shards, each shard owning a goroutine, a bounded ingest queue
// and a batched detection journal, so ingestion scales with cores and
// the per-sample hot path performs zero heap allocations.
//
// Usage:
//
//	sigmond -listen :7071 -shards 4 -max-streams 4096 -journal /var/lib/sigmond
//
// then replay traces against it with the load-generator client:
//
//	sigmon -replay -server http://localhost:7071 -streams 64 -ticks 5000 -verify
//
// Clients POST binary sample batches (the wire format in SIGMOND.md)
// to /api/v1/ingest; detections stream from /api/v1/detections and
// self-metrics (signals/s, per-shard queue depth, p99 tick latency)
// from /api/v1/metrics. The service's guarantee is observer
// equivalence: per stream, the detections are byte-identical to what
// an inline monitor suite embedded in the plant node would report.
//
// Flags:
//
//	-listen addr       HTTP listen address (default :7071)
//	-shards n          monitor-pool shards (default 4)
//	-max-streams n     stream-ID space bound (default 4096)
//	-queue n           per-shard ingest queue capacity in batches (default 64)
//	-policy p          backpressure policy: block or shed (default block)
//	-journal dir       detection journal directory (default: in-memory)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"easig/internal/stream"
)

func main() {
	if err := run(flag.CommandLine, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sigmond:", err)
		os.Exit(1)
	}
}

// run executes the service until the listener fails or an interrupt
// arrives. The bound address is logged to logw ("listening on ..."),
// which is how the smoke test and scripts find a :0 listener's port.
func run(fs *flag.FlagSet, args []string, logw *os.File) error {
	var (
		listen     = fs.String("listen", ":7071", "HTTP listen address")
		shards     = fs.Int("shards", 4, "monitor-pool shards")
		maxStreams = fs.Int("max-streams", 4096, "stream-ID space bound")
		queue      = fs.Int("queue", 64, "per-shard ingest queue capacity in batches")
		policy     = fs.String("policy", "block", "backpressure policy: block (never drop) or shed (drop on full queue)")
		journalDir = fs.String("journal", "", "detection journal directory (empty = in-memory)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	cfg := stream.Config{
		Shards:       *shards,
		MaxStreams:   *maxStreams,
		QueueBatches: *queue,
		JournalDir:   *journalDir,
	}
	switch *policy {
	case "block":
		cfg.Policy = stream.PolicyBlock
	case "shed":
		cfg.Policy = stream.PolicyShed
	default:
		return fmt.Errorf("unknown -policy %q (want block or shed)", *policy)
	}

	svc, err := stream.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		svc.Close()
		return err
	}
	hs := &http.Server{Handler: svc.Handler()}

	// Ctrl-C drains cleanly: the listener stops, in-flight ingests
	// finish, the shard queues are applied to the last sample, and the
	// detection journals are flushed and closed before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "sigmond: listening on %s (%d shards, %d streams max, %s policy", ln.Addr(), cfg.Shards, cfg.MaxStreams, *policy)
	if cfg.JournalDir != "" {
		fmt.Fprintf(logw, ", journals in %s", cfg.JournalDir)
	}
	fmt.Fprintln(logw, ")")

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(logw, "sigmond: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		svc.Close()
		return err
	}
	return svc.Close()
}
