package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"easig/internal/experiment"
	"easig/internal/inject"
	"easig/internal/journal"
	"easig/internal/optimize"
)

// runOptimize is the `fic optimize` subcommand: sweep the full detector
// configuration lattice — every assertion subset x placement x recovery
// setting — score each point on measured detection probability, mean
// detection latency and per-tick CPU cost, and print the Pareto front
// with a recommended configuration per failure-cost budget. See
// OPTIMIZER.md for the cost model and the dominance rules.
func runOptimize(args []string) error {
	fs := flag.NewFlagSet("fic optimize", flag.ExitOnError)
	var (
		errorsF   = fs.String("errors", "e1", "swept error set: e1, e2 or exhaustive")
		grid      = fs.Int("grid", 5, "test-case grid edge (5 = the paper's 25 cases)")
		seed      = fs.Int64("seed", 2000, "sweep seed")
		workers   = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		period    = fs.Int64("period", 20, "injection period in ms")
		start     = fs.Int64("start", 500, "first injection time in ms")
		observe   = fs.Int64("observe", 40000, "observation period in ms")
		engineF   = fs.String("engine", "auto", "probe engine: auto (memo), literal, snapshot or memo")
		journalF  = fs.String("journal", "", "record the calibration and every probe to this JSONL journal")
		resumeF   = fs.String("resume", "", "resume an interrupted sweep from its journal (keeps appending to it)")
		progressF = fs.Bool("progress", false, "render a periodic progress line on stderr")
		formatF   = fs.String("format", "text", "report format: text, json or csv")
		outF      = fs.String("out", "", "write the report to this file instead of stdout")
		budgetsF  = fs.String("budgets", "", "comma-separated failure-cost budgets to recommend under, e.g. 0,1ms,1s,1000s")
		calTicks  = fs.Int("cal-ticks", 0, "calibration ticks per timed repetition (0 = default)")
		calReps   = fs.Int("cal-reps", 0, "calibration repetitions, minimum taken (0 = default)")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	mode, err := inject.ParseMode(*engineF)
	if err != nil {
		return err
	}
	format, err := optimize.ParseFormat(*formatF)
	if err != nil {
		return err
	}
	budgets, err := parseBudgets(*budgetsF)
	if err != nil {
		return err
	}

	spec := optimize.Spec{
		Errors:        *errorsF,
		Grid:          *grid,
		Seed:          *seed,
		ObservationMs: *observe,
		Policy:        inject.Policy{StartMs: *start, PeriodMs: *period},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opt := optimize.Options{
		Mode:        mode,
		Workers:     *workers,
		Context:     ctx,
		Budgets:     budgets,
		Calibration: optimize.CalibrateOptions{Ticks: *calTicks, Reps: *calReps},
	}

	if *journalF != "" && *resumeF != "" {
		return fmt.Errorf("-journal and -resume are exclusive: a resumed sweep keeps appending to its own journal")
	}
	var jw *journal.Writer
	switch {
	case *journalF != "":
		if jw, err = journal.Create(*journalF); err != nil {
			return err
		}
	case *resumeF != "":
		log, err := journal.Load(*resumeF)
		if err != nil {
			return err
		}
		if jw, err = journal.Open(*resumeF); err != nil {
			return err
		}
		opt.Resume = log
		fmt.Fprintf(os.Stderr, "fic: resuming sweep from %s (%d journaled probes%s)\n",
			*resumeF, len(log.Probes), map[bool]string{true: ", truncated tail dropped", false: ""}[log.Truncated])
	}
	if jw != nil {
		opt.Journal = jw
		defer jw.Close()
	}

	if *progressF {
		var last time.Time
		opt.Progress = func(ev journal.ProgressEvent) {
			if time.Since(last) < time.Second && ev.Completed < ev.Total {
				return
			}
			last = time.Now()
			fmt.Fprintf(os.Stderr, "fic: %s %d/%d (%.1f%%) %.0f probes/s eta %s\n",
				ev.Experiment, ev.Completed, ev.Total,
				100*float64(ev.Completed)/float64(ev.Total),
				ev.RunsPerSec, ev.ETA.Round(time.Second))
		}
	}

	began := time.Now()
	fmt.Fprintf(os.Stderr, "fic: sweeping the %s configuration lattice (grid %d, engine %s)...\n",
		spec.Experiment(), *grid, inject.ProbeMode(mode))
	rep, err := optimize.Run(spec, opt)
	if err != nil {
		return optimizeErr(err, jw, *journalF, *resumeF)
	}
	m := rep.Metrics
	line := fmt.Sprintf("%.0f probes/s live, %s engine", m.RunsPerSec, m.Runner)
	if m.Pruned > 0 || m.MemoHits > 0 {
		line += fmt.Sprintf(", %.1f%% pruned, %.1f%% memo hits", 100*m.PruneRate, 100*m.MemoHitRate)
	}
	if rep.Resumed > 0 {
		line += fmt.Sprintf(", %d replayed from journal", rep.Resumed)
	}
	fmt.Fprintf(os.Stderr, "fic: sweep done: %d probes -> %d configurations in %v (%s)\n",
		rep.Probes, rep.LatticeSize, time.Since(began).Round(time.Second), line)

	var out experiment.Output = experiment.WriterOutput{W: os.Stdout}
	if *outF != "" {
		out = experiment.FileOutput{Path: *outF}
	}
	if err := (optimize.Reporter{Format: format, Output: out}).Report(rep); err != nil {
		return err
	}
	if *outF != "" {
		fmt.Fprintf(os.Stderr, "fic: wrote %s\n", *outF)
	}
	if jw != nil {
		return jw.Close()
	}
	return nil
}

// parseBudgets parses the -budgets list: comma-separated Go durations,
// with a bare "0" accepted for the failures-free budget.
func parseBudgets(s string) ([]time.Duration, error) {
	if s == "" {
		return nil, nil
	}
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "0" {
			out = append(out, 0)
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			return nil, fmt.Errorf("-budgets: %w", err)
		}
		if d < 0 {
			return nil, fmt.Errorf("-budgets: negative budget %v", d)
		}
		out = append(out, d)
	}
	return out, nil
}

// optimizeErr closes the journal so every completed probe is on disk,
// then decorates an interruption with the resume hint.
func optimizeErr(err error, jw *journal.Writer, journalPath, resumePath string) error {
	path := journalPath
	if path == "" {
		path = resumePath
	}
	if jw != nil {
		if cerr := jw.Close(); cerr != nil {
			return cerr
		}
	}
	if errors.Is(err, context.Canceled) && path != "" {
		return fmt.Errorf("%w\nfic: sweep interrupted; resume with: fic optimize -resume %s <same flags>", err, path)
	}
	return err
}
