// Command fic is the fault-injection campaign controller (the paper's
// FIC3 analogue). It runs the paper's E1 and E2 campaigns and prints
// the corresponding result tables, or prints the static tables and
// figures. Campaigns can journal every run, render live progress, and
// resume an interrupted campaign from its journal with byte-identical
// tables (see ARCHITECTURE.md).
//
// Usage:
//
//	fic -experiment e1           # Tables 7 and 8 (22 400 runs at full scale)
//	fic -experiment e2           # Table 9 (5000 runs)
//	fic -experiment all          # everything plus the headline block
//	fic exhaustive               # measured Pdetect over the full 11 400-error fault space
//	fic -print table4|table6|figure2
//	fic -grid 3                  # scale the test-case grid down (3x3)
//	fic -recovery previous       # ablation: recovery repairs state
//	fic -period 20 -start 500    # injection schedule (ms)
//	fic -workers N -seed S
//	fic -journal runs.jsonl      # record one JSONL line per completed run
//	fic -resume runs.jsonl       # resume an interrupted campaign
//	fic -progress                # periodic progress line on stderr
//	fic -metrics                 # final JSON metrics block on stdout
//	fic -engine literal          # escape hatch: simulate every run from time zero
//
// The -engine flag selects the execution engine behind the unified
// Runner API: auto (default — snapshot for detection-only campaigns,
// literal otherwise), literal (every run from time zero, as the
// hardware FIC3 ran), snapshot (one fast-forwarded checkpoint per test
// case, version builds derived from one profile run), or memo
// (snapshot plus def/use liveness pruning and outcome memoization).
// All engines render byte-identical tables (see PERFORMANCE.md). The
// exhaustive experiment defaults to the memo engine — pruning is what
// makes the full fault space affordable.
//
// For performance work, -cpuprofile and -memprofile write pprof
// profiles of the campaign (see PERFORMANCE.md for the workflow).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"easig"
	"easig/internal/inject"
	"easig/internal/journal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fic:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experimentF = flag.String("experiment", "", "campaign to run: e1, e2 or all")
		printF      = flag.String("print", "", "static output: table4, table6 or figure2")
		grid        = flag.Int("grid", 5, "test-case grid edge (5 = the paper's 25 cases)")
		seed        = flag.Int64("seed", 2000, "campaign seed")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		recovery    = flag.String("recovery", "none", "assertion recovery: none (paper) or previous")
		period      = flag.Int64("period", 20, "injection period in ms")
		start       = flag.Int64("start", 500, "first injection time in ms")
		observe     = flag.Int64("observe", 40000, "observation period in ms")
		verify      = flag.Bool("verify", false, "verify the fault-free grid is detection-free before running")
		jsonPath    = flag.String("json", "", "also write machine-readable results to this file")
		journalF    = flag.String("journal", "", "record every completed run to this JSONL journal")
		resumeF     = flag.String("resume", "", "resume an interrupted campaign from its journal (keeps appending to it)")
		progressF   = flag.Bool("progress", false, "render a periodic progress line on stderr")
		metricsF    = flag.Bool("metrics", false, "print a final JSON metrics block (runs/sec, wall time, per-worker utilization)")
		engineF     = flag.String("engine", "auto", "execution engine: auto, literal, snapshot or memo")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile (post-GC, on exit) to this file")
	)
	flag.Parse()

	experiment := *experimentF
	if flag.NArg() == 1 && experiment == "" {
		// `fic exhaustive` (and friends) as a positional command.
		experiment = flag.Arg(0)
	} else if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", flag.Args())
	}

	switch *printF {
	case "":
	case "table4":
		fmt.Println(easig.Table4())
		return nil
	case "table6":
		fmt.Println(easig.Table6(*grid * *grid))
		return nil
	case "figure2":
		fmt.Println(easig.Figure2(72, 12, *seed))
		return nil
	default:
		return fmt.Errorf("unknown -print target %q", *printF)
	}

	var rp easig.RecoveryPolicy
	switch *recovery {
	case "none":
		rp = easig.NoRecovery{}
	case "previous":
		rp = easig.PreviousValue{}
	default:
		return fmt.Errorf("unknown -recovery %q (want none or previous)", *recovery)
	}

	// Ctrl-C cancels the campaign cleanly: in-flight runs finish, the
	// journal keeps every completed run, and -resume picks up there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	mode, err := easig.ParseEngineMode(*engineF)
	if err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("creating -cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("creating -memprofile: %w", err)
		}
		defer func() {
			// Collect first so the profile shows live retained memory, not
			// the garbage of the last batch.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fic: writing heap profile:", err)
			}
			f.Close()
		}()
	}

	cfg := easig.CampaignConfig{
		Spec: easig.CampaignSpec{
			Grid:          *grid,
			Seed:          *seed,
			ObservationMs: *observe,
			Policy:        inject.Policy{StartMs: *start, PeriodMs: *period},
		},
		Exec: easig.CampaignExec{
			Mode:     mode,
			Workers:  *workers,
			Recovery: rp,
			Context:  ctx,
		},
	}
	if experiment == "exhaustive" {
		cfg.Exhaustive = true
		if mode == easig.EngineAuto {
			// Pruning + memoization is what makes the full fault space
			// affordable; auto means memo here.
			cfg.Mode = easig.EngineMemo
		}
	}

	if *journalF != "" && *resumeF != "" {
		return fmt.Errorf("-journal and -resume are exclusive: a resumed campaign keeps appending to its own journal")
	}
	var jw *easig.JournalWriter
	switch {
	case *journalF != "":
		w, err := easig.CreateJournal(*journalF)
		if err != nil {
			return err
		}
		jw = w
	case *resumeF != "":
		log, err := easig.LoadJournal(*resumeF)
		if err != nil {
			return err
		}
		w, err := easig.OpenJournal(*resumeF)
		if err != nil {
			return err
		}
		jw = w
		cfg.Resume = log
		fmt.Fprintf(os.Stderr, "fic: resuming from %s (%d journaled runs%s)\n",
			*resumeF, len(log.Runs), map[bool]string{true: ", truncated tail dropped", false: ""}[log.Truncated])
	}
	if jw != nil {
		cfg.Journal = jw
		defer jw.Close()
	}

	if *progressF {
		var last time.Time
		cfg.Progress = func(ev easig.ProgressEvent) {
			if time.Since(last) < time.Second && ev.Completed < ev.Total {
				return
			}
			last = time.Now()
			fmt.Fprintf(os.Stderr, "fic: %s %d/%d (%.1f%%) %.0f runs/s eta %s\n",
				ev.Experiment, ev.Completed, ev.Total,
				100*float64(ev.Completed)/float64(ev.Total),
				ev.RunsPerSec, ev.ETA.Round(time.Second))
		}
	}

	if *verify {
		fmt.Fprintln(os.Stderr, "fic: verifying the fault-free grid...")
		if err := easig.VerifyNominal(cfg); err != nil {
			return fmt.Errorf("nominal verification failed: %w", err)
		}
	}

	var (
		e1 *easig.E1Result
		e2 *easig.E2Result
	)
	switch experiment {
	case "e1", "all":
		began := time.Now()
		fmt.Fprintf(os.Stderr, "fic: running E1 (%d errors x %d cases x 8 versions)...\n", 112, *grid**grid)
		if e1, err = easig.RunE1(cfg); err != nil {
			return campaignErr(err, jw, *journalF, *resumeF)
		}
		fmt.Fprintf(os.Stderr, "fic: E1 done: %d runs in %v (%s)\n", e1.Runs, time.Since(began).Round(time.Second), metricsLine(e1.Metrics))
		fmt.Println(easig.Table6(*grid * *grid))
		fmt.Println(easig.Table7(e1))
		fmt.Println(easig.Table8(e1))
		fmt.Println(easig.DetectionBreakdown(e1, easig.VersionAll))
	case "e2", "exhaustive":
	case "":
		return fmt.Errorf("nothing to do: pass -experiment e1|e2|exhaustive|all or -print table4|table6|figure2")
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	if experiment == "e2" || experiment == "exhaustive" || experiment == "all" {
		began := time.Now()
		nErrors := 200
		if cfg.Exhaustive {
			nErrors = len(easig.BuildExhaustive())
		}
		fmt.Fprintf(os.Stderr, "fic: running %s (%d errors x %d cases)...\n",
			map[bool]string{true: "exhaustive E2", false: "E2"}[cfg.Exhaustive], nErrors, *grid**grid)
		if e2, err = easig.RunE2(cfg); err != nil {
			return campaignErr(err, jw, *journalF, *resumeF)
		}
		fmt.Fprintf(os.Stderr, "fic: %s done: %d runs in %v (%s)\n",
			map[bool]string{true: "exhaustive E2", false: "E2"}[cfg.Exhaustive],
			e2.Runs, time.Since(began).Round(time.Second), metricsLine(e2.Metrics))
		fmt.Println(easig.Table9(e2))
		if cfg.Exhaustive {
			cov, _, _ := e2.Total()
			fmt.Printf("Measured Pdetect over the full fault space (%d positions x %d cases): %.2f%%\n",
				nErrors, *grid**grid, cov.All.Percent())
			fmt.Printf("Runner: %s — %d errors served: %d simulated, %d pruned benign (%.1f%%), %d memo hits (%.1f%%)\n",
				e2.Metrics.Runner, e2.Metrics.Errors, e2.Metrics.Simulated,
				e2.Metrics.Pruned, 100*e2.Metrics.PruneRate,
				e2.Metrics.MemoHits, 100*e2.Metrics.MemoHitRate)
		}
	}
	if e1 != nil || e2 != nil {
		fmt.Println(easig.ComputeHeadline(e1, e2))
	}
	if e1 != nil && e2 != nil {
		if fit, err := easig.FitModel(e1, e2); err == nil {
			fmt.Println(fit)
		}
	}
	if *metricsF {
		var ms []easig.CampaignMetrics
		if e1 != nil {
			ms = append(ms, e1.Metrics)
		}
		if e2 != nil {
			ms = append(ms, e2.Metrics)
		}
		if b, err := json.MarshalIndent(ms, "", "  "); err == nil {
			fmt.Println(string(b))
		}
	}
	if *jsonPath != "" && (e1 != nil || e2 != nil) {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *jsonPath, err)
		}
		defer f.Close()
		if err := easig.WriteJSON(f, e1, e2); err != nil {
			return fmt.Errorf("writing %s: %w", *jsonPath, err)
		}
		fmt.Fprintf(os.Stderr, "fic: wrote %s\n", *jsonPath)
	}
	if jw != nil {
		if err := jw.Close(); err != nil {
			return err
		}
	}
	return nil
}

// metricsLine condenses a campaign's journal.Metrics into the final
// stderr summary: live throughput, and the replayed share on resumed
// campaigns (replayed runs cost no simulation time, so they are kept
// out of the runs/s figure).
func metricsLine(m easig.CampaignMetrics) string {
	s := fmt.Sprintf("%.0f runs/s live, %s engine", m.RunsPerSec, m.Runner)
	if m.Pruned > 0 || m.MemoHits > 0 {
		s += fmt.Sprintf(", %.1f%% pruned, %.1f%% memo hits", 100*m.PruneRate, 100*m.MemoHitRate)
	}
	if m.Resumed > 0 {
		s += fmt.Sprintf(", %d replayed from journal", m.Resumed)
	}
	return s
}

// campaignErr closes the journal so every completed run is on disk,
// then decorates an interruption with the resume hint.
func campaignErr(err error, jw *journal.Writer, journalPath, resumePath string) error {
	path := journalPath
	if path == "" {
		path = resumePath
	}
	if jw != nil {
		if cerr := jw.Close(); cerr != nil {
			return cerr
		}
	}
	if errors.Is(err, context.Canceled) && path != "" {
		return fmt.Errorf("%w\nfic: campaign interrupted; resume with: fic -resume %s <same flags>", err, path)
	}
	return err
}
