// Command fic is the fault-injection campaign controller (the paper's
// FIC3 analogue). It runs the paper's E1 and E2 campaigns and prints
// the corresponding result tables, or prints the static tables and
// figures. Campaigns can journal every run, render live progress, and
// resume an interrupted campaign from its journal with byte-identical
// tables (see ARCHITECTURE.md).
//
// Usage:
//
//	fic -experiment e1           # Tables 7 and 8 (22 400 runs at full scale)
//	fic -experiment e2           # Table 9 (5000 runs)
//	fic -experiment all          # everything plus the headline block
//	fic exhaustive               # measured Pdetect over the full 11 400-error fault space
//	fic -print table4|table6|figure2
//	fic -grid 3                  # scale the test-case grid down (3x3)
//	fic -recovery previous       # ablation: recovery repairs state
//	fic -period 20 -start 500    # injection schedule (ms)
//	fic -workers N -seed S
//	fic -journal runs.jsonl      # record one JSONL line per completed run
//	fic -resume runs.jsonl       # resume an interrupted campaign
//	fic -progress                # periodic progress line on stderr
//	fic -metrics                 # final JSON metrics block on stdout
//	fic -engine literal          # escape hatch: simulate every run from time zero
//	fic -format json             # render results as the machine-readable export
//	fic worker -server URL       # attach to a ficd campaign service as a shard worker
//	fic optimize -errors e1      # sweep the detector configuration lattice (see OPTIMIZER.md)
//
// In worker mode fic claims shards of a distributed campaign from a
// ficd service, executes them with the in-process scheduler under a
// heartbeat-renewed lease, and uploads the shard journals; see
// SERVICE.md for the protocol and an operator's quickstart.
//
// In optimize mode fic scores every assertion subset x placement x
// recovery configuration on detection probability, detection latency
// and measured CPU cost, and prints the Pareto front with a
// recommended configuration per failure-cost budget. The sweep
// journals (-journal) and resumes (-resume) like a campaign, with
// byte-identical reports; see OPTIMIZER.md.
//
// Results render through the shared reporter path (-format text|json):
// the same bytes whether a campaign ran in this process or was merged
// from distributed shards by ficd.
//
// The -engine flag selects the execution engine behind the unified
// Runner API: auto (default — snapshot for detection-only campaigns,
// literal otherwise), literal (every run from time zero, as the
// hardware FIC3 ran), snapshot (one fast-forwarded checkpoint per test
// case, version builds derived from one profile run), or memo
// (snapshot plus def/use liveness pruning and outcome memoization).
// All engines render byte-identical tables (see PERFORMANCE.md). The
// exhaustive experiment defaults to the memo engine — pruning is what
// makes the full fault space affordable.
//
// For performance work, -cpuprofile and -memprofile write pprof
// profiles of the campaign (see PERFORMANCE.md for the workflow).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"easig"
	"easig/internal/inject"
	"easig/internal/journal"
	"easig/internal/service"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		if err := runWorker(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "fic:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "optimize" {
		if err := runOptimize(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "fic:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fic:", err)
		os.Exit(1)
	}
}

// runWorker is the `fic worker` subcommand: attach to a ficd service
// and process distributed-campaign shards until every campaign is
// terminal (clean drain) or the process is interrupted.
func runWorker(args []string) error {
	fs := flag.NewFlagSet("fic worker", flag.ExitOnError)
	var (
		server  = fs.String("server", "http://localhost:7070", "ficd base URL")
		name    = fs.String("name", "", "worker identity in leases and the shard ledger (default hostname-pid)")
		workers = fs.Int("workers", 0, "in-process pool size per shard (0 = GOMAXPROCS)")
		poll    = fs.Duration("poll", 500*time.Millisecond, "idle claim-retry interval")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	w, err := service.NewWorker(service.WorkerOptions{
		Server:  *server,
		Name:    *name,
		Workers: *workers,
		Poll:    *poll,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "fic: "+format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	return w.Run(ctx)
}

func run() error {
	var (
		experimentF = flag.String("experiment", "", "campaign to run: e1, e2 or all")
		printF      = flag.String("print", "", "static output: table4, table6 or figure2")
		grid        = flag.Int("grid", 5, "test-case grid edge (5 = the paper's 25 cases)")
		seed        = flag.Int64("seed", 2000, "campaign seed")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		recovery    = flag.String("recovery", "none", "assertion recovery: none (paper) or previous")
		period      = flag.Int64("period", 20, "injection period in ms")
		start       = flag.Int64("start", 500, "first injection time in ms")
		observe     = flag.Int64("observe", 40000, "observation period in ms")
		verify      = flag.Bool("verify", false, "verify the fault-free grid is detection-free before running")
		jsonPath    = flag.String("json", "", "also write machine-readable results to this file")
		journalF    = flag.String("journal", "", "record every completed run to this JSONL journal")
		resumeF     = flag.String("resume", "", "resume an interrupted campaign from its journal (keeps appending to it)")
		progressF   = flag.Bool("progress", false, "render a periodic progress line on stderr")
		metricsF    = flag.Bool("metrics", false, "print a final JSON metrics block (runs/sec, wall time, per-worker utilization)")
		engineF     = flag.String("engine", "auto", "execution engine: auto, literal, snapshot or memo")
		formatF     = flag.String("format", "text", "stdout report format: text (the paper's tables) or json")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile (post-GC, on exit) to this file")
	)
	flag.Parse()

	experiment := *experimentF
	if flag.NArg() == 1 && experiment == "" {
		// `fic exhaustive` (and friends) as a positional command.
		experiment = flag.Arg(0)
	} else if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", flag.Args())
	}

	switch *printF {
	case "":
	case "table4":
		fmt.Println(easig.Table4())
		return nil
	case "table6":
		fmt.Println(easig.Table6(*grid * *grid))
		return nil
	case "figure2":
		fmt.Println(easig.Figure2(72, 12, *seed))
		return nil
	default:
		return fmt.Errorf("unknown -print target %q", *printF)
	}

	var rp easig.RecoveryPolicy
	switch *recovery {
	case "none":
		rp = easig.NoRecovery{}
	case "previous":
		rp = easig.PreviousValue{}
	default:
		return fmt.Errorf("unknown -recovery %q (want none or previous)", *recovery)
	}

	// Ctrl-C cancels the campaign cleanly: in-flight runs finish, the
	// journal keeps every completed run, and -resume picks up there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	mode, err := easig.ParseEngineMode(*engineF)
	if err != nil {
		return err
	}

	format, err := easig.ParseReportFormat(*formatF)
	if err != nil {
		return err
	}
	if format.Name() == "journal" {
		return fmt.Errorf("-format journal is served by ficd (results?format=journal); fic journals with -journal")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("creating -cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("creating -memprofile: %w", err)
		}
		defer func() {
			// Collect first so the profile shows live retained memory, not
			// the garbage of the last batch.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fic: writing heap profile:", err)
			}
			f.Close()
		}()
	}

	cfg := easig.CampaignConfig{
		Spec: easig.CampaignSpec{
			Grid:          *grid,
			Seed:          *seed,
			ObservationMs: *observe,
			Policy:        inject.Policy{StartMs: *start, PeriodMs: *period},
		},
		Exec: easig.CampaignExec{
			Mode:     mode,
			Workers:  *workers,
			Recovery: rp,
			Context:  ctx,
		},
	}
	if experiment == "exhaustive" {
		cfg.Exhaustive = true
		if mode == easig.EngineAuto {
			// Pruning + memoization is what makes the full fault space
			// affordable; auto means memo here.
			cfg.Mode = easig.EngineMemo
		}
	}

	if *journalF != "" && *resumeF != "" {
		return fmt.Errorf("-journal and -resume are exclusive: a resumed campaign keeps appending to its own journal")
	}
	var jw *easig.JournalWriter
	switch {
	case *journalF != "":
		w, err := easig.CreateJournal(*journalF)
		if err != nil {
			return err
		}
		jw = w
	case *resumeF != "":
		log, err := easig.LoadJournal(*resumeF)
		if err != nil {
			return err
		}
		w, err := easig.OpenJournal(*resumeF)
		if err != nil {
			return err
		}
		jw = w
		cfg.Resume = log
		fmt.Fprintf(os.Stderr, "fic: resuming from %s (%d journaled runs%s)\n",
			*resumeF, len(log.Runs), map[bool]string{true: ", truncated tail dropped", false: ""}[log.Truncated])
	}
	if jw != nil {
		cfg.Journal = jw
		defer jw.Close()
	}

	if *progressF {
		var last time.Time
		cfg.Progress = func(ev easig.ProgressEvent) {
			if time.Since(last) < time.Second && ev.Completed < ev.Total {
				return
			}
			last = time.Now()
			fmt.Fprintf(os.Stderr, "fic: %s %d/%d (%.1f%%) %.0f runs/s eta %s\n",
				ev.Experiment, ev.Completed, ev.Total,
				100*float64(ev.Completed)/float64(ev.Total),
				ev.RunsPerSec, ev.ETA.Round(time.Second))
		}
	}

	if *verify {
		fmt.Fprintln(os.Stderr, "fic: verifying the fault-free grid...")
		if err := easig.VerifyNominal(cfg); err != nil {
			return fmt.Errorf("nominal verification failed: %w", err)
		}
	}

	var (
		e1 *easig.E1Result
		e2 *easig.E2Result
	)
	switch experiment {
	case "e1", "all":
		began := time.Now()
		fmt.Fprintf(os.Stderr, "fic: running E1 (%d errors x %d cases x 8 versions)...\n", 112, *grid**grid)
		if e1, err = easig.RunE1(cfg); err != nil {
			return campaignErr(err, jw, *journalF, *resumeF)
		}
		// e1.Metrics.Runs counts dispatched runs only: journal-replayed
		// runs cost no simulation time and would inflate the throughput
		// figure on a resumed campaign.
		fmt.Fprintf(os.Stderr, "fic: E1 done: %d live runs in %v (%s)\n",
			e1.Metrics.Runs, time.Since(began).Round(time.Second), metricsLine(e1.Metrics))
	case "e2", "exhaustive":
	case "":
		return fmt.Errorf("nothing to do: pass -experiment e1|e2|exhaustive|all or -print table4|table6|figure2")
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	if experiment == "e2" || experiment == "exhaustive" || experiment == "all" {
		began := time.Now()
		nErrors := 200
		if cfg.Exhaustive {
			nErrors = len(easig.BuildExhaustive())
		}
		fmt.Fprintf(os.Stderr, "fic: running %s (%d errors x %d cases)...\n",
			map[bool]string{true: "exhaustive E2", false: "E2"}[cfg.Exhaustive], nErrors, *grid**grid)
		if e2, err = easig.RunE2(cfg); err != nil {
			return campaignErr(err, jw, *journalF, *resumeF)
		}
		fmt.Fprintf(os.Stderr, "fic: %s done: %d live runs in %v (%s)\n",
			map[bool]string{true: "exhaustive E2", false: "E2"}[cfg.Exhaustive],
			e2.Metrics.Runs, time.Since(began).Round(time.Second), metricsLine(e2.Metrics))
	}
	if e1 != nil || e2 != nil {
		// All result rendering goes through the shared reporter path:
		// the same Format implementations serve ficd's results endpoint,
		// so a distributed campaign's merged tables are byte-identical
		// to this output by construction.
		res := &easig.CampaignResults{Spec: cfg.Spec, E1: e1, E2: e2}
		rep := easig.CampaignReporter{Format: format, Output: easig.StdWriter{W: os.Stdout}}
		if err := rep.Report(res); err != nil {
			return err
		}
	}
	if *metricsF {
		var ms []easig.CampaignMetrics
		if e1 != nil {
			ms = append(ms, e1.Metrics)
		}
		if e2 != nil {
			ms = append(ms, e2.Metrics)
		}
		if b, err := json.MarshalIndent(ms, "", "  "); err == nil {
			fmt.Println(string(b))
		}
	}
	if *jsonPath != "" && (e1 != nil || e2 != nil) {
		rep := easig.CampaignReporter{Format: easig.JSONReport{}, Output: easig.FileReport{Path: *jsonPath}}
		if err := rep.Report(&easig.CampaignResults{Spec: cfg.Spec, E1: e1, E2: e2}); err != nil {
			return fmt.Errorf("writing %s: %w", *jsonPath, err)
		}
		fmt.Fprintf(os.Stderr, "fic: wrote %s\n", *jsonPath)
	}
	if jw != nil {
		if err := jw.Close(); err != nil {
			return err
		}
	}
	return nil
}

// metricsLine condenses a campaign's journal.Metrics into the final
// stderr summary: live throughput, and the replayed share on resumed
// campaigns (replayed runs cost no simulation time, so they are kept
// out of the runs/s figure).
func metricsLine(m easig.CampaignMetrics) string {
	s := fmt.Sprintf("%.0f runs/s live, %s engine", m.RunsPerSec, m.Runner)
	if m.Pruned > 0 || m.MemoHits > 0 {
		s += fmt.Sprintf(", %.1f%% pruned, %.1f%% memo hits", 100*m.PruneRate, 100*m.MemoHitRate)
	}
	if m.Resumed > 0 {
		s += fmt.Sprintf(", %d replayed from journal", m.Resumed)
	}
	return s
}

// campaignErr closes the journal so every completed run is on disk,
// then decorates an interruption with the resume hint.
func campaignErr(err error, jw *journal.Writer, journalPath, resumePath string) error {
	path := journalPath
	if path == "" {
		path = resumePath
	}
	if jw != nil {
		if cerr := jw.Close(); cerr != nil {
			return cerr
		}
	}
	if errors.Is(err, context.Canceled) && path != "" {
		return fmt.Errorf("%w\nfic: campaign interrupted; resume with: fic -resume %s <same flags>", err, path)
	}
	return err
}
