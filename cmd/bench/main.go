// Command bench is the repository's benchmark ledger: it measures the
// simulator's per-tick hot path, the snapshot engine, the scaled E1
// campaign in snapshot and literal modes, and the exhaustive E2 fault
// space in memo vs. snapshot mode, and writes the results as a JSON
// ledger (BENCH_PR6.json) so every future change has a perf trajectory
// to diff against. It doubles as the CI regression gate: the run fails
// if the per-tick hot path allocates, or if the memo/prune runner loses
// its speedup over the plain snapshot engine on the exhaustive grid.
//
// Usage:
//
//	bench                    # write BENCH_PR6.json in the current directory
//	bench -out ledger.json   # write elsewhere
//	bench -observe 40000     # measure at the paper's full window
//
// The campaign rows use a scaled protocol (one test case, 16 s window
// by default) so the ledger regenerates in about a minute; the speedups
// at the paper's full 40 s window are strictly larger, because the
// slower mode pays for more of the window per run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"easig"
	"easig/internal/core"
	"easig/internal/inject"
	"easig/internal/target"
)

// row is one benchmark ledger entry.
type row struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// ledger is the BENCH_PR6.json document.
type ledger struct {
	Schema        string `json:"schema"`
	Go            string `json:"go"`
	GOARCH        string `json:"goarch"`
	Grid          int    `json:"grid"`
	ObservationMs int64  `json:"observation_ms"`

	// Tick is one control cycle of the nominal instrumented target
	// (both nodes, all assertions, plant integration).
	Tick row `json:"tick"`
	// SnapshotCaptureRestore is one full checkpoint cycle of the
	// target system state.
	SnapshotCaptureRestore row `json:"snapshot_capture_restore"`
	// EngineErrorRun is one fast-forwarded error run (restore, inject
	// to a settled outcome, derive all eight versions).
	EngineErrorRun   row     `json:"engine_error_run"`
	DerivedRunsPerOp int     `json:"engine_derived_runs_per_op"`
	EngineRunsPerSec float64 `json:"engine_runs_per_sec"`

	// CampaignE1 compares the scaled E1 campaign in snapshot vs.
	// literal mode (the PR 4 comparison, kept for trajectory).
	CampaignSnapshotWallMs     int64   `json:"campaign_e1_snapshot_wall_ms"`
	CampaignLiteralWallMs      int64   `json:"campaign_e1_literal_wall_ms"`
	CampaignRuns               int     `json:"campaign_e1_runs"`
	CampaignSnapshotRunsPerSec float64 `json:"campaign_e1_snapshot_runs_per_sec"`
	CampaignLiteralRunsPerSec  float64 `json:"campaign_e1_literal_runs_per_sec"`
	CampaignSpeedup            float64 `json:"campaign_e1_speedup"`

	// Exhaustive compares the full 11 400-position E2 fault space in
	// memo (liveness pruning + outcome memoization) vs. snapshot mode
	// — the PR 6 headline. PruneRate is the fraction of the fault
	// space proven benign with zero simulation.
	ExhaustiveRuns               int     `json:"exhaustive_runs"`
	ExhaustiveSnapshotWallMs     int64   `json:"exhaustive_snapshot_wall_ms"`
	ExhaustiveMemoWallMs         int64   `json:"exhaustive_memo_wall_ms"`
	ExhaustiveSnapshotRunsPerSec float64 `json:"exhaustive_snapshot_runs_per_sec"`
	ExhaustiveMemoRunsPerSec     float64 `json:"exhaustive_memo_runs_per_sec"`
	ExhaustiveSpeedup            float64 `json:"exhaustive_memo_speedup"`
	ExhaustivePruneRate          float64 `json:"exhaustive_prune_rate"`
	ExhaustiveMemoHitRate        float64 `json:"exhaustive_memo_hit_rate"`
	ExhaustivePdetectPct         float64 `json:"exhaustive_pdetect_pct"`
}

func toRow(r testing.BenchmarkResult) row {
	return row{NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("out", "BENCH_PR6.json", "ledger output path")
		grid    = flag.Int("grid", 1, "campaign test-case grid edge")
		observe = flag.Int64("observe", 16000, "campaign observation window in ms")
		seed    = flag.Int64("seed", 1, "campaign seed")
	)
	flag.Parse()

	tc := easig.TestCase{MassKg: 14000, VelocityMS: 55}
	led := ledger{
		Schema:        "easig-bench/2",
		Go:            runtime.Version(),
		GOARCH:        runtime.GOARCH,
		Grid:          *grid,
		ObservationMs: *observe,
	}

	// Per-tick hot path. This row is the regression gate: the campaign
	// executes tens of millions of ticks, so the hot path must not
	// allocate at all.
	sys, err := target.NewSystem(target.SystemConfig{
		TestCase: tc, Seed: *seed, Version: target.VersionAll, Recovery: core.NoRecovery{},
	})
	if err != nil {
		return err
	}
	sys.RunMs(1000)
	led.Tick = toRow(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys.StepMs()
		}
	}))

	// Snapshot capture + restore.
	var st target.SystemState
	sys.Capture(&st)
	led.SnapshotCaptureRestore = toRow(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys.Capture(&st)
			if err := sys.Restore(&st); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// One engine error run: restore the nominal snapshot, inject until
	// the outcome settles, derive all eight version builds.
	eng, err := inject.NewEngine(inject.RunConfig{TestCase: tc, ObservationMs: *observe, Seed: *seed})
	if err != nil {
		return err
	}
	errors := easig.BuildE1()
	versions := target.Versions()
	results := make([]inject.RunResult, len(versions))
	led.DerivedRunsPerOp = len(versions)
	led.EngineErrorRun = toRow(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := eng.RunError(errors[i%len(errors)], versions, results); err != nil {
				b.Fatal(err)
			}
		}
	}))
	if led.EngineErrorRun.NsPerOp > 0 {
		led.EngineRunsPerSec = float64(led.DerivedRunsPerOp) * 1e9 / led.EngineErrorRun.NsPerOp
	}

	// E1 campaign wall-clock, snapshot vs. literal, same protocol and
	// seed (the PR 4 comparison).
	e1 := func(mode easig.EngineMode) (time.Duration, int, error) {
		start := time.Now()
		r, err := easig.RunE1(easig.CampaignConfig{
			Spec: easig.CampaignSpec{Grid: *grid, Seed: *seed, ObservationMs: *observe},
			Exec: easig.CampaignExec{Mode: mode},
		})
		if err != nil {
			return 0, 0, err
		}
		return time.Since(start), r.Runs, nil
	}
	snapWall, runs, err := e1(easig.EngineSnapshot)
	if err != nil {
		return err
	}
	literalWall, _, err := e1(easig.EngineLiteral)
	if err != nil {
		return err
	}
	led.CampaignSnapshotWallMs = snapWall.Milliseconds()
	led.CampaignLiteralWallMs = literalWall.Milliseconds()
	led.CampaignRuns = runs
	if s := snapWall.Seconds(); s > 0 {
		led.CampaignSnapshotRunsPerSec = float64(runs) / s
	}
	if s := literalWall.Seconds(); s > 0 {
		led.CampaignLiteralRunsPerSec = float64(runs) / s
	}
	if snapWall > 0 {
		led.CampaignSpeedup = float64(literalWall) / float64(snapWall)
	}

	// Exhaustive fault space, memo vs. snapshot (the PR 6 headline):
	// all 11 400 (byte, bit) positions, the snapshot engine simulating
	// each one vs. the memo runner pruning the dead ones via the
	// liveness pass and memoizing the rest.
	exhaustive := func(mode easig.EngineMode) (time.Duration, *easig.E2Result, error) {
		start := time.Now()
		r, err := easig.RunE2(easig.CampaignConfig{
			Spec: easig.CampaignSpec{Grid: *grid, Seed: *seed, ObservationMs: *observe, Exhaustive: true},
			Exec: easig.CampaignExec{Mode: mode},
		})
		if err != nil {
			return 0, nil, err
		}
		return time.Since(start), r, nil
	}
	memoWall, memoRes, err := exhaustive(easig.EngineMemo)
	if err != nil {
		return err
	}
	exSnapWall, _, err := exhaustive(easig.EngineSnapshot)
	if err != nil {
		return err
	}
	led.ExhaustiveRuns = memoRes.Runs
	led.ExhaustiveSnapshotWallMs = exSnapWall.Milliseconds()
	led.ExhaustiveMemoWallMs = memoWall.Milliseconds()
	if s := exSnapWall.Seconds(); s > 0 {
		led.ExhaustiveSnapshotRunsPerSec = float64(memoRes.Runs) / s
	}
	if s := memoWall.Seconds(); s > 0 {
		led.ExhaustiveMemoRunsPerSec = float64(memoRes.Runs) / s
	}
	if memoWall > 0 {
		led.ExhaustiveSpeedup = float64(exSnapWall) / float64(memoWall)
	}
	led.ExhaustivePruneRate = memoRes.Metrics.PruneRate
	led.ExhaustiveMemoHitRate = memoRes.Metrics.MemoHitRate
	cov, _, _ := memoRes.Total()
	led.ExhaustivePdetectPct = cov.All.Percent()

	buf, err := json.MarshalIndent(led, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: tick %.0f ns/op %d allocs/op; engine %.0f runs/s; E1 speedup %.1fx; exhaustive %.1fx (%.1f%% pruned, %.1f%% memo hits); wrote %s\n",
		led.Tick.NsPerOp, led.Tick.AllocsPerOp, led.EngineRunsPerSec, led.CampaignSpeedup,
		led.ExhaustiveSpeedup, 100*led.ExhaustivePruneRate, 100*led.ExhaustiveMemoHitRate, *out)

	// Regression gates: a heap allocation on the tick path, a snapshot
	// campaign slower than literal, or a memo/prune runner that lost
	// its edge over the plain snapshot engine fails the run (and the CI
	// benchmark job with it).
	if led.Tick.AllocsPerOp != 0 {
		return fmt.Errorf("per-tick hot path allocates (%d allocs/op); the zero-allocation gate failed", led.Tick.AllocsPerOp)
	}
	if led.SnapshotCaptureRestore.AllocsPerOp != 0 {
		return fmt.Errorf("snapshot capture/restore allocates (%d allocs/op)", led.SnapshotCaptureRestore.AllocsPerOp)
	}
	if led.CampaignSpeedup < 1 {
		return fmt.Errorf("snapshot campaign slower than literal (speedup %.2fx)", led.CampaignSpeedup)
	}
	if led.ExhaustiveSpeedup < 5 {
		return fmt.Errorf("memo/prune runner below the 5x gate on the exhaustive grid (speedup %.2fx)", led.ExhaustiveSpeedup)
	}
	return nil
}
