// Command bench is the repository's benchmark ledger: it measures the
// simulator's per-tick hot path, the snapshot engine, the scaled E1
// campaign in snapshot and literal modes, the exhaustive E2 fault
// space in memo vs. snapshot mode, the parallel scheduler's scaling
// curve at 1/2/4/8 workers, the optimizer's configuration-lattice
// sweep (calibration plus probe throughput), and the sigmond streaming
// service's ingest path and 1/2/4/8-shard scaling curve, and writes
// the results as a JSON ledger (BENCH_PR10.json) so every future
// change has a perf trajectory to diff against. It doubles as the CI
// regression gate: the run fails if the per-tick, snapshot,
// engine-error-run or stream-ingest paths allocate, if the memo/prune
// runner loses its speedup over the plain snapshot engine on the
// exhaustive grid, if repeated error draws stop hitting the outcome
// memo, if the 8-worker exhaustive campaign or the 4-shard streaming
// service falls below its core-aware scaling gate, or if the lattice
// sweep emits an empty Pareto front.
//
// Usage:
//
//	bench                    # write BENCH_PR10.json in the current directory
//	bench -out ledger.json   # write elsewhere
//	bench -observe 40000     # measure at the paper's full window
//
// The campaign rows use a scaled protocol (one test case, 16 s window
// by default) so the ledger regenerates in about a minute; the speedups
// at the paper's full 40 s window are strictly larger, because the
// slower mode pays for more of the window per run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"easig"
	"easig/internal/core"
	"easig/internal/inject"
	"easig/internal/optimize"
	"easig/internal/stream"
	"easig/internal/target"
)

// row is one benchmark ledger entry.
type row struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// scalingRow is one worker-count sample of a campaign's scaling curve.
type scalingRow struct {
	Workers    int     `json:"workers"`
	WallMs     int64   `json:"wall_ms"`
	RunsPerSec float64 `json:"runs_per_sec"`
	// SpeedupVs1 is this row's throughput over the 1-worker row's.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
	// StolenBatches counts batches claimed from another worker's queue.
	StolenBatches int `json:"stolen_batches"`
}

// streamScalingRow is one shard-count sample of the sigmond streaming
// service's throughput curve.
type streamScalingRow struct {
	Shards int   `json:"shards"`
	WallMs int64 `json:"wall_ms"`
	// SamplesPerSec and SignalsPerSec are applied throughput (each
	// sample carries the seven Table 4 signals).
	SamplesPerSec float64 `json:"samples_per_sec"`
	SignalsPerSec float64 `json:"signals_per_sec"`
	// SpeedupVs1 is this row's throughput over the 1-shard row's.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// ledger is the BENCH_PR10.json document.
type ledger struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	GOARCH string `json:"goarch"`
	// Cores is runtime.NumCPU: the scaling rows and the core-aware
	// speedup gate only mean anything relative to it.
	Cores         int   `json:"cores"`
	GOMAXPROCS    int   `json:"gomaxprocs"`
	Grid          int   `json:"grid"`
	ObservationMs int64 `json:"observation_ms"`

	// Tick is one control cycle of the nominal instrumented target
	// (both nodes, all assertions, plant integration).
	Tick row `json:"tick"`
	// SnapshotCaptureRestore is one full checkpoint cycle of the
	// target system state.
	SnapshotCaptureRestore row `json:"snapshot_capture_restore"`
	// EngineErrorRun is one fast-forwarded error run (restore, inject
	// to a settled outcome, derive all eight versions).
	EngineErrorRun   row     `json:"engine_error_run"`
	DerivedRunsPerOp int     `json:"engine_derived_runs_per_op"`
	EngineRunsPerSec float64 `json:"engine_runs_per_sec"`

	// CampaignE1 compares the scaled E1 campaign in snapshot vs.
	// literal mode (the PR 4 comparison, kept for trajectory).
	CampaignSnapshotWallMs     int64   `json:"campaign_e1_snapshot_wall_ms"`
	CampaignLiteralWallMs      int64   `json:"campaign_e1_literal_wall_ms"`
	CampaignRuns               int     `json:"campaign_e1_runs"`
	CampaignSnapshotRunsPerSec float64 `json:"campaign_e1_snapshot_runs_per_sec"`
	CampaignLiteralRunsPerSec  float64 `json:"campaign_e1_literal_runs_per_sec"`
	CampaignSpeedup            float64 `json:"campaign_e1_speedup"`

	// Exhaustive compares the full 11 400-position E2 fault space in
	// memo (liveness pruning + outcome memoization) vs. snapshot mode
	// — the PR 6 headline. PruneRate is the fraction of the fault
	// space proven benign with zero simulation.
	ExhaustiveRuns               int     `json:"exhaustive_runs"`
	ExhaustiveSnapshotWallMs     int64   `json:"exhaustive_snapshot_wall_ms"`
	ExhaustiveMemoWallMs         int64   `json:"exhaustive_memo_wall_ms"`
	ExhaustiveSnapshotRunsPerSec float64 `json:"exhaustive_snapshot_runs_per_sec"`
	ExhaustiveMemoRunsPerSec     float64 `json:"exhaustive_memo_runs_per_sec"`
	ExhaustiveSpeedup            float64 `json:"exhaustive_memo_speedup"`
	ExhaustivePruneRate          float64 `json:"exhaustive_prune_rate"`
	ExhaustiveMemoHitRate        float64 `json:"exhaustive_memo_hit_rate"`
	ExhaustivePdetectPct         float64 `json:"exhaustive_pdetect_pct"`

	// MemoRepeat measures the outcome memo on repeated (addr, bit)
	// draws: the E2 error set served twice through one memo runner. The
	// exhaustive census legitimately reports memo_hit_rate 0 (every
	// fault-space position is distinct), so this scenario is where the
	// memo's hit path is actually exercised and gated.
	MemoRepeatErrors  int     `json:"memo_repeat_errors"`
	MemoRepeatHits    int     `json:"memo_repeat_hits"`
	MemoRepeatHitRate float64 `json:"memo_repeat_hit_rate"`

	// Scaling curves of the work-stealing scheduler (PR 7): the same
	// campaign at 1/2/4/8 workers. On a multi-core host the exhaustive
	// 8-worker row must clear ScalingGateRequired (core-aware: ~0.45x
	// per core, capped at the 4x gate); on a single-core host the gate
	// degrades to "parallel dispatch costs at most 15%".
	ScalingE1Snapshot      []scalingRow `json:"scaling_e1_snapshot"`
	ScalingExhaustiveMemo  []scalingRow `json:"scaling_exhaustive_memo"`
	ScalingGateRequired    float64      `json:"scaling_gate_required_speedup"`
	ScalingExhaustive8xVs1 float64      `json:"scaling_exhaustive_8w_speedup"`

	// Stream ingest (PR 10): one interleaved multi-stream payload
	// through the sigmond service's whole ingest->monitor path —
	// validation, per-shard partitioning, queue, monitor dispatch —
	// driven synchronously so allocs/op is exact. The allocation gate
	// is per payload, i.e. 0 allocs/op covers every one of the
	// StreamIngestSamples samples inside it.
	StreamIngest            row     `json:"stream_ingest"`
	StreamIngestSamples     int     `json:"stream_ingest_samples_per_op"`
	StreamIngestNsPerSample float64 `json:"stream_ingest_ns_per_sample"`

	// Shard-scaling curve of the streaming service: the same replay
	// workload at 1/2/4/8 shards, live goroutines. On a multi-core host
	// the 4-shard row must clear StreamScalingGateRequired (0.5x per
	// core, capped at the 2x tentpole gate); on a single-core host the
	// gate degrades to the documented floor: sharded dispatch may cost
	// at most 15% (0.85x).
	StreamScaling             []streamScalingRow `json:"stream_shard_scaling"`
	StreamScalingGateRequired float64            `json:"stream_scaling_gate_required_speedup"`
	StreamScaling4Shard       float64            `json:"stream_scaling_4shard_speedup"`

	// Optimizer lattice sweep (PR 9): one wall-clock cost calibration
	// (the measured assertion overheads OPTIMIZER.md's worked example
	// quotes), then one dual-node probe per (error, case) of the E2
	// sample, scored into all 768 lattice configurations.
	OptimizeCalibrationWallMs int64   `json:"optimize_calibration_wall_ms"`
	OptimizeBaselineNsPerTick float64 `json:"optimize_baseline_ns_per_tick"`
	OptimizeAllNsPerTick      float64 `json:"optimize_all_ns_per_tick"`
	OptimizeAdditivityErrPct  float64 `json:"optimize_additivity_err_pct"`
	OptimizeProbes            int     `json:"optimize_probes"`
	OptimizeLatticeSize       int     `json:"optimize_lattice_size"`
	OptimizeSweepWallMs       int64   `json:"optimize_sweep_wall_ms"`
	OptimizeProbesPerSec      float64 `json:"optimize_probes_per_sec"`
	OptimizeFrontSize         int     `json:"optimize_front_size"`
}

func toRow(r testing.BenchmarkResult) row {
	return row{NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("out", "BENCH_PR10.json", "ledger output path")
		tables  = flag.String("tables", "", "also render the exhaustive campaign's tables to this file (shared reporter path)")
		grid    = flag.Int("grid", 1, "campaign test-case grid edge")
		observe = flag.Int64("observe", 16000, "campaign observation window in ms")
		seed    = flag.Int64("seed", 1, "campaign seed")
	)
	flag.Parse()

	tc := easig.TestCase{MassKg: 14000, VelocityMS: 55}
	led := ledger{
		Schema:        "easig-bench/5",
		Go:            runtime.Version(),
		GOARCH:        runtime.GOARCH,
		Cores:         runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Grid:          *grid,
		ObservationMs: *observe,
	}

	// Per-tick hot path. This row is the regression gate: the campaign
	// executes tens of millions of ticks, so the hot path must not
	// allocate at all.
	sys, err := target.NewSystem(target.SystemConfig{
		TestCase: tc, Seed: *seed, Version: target.VersionAll, Recovery: core.NoRecovery{},
	})
	if err != nil {
		return err
	}
	sys.RunMs(1000)
	led.Tick = toRow(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys.StepMs()
		}
	}))

	// Snapshot capture + restore.
	var st target.SystemState
	sys.Capture(&st)
	led.SnapshotCaptureRestore = toRow(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys.Capture(&st)
			if err := sys.Restore(&st); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// One engine error run: restore the nominal snapshot, inject until
	// the outcome settles, derive all eight version builds.
	eng, err := inject.NewEngine(inject.RunConfig{TestCase: tc, ObservationMs: *observe, Seed: *seed})
	if err != nil {
		return err
	}
	errors := easig.BuildE1()
	versions := target.Versions()
	results := make([]inject.RunResult, len(versions))
	led.DerivedRunsPerOp = len(versions)
	led.EngineErrorRun = toRow(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := eng.RunError(errors[i%len(errors)], versions, results); err != nil {
				b.Fatal(err)
			}
		}
	}))
	if led.EngineErrorRun.NsPerOp > 0 {
		led.EngineRunsPerSec = float64(led.DerivedRunsPerOp) * 1e9 / led.EngineErrorRun.NsPerOp
	}

	// E1 campaign wall-clock, snapshot vs. literal, same protocol and
	// seed (the PR 4 comparison).
	e1 := func(mode easig.EngineMode) (time.Duration, int, error) {
		start := time.Now()
		r, err := easig.RunE1(easig.CampaignConfig{
			Spec: easig.CampaignSpec{Grid: *grid, Seed: *seed, ObservationMs: *observe},
			Exec: easig.CampaignExec{Mode: mode},
		})
		if err != nil {
			return 0, 0, err
		}
		return time.Since(start), r.Runs, nil
	}
	snapWall, runs, err := e1(easig.EngineSnapshot)
	if err != nil {
		return err
	}
	literalWall, _, err := e1(easig.EngineLiteral)
	if err != nil {
		return err
	}
	led.CampaignSnapshotWallMs = snapWall.Milliseconds()
	led.CampaignLiteralWallMs = literalWall.Milliseconds()
	led.CampaignRuns = runs
	if s := snapWall.Seconds(); s > 0 {
		led.CampaignSnapshotRunsPerSec = float64(runs) / s
	}
	if s := literalWall.Seconds(); s > 0 {
		led.CampaignLiteralRunsPerSec = float64(runs) / s
	}
	if snapWall > 0 {
		led.CampaignSpeedup = float64(literalWall) / float64(snapWall)
	}

	// Exhaustive fault space, memo vs. snapshot (the PR 6 headline):
	// all 11 400 (byte, bit) positions, the snapshot engine simulating
	// each one vs. the memo runner pruning the dead ones via the
	// liveness pass and memoizing the rest.
	exhaustive := func(mode easig.EngineMode) (time.Duration, *easig.E2Result, error) {
		start := time.Now()
		r, err := easig.RunE2(easig.CampaignConfig{
			Spec: easig.CampaignSpec{Grid: *grid, Seed: *seed, ObservationMs: *observe, Exhaustive: true},
			Exec: easig.CampaignExec{Mode: mode},
		})
		if err != nil {
			return 0, nil, err
		}
		return time.Since(start), r, nil
	}
	memoWall, memoRes, err := exhaustive(easig.EngineMemo)
	if err != nil {
		return err
	}
	exSnapWall, _, err := exhaustive(easig.EngineSnapshot)
	if err != nil {
		return err
	}
	led.ExhaustiveRuns = memoRes.Runs
	led.ExhaustiveSnapshotWallMs = exSnapWall.Milliseconds()
	led.ExhaustiveMemoWallMs = memoWall.Milliseconds()
	if s := exSnapWall.Seconds(); s > 0 {
		led.ExhaustiveSnapshotRunsPerSec = float64(memoRes.Runs) / s
	}
	if s := memoWall.Seconds(); s > 0 {
		led.ExhaustiveMemoRunsPerSec = float64(memoRes.Runs) / s
	}
	if memoWall > 0 {
		led.ExhaustiveSpeedup = float64(exSnapWall) / float64(memoWall)
	}
	led.ExhaustivePruneRate = memoRes.Metrics.PruneRate
	led.ExhaustiveMemoHitRate = memoRes.Metrics.MemoHitRate
	cov, _, _ := memoRes.Total()
	led.ExhaustivePdetectPct = cov.All.Percent()

	if *tables != "" {
		// The tables artifact renders through the same reporter path as
		// fic's stdout and ficd's results endpoint, so a bench run's
		// Table 9 is diffable against either.
		rep := easig.CampaignReporter{Format: easig.TextReport{}, Output: easig.FileReport{Path: *tables}}
		res := &easig.CampaignResults{
			Spec: easig.CampaignSpec{Grid: *grid, Seed: *seed, ObservationMs: *observe, Exhaustive: true},
			E2:   memoRes,
		}
		if err := rep.Report(res); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *tables)
	}

	// Memo-hit scenario: the E2 sample served twice through one memo
	// runner. The second pass's live errors are all repeat state deltas,
	// so they must come out of the outcome memo, not the simulator.
	mr, err := inject.NewMemoRunner(inject.RunConfig{TestCase: tc, ObservationMs: *observe, Seed: *seed})
	if err != nil {
		return err
	}
	e2errs := inject.BuildE2(inject.DefaultE2Spec(), *seed)
	memoOut := make([]inject.RunResult, 1)
	for pass := 0; pass < 2; pass++ {
		for _, e := range e2errs {
			memoOut[0] = inject.RunResult{}
			if err := mr.RunError(e, []target.Version{target.VersionAll}, memoOut); err != nil {
				return err
			}
		}
	}
	mst := mr.Stats()
	led.MemoRepeatErrors = mst.Errors
	led.MemoRepeatHits = mst.MemoHits
	led.MemoRepeatHitRate = mst.MemoHitRate()

	// Scaling curves: the same campaigns across 1/2/4/8 workers of the
	// work-stealing scheduler. The sampled E1 curve exercises the shared
	// profile cache under the snapshot engine; the exhaustive memo curve
	// additionally exercises intra-case chunking and shared-memo merges.
	workerCounts := []int{1, 2, 4, 8}
	scale := func(run func(workers int) (time.Duration, int, easig.CampaignMetrics, error)) ([]scalingRow, error) {
		rows := make([]scalingRow, 0, len(workerCounts))
		for _, w := range workerCounts {
			wall, n, m, err := run(w)
			if err != nil {
				return nil, err
			}
			r := scalingRow{Workers: w, WallMs: wall.Milliseconds()}
			if s := wall.Seconds(); s > 0 {
				r.RunsPerSec = float64(n) / s
			}
			if len(rows) == 0 {
				r.SpeedupVs1 = 1
			} else if rows[0].WallMs > 0 && r.WallMs > 0 {
				r.SpeedupVs1 = float64(rows[0].WallMs) / float64(r.WallMs)
			}
			for _, wm := range m.Workers {
				r.StolenBatches += wm.Stolen
			}
			rows = append(rows, r)
		}
		return rows, nil
	}
	led.ScalingE1Snapshot, err = scale(func(workers int) (time.Duration, int, easig.CampaignMetrics, error) {
		start := time.Now()
		r, err := easig.RunE1(easig.CampaignConfig{
			Spec: easig.CampaignSpec{Grid: *grid, Seed: *seed, ObservationMs: *observe},
			Exec: easig.CampaignExec{Mode: easig.EngineSnapshot, Workers: workers},
		})
		if err != nil {
			return 0, 0, easig.CampaignMetrics{}, err
		}
		return time.Since(start), r.Runs, r.Metrics, nil
	})
	if err != nil {
		return err
	}
	led.ScalingExhaustiveMemo, err = scale(func(workers int) (time.Duration, int, easig.CampaignMetrics, error) {
		start := time.Now()
		r, err := easig.RunE2(easig.CampaignConfig{
			Spec: easig.CampaignSpec{Grid: *grid, Seed: *seed, ObservationMs: *observe, Exhaustive: true},
			Exec: easig.CampaignExec{Mode: easig.EngineMemo, Workers: workers},
		})
		if err != nil {
			return 0, 0, easig.CampaignMetrics{}, err
		}
		return time.Since(start), r.Runs, r.Metrics, nil
	})
	if err != nil {
		return err
	}
	led.ScalingExhaustive8xVs1 = led.ScalingExhaustiveMemo[len(led.ScalingExhaustiveMemo)-1].SpeedupVs1
	// Core-aware gate: perfect scaling is unreachable (the profile is
	// computed once, the collector is serial), so require ~0.45x per
	// core up to the 4x tentpole gate; on fewer than 3 cores this
	// degrades to "the parallel scheduler costs at most 15%".
	led.ScalingGateRequired = 0.45 * float64(led.Cores)
	if led.ScalingGateRequired < 0.85 {
		led.ScalingGateRequired = 0.85
	}
	if led.ScalingGateRequired > 4 {
		led.ScalingGateRequired = 4
	}

	// Optimizer lattice sweep: calibration timed separately from the
	// probe sweep, since they answer different questions (how expensive
	// the assertions are vs. how fast the sweep covers the fault space).
	// The measured model is the one OPTIMIZER.md's worked example quotes.
	calStart := time.Now()
	cost, err := optimize.Calibrate(optimize.CalibrateOptions{TestCase: tc, Seed: *seed})
	if err != nil {
		return err
	}
	led.OptimizeCalibrationWallMs = time.Since(calStart).Milliseconds()
	led.OptimizeBaselineNsPerTick = cost.BaselineNsPerTick
	led.OptimizeAllNsPerTick = cost.AllNsPerTick
	led.OptimizeAdditivityErrPct = cost.AdditivityErrPct()
	sweepStart := time.Now()
	orep, err := optimize.Run(optimize.Spec{
		Errors: optimize.ErrorsE2, Grid: *grid, ObservationMs: *observe, Seed: *seed,
	}, optimize.Options{Cost: &cost})
	if err != nil {
		return err
	}
	led.OptimizeSweepWallMs = time.Since(sweepStart).Milliseconds()
	led.OptimizeProbes = orep.Probes
	led.OptimizeLatticeSize = orep.LatticeSize
	led.OptimizeProbesPerSec = orep.Metrics.RunsPerSec
	led.OptimizeFrontSize = len(orep.Front)

	// Streaming service (PR 10). The workload is a sigmon-style replay:
	// 16 plant streams sampled for 4000 ticks, interleaved round-robin
	// into 512-record wire batches.
	const (
		streamStreams = 16
		streamTicks   = 4000
		streamBatch   = 512
	)
	streamTraces := make([][]stream.TraceRow, streamStreams)
	bySeed := map[int64][]stream.TraceRow{}
	for id := 0; id < streamStreams; id++ {
		traceSeed := *seed + int64(id%3)
		rows, ok := bySeed[traceSeed]
		if !ok {
			if rows, err = stream.NominalTrace(streamTicks, tc.MassKg, tc.VelocityMS, traceSeed); err != nil {
				return err
			}
			bySeed[traceSeed] = rows
		}
		streamTraces[id] = rows
	}
	var streamPayloads [][]byte
	{
		recs := make([]stream.Record, 0, streamBatch)
		for i := 0; i < streamTicks; i++ {
			for id := 0; id < streamStreams; id++ {
				r := streamTraces[id][i]
				recs = append(recs, stream.Record{Stream: uint32(id), Tick: r.Tick, Values: r.Values})
				if len(recs) == streamBatch {
					streamPayloads = append(streamPayloads, stream.AppendBatch(nil, recs))
					recs = recs[:0]
				}
			}
		}
		if len(recs) > 0 {
			streamPayloads = append(streamPayloads, stream.AppendBatch(nil, recs))
		}
	}
	streamSamples := streamStreams * streamTicks

	// Zero-alloc gate: the whole ingest->monitor path for one payload,
	// driven synchronously on an unstarted service so allocs/op is
	// deterministic.
	gateSvc, err := stream.NewUnstarted(stream.Config{Shards: 4, MaxStreams: streamStreams, QueueBatches: 64})
	if err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		if _, _, err := gateSvc.Ingest(streamPayloads[0]); err != nil {
			return err
		}
		gateSvc.DrainQueued()
	}
	led.StreamIngest = toRow(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := gateSvc.Ingest(streamPayloads[0]); err != nil {
				b.Fatal(err)
			}
			gateSvc.DrainQueued()
		}
	}))
	led.StreamIngestSamples = streamBatch
	led.StreamIngestNsPerSample = led.StreamIngest.NsPerOp / float64(streamBatch)

	// Shard-scaling curve: replay the full workload through a live
	// service at each shard count; best of three repetitions so a
	// scheduling hiccup does not poison a gate. Wall time covers Ingest
	// through Flush (every sample applied), speedups are computed on
	// unrounded durations.
	streamWalls := make(map[int]time.Duration)
	for _, shards := range []int{1, 2, 4, 8} {
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			svc, err := stream.New(stream.Config{Shards: shards, MaxStreams: streamStreams, QueueBatches: 256})
			if err != nil {
				return err
			}
			start := time.Now()
			for _, p := range streamPayloads {
				if _, _, err := svc.Ingest(p); err != nil {
					svc.Close()
					return err
				}
			}
			if err := svc.Flush(); err != nil {
				svc.Close()
				return err
			}
			wall := time.Since(start)
			if err := svc.Close(); err != nil {
				return err
			}
			if best == 0 || wall < best {
				best = wall
			}
		}
		streamWalls[shards] = best
		r := streamScalingRow{Shards: shards, WallMs: best.Milliseconds()}
		if s := best.Seconds(); s > 0 {
			r.SamplesPerSec = float64(streamSamples) / s
			r.SignalsPerSec = r.SamplesPerSec * stream.NumSignals
		}
		if w1 := streamWalls[1]; w1 > 0 && best > 0 {
			r.SpeedupVs1 = float64(w1) / float64(best)
		}
		led.StreamScaling = append(led.StreamScaling, r)
		if shards == 4 {
			led.StreamScaling4Shard = r.SpeedupVs1
		}
	}
	// Core-aware gate: the tentpole asks >=2x at 4 shards, which only a
	// multi-core host can deliver; require 0.5x per core up to that 2x,
	// and on a single core apply the documented floor — sharding's
	// dispatch overhead may cost at most 15% (0.85x).
	led.StreamScalingGateRequired = 0.5 * float64(led.Cores)
	if led.StreamScalingGateRequired < 0.85 {
		led.StreamScalingGateRequired = 0.85
	}
	if led.StreamScalingGateRequired > 2 {
		led.StreamScalingGateRequired = 2
	}

	buf, err := json.MarshalIndent(led, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: tick %.0f ns/op %d allocs/op; engine %.0f runs/s %d allocs/op; E1 speedup %.1fx; exhaustive %.1fx (%.1f%% pruned); repeat memo hit rate %.1f%%; 8w scaling %.2fx on %d cores; lattice sweep %d probes at %.0f/s, front %d; stream ingest %.0f ns/sample %d allocs/op, 4-shard %.2fx; wrote %s\n",
		led.Tick.NsPerOp, led.Tick.AllocsPerOp, led.EngineRunsPerSec, led.EngineErrorRun.AllocsPerOp,
		led.CampaignSpeedup, led.ExhaustiveSpeedup, 100*led.ExhaustivePruneRate,
		100*led.MemoRepeatHitRate, led.ScalingExhaustive8xVs1, led.Cores,
		led.OptimizeProbes, led.OptimizeProbesPerSec, led.OptimizeFrontSize,
		led.StreamIngestNsPerSample, led.StreamIngest.AllocsPerOp, led.StreamScaling4Shard, *out)

	// Regression gates: a heap allocation on the tick path, a snapshot
	// campaign slower than literal, or a memo/prune runner that lost
	// its edge over the plain snapshot engine fails the run (and the CI
	// benchmark job with it).
	if led.Tick.AllocsPerOp != 0 {
		return fmt.Errorf("per-tick hot path allocates (%d allocs/op); the zero-allocation gate failed", led.Tick.AllocsPerOp)
	}
	if led.SnapshotCaptureRestore.AllocsPerOp != 0 {
		return fmt.Errorf("snapshot capture/restore allocates (%d allocs/op)", led.SnapshotCaptureRestore.AllocsPerOp)
	}
	if led.EngineErrorRun.AllocsPerOp != 0 {
		return fmt.Errorf("engine error run allocates (%d allocs/op); the zero-allocation gate failed", led.EngineErrorRun.AllocsPerOp)
	}
	if led.CampaignSpeedup < 1 {
		return fmt.Errorf("snapshot campaign slower than literal (speedup %.2fx)", led.CampaignSpeedup)
	}
	if led.ExhaustiveSpeedup < 5 {
		return fmt.Errorf("memo/prune runner below the 5x gate on the exhaustive grid (speedup %.2fx)", led.ExhaustiveSpeedup)
	}
	if led.MemoRepeatHits == 0 {
		return fmt.Errorf("repeated error draws produced no memo hits; the outcome memo is dead")
	}
	if led.ScalingExhaustive8xVs1 < led.ScalingGateRequired {
		return fmt.Errorf("8-worker exhaustive campaign at %.2fx vs 1 worker, below the core-aware gate of %.2fx on %d cores",
			led.ScalingExhaustive8xVs1, led.ScalingGateRequired, led.Cores)
	}
	if led.OptimizeFrontSize == 0 {
		return fmt.Errorf("lattice sweep emitted an empty Pareto front")
	}
	if led.StreamIngest.AllocsPerOp != 0 {
		return fmt.Errorf("stream ingest->monitor path allocates (%d allocs per %d-record batch); the zero-allocation gate failed",
			led.StreamIngest.AllocsPerOp, led.StreamIngestSamples)
	}
	if led.StreamScaling4Shard < led.StreamScalingGateRequired {
		return fmt.Errorf("4-shard streaming replay at %.2fx vs 1 shard, below the core-aware gate of %.2fx on %d cores",
			led.StreamScaling4Shard, led.StreamScalingGateRequired, led.Cores)
	}
	return nil
}
