// Command bench is the repository's benchmark ledger: it measures the
// simulator's per-tick hot path, the snapshot engine, and the scaled
// E1 campaign in both execution modes, and writes the results as a
// JSON ledger (BENCH_PR4.json) so every future change has a perf
// trajectory to diff against. It doubles as the CI regression gate:
// the run fails if the per-tick hot path allocates.
//
// Usage:
//
//	bench                    # write BENCH_PR4.json in the current directory
//	bench -out ledger.json   # write elsewhere
//	bench -observe 40000     # measure at the paper's full window
//
// The campaign rows use a scaled protocol (one test case, 16 s window
// by default) so the ledger regenerates in well under a minute; the
// speedup at the paper's full 40 s window is strictly larger, because
// the from-scratch mode pays for the whole window while the snapshot
// engine stops at the settled outcome.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"easig"
	"easig/internal/core"
	"easig/internal/inject"
	"easig/internal/target"
)

// row is one benchmark ledger entry.
type row struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// ledger is the BENCH_PR4.json document.
type ledger struct {
	Schema        string `json:"schema"`
	Go            string `json:"go"`
	GOARCH        string `json:"goarch"`
	Grid          int    `json:"grid"`
	ObservationMs int64  `json:"observation_ms"`

	// Tick is one control cycle of the nominal instrumented target
	// (both nodes, all assertions, plant integration).
	Tick row `json:"tick"`
	// SnapshotCaptureRestore is one full checkpoint cycle of the
	// target system state.
	SnapshotCaptureRestore row `json:"snapshot_capture_restore"`
	// EngineErrorRun is one fast-forwarded error run (restore, inject
	// to a settled outcome, derive all eight versions).
	EngineErrorRun   row     `json:"engine_error_run"`
	DerivedRunsPerOp int     `json:"engine_derived_runs_per_op"`
	EngineRunsPerSec float64 `json:"engine_runs_per_sec"`

	// CampaignE1 compares the scaled E1 campaign in both modes.
	CampaignSnapshotWallMs        int64   `json:"campaign_e1_snapshot_wall_ms"`
	CampaignFromScratchWallMs     int64   `json:"campaign_e1_from_scratch_wall_ms"`
	CampaignRuns                  int     `json:"campaign_e1_runs"`
	CampaignSnapshotRunsPerSec    float64 `json:"campaign_e1_snapshot_runs_per_sec"`
	CampaignFromScratchRunsPerSec float64 `json:"campaign_e1_from_scratch_runs_per_sec"`
	CampaignSpeedup               float64 `json:"campaign_e1_speedup"`
}

func toRow(r testing.BenchmarkResult) row {
	return row{NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("out", "BENCH_PR4.json", "ledger output path")
		grid    = flag.Int("grid", 1, "campaign test-case grid edge")
		observe = flag.Int64("observe", 16000, "campaign observation window in ms")
		seed    = flag.Int64("seed", 1, "campaign seed")
	)
	flag.Parse()

	tc := easig.TestCase{MassKg: 14000, VelocityMS: 55}
	led := ledger{
		Schema:        "easig-bench/1",
		Go:            runtime.Version(),
		GOARCH:        runtime.GOARCH,
		Grid:          *grid,
		ObservationMs: *observe,
	}

	// Per-tick hot path. This row is the regression gate: the campaign
	// executes tens of millions of ticks, so the hot path must not
	// allocate at all.
	sys, err := target.NewSystem(target.SystemConfig{
		TestCase: tc, Seed: *seed, Version: target.VersionAll, Recovery: core.NoRecovery{},
	})
	if err != nil {
		return err
	}
	sys.RunMs(1000)
	led.Tick = toRow(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys.StepMs()
		}
	}))

	// Snapshot capture + restore.
	var st target.SystemState
	sys.Capture(&st)
	led.SnapshotCaptureRestore = toRow(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys.Capture(&st)
			if err := sys.Restore(&st); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// One engine error run: restore the nominal snapshot, inject until
	// the outcome settles, derive all eight version builds.
	eng, err := inject.NewEngine(inject.RunConfig{TestCase: tc, ObservationMs: *observe, Seed: *seed})
	if err != nil {
		return err
	}
	errors := easig.BuildE1()
	versions := target.Versions()
	results := make([]inject.RunResult, len(versions))
	led.DerivedRunsPerOp = len(versions)
	led.EngineErrorRun = toRow(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := eng.RunError(errors[i%len(errors)], versions, results); err != nil {
				b.Fatal(err)
			}
		}
	}))
	if led.EngineErrorRun.NsPerOp > 0 {
		led.EngineRunsPerSec = float64(led.DerivedRunsPerOp) * 1e9 / led.EngineErrorRun.NsPerOp
	}

	// Campaign wall-clock, both modes, same protocol and seed.
	campaign := func(fromScratch bool) (time.Duration, int, error) {
		start := time.Now()
		r, err := easig.RunE1(easig.CampaignConfig{
			Grid:          *grid,
			Seed:          *seed,
			ObservationMs: *observe,
			FromScratch:   fromScratch,
		})
		if err != nil {
			return 0, 0, err
		}
		return time.Since(start), r.Runs, nil
	}
	snapWall, runs, err := campaign(false)
	if err != nil {
		return err
	}
	scratchWall, _, err := campaign(true)
	if err != nil {
		return err
	}
	led.CampaignSnapshotWallMs = snapWall.Milliseconds()
	led.CampaignFromScratchWallMs = scratchWall.Milliseconds()
	led.CampaignRuns = runs
	if s := snapWall.Seconds(); s > 0 {
		led.CampaignSnapshotRunsPerSec = float64(runs) / s
	}
	if s := scratchWall.Seconds(); s > 0 {
		led.CampaignFromScratchRunsPerSec = float64(runs) / s
	}
	if snapWall > 0 {
		led.CampaignSpeedup = float64(scratchWall) / float64(snapWall)
	}

	buf, err := json.MarshalIndent(led, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: tick %.0f ns/op %d allocs/op; engine %.0f runs/s; campaign speedup %.1fx; wrote %s\n",
		led.Tick.NsPerOp, led.Tick.AllocsPerOp, led.EngineRunsPerSec, led.CampaignSpeedup, *out)

	// Regression gates: a heap allocation on the tick path or a
	// campaign slower than from-scratch execution fails the run (and
	// the CI benchmark job with it).
	if led.Tick.AllocsPerOp != 0 {
		return fmt.Errorf("per-tick hot path allocates (%d allocs/op); the zero-allocation gate failed", led.Tick.AllocsPerOp)
	}
	if led.SnapshotCaptureRestore.AllocsPerOp != 0 {
		return fmt.Errorf("snapshot capture/restore allocates (%d allocs/op)", led.SnapshotCaptureRestore.AllocsPerOp)
	}
	if led.CampaignSpeedup < 1 {
		return fmt.Errorf("snapshot campaign slower than from-scratch (speedup %.2fx)", led.CampaignSpeedup)
	}
	return nil
}
