// Command ficd is the sharded campaign service: a long-running HTTP
// server that accepts campaign submissions, cuts each campaign's
// (error x case x version) grid into claimable shards, leases shards to
// `fic worker` processes with heartbeat-renewed expiry (a crashed
// worker's shards are reclaimed when its lease runs out), validates and
// merges the uploaded shard journals, and serves Tables 7-9 that are
// byte-identical to a single-process `fic` run of the same campaign.
//
// Usage:
//
//	ficd -listen :7070 -state /var/lib/ficd
//
// then, from any number of terminals or machines:
//
//	fic worker -server http://localhost:7070
//
// Submit a campaign with curl:
//
//	curl -d '{"kind":"e1","spec":{"grid":2,"observation_ms":1500}}' \
//	    http://localhost:7070/api/v1/campaigns
//
// and fetch the merged tables once the state is "complete":
//
//	curl http://localhost:7070/api/v1/campaigns/c1/results?format=text
//
// The full API reference, the shard-claim/lease state machine and the
// failure-mode table are in SERVICE.md. With -state set, campaigns
// survive service restarts: the shard ledger and uploaded journals are
// replayed from disk on startup.
//
// Flags:
//
//	-listen addr          HTTP listen address (default :7070)
//	-state dir            persistence directory (default: in-memory only)
//	-lease duration       shard lease between heartbeats (default 30s)
//	-cases-per-shard n    shard size in test cases (default 1)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"easig/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ficd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen        = flag.String("listen", ":7070", "HTTP listen address")
		stateDir      = flag.String("state", "", "persistence directory (empty = in-memory only; campaigns do not survive restarts)")
		lease         = flag.Duration("lease", service.DefaultLease, "shard lease duration; workers heartbeat at a third of this")
		casesPerShard = flag.Int("cases-per-shard", 1, "default shard size in test cases (submissions may override)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", flag.Args())
	}

	srv, err := service.New(service.Options{
		Lease:         *lease,
		CasesPerShard: *casesPerShard,
		StateDir:      *stateDir,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ficd: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}

	// Ctrl-C drains cleanly: in-flight uploads finish, the ledger and
	// shard journals are on disk, and a restart with the same -state
	// resumes every campaign where it left off.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ficd: listening on %s (lease %v, %d cases/shard", *listen, *lease, *casesPerShard)
	if *stateDir != "" {
		fmt.Fprintf(os.Stderr, ", state in %s", *stateDir)
	}
	fmt.Fprintln(os.Stderr, ")")

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "ficd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
