package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"easig/internal/stream"
)

// replayOpts parameterizes one -replay invocation.
type replayOpts struct {
	server  string
	streams int
	ticks   int
	batch   int
	faults  bool
	verify  bool
	seed    int64
}

// runReplay is sigmond's load generator and equivalence checker: it
// simulates opts.streams plant nodes sampling their seven monitored
// signals every millisecond, interleaves the samples round-robin into
// wire batches (each HTTP request carries one batch of opts.batch
// records, the way a fieldbus gateway would coalesce its nodes), and
// streams them at full speed to the server. With verify set, every
// payload is also fed to an inline reference observer and the two
// detection journals are diffed byte-for-byte after canonicalization;
// a divergence exits 2.
func runReplay(o replayOpts, stdout io.Writer) (int, error) {
	if o.server == "" {
		return 0, fmt.Errorf("-replay requires -server")
	}
	if o.streams <= 0 || o.ticks <= 0 {
		return 0, fmt.Errorf("-streams and -ticks must be positive")
	}
	if o.batch <= 0 || o.batch > stream.MaxBatchRecords {
		return 0, fmt.Errorf("-batch must be in 1..%d", stream.MaxBatchRecords)
	}

	// Distinct plant seeds keep the streams from being bit-identical
	// copies without paying for a full physics run per stream.
	fmt.Fprintf(stdout, "generating %d-tick traces for %d streams\n", o.ticks, o.streams)
	bySeed := map[int64][]stream.TraceRow{}
	traces := make([][]stream.TraceRow, o.streams)
	for id := 0; id < o.streams; id++ {
		seed := o.seed + int64(id%3)
		rows, ok := bySeed[seed]
		if !ok {
			var err error
			if rows, err = stream.NominalTrace(o.ticks, 14000, 55, seed); err != nil {
				return 0, err
			}
			bySeed[seed] = rows
		}
		if o.faults && id%2 == 1 {
			rows = stream.FlipBit(rows, (100+17*id)%o.ticks, id%stream.NumSignals, 15)
			rows = stream.FlipBit(rows, (o.ticks/2+31*id)%o.ticks, (id+3)%stream.NumSignals, 14)
		}
		traces[id] = rows
	}

	var inline *stream.Inline
	if o.verify {
		inline = stream.NewInline(o.streams)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	var sent, dropped int
	recs := make([]stream.Record, 0, o.batch)
	var payload []byte
	post := func() error {
		if len(recs) == 0 {
			return nil
		}
		payload = stream.AppendBatch(payload[:0], recs)
		recs = recs[:0]
		if inline != nil {
			if err := inline.Ingest(payload); err != nil {
				return err
			}
		}
		resp, err := client.Post(o.server+"/api/v1/ingest", "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("ingest: %s: %s", resp.Status, body)
		}
		var ack stream.IngestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			return err
		}
		sent += ack.Accepted
		dropped += ack.Dropped
		return nil
	}

	start := time.Now()
	for i := 0; i < o.ticks; i++ {
		for id := range traces {
			if i >= len(traces[id]) {
				continue
			}
			r := traces[id][i]
			recs = append(recs, stream.Record{Stream: uint32(id), Tick: r.Tick, Values: r.Values})
			if len(recs) == o.batch {
				if err := post(); err != nil {
					return 0, err
				}
			}
		}
	}
	if err := post(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)

	resp, err := client.Post(o.server+"/api/v1/flush", "", nil)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()

	persec := float64(sent) / elapsed.Seconds()
	fmt.Fprintf(stdout, "replayed %d samples (%d streams x %d ticks) in %v: %.0f samples/s, %.0f signals/s\n",
		sent, o.streams, o.ticks, elapsed.Round(time.Millisecond), persec, persec*stream.NumSignals)
	if dropped > 0 {
		fmt.Fprintf(stdout, "server shed %d samples (backpressure policy)\n", dropped)
	}

	if !o.verify {
		return 0, nil
	}
	if dropped > 0 {
		return 0, fmt.Errorf("-verify needs a lossless replay; the server shed %d samples (run it with -policy block)", dropped)
	}
	resp, err = client.Get(o.server + "/api/v1/detections")
	if err != nil {
		return 0, err
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	want, err := inline.Detections()
	if err != nil {
		return 0, err
	}
	cGot := stream.CanonicalizeDetections(got)
	cWant := stream.CanonicalizeDetections(want)
	if !bytes.Equal(cGot, cWant) {
		fmt.Fprintf(stdout, "verify: FAIL: service reported %d detection bytes, inline observer %d; observers diverge\n",
			len(cGot), len(cWant))
		return 2, nil
	}
	lines := bytes.Count(cWant, []byte("\n"))
	fmt.Fprintf(stdout, "verify: OK: %d detection lines byte-identical to inline monitoring\n", lines)
	if o.faults && lines == 0 {
		return 0, fmt.Errorf("verify is vacuous: faults were injected but neither observer detected anything")
	}
	return 0, nil
}
