// Command sigmon applies executable assertions to CSV signal traces.
//
// In -check mode it instantiates a monitor from command-line
// parameters and reports every violation in the named trace column. In
// -calibrate mode it derives a parameter-set proposal from the trace
// (the core.Calibrator workflow), printing a ready-to-use constraint
// specification.
//
// Usage:
//
//	sigmon -check -signal IsValue -class Co/Ra -min 0 -max 1740 \
//	       -rmax-incr 90 -rmax-decr 90 < trace.csv
//	sigmon -calibrate -signal pulscnt -margin 0.1 < trace.csv
//
// Trace CSV format: header "t_ms,<name>,...", one row per sample (the
// format written by arrest -csv).
package main

import (
	"flag"
	"fmt"
	"os"

	"easig"
	"easig/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sigmon:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		check     = flag.Bool("check", false, "run assertions over the trace")
		calibrate = flag.Bool("calibrate", false, "propose parameters from the trace")
		signal    = flag.String("signal", "", "trace column to monitor")
		classF    = flag.String("class", "Co/Ra", "signal class (Table 4 notation)")
		minF      = flag.Int64("min", 0, "smin")
		maxF      = flag.Int64("max", 0, "smax")
		rMinIncr  = flag.Int64("rmin-incr", 0, "minimum increase rate")
		rMaxIncr  = flag.Int64("rmax-incr", 0, "maximum increase rate")
		rMinDecr  = flag.Int64("rmin-decr", 0, "minimum decrease rate")
		rMaxDecr  = flag.Int64("rmax-decr", 0, "maximum decrease rate")
		wrap      = flag.Bool("wrap", false, "allow wrap-around")
		margin    = flag.Float64("margin", 0.1, "calibration margin fraction")
	)
	flag.Parse()

	if *check == *calibrate {
		return fmt.Errorf("pass exactly one of -check or -calibrate")
	}
	if *signal == "" {
		return fmt.Errorf("-signal is required")
	}
	set, err := trace.ReadCSV(os.Stdin)
	if err != nil {
		return err
	}
	tr, ok := set.Trace(*signal)
	if !ok {
		return fmt.Errorf("trace has no column %q", *signal)
	}
	if tr.Len() == 0 {
		return fmt.Errorf("column %q is empty", *signal)
	}

	if *calibrate {
		var cal easig.ContinuousCalibrator
		for _, s := range tr.Samples {
			cal.Observe(s)
		}
		cal.EndRun()
		p, class, err := cal.Propose(easig.CalibrationOptions{
			BoundMargin: *margin,
			RateMargin:  *margin,
			Wrap:        *wrap,
		})
		if err != nil {
			return err
		}
		fmt.Printf("signal %s: %d samples\n", *signal, tr.Len())
		fmt.Printf("proposed class: %v\n", class)
		fmt.Printf("proposed parameters: %v\n", p)
		fmt.Printf("flags: -class %s -min %d -max %d -rmin-incr %d -rmax-incr %d -rmin-decr %d -rmax-decr %d\n",
			class, p.Min, p.Max, p.Incr.Min, p.Incr.Max, p.Decr.Min, p.Decr.Max)
		return nil
	}

	class, err := easig.ParseClass(*classF)
	if err != nil {
		return err
	}
	if !class.IsContinuous() {
		return fmt.Errorf("sigmon -check supports continuous classes; got %v", class)
	}
	p := easig.Continuous{
		Min:  *minF,
		Max:  *maxF,
		Incr: easig.Rate{Min: *rMinIncr, Max: *rMaxIncr},
		Decr: easig.Rate{Min: *rMinDecr, Max: *rMaxDecr},
		Wrap: *wrap,
	}
	violations := 0
	mon, err := easig.NewContinuousMonitor(*signal, class, p,
		easig.WithRecovery(easig.NoRecovery{}),
		easig.WithSink(easig.SinkFunc(func(v easig.Violation) {
			violations++
			fmt.Printf("t=%dms: %v\n", v.Time, v)
		})))
	if err != nil {
		return err
	}
	for i, s := range tr.Samples {
		mon.Test(int64(i)*tr.PeriodMs, s)
	}
	fmt.Printf("%s: %d samples, %d violations\n", *signal, tr.Len(), violations)
	if violations > 0 {
		os.Exit(2)
	}
	return nil
}
