// Command sigmon applies executable assertions to signal traces — as a
// local checker, a calibrator, or a load-generating client of the
// sigmond streaming service.
//
// In -check mode it instantiates a monitor from command-line
// parameters and reports every violation in the named trace column. In
// -calibrate mode it derives a parameter-set proposal from the trace
// (the core.Calibrator workflow), printing a ready-to-use constraint
// specification. In -replay mode it generates nominal plant traces
// (optionally perturbed by injected bit flips), streams them to a
// sigmond server as wire-format sample batches, and with -verify
// checks the service's detections byte-for-byte against an inline
// reference observer fed the identical bytes — the observer-
// equivalence test of SIGMOND.md.
//
// Usage:
//
//	sigmon -check -signal IsValue -class Co/Ra -min 0 -max 1740 \
//	       -rmax-incr 90 -rmax-decr 90 < trace.csv
//	sigmon -calibrate -signal pulscnt -margin 0.1 < trace.csv
//	sigmon -replay -server http://localhost:7071 -streams 64 \
//	       -ticks 5000 -faults -verify
//
// Trace CSV format: header "t_ms,<name>,...", one row per sample (the
// format written by arrest -csv).
//
// Exit code 2 means assertions fired: -check found violations, or
// -verify found the observers diverging.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"easig"
	"easig/internal/trace"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sigmon:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run executes one sigmon invocation. It returns the process exit
// code (0 clean, 2 when -check found violations) so tests can drive
// the command without spawning a process.
func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("sigmon", flag.ContinueOnError)
	var (
		check     = fs.Bool("check", false, "run assertions over the trace")
		calibrate = fs.Bool("calibrate", false, "propose parameters from the trace")
		replay    = fs.Bool("replay", false, "stream generated traces to a sigmond server")
		server    = fs.String("server", "", "sigmond base URL (replay mode)")
		streams   = fs.Int("streams", 8, "concurrent plant streams to simulate (replay mode)")
		ticks     = fs.Int("ticks", 2000, "trace length in ms per stream (replay mode)")
		batch     = fs.Int("batch", 256, "records per wire batch / HTTP request (replay mode)")
		faults    = fs.Bool("faults", false, "inject bit-flip data errors into odd streams (replay mode)")
		verify    = fs.Bool("verify", false, "diff service detections against an inline observer (replay mode)")
		seed      = fs.Int64("seed", 0, "base trace seed (replay mode)")
		signal    = fs.String("signal", "", "trace column to monitor")
		classF    = fs.String("class", "Co/Ra", "signal class (Table 4 notation)")
		minF      = fs.Int64("min", 0, "smin")
		maxF      = fs.Int64("max", 0, "smax")
		rMinIncr  = fs.Int64("rmin-incr", 0, "minimum increase rate")
		rMaxIncr  = fs.Int64("rmax-incr", 0, "maximum increase rate")
		rMinDecr  = fs.Int64("rmin-decr", 0, "minimum decrease rate")
		rMaxDecr  = fs.Int64("rmax-decr", 0, "maximum decrease rate")
		wrap      = fs.Bool("wrap", false, "allow wrap-around")
		margin    = fs.Float64("margin", 0.1, "calibration margin fraction")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}

	if *replay {
		if *check || *calibrate {
			return 0, fmt.Errorf("-replay excludes -check and -calibrate")
		}
		return runReplay(replayOpts{
			server:  *server,
			streams: *streams,
			ticks:   *ticks,
			batch:   *batch,
			faults:  *faults,
			verify:  *verify,
			seed:    *seed,
		}, stdout)
	}
	if *check == *calibrate {
		return 0, fmt.Errorf("pass exactly one of -check, -calibrate or -replay")
	}
	if *signal == "" {
		return 0, fmt.Errorf("-signal is required")
	}
	set, err := trace.ReadCSV(stdin)
	if err != nil {
		return 0, err
	}
	tr, ok := set.Trace(*signal)
	if !ok {
		return 0, fmt.Errorf("trace has no column %q", *signal)
	}
	if tr.Len() == 0 {
		return 0, fmt.Errorf("column %q is empty", *signal)
	}

	if *calibrate {
		var cal easig.ContinuousCalibrator
		for _, s := range tr.Samples {
			cal.Observe(s)
		}
		cal.EndRun()
		p, class, err := cal.Propose(easig.CalibrationOptions{
			BoundMargin: *margin,
			RateMargin:  *margin,
			Wrap:        *wrap,
		})
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(stdout, "signal %s: %d samples\n", *signal, tr.Len())
		fmt.Fprintf(stdout, "proposed class: %v\n", class)
		fmt.Fprintf(stdout, "proposed parameters: %v\n", p)
		fmt.Fprintf(stdout, "flags: -class %s -min %d -max %d -rmin-incr %d -rmax-incr %d -rmin-decr %d -rmax-decr %d\n",
			class, p.Min, p.Max, p.Incr.Min, p.Incr.Max, p.Decr.Min, p.Decr.Max)
		return 0, nil
	}

	class, err := easig.ParseClass(*classF)
	if err != nil {
		return 0, err
	}
	if !class.IsContinuous() {
		return 0, fmt.Errorf("sigmon -check supports continuous classes; got %v", class)
	}
	p := easig.Continuous{
		Min:  *minF,
		Max:  *maxF,
		Incr: easig.Rate{Min: *rMinIncr, Max: *rMaxIncr},
		Decr: easig.Rate{Min: *rMinDecr, Max: *rMaxDecr},
		Wrap: *wrap,
	}
	violations := 0
	mon, err := easig.NewContinuousMonitor(*signal, class, p,
		easig.WithRecovery(easig.NoRecovery{}),
		easig.WithSink(easig.SinkFunc(func(v easig.Violation) {
			violations++
			fmt.Fprintf(stdout, "t=%dms: %v\n", v.Time, v)
		})))
	if err != nil {
		return 0, err
	}
	for i, s := range tr.Samples {
		mon.Test(int64(i)*tr.PeriodMs, s)
	}
	fmt.Fprintf(stdout, "%s: %d samples, %d violations\n", *signal, tr.Len(), violations)
	if violations > 0 {
		return 2, nil
	}
	return 0, nil
}
