package main

import (
	"strings"
	"testing"
)

// sampleCSV is a small trace in the arrest -csv format: a pressure
// ramp with one out-of-rate jump at t=30 ms.
const sampleCSV = `t_ms,press
0,100
10,120
20,140
30,900
40,160
50,180
`

func runSigmon(t *testing.T, in string, args ...string) (int, string, error) {
	t.Helper()
	var out strings.Builder
	code, err := run(args, strings.NewReader(in), &out)
	return code, out.String(), err
}

func TestCheckCleanTrace(t *testing.T) {
	code, out, err := runSigmon(t, sampleCSV,
		"-check", "-signal", "press", "-min", "0", "-max", "2000",
		"-rmax-incr", "1000", "-rmax-decr", "1000")
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(out, "press: 6 samples, 0 violations") {
		t.Errorf("summary missing: %q", out)
	}
}

func TestCheckFlagsViolation(t *testing.T) {
	code, out, err := runSigmon(t, sampleCSV,
		"-check", "-signal", "press", "-min", "0", "-max", "2000",
		"-rmax-incr", "30", "-rmax-decr", "30")
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 on violations", code)
	}
	if !strings.Contains(out, "t=30ms:") {
		t.Errorf("violation at t=30 not reported: %q", out)
	}
	if strings.Contains(out, " 0 violations") {
		t.Errorf("summary claims clean trace: %q", out)
	}
}

func TestCalibrateProposesFlags(t *testing.T) {
	code, out, err := runSigmon(t, sampleCSV, "-calibrate", "-signal", "press")
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(out, "proposed class:") || !strings.Contains(out, "flags: -class") {
		t.Errorf("proposal output incomplete: %q", out)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-signal", "press"},                              // neither mode
		{"-check", "-calibrate", "-signal", "x"},          // both modes
		{"-check"},                                        // no signal
		{"-check", "-signal", "nosuch"},                   // unknown column
		{"-check", "-signal", "press", "-class", "Di/SS"}, // discrete class
	} {
		if _, _, err := runSigmon(t, sampleCSV, args...); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
