package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"easig/internal/stream"
)

// replayEndToEnd drives -replay against a real in-process sigmond
// service over HTTP.
func replayEndToEnd(t *testing.T, shards int, extra ...string) (int, string) {
	t.Helper()
	svc, err := stream.New(stream.Config{Shards: shards, MaxStreams: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	args := append([]string{
		"-replay", "-server", srv.URL,
		"-streams", "6", "-ticks", "800", "-batch", "97",
	}, extra...)
	var out strings.Builder
	code, err := run(args, strings.NewReader(""), &out)
	if err != nil {
		t.Fatalf("replay failed: %v\noutput:\n%s", err, out.String())
	}
	return code, out.String()
}

func TestReplayVerifyNominal(t *testing.T) {
	code, out := replayEndToEnd(t, 2, "-verify")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "verify: OK: 0 detection lines") {
		t.Errorf("nominal replay should verify clean:\n%s", out)
	}
}

func TestReplayVerifyWithFaults(t *testing.T) {
	code, out := replayEndToEnd(t, 4, "-faults", "-verify")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "verify: OK") || strings.Contains(out, " 0 detection lines") {
		t.Errorf("faulty replay should verify with detections:\n%s", out)
	}
}

func TestReplayFlagValidation(t *testing.T) {
	if _, err := run([]string{"-replay"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("-replay without -server accepted")
	}
	if _, err := run([]string{"-replay", "-check", "-server", "x"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("-replay with -check accepted")
	}
}
