// Command arrest simulates one aircraft arrestment on the experiment
// target, optionally with one injected error, and reports the
// arrestment readouts. With -csv it streams the monitored signals as a
// CSV trace (usable as calibration input for cmd/sigmon).
//
// Usage:
//
//	arrest [-mass kg] [-velocity m/s] [-seed n] [-version all|ea1..ea7|none]
//	       [-error S1..S112] [-observe ms] [-csv] [-every ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"easig"
	"easig/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arrest:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mass     = flag.Float64("mass", 14000, "aircraft mass in kg (8000-20000)")
		velocity = flag.Float64("velocity", 55, "engagement velocity in m/s (40-70)")
		seed     = flag.Int64("seed", 1, "sensor-noise seed")
		version  = flag.String("version", "all", "software version: all, ea1..ea7, none")
		errID    = flag.String("error", "", "inject error S1..S112 from error set E1")
		observe  = flag.Int64("observe", 40000, "observation period in ms")
		csvOut   = flag.Bool("csv", false, "stream monitored signals as CSV to stdout")
		every    = flag.Int64("every", 7, "CSV sampling period in ms")
		dump     = flag.Bool("dump", false, "hex-dump the master node memory after the run")
	)
	flag.Parse()

	ver, err := parseVersion(*version)
	if err != nil {
		return err
	}
	tc := easig.TestCase{MassKg: *mass, VelocityMS: *velocity}

	var injected *easig.InjectionError
	if *errID != "" {
		for _, e := range easig.BuildE1() {
			if strings.EqualFold(e.ID, *errID) {
				e := e
				injected = &e
				break
			}
		}
		if injected == nil {
			return fmt.Errorf("unknown E1 error %q (expect S1..S112)", *errID)
		}
	}

	if *csvOut {
		return streamCSV(tc, ver, *seed, *observe, *every)
	}
	if *dump {
		return runAndDump(tc, ver, injected, *seed, *observe)
	}

	res, err := easig.Run(easig.RunConfig{
		TestCase:        tc,
		Version:         ver,
		Error:           injected,
		ObservationMs:   *observe,
		Seed:            *seed,
		FullObservation: true,
	})
	if err != nil {
		return err
	}

	fmt.Printf("Arrestment: mass %.0f kg, engagement %.1f m/s, version %v\n", *mass, *velocity, ver)
	if injected != nil {
		fmt.Printf("Injected:   %v (period 20 ms)\n", *injected)
	}
	if res.Stopped {
		fmt.Printf("Stopped:    %.1f m at t=%.2f s\n", res.DistanceM, float64(res.StoppedMs)/1000)
	} else {
		fmt.Printf("NOT STOPPED within %.1f s (travel %.1f m)\n", float64(*observe)/1000, res.DistanceM)
	}
	fmt.Printf("Peaks:      force %.0f kN, retardation %.2f g\n", res.PeakForceN/1000, res.PeakRetardationMS2/9.80665)
	if res.Failed {
		fmt.Printf("FAILURE:    %s at t=%.2f s (%s)\n", res.Failure.Kind, float64(res.Failure.TimeMs)/1000, res.Failure.Detail)
	} else {
		fmt.Println("Failure:    none (all constraints honoured)")
	}
	if res.Detected {
		fmt.Printf("Detection:  %d violations, first at t=%.2f s (latency %d ms)\n",
			res.Detections, float64(res.FirstDetectionMs)/1000, res.LatencyMs)
	} else {
		fmt.Println("Detection:  none")
	}
	return nil
}

// streamCSV runs the system step by step and emits the monitored
// signals at the sampling period.
func streamCSV(tc easig.TestCase, ver easig.Version, seed, observe, every int64) error {
	sys, err := easig.NewArrestingSystem(easig.ArrestingSystemConfig{
		TestCase: tc,
		Seed:     seed,
		Version:  ver,
	})
	if err != nil {
		return err
	}
	set := trace.NewSet(every,
		"SetValue", "IsValue", "i", "pulscnt", "ms_slot_nbr", "mscnt", "OutValue")
	if every < 1 {
		every = 1
	}
	v := sys.Master().Vars()
	for ms := int64(0); ms < observe; ms++ {
		sys.StepMs()
		if ms%every == 0 {
			if err := set.Append(
				int64(v.SetValue.Get()), int64(v.IsValue.Get()), int64(v.I.Get()),
				int64(v.PulsCnt.Get()), int64(v.MsSlotNbr.Get()), int64(v.MsCnt.Get()),
				int64(v.OutValue.Get()),
			); err != nil {
				return err
			}
		}
		if _, stopped := sys.Env().Stopped(); stopped && ms > 1000 {
			break
		}
	}
	return set.WriteCSV(os.Stdout)
}

// runAndDump replays the run step by step and hex-dumps the master
// node's memory (post-mortem state inspection).
func runAndDump(tc easig.TestCase, ver easig.Version, injected *easig.InjectionError, seed, observe int64) error {
	sys, err := easig.NewArrestingSystem(easig.ArrestingSystemConfig{
		TestCase: tc,
		Seed:     seed,
		Version:  ver,
	})
	if err != nil {
		return err
	}
	mem := sys.Master().Memory()
	for ms := int64(0); ms < observe; ms++ {
		if injected != nil && ms >= 500 && (ms-500)%20 == 0 {
			if err := mem.FlipBit(injected.Addr, injected.Bit); err != nil {
				return err
			}
		}
		sys.StepMs()
	}
	return mem.Dump(os.Stdout)
}

func parseVersion(s string) (easig.Version, error) {
	switch strings.ToLower(s) {
	case "all":
		return easig.VersionAll, nil
	case "none":
		return easig.VersionNone, nil
	case "ea1", "ea2", "ea3", "ea4", "ea5", "ea6", "ea7":
		return easig.Version(s[2] - '0'), nil
	default:
		return 0, fmt.Errorf("unknown version %q", s)
	}
}
