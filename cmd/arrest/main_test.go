package main

import "testing"

func TestParseVersion(t *testing.T) {
	tests := []struct {
		in      string
		want    int
		wantErr bool
	}{
		{"all", 0, false},
		{"All", 0, false},
		{"none", -1, false},
		{"ea1", 1, false},
		{"EA7", 7, false},
		{"ea8", 0, true},
		{"", 0, true},
		{"bogus", 0, true},
	}
	for _, tt := range tests {
		got, err := parseVersion(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseVersion(%q) error = %v", tt.in, err)
			continue
		}
		if err == nil && int(got) != tt.want {
			t.Errorf("parseVersion(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}
