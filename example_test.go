package easig_test

import (
	"fmt"

	"easig"
)

// A continuous sensor signal protected by the Table 2 assertions: the
// corrupted sample violates the rate constraint and is recovered to
// the previous value.
func ExampleNewContinuousMonitor() {
	monitor, err := easig.NewContinuousMonitor("rpm", easig.ContinuousRandom,
		easig.Continuous{
			Min:  0,
			Max:  8000,
			Incr: easig.Rate{Min: 0, Max: 150},
			Decr: easig.Rate{Min: 0, Max: 150},
		},
		easig.WithRecovery(easig.PreviousValue{}),
	)
	if err != nil {
		panic(err)
	}
	for t, sample := range []int64{3000, 3080, 3105, 7201, 3210} {
		accepted, violation := monitor.Test(int64(t), sample)
		if violation != nil {
			fmt.Printf("t=%d: %d rejected (%v), recovered to %d\n",
				t, sample, violation.Test, accepted)
		}
	}
	// Output:
	// t=3: 7201 rejected (increase-rate), recovered to 3105
}

// The paper's Figure 3 state machine as a non-linear sequential
// discrete signal: illegal transitions and out-of-domain values are
// both detected.
func ExampleNewDiscreteMonitor() {
	monitor, err := easig.NewDiscreteMonitor("state", easig.DiscreteSequentialNonLinear,
		easig.Discrete{
			Domain: []int64{1, 2, 3, 4, 5},
			Trans: map[int64][]int64{
				1: {2, 4}, 2: {3, 4}, 3: {4}, 4: {5}, 5: {1},
			},
		})
	if err != nil {
		panic(err)
	}
	for t, state := range []int64{1, 2, 4, 5, 3} {
		if _, violation := monitor.Test(int64(t), state); violation != nil {
			fmt.Printf("state %d: %v test failed\n", state, violation.Test)
		}
	}
	// Output:
	// state 3: transition test failed
}

// The stateless Table 2 engine: one check of a candidate value against
// a previous value and a parameter set.
func ExampleCheckContinuous() {
	p := easig.Continuous{
		Min:  0,
		Max:  100,
		Incr: easig.Rate{Min: 1, Max: 1},
		Wrap: true,
	}
	// A static counter wrapping at 100 (smax identified with smin).
	for _, step := range [][2]int64{{98, 99}, {99, 0}, {0, 2}} {
		id, ok := easig.CheckContinuous(p, step[0], step[1])
		if ok {
			fmt.Printf("%d -> %d legal\n", step[0], step[1])
		} else {
			fmt.Printf("%d -> %d violates %v\n", step[0], step[1], id)
		}
	}
	// Output:
	// 98 -> 99 legal
	// 99 -> 0 legal
	// 0 -> 2 violates increase-rate
}

// Deriving a parameter-set proposal from a fault-free trace (the
// calibration workflow behind the target's Table 4 parameters).
func ExampleContinuousCalibrator() {
	var cal easig.ContinuousCalibrator
	for i := int64(0); i < 100; i++ {
		cal.Observe(i * 3) // a counter stepping by exactly 3
	}
	cal.EndRun()
	p, class, err := cal.Propose(easig.CalibrationOptions{BoundMargin: 0.1})
	if err != nil {
		panic(err)
	}
	fmt.Println(class)
	fmt.Printf("rate %d..%d\n", p.Incr.Min, p.Incr.Max)
	// Output:
	// Co/Mo/St
	// rate 3..3
}

// A monitor suite with windowed escalation: the third violation within
// the window raises one alarm for the whole burst.
func ExampleNewSuite() {
	suite := easig.NewSuite(easig.WithEscalation(3, 1000, 500, func(a easig.Alarm) {
		fmt.Printf("ALARM: %d violations within %d ms\n", a.Count, a.Window)
	}))
	m, err := easig.NewContinuousMonitor("level", easig.ContinuousRandom,
		easig.Continuous{Min: 0, Max: 100, Incr: easig.Rate{Min: 0, Max: 2}, Decr: easig.Rate{Min: 0, Max: 2}})
	if err != nil {
		panic(err)
	}
	if err := suite.Add(m); err != nil {
		panic(err)
	}
	suite.Test(0, "level", 50)
	for t := int64(10); t <= 40; t += 10 {
		suite.Test(t, "level", 90) // repeated out-of-rate samples
	}
	fmt.Println("episodes:", suite.Alarms())
	// Output:
	// ALARM: 3 violations within 1000 ms
	// episodes: 1
}

// One fault-injection experiment run on the paper's target: a bit-flip
// in the millisecond counter is detected by EA6 within two injection
// periods.
func ExampleRun() {
	var mscntError easig.InjectionError
	for _, e := range easig.BuildE1() {
		if e.Signal == "mscnt" {
			mscntError = e
			break
		}
	}
	res, err := easig.Run(easig.RunConfig{
		TestCase: easig.TestCase{MassKg: 14000, VelocityMS: 55},
		Version:  easig.VersionAll,
		Error:    &mscntError,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("detected:", res.Detected)
	fmt.Println("latency under 40 ms:", res.LatencyMs < 40)
	// Output:
	// detected: true
	// latency under 40 ms: true
}
