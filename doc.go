// Package easig is a Go implementation of the signal-classification
// scheme and executable assertions of Hiller, "Executable Assertions
// for Detecting Data Errors in Embedded Control Systems" (DSN 2000),
// together with a full reproduction of the paper's fault-injection
// evaluation.
//
// # The mechanisms
//
// A signal is classified per the paper's Figure 1 as continuous
// (random, static monotonic, dynamic monotonic) or discrete (random,
// linear sequential, non-linear sequential) and instantiated with a
// per-signal parameter set: value bounds, change-rate limits and
// wrap-around capability for continuous signals (Pcont); the valid
// value domain and valid-transition sets for discrete ones (Pdisc).
// Generic, formally checkable test algorithms (the paper's Tables 2
// and 3) then detect data errors as constraint violations:
//
//	m, err := easig.NewContinuousMonitor("temp", easig.ContinuousRandom, easig.Continuous{
//		Min: -40, Max: 125,
//		Incr: easig.Rate{Min: 0, Max: 3},
//		Decr: easig.Rate{Min: 0, Max: 3},
//	})
//	...
//	accepted, violation := m.Test(nowMs, sample)
//
// Monitors support per-mode parameter sets, pluggable recovery
// policies ("the signal can be returned to a valid state"), detection
// sinks, and calibration from fault-free traces.
//
// # The reproduction
//
// The repository also contains the paper's complete case study: the
// aircraft-arresting control system (master and slave nodes with
// memory-mapped state in the paper's 417-byte RAM and 1008-byte stack
// regions), the barrier/aircraft environment simulator, the SWIFI
// campaign controller with error sets E1 and E2, and the harness
// regenerating Tables 6-9 and Figure 2. Campaigns journal every run,
// report live progress, and resume from their journal after an
// interruption with byte-identical tables (CampaignConfig.Journal /
// Resume / Progress). Results render through a pluggable
// reporter (CampaignReporter: a ReportFormat paired with a
// ReportOutput), and campaigns distribute across machines through the
// ficd service — shard plans, lease boards and shard-journal merges
// (PlanShards, ShardBoard, MergeShards) whose merged tables are
// byte-identical to a single-process run. See the cmd/fic, cmd/ficd
// and cmd/arrest tools, the examples directory, EXPERIMENTS.md for
// paper-versus-measured results, ARCHITECTURE.md for the package map,
// the run-loop data flow and the determinism contract behind campaign
// resume, and SERVICE.md for the campaign service's API reference and
// operator's manual.
package easig
