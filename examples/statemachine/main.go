// Statemachine: protect a state variable with the discrete-signal
// assertions of the paper's Table 3, using the exact state machine of
// the paper's Figure 3.
//
// The figure defines five states v1..v5 with the valid domain
// D = {v1..v5} and the transition sets
//
//	T(v1) = {v2, v4}   T(v2) = {v3, v4}   T(v3) = {v4}
//	T(v4) = {v5}       T(v5) = {v1}
//
// The monitor detects both domain errors (a corrupted state outside
// D) and transition errors (a jump the machine cannot legally make).
//
// Run with: go run ./examples/statemachine
package main

import (
	"fmt"

	"easig"
)

// The states of Figure 3.
const (
	v1 = int64(iota + 1)
	v2
	v3
	v4
	v5
)

var stateName = map[int64]string{v1: "v1", v2: "v2", v3: "v3", v4: "v4", v5: "v5"}

func main() {
	params := easig.Discrete{
		Domain: []int64{v1, v2, v3, v4, v5},
		Trans: map[int64][]int64{
			v1: {v2, v4},
			v2: {v3, v4},
			v3: {v4},
			v4: {v5},
			v5: {v1},
		},
	}
	monitor, err := easig.NewDiscreteMonitor(
		"figure3_state",
		easig.DiscreteSequentialNonLinear,
		params,
		// On a violation, fall back to a safe state: v1.
		easig.WithRecovery(easig.ResetTo{Value: v1}),
	)
	if err != nil {
		panic(err)
	}

	show := func(t int64, s int64) {
		accepted, violation := monitor.Test(t, s)
		name := stateName[s]
		if name == "" {
			name = fmt.Sprintf("corrupt(%d)", s)
		}
		if violation == nil {
			fmt.Printf("t=%2d: state %s ok\n", t, name)
			return
		}
		fmt.Printf("t=%2d: state %s REJECTED (%v test) -> recovered to %s\n",
			t, name, violation.Test, stateName[accepted])
	}

	fmt.Println("walking a legal path: v1 -> v2 -> v4 -> v5 -> v1 -> v4 -> v5")
	for t, s := range []int64{v1, v2, v4, v5, v1, v4, v5} {
		show(int64(t), s)
	}

	fmt.Println("\nan illegal transition: v5 -> v3 (T(v5) = {v1})")
	show(10, v3)

	fmt.Println("\na domain error: bit flip turns v2 (=2) into 34")
	show(11, v2) // back on a legal footing first (T(v1) = {v2, v4})
	show(12, v2|32)

	fmt.Printf("\ndone: %d tests, %d violations\n", monitor.Tests(), monitor.Violations())
}
