// Arrestment: run the paper's full case study through the public API —
// the aircraft-arresting system with all seven executable assertions —
// first fault-free, then with a bit-flip error injected into the
// pulscnt signal every 20 ms, and compare the outcomes.
//
// Run with: go run ./examples/arrestment
package main

import (
	"fmt"

	"easig"
)

func main() {
	tc := easig.TestCase{MassKg: 16000, VelocityMS: 65}

	fmt.Printf("test case: %.0f kg aircraft engaging at %.0f m/s\n\n", tc.MassKg, tc.VelocityMS)

	// Golden run: no injection. All 25 paper test cases arrest
	// detection-free; this is one of them scaled to our inputs.
	golden, err := easig.Run(easig.RunConfig{
		TestCase:        tc,
		Version:         easig.VersionAll,
		Seed:            11,
		FullObservation: true,
	})
	if err != nil {
		panic(err)
	}
	report("golden run (no injection)", golden)

	// Find the E1 error that flips bit 13 of pulscnt (Table 6 numbers
	// errors S1..S112 signal-major; pulscnt is the fourth signal).
	var chosen easig.InjectionError
	for _, e := range easig.BuildE1() {
		if e.Signal == "pulscnt" && e.Bit == 5 && e.Addr%2 == 0 { // word bit 13
			chosen = e
			break
		}
	}
	faulty, err := easig.Run(easig.RunConfig{
		TestCase:        tc,
		Version:         easig.VersionAll,
		Error:           &chosen,
		Seed:            11,
		FullObservation: true,
	})
	if err != nil {
		panic(err)
	}
	report(fmt.Sprintf("faulty run (%v)", chosen), faulty)

	// The same error with every assertion disabled: the error is free
	// to corrupt the checkpoint logic silently.
	silent, err := easig.Run(easig.RunConfig{
		TestCase:        tc,
		Version:         easig.VersionNone,
		Error:           &chosen,
		Seed:            11,
		FullObservation: true,
	})
	if err != nil {
		panic(err)
	}
	report("faulty run with assertions disabled", silent)
}

func report(label string, r easig.RunResult) {
	fmt.Println(label + ":")
	if r.Stopped {
		fmt.Printf("  stopped after %.1f m (t=%.2f s)\n", r.DistanceM, float64(r.StoppedMs)/1000)
	} else {
		fmt.Printf("  did NOT stop (travel %.1f m)\n", r.DistanceM)
	}
	fmt.Printf("  peak force %.0f kN, peak retardation %.2f g\n", r.PeakForceN/1000, r.PeakRetardationMS2/9.80665)
	if r.Failed {
		fmt.Printf("  FAILURE: %s (%s)\n", r.Failure.Kind, r.Failure.Detail)
	}
	if r.Detected {
		fmt.Printf("  detected: %d violations, latency %d ms\n", r.Detections, r.LatencyMs)
	} else {
		fmt.Println("  detected: no")
	}
	fmt.Println()
}
