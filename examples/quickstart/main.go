// Quickstart: monitor a continuous sensor signal with an executable
// assertion and catch an injected data error.
//
// A coolant-temperature signal (tenths of °C) is classified as random
// continuous (paper Figure 1): it may rise or fall between samples,
// bounded by the sensor's physics. The monitor is instantiated with
// the parameter set Pcont = {smin, smax, rate limits}; a bit-flip in
// the stored value then violates the constraints and is reported.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"easig"
)

func main() {
	// A coolant sensor reads -40.0..+125.0 °C and, with the thermal
	// mass involved, cannot move faster than 0.8 °C per 100 ms sample.
	monitor, err := easig.NewContinuousMonitor(
		"coolant_temp",
		easig.ContinuousRandom,
		easig.Continuous{
			Min:  -400, // -40.0 °C
			Max:  1250, // +125.0 °C
			Incr: easig.Rate{Min: 0, Max: 8},
			Decr: easig.Rate{Min: 0, Max: 8},
		},
		easig.WithRecovery(easig.PreviousValue{}),
		easig.WithSink(easig.SinkFunc(func(v easig.Violation) {
			fmt.Printf("  !! detected: %v\n", v)
		})),
	)
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(7))
	temp := int64(820) // 82.0 °C operating temperature
	fmt.Println("sampling coolant temperature (100 ms period)...")
	for t := int64(0); t < 50; t++ {
		// Plant: the temperature wanders slowly.
		temp += rng.Int63n(7) - 3

		sample := temp
		if t == 25 {
			// A cosmic-ray bit flip hits bit 9 of the stored sample.
			sample ^= 1 << 9
			fmt.Printf("t=%4dms: injecting bit-flip: %d -> %d\n", t*100, temp, sample)
		}

		accepted, violation := monitor.Test(t*100, sample)
		if violation != nil {
			fmt.Printf("t=%4dms: sample %d rejected, recovered to %d\n", t*100, sample, accepted)
		}
	}
	fmt.Printf("done: %d tests, %d violations\n", monitor.Tests(), monitor.Violations())
}
