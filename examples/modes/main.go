// Modes: one signal, different constraints per phase of operation
// (paper §2.1, "Signal modes").
//
// An industrial oven's chamber temperature behaves differently during
// ramp-up, soak and cool-down:
//
//	ramp   dynamic monotonic increase, 2..12 tenths-°C per sample
//	soak   random around the set point, tight band
//	cool   dynamic monotonic decrease
//
// One monitor holds one Pcont per mode; the mode variable itself is a
// discrete signal protected by its own assertion, as the paper
// suggests ("mode variables can be classified as discrete signals in
// themselves").
//
// Run with: go run ./examples/modes
package main

import (
	"fmt"

	"easig"
)

const (
	modeRamp = iota
	modeSoak
	modeCool
)

var modeName = []string{"ramp", "soak", "cool"}

func main() {
	temp, err := easig.NewContinuousModes(
		"oven_temp",
		easig.ContinuousRandom, // the most general class across modes
		map[int]easig.Continuous{
			modeRamp: {
				Min: 150, Max: 2600,
				Incr: easig.Rate{Min: 1, Max: 12},
				Decr: easig.Rate{Min: 0, Max: 1}, // allow sensor jitter
			},
			modeSoak: {
				Min: 2350, Max: 2550,
				Incr: easig.Rate{Min: 0, Max: 4},
				Decr: easig.Rate{Min: 0, Max: 4},
			},
			modeCool: {
				Min: 150, Max: 2600,
				Incr: easig.Rate{Min: 0, Max: 1},
				Decr: easig.Rate{Min: 1, Max: 15},
			},
		},
		easig.WithInitialMode(modeRamp),
		easig.WithSink(easig.SinkFunc(func(v easig.Violation) {
			fmt.Printf("  !! oven_temp: %v (mode %s)\n", v, modeName[v.Mode])
		})),
	)
	if err != nil {
		panic(err)
	}

	// The mode variable is itself a monitored discrete signal: the
	// process must go ramp -> soak -> cool (no stay restriction, the
	// controller may hold a mode across samples).
	mode, err := easig.NewDiscreteMonitor(
		"oven_mode",
		easig.DiscreteSequentialLinear,
		easig.NewLinear([]int64{modeRamp, modeSoak, modeCool}, false, true),
		easig.WithSink(easig.SinkFunc(func(v easig.Violation) {
			fmt.Printf("  !! oven_mode: %v\n", v)
		})),
	)
	if err != nil {
		panic(err)
	}

	type step struct {
		mode int
		temp int64
	}
	profile := []step{
		{modeRamp, 2350}, {modeRamp, 2359}, {modeRamp, 2368}, {modeRamp, 2379},
		{modeRamp, 3403}, // a corrupted sample: bit flip far past the ramp rate
		{modeRamp, 2388}, {modeRamp, 2396},
		{modeSoak, 2399}, // mode switch: constraints swap to the soak band
		{modeSoak, 2401}, {modeSoak, 2398},
		{modeSoak, 2309}, // drooped below the soak band: detected
		{modeSoak, 2402},
		{modeCool, 2390}, {modeCool, 2381},
		{modeRamp, 2375}, // illegal mode regression cool -> ramp: detected
		{modeCool, 2369},
	}

	for t, st := range profile {
		now := int64(t) * 500
		accepted, _ := mode.Test(now, int64(st.mode))
		if err := temp.SetMode(int(accepted)); err != nil {
			panic(err)
		}
		tempAccepted, violation := temp.Test(now, st.temp)
		status := "ok"
		if violation != nil {
			status = fmt.Sprintf("rejected -> %d", tempAccepted)
		}
		fmt.Printf("t=%5dms mode=%-4s temp=%4d  %s\n", now, modeName[accepted], st.temp, status)
	}
	fmt.Printf("\ndone: temp %d/%d tests/violations, mode %d/%d\n",
		temp.Tests(), temp.Violations(), mode.Tests(), mode.Violations())
}
