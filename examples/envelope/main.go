// Envelope: dynamic constraints (paper §2.1: "dynamic constraints
// ... may also be considered").
//
// A pressure measurement must track its set point. No useful *static*
// parameter set exists for it: the legal value depends on where the
// set point currently is. An EnvelopeTracker derives a fresh Pcont
// from the set point every sample — bounds at set point ± tolerance,
// rates following the set point's own movement — and the monitor's
// parameters are updated at run time.
//
// The demo detects a stuck-at sensor fault that a static parameter set
// would accept forever: the frozen value stays inside the static
// bounds but leaves the moving envelope.
//
// Run with: go run ./examples/envelope
package main

import (
	"fmt"

	"easig"
)

func main() {
	tracker := easig.EnvelopeTracker{
		Above: 250, // tolerated tracking error incl. ramp lag, counts
		Below: 250,
		Slack: 6, // sensor noise allowance per sample
		Floor: 0,
		Ceil:  1700,
	}
	setPoint := int64(400)
	monitor, err := easig.NewContinuousMonitor(
		"measured_pressure",
		easig.ContinuousRandom,
		tracker.Observe(setPoint),
		easig.WithSink(easig.SinkFunc(func(v easig.Violation) {
			fmt.Printf("  !! %v\n", v)
		})),
	)
	if err != nil {
		panic(err)
	}

	measured := float64(setPoint)
	stuckAt := int64(-1)
	sample := func(t int64) int64 {
		if stuckAt >= 0 {
			return stuckAt // the sensor froze
		}
		measured += (float64(setPoint) - measured) * 0.3
		return int64(measured)
	}

	for t := int64(0); t < 40; t++ {
		switch t {
		case 10:
			fmt.Println("-- set point ramps up 400 -> 1400")
		case 18:
			fmt.Println("-- sensor freezes (stuck-at fault)")
			stuckAt = sample(t)
		}
		if t >= 10 && setPoint < 1400 {
			setPoint += 50
		}

		// Derive this sample's acceptance region from the set point
		// and install it before testing.
		if err := monitor.UpdateContinuous(0, tracker.Observe(setPoint)); err != nil {
			panic(err)
		}
		s := sample(t)
		_, violation := monitor.Test(t, s)
		status := "ok"
		if violation != nil {
			status = "DETECTED"
		}
		fmt.Printf("t=%2d set=%4d measured=%4d  %s\n", t, setPoint, s, status)
		if violation != nil {
			fmt.Println("\nthe stuck sensor left the dynamic envelope: fault detected")
			return
		}
	}
	fmt.Println("no fault detected")
}
