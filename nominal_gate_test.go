package easig_test

import (
	"testing"

	"easig"
)

// The §3.4 nominal gate: all 25 test cases of the paper's grid (mass
// 8000..20000 kg x velocity 40..70 m/s) must complete fault-free — the
// aircraft stops inside the runway with zero assertion violations and
// zero arrestment failures on the fully instrumented build.
func TestNominalGate25Cases(t *testing.T) {
	cases := easig.Grid(5)
	if len(cases) != 25 {
		t.Fatalf("Grid(5) = %d cases, want 25", len(cases))
	}
	for _, tc := range cases {
		res, err := easig.RunNominal(tc)
		if err != nil {
			t.Fatalf("%.0f kg at %.1f m/s: %v", tc.MassKg, tc.VelocityMS, err)
		}
		if !res.Stopped {
			t.Errorf("%.0f kg at %.1f m/s: did not stop (%.1f m)", tc.MassKg, tc.VelocityMS, res.DistanceM)
		}
		if res.Failed {
			t.Errorf("%.0f kg at %.1f m/s: arrestment failure", tc.MassKg, tc.VelocityMS)
		}
		if res.Detections != 0 {
			t.Errorf("%.0f kg at %.1f m/s: %d false detections", tc.MassKg, tc.VelocityMS, res.Detections)
		}
		if res.DistanceM >= 335 {
			t.Errorf("%.0f kg at %.1f m/s: overran the runway (%.1f m)", tc.MassKg, tc.VelocityMS, res.DistanceM)
		}
	}
}

// Scaled-down seeded E1 campaign: the counter signals must reproduce
// the shape of the paper's Table 7 — pulscnt, ms_slot_nbr and mscnt are
// detected for every injected bit position (≈100 % P(d)), while the
// slew-limited pressure signals stay strictly partial.
func TestScaledE1CounterCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled campaign in -short mode")
	}
	res, err := easig.RunE1(easig.CampaignConfig{
		Spec: easig.CampaignSpec{
			Grid:          2,
			ObservationMs: 6000,
			Seed:          7,
			Versions:      []easig.Version{easig.VersionAll},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := easig.Table4Rows()
	counters := map[string]bool{"pulscnt": true, "ms_slot_nbr": true, "mscnt": true}
	for sig, row := range rows {
		cov := res.Coverage[sig][0].All
		if !cov.Valid() {
			t.Fatalf("signal %s: no runs", row.Signal)
		}
		if counters[row.Signal] {
			if cov.Detected != cov.Total {
				t.Errorf("counter signal %s: P(d) = %d/%d, want 100%%", row.Signal, cov.Detected, cov.Total)
			}
		}
	}
	// The pressure set point is slew-limited: low-order bit errors hide
	// below the rate constraints, so its coverage must be partial.
	sv := res.Coverage[0][0].All
	if sv.Detected == 0 || sv.Detected == sv.Total {
		t.Errorf("SetValue: P(d) = %d/%d, want strictly partial", sv.Detected, sv.Total)
	}
}
