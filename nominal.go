package easig

import (
	"fmt"

	"easig/internal/target"
)

// Minimal campaign surface for public-API users: the Table 4
// instrumentation map as structured rows, and a nominal (fault-free)
// smoke run — enough to exercise the reproduction without reaching into
// internal packages. (Table4 renders the same rows as text.)

// Table4Row is one row of the paper's Table 4: a monitored signal, its
// Figure 1 classification and the module executing its assertion.
type Table4Row struct {
	// EA is the assertion number (1..7).
	EA int
	// Signal is the monitored 16-bit signal's name.
	Signal string
	// Class is the signal's classification.
	Class Class
	// TestLocation is the module that runs the assertion (the
	// consumer-side placement of the paper).
	TestLocation string
}

// Table4Rows returns the instrumentation map of the paper's Table 4 in
// assertion order EA1..EA7.
func Table4Rows() []Table4Row {
	names := target.SignalNames()
	classes := target.SignalClasses()
	locs := target.TestLocations()
	rows := make([]Table4Row, target.NumEAs)
	for k := range rows {
		rows[k] = Table4Row{EA: k + 1, Signal: names[k], Class: classes[k], TestLocation: locs[k]}
	}
	return rows
}

// NominalResult is the readout of one fault-free arrestment (the
// baseline behaviour of §3.2: stop inside the runway, no constraint
// violation, no detection).
type NominalResult struct {
	// Stopped reports whether the aircraft came to a halt, and when.
	Stopped   bool
	StoppedMs int64
	// Failed reports a violated arrestment constraint (§3.2).
	Failed bool
	// Detections counts assertion violations on the fully instrumented
	// build; a nominal run must report zero.
	Detections int
	// DistanceM is the total travel; the runway allows 335 m.
	DistanceM float64
	// PeakRetardationMS2 is the maximum deceleration seen by the pilot.
	PeakRetardationMS2 float64
}

// nominalObservationMs bounds a nominal smoke run; every test case of
// the paper's grid stops well inside the 40 s observation window.
const nominalObservationMs = 40000

// RunNominal arrests one fault-free test case on the fully instrumented
// target (VersionAll on both nodes) and reports the outcome. It is the
// §3.4 preflight in miniature: a healthy reproduction stops inside the
// runway with zero detections and zero failures.
func RunNominal(tc TestCase) (NominalResult, error) {
	rec := &Recorder{}
	sys, err := NewArrestingSystem(ArrestingSystemConfig{
		TestCase:  tc,
		Version:   VersionAll,
		Sink:      rec,
		SlaveSink: rec,
	})
	if err != nil {
		return NominalResult{}, fmt.Errorf("easig: nominal run: %w", err)
	}
	for ms := 0; ms < nominalObservationMs; ms++ {
		sys.StepMs()
		if _, stopped := sys.Env().Stopped(); stopped {
			break
		}
	}
	stopMs, stopped := sys.Env().Stopped()
	_, failed := sys.Env().Failure()
	return NominalResult{
		Stopped:            stopped,
		StoppedMs:          stopMs,
		Failed:             failed,
		Detections:         rec.Count(),
		DistanceM:          sys.Env().Distance(),
		PeakRetardationMS2: sys.Env().PeakRetardation(),
	}, nil
}
