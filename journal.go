package easig

import (
	"io"

	"easig/internal/journal"
)

// Campaign observability: re-exports of the internal/journal subsystem
// that makes the paper's 27 400-run protocol (§3.4: E1's 22 400 runs
// plus E2's 5000) journaled, resumable and observable. A campaign run
// with CampaignConfig.Journal set appends one JSONL record per
// completed run; an interrupted campaign resumed from that journal via
// CampaignConfig.Resume reproduces the uninterrupted campaign's
// Tables 7-9 byte for byte. See ARCHITECTURE.md for the determinism
// contract that makes this sound.

// JournalWriter appends campaign run records to a JSONL journal file
// through a single writer goroutine; set it as CampaignConfig.Journal.
type JournalWriter = journal.Writer

// JournalLog is a loaded campaign journal; set it as
// CampaignConfig.Resume to replay its outcomes instead of re-executing
// the journaled runs.
type JournalLog = journal.Log

// JournalHeader is a journal's campaign identification line.
type JournalHeader = journal.Header

// JournalRecord is one journaled run: its coordinates in the campaign
// grid, the derived per-run seed, and the Table 7-9 readouts.
type JournalRecord = journal.Record

// ProgressEvent is one campaign progress sample (throughput,
// completed/total, ETA), delivered to CampaignConfig.Progress after
// every completed or replayed run.
type ProgressEvent = journal.ProgressEvent

// CampaignMetrics summarizes a finished campaign's execution: live and
// replayed run counts, wall time, throughput and per-worker
// utilization. Campaign results carry one in their Metrics field.
type CampaignMetrics = journal.Metrics

// WorkerMetrics is one pool worker's share of a campaign.
type WorkerMetrics = journal.WorkerMetrics

// CreateJournal opens a fresh journal at path, truncating any previous
// file.
func CreateJournal(path string) (*JournalWriter, error) { return journal.Create(path) }

// OpenJournal opens an existing journal for appending — the resume
// path, so a twice-interrupted campaign still resumes cleanly.
func OpenJournal(path string) (*JournalWriter, error) { return journal.Open(path) }

// LoadJournal reads a journal file, tolerating the truncated final
// line a killed campaign leaves behind.
func LoadJournal(path string) (*JournalLog, error) { return journal.Load(path) }

// ReadJournal parses journal lines from any reader — the path behind
// ficd's shard-journal uploads, where the journal arrives as an HTTP
// body instead of a file.
func ReadJournal(r io.Reader) (*JournalLog, error) { return journal.Read(r) }

// JournalClaim is one shard-ledger line of a distributed campaign: a
// lease grant ("claim") or a shard completion ("shard_done"). The ficd
// service appends these to its per-campaign ledger and replays them on
// restart to recover the lease board (see SERVICE.md).
type JournalClaim = journal.Claim
