package easig

import (
	"easig/internal/core"
)

// The public API re-exports the mechanism types from internal/core so
// downstream users depend only on the easig package; the experiment
// substrates stay internal.

// Class identifies a node of the paper's Figure 1 classification
// scheme.
type Class = core.Class

// The six leaf classes of the paper's Figure 1 classification scheme.
const (
	ContinuousRandom            = core.ContinuousRandom
	ContinuousMonotonicStatic   = core.ContinuousMonotonicStatic
	ContinuousMonotonicDynamic  = core.ContinuousMonotonicDynamic
	DiscreteRandom              = core.DiscreteRandom
	DiscreteSequentialLinear    = core.DiscreteSequentialLinear
	DiscreteSequentialNonLinear = core.DiscreteSequentialNonLinear
)

// Classes returns the six leaf classes in Figure 1 order.
func Classes() []Class { return core.Classes() }

// ParseClass parses the compact Table 4 notation ("Co/Ra", "Di/Se/Li",
// ...).
func ParseClass(s string) (Class, error) { return core.ParseClass(s) }

// Rate bounds the per-test change magnitude in one direction (the
// rate-limit entries of the paper's Table 1 parameter sets).
type Rate = core.Rate

// Continuous is the parameter set Pcont for continuous signals (paper
// Table 1).
type Continuous = core.Continuous

// Discrete is the parameter set Pdisc for discrete signals (paper
// Table 1).
type Discrete = core.Discrete

// NewLinear builds the Pdisc of a linear sequential signal traversing
// domain in order.
func NewLinear(domain []int64, cyclic, allowStay bool) Discrete {
	return core.NewLinear(domain, cyclic, allowStay)
}

// NewRandomDomain builds the Pdisc of a random discrete signal.
func NewRandomDomain(domain []int64) Discrete { return core.NewRandom(domain) }

// TestID identifies which assertion of Tables 2/3 a signal failed.
type TestID = core.TestID

// The assertion identifiers: value bounds, rate windows and wrap-around
// (paper Table 2); domain membership and transition legality (Table 3).
const (
	TestMax        = core.TestMax
	TestMin        = core.TestMin
	TestIncrease   = core.TestIncrease
	TestDecrease   = core.TestDecrease
	TestUnchanged  = core.TestUnchanged
	TestDomain     = core.TestDomain
	TestTransition = core.TestTransition
)

// Violation describes a detected data error: which signal failed which
// Table 2/3 assertion, when, and with what value.
type Violation = core.Violation

// Monitor is a stateful executable-assertion tester for one signal: the
// unit the paper instruments into the target software at each Table 4
// test location.
type Monitor = core.Monitor

// MonitorOption configures a Monitor.
type MonitorOption = core.MonitorOption

// Monitor options.
var (
	// WithRecovery sets the recovery policy applied after a violation.
	WithRecovery = core.WithRecovery
	// WithSink sets the detection sink receiving violations.
	WithSink = core.WithSink
	// WithInitialMode selects the initially active signal mode.
	WithInitialMode = core.WithInitialMode
	// WithPrevStore relocates the monitor's previous-value state.
	WithPrevStore = core.WithPrevStore
)

// NewContinuousMonitor builds a single-mode monitor for a continuous
// signal, running the paper's Table 2 assertions.
func NewContinuousMonitor(name string, class Class, p Continuous, opts ...MonitorOption) (*Monitor, error) {
	return core.NewContinuousSingle(name, class, p, opts...)
}

// NewContinuousModes builds a monitor with one Pcont per signal mode
// (the paper's §2.1 mode-dependent parameter sets).
func NewContinuousModes(name string, class Class, modes map[int]Continuous, opts ...MonitorOption) (*Monitor, error) {
	return core.NewContinuous(name, class, modes, opts...)
}

// NewDiscreteMonitor builds a single-mode monitor for a discrete
// signal, running the paper's Table 3 assertions.
func NewDiscreteMonitor(name string, class Class, p Discrete, opts ...MonitorOption) (*Monitor, error) {
	return core.NewDiscreteSingle(name, class, p, opts...)
}

// NewDiscreteModes builds a monitor with one Pdisc per signal mode.
// Like every parameter-set entry point, it takes Pdisc by value: the
// monitor copies the sets at construction time.
func NewDiscreteModes(name string, class Class, modes map[int]Discrete, opts ...MonitorOption) (*Monitor, error) {
	return core.NewDiscrete(name, class, modes, opts...)
}

// DetectionSink receives violations (the paper target's "digital
// output pin").
type DetectionSink = core.DetectionSink

// SinkFunc adapts a function to DetectionSink.
type SinkFunc = core.SinkFunc

// Recorder is a DetectionSink storing every violation.
type Recorder = core.Recorder

// MultiSink fans violations out to several sinks.
func MultiSink(sinks ...DetectionSink) DetectionSink { return core.MultiSink(sinks...) }

// RecoveryPolicy decides the replacement value after a violation (the
// paper's "the signal can be returned to a valid state"; the §3.4
// campaigns run detection-only, see DetectionOnly).
type RecoveryPolicy = core.RecoveryPolicy

// Recovery policies.
type (
	// NoRecovery detects without repairing.
	NoRecovery = core.NoRecovery
	// PreviousValue replaces the offending value with the last
	// accepted one.
	PreviousValue = core.PreviousValue
	// Clamp limits continuous signals into their bounds.
	Clamp = core.Clamp
	// ResetTo recovers to one fixed safe value.
	ResetTo = core.ResetTo
)

// PrevStore abstracts where a monitor keeps the previous value s'.
type PrevStore = core.PrevStore

// CheckContinuous runs the Table 2 assertion chain statelessly.
func CheckContinuous(p Continuous, prev, s int64) (TestID, bool) {
	return core.CheckContinuous(p, prev, s)
}

// CheckBounds runs Table 2 tests 1 and 2 only (no previous value).
func CheckBounds(p Continuous, s int64) (TestID, bool) { return core.CheckBounds(p, s) }

// CheckDiscrete runs the Table 3 assertions statelessly.
func CheckDiscrete(p Discrete, sequential bool, prev, s int64) (TestID, bool) {
	return core.CheckDiscrete(p, sequential, prev, s)
}

// CalibrationOptions widens observed trace envelopes into parameter
// proposals.
type CalibrationOptions = core.CalibrationOptions

// ContinuousCalibrator proposes Pcont sets from fault-free traces.
type ContinuousCalibrator = core.ContinuousCalibrator

// DiscreteCalibrator proposes Pdisc sets from fault-free traces.
type DiscreteCalibrator = core.DiscreteCalibrator

// EnvelopeTracker derives dynamic continuous constraints from a
// reference signal (the paper's §2.1 "dynamic constraints" extension).
type EnvelopeTracker = core.EnvelopeTracker

// Suite manages a set of monitors with shared detection accounting
// and a windowed escalation policy (the paper's assessment stage,
// feeding the target's detection pin).
type Suite = core.Suite

// Alarm describes one escalation episode raised by a Suite.
type Alarm = core.Alarm

// SuiteOption configures a Suite.
type SuiteOption = core.SuiteOption

// NewSuite builds an empty monitor suite.
func NewSuite(opts ...SuiteOption) *Suite { return core.NewSuite(opts...) }

// WithEscalation raises an alarm when threshold violations occur
// within the window; the episode ends after the quiet period.
func WithEscalation(threshold int, window, quiet int64, onAlarm func(Alarm)) SuiteOption {
	return core.WithEscalation(threshold, window, quiet, onAlarm)
}

// MonitorStats is one monitor's accounting snapshot from a Suite.
type MonitorStats = core.MonitorStats

// ModeLink wires a monitored mode variable to the monitors whose
// parameter sets depend on it (paper §2.1).
type ModeLink = core.ModeLink

// NewModeLink builds a mode link from a discrete mode monitor to its
// dependents.
func NewModeLink(mode *Monitor, dependents ...*Monitor) (*ModeLink, error) {
	return core.NewModeLink(mode, dependents...)
}
