package easig_test

import (
	"testing"

	"easig"
	"easig/internal/core"
	"easig/internal/experiment"
	"easig/internal/inject"
	"easig/internal/memory"
	"easig/internal/target"
)

// Benchmarks regenerating the paper's tables and figures, plus
// micro-benchmarks of the mechanisms and ablation benchmarks for the
// design choices called out in DESIGN.md. Campaign benchmarks run
// scaled-down protocols (one test case, shortened observation window);
// cmd/fic runs the full-paper versions.

// --- Mechanism micro-benchmarks (Tables 2 and 3 as algorithms) ---

func BenchmarkAssertionContinuous(b *testing.B) {
	p := easig.Continuous{Min: 0, Max: 17000, Incr: easig.Rate{Min: 0, Max: 800}, Decr: easig.Rate{Min: 0, Max: 800}}
	prev := int64(5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := prev + int64(i%7) - 3
		if _, ok := easig.CheckContinuous(p, prev, s); ok {
			prev = s
		}
	}
}

func BenchmarkAssertionContinuousWrap(b *testing.B) {
	p := easig.Continuous{Min: 0, Max: 60000, Incr: easig.Rate{Min: 1, Max: 1}, Wrap: true}
	prev := int64(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		next := prev + 1
		if next == 60000 {
			next = 0
		}
		easig.CheckContinuous(p, prev, next)
		prev = next
	}
}

func BenchmarkAssertionDiscrete(b *testing.B) {
	p := easig.NewLinear([]int64{0, 1, 2, 3, 4, 5, 6}, true, false)
	p.Contains(0) // build the lookup index outside the loop
	b.ReportAllocs()
	b.ResetTimer()
	prev := int64(0)
	for i := 0; i < b.N; i++ {
		next := (prev + 1) % 7
		easig.CheckDiscrete(p, true, prev, next)
		prev = next
	}
}

func BenchmarkMonitorTest(b *testing.B) {
	m, err := easig.NewContinuousMonitor("bench", easig.ContinuousRandom,
		easig.Continuous{Min: 0, Max: 17000, Incr: easig.Rate{Min: 0, Max: 800}, Decr: easig.Rate{Min: 0, Max: 800}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Test(int64(i), int64(5000+i%11))
	}
}

func BenchmarkMemoryVar16(b *testing.B) {
	mem, err := memory.New(memory.RegionSpec{Name: "ram", Base: 0, Size: 417})
	if err != nil {
		b.Fatal(err)
	}
	v := memory.MustBind(mem, "x", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Set(uint16(i))
		if v.Get() != uint16(i) {
			b.Fatal("round trip failed")
		}
	}
}

// --- Target benchmarks (Figures 5/6: the instrumented system) ---

func BenchmarkArrestmentStepMs(b *testing.B) {
	sys, err := easig.NewArrestingSystem(easig.ArrestingSystemConfig{
		TestCase: easig.TestCase{MassKg: 14000, VelocityMS: 55},
		Version:  easig.VersionAll,
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.StepMs()
	}
}

func BenchmarkArrestmentGoldenRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := easig.Run(easig.RunConfig{
			TestCase:      easig.TestCase{MassKg: 14000, VelocityMS: 55},
			Version:       easig.VersionAll,
			ObservationMs: 12000,
			Seed:          int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed || res.Detected {
			b.Fatal("golden run not clean")
		}
	}
}

// --- Snapshot/fast-forward engine benchmarks (the BENCH_PR4 ledger
// rows; cmd/bench runs these same shapes and writes BENCH_PR4.json) ---

// BenchmarkSnapshotCaptureRestore measures one checkpoint cycle: a
// full capture of the target (417 B RAM + 1008 B stack per node,
// dispatcher and monitor state, link, plant) followed by a restore.
func BenchmarkSnapshotCaptureRestore(b *testing.B) {
	sys, err := target.NewSystem(target.SystemConfig{
		TestCase: easig.TestCase{MassKg: 14000, VelocityMS: 55},
		Seed:     1,
		Version:  target.VersionAll,
		Recovery: core.NoRecovery{},
	})
	if err != nil {
		b.Fatal(err)
	}
	sys.RunMs(500)
	var st target.SystemState
	sys.Capture(&st) // warm the buffers outside the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Capture(&st)
		if err := sys.Restore(&st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineErrorRun measures one fast-forwarded error run: clone
// the nominal snapshot, inject until the outcome settles, derive all
// eight version builds from the single profile run. One iteration
// therefore yields eight campaign runs; the derived-runs/op metric
// makes that explicit.
func BenchmarkEngineErrorRun(b *testing.B) {
	eng, err := inject.NewEngine(inject.RunConfig{
		TestCase:      easig.TestCase{MassKg: 14000, VelocityMS: 55},
		ObservationMs: 16000,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	errors := easig.BuildE1()
	versions := target.Versions()
	out := make([]inject.RunResult, len(versions))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.RunError(errors[i%len(errors)], versions, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(versions)), "derived-runs/op")
}

// BenchmarkCampaignE1Snapshot, BenchmarkCampaignE1Literal and
// BenchmarkCampaignE1Memo run the same scaled E1 campaign (one test
// case, all eight versions, 16 s window) under each engine mode. The
// snapshot/literal ns/op ratio is the fast-forward speedup; memo adds
// liveness pruning and outcome memoization on top.
func benchScaledE1(b *testing.B, mode easig.EngineMode) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := easig.RunE1(easig.CampaignConfig{
			Spec: easig.CampaignSpec{Grid: 1, Seed: 1, ObservationMs: 16000},
			Exec: easig.CampaignExec{Mode: mode},
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Runs != 112*8 {
			b.Fatalf("unexpected run count %d", r.Runs)
		}
	}
}

func BenchmarkCampaignE1Snapshot(b *testing.B) { benchScaledE1(b, easig.EngineSnapshot) }
func BenchmarkCampaignE1Literal(b *testing.B)  { benchScaledE1(b, easig.EngineLiteral) }
func BenchmarkCampaignE1Memo(b *testing.B)     { benchScaledE1(b, easig.EngineMemo) }

// --- Table benchmarks ---

// BenchmarkTable6BuildE1 regenerates the Table 6 error set.
func BenchmarkTable6BuildE1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := len(easig.BuildE1()); got != 112 {
			b.Fatal("wrong error count")
		}
	}
}

// scaledE1 is the shared scaled-down E1 protocol for table benchmarks.
func scaledE1(seed int64, versions ...easig.Version) easig.CampaignConfig {
	return easig.CampaignConfig{
		Spec: easig.CampaignSpec{
			Grid:          1,
			Seed:          seed,
			ObservationMs: 6000,
			Versions:      versions,
		},
	}
}

// BenchmarkTable7E1Campaign regenerates Table 7 (scaled: one test
// case, All version, 6-second window) and reports the headline
// coverage as custom metrics.
func BenchmarkTable7E1Campaign(b *testing.B) {
	var last *easig.E1Result
	for i := 0; i < b.N; i++ {
		r, err := easig.RunE1(scaledE1(int64(i), easig.VersionAll))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		cov := last.TotalCoverage(0)
		b.ReportMetric(cov.All.Percent(), "Pd-%")
		if cov.Fail.Valid() {
			b.ReportMetric(cov.Fail.Percent(), "Pd|fail-%")
		}
	}
}

// BenchmarkTable8Latency regenerates Table 8's aggregation from one
// scaled campaign and reports the All-version average latency.
func BenchmarkTable8Latency(b *testing.B) {
	r, err := easig.RunE1(scaledE1(1, easig.VersionAll))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if easig.Table8(r) == "" {
			b.Fatal("empty table")
		}
	}
	if avg, ok := r.TotalLatency(0).Average(); ok {
		b.ReportMetric(avg, "latency-ms")
	}
}

// BenchmarkTable9E2Campaign regenerates Table 9 (scaled: one test
// case, 32 random errors).
func BenchmarkTable9E2Campaign(b *testing.B) {
	var last *easig.E2Result
	for i := 0; i < b.N; i++ {
		r, err := easig.RunE2(easig.CampaignConfig{
			Spec: easig.CampaignSpec{
				Grid:          1,
				Seed:          int64(i),
				ObservationMs: 6000,
				E2:            inject.E2Spec{RAM: 24, Stack: 8},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		cov, _, _ := last.Total()
		b.ReportMetric(cov.All.Percent(), "Pd-%")
	}
}

// BenchmarkFigure2Traces regenerates the Figure 2 example signals.
func BenchmarkFigure2Traces(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if easig.Figure2(72, 12, int64(i)) == "" {
			b.Fatal("empty figure")
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §6) ---

// ablationErrors is a small fixed error subset: one mid and one high
// bit of each monitored signal.
func ablationErrors() []easig.InjectionError {
	var out []easig.InjectionError
	for i, e := range easig.BuildE1() {
		if bit := i % 16; bit == 9 || bit == 14 {
			out = append(out, e)
		}
	}
	return out
}

// runAblation executes the subset against one test case and reports
// detection and failure rates as custom metrics.
func runAblation(b *testing.B, recovery easig.RecoveryPolicy, periodMs int64, version easig.Version) {
	b.Helper()
	var det, fail, runs int
	for i := 0; i < b.N; i++ {
		for _, e := range ablationErrors() {
			e := e
			res, err := easig.Run(easig.RunConfig{
				TestCase:      easig.TestCase{MassKg: 8000, VelocityMS: 70},
				Version:       version,
				Error:         &e,
				Policy:        inject.Policy{StartMs: 500, PeriodMs: periodMs},
				ObservationMs: 6000,
				Seed:          int64(i),
				Recovery:      recovery,
			})
			if err != nil {
				b.Fatal(err)
			}
			runs++
			if res.Detected {
				det++
			}
			if res.Failed {
				fail++
			}
		}
	}
	b.ReportMetric(float64(det)*100/float64(runs), "detected-%")
	b.ReportMetric(float64(fail)*100/float64(runs), "failed-%")
}

// Recovery ablation: detection-only (the paper's campaigns) versus
// previous-value repair. Repair averts most failures at equal
// detection.
func BenchmarkAblationRecoveryNone(b *testing.B) {
	runAblation(b, easig.NoRecovery{}, 20, easig.VersionAll)
}

func BenchmarkAblationRecoveryPrevious(b *testing.B) {
	runAblation(b, easig.PreviousValue{}, 20, easig.VersionAll)
}

// Injection-period ablation: the paper's 20 ms intermittent model
// versus sparser re-injection.
func BenchmarkAblationPeriod20ms(b *testing.B) {
	runAblation(b, easig.NoRecovery{}, 20, easig.VersionAll)
}

func BenchmarkAblationPeriod200ms(b *testing.B) {
	runAblation(b, easig.NoRecovery{}, 200, easig.VersionAll)
}

// Version ablation: all assertions versus a single one.
func BenchmarkAblationVersionAll(b *testing.B) {
	runAblation(b, easig.NoRecovery{}, 20, easig.VersionAll)
}

func BenchmarkAblationVersionEA1(b *testing.B) {
	runAblation(b, easig.NoRecovery{}, 20, easig.VersionEA1)
}

// --- Experiment infrastructure benchmarks ---

func BenchmarkTableRendering(b *testing.B) {
	r, err := experiment.RunE1(experiment.Config{
		Spec: experiment.Spec{
			Grid: 1, Seed: 1, ObservationMs: 4000,
			Versions: []target.Version{target.VersionAll},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiment.Table7(r) == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkCalibrator(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var cal core.ContinuousCalibrator
		for s := int64(0); s < 1000; s++ {
			cal.Observe(s * 3)
		}
		cal.EndRun()
		if _, _, err := cal.Propose(core.CalibrationOptions{BoundMargin: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

// Placement ablation: the paper's consumer-side test locations versus
// producer-side placement (DESIGN.md §6). Consumer placement tests a
// value at every use; producer placement only when it is recomputed.
func runPlacementAblation(b *testing.B, placement easig.Placement) {
	b.Helper()
	var det, runs int
	for i := 0; i < b.N; i++ {
		for _, e := range ablationErrors() {
			e := e
			if e.Signal != "SetValue" && e.Signal != "IsValue" && e.Signal != "OutValue" {
				continue
			}
			res, err := easig.Run(easig.RunConfig{
				TestCase:      easig.TestCase{MassKg: 14000, VelocityMS: 55},
				Version:       easig.VersionAll,
				Error:         &e,
				ObservationMs: 6000,
				Seed:          int64(i),
				Placement:     placement,
			})
			if err != nil {
				b.Fatal(err)
			}
			runs++
			if res.Detected {
				det++
			}
		}
	}
	b.ReportMetric(float64(det)*100/float64(runs), "detected-%")
}

func BenchmarkAblationPlacementConsumer(b *testing.B) {
	runPlacementAblation(b, easig.PlacementConsumer)
}

func BenchmarkAblationPlacementProducer(b *testing.B) {
	runPlacementAblation(b, easig.PlacementProducer)
}

// Distributed-instrumentation extension: slave-side assertions catch
// set-point corruption that rides the master-to-slave link, even with
// the master's own assertions disabled.
func BenchmarkExtensionSlaveDetection(b *testing.B) {
	var det, runs int
	for i := 0; i < b.N; i++ {
		for _, e := range ablationErrors() {
			if e.Signal != "SetValue" {
				continue
			}
			slaveRec := &easig.Recorder{}
			sys, err := easig.NewArrestingSystem(easig.ArrestingSystemConfig{
				TestCase:     easig.TestCase{MassKg: 14000, VelocityMS: 55},
				Seed:         int64(i),
				Version:      easig.VersionNone,
				SlaveVersion: easig.VersionEA1,
				SlaveSink:    slaveRec,
			})
			if err != nil {
				b.Fatal(err)
			}
			mem := sys.Master().Memory()
			for ms := int64(0); ms < 6000; ms++ {
				if ms >= 500 && (ms-500)%20 == 0 {
					if err := mem.FlipBit(e.Addr, e.Bit); err != nil {
						b.Fatal(err)
					}
				}
				sys.StepMs()
			}
			runs++
			if slaveRec.Detected() {
				det++
			}
		}
	}
	b.ReportMetric(float64(det)*100/float64(runs), "slave-detected-%")
}
