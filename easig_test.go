package easig_test

import (
	"strings"
	"testing"

	"easig"
)

// The facade tests exercise the library exactly as a downstream user
// would: only through the public package.

func TestPublicMonitorFlow(t *testing.T) {
	var detected []easig.Violation
	m, err := easig.NewContinuousMonitor("speed", easig.ContinuousRandom,
		easig.Continuous{
			Min: 0, Max: 300,
			Incr: easig.Rate{Min: 0, Max: 5},
			Decr: easig.Rate{Min: 0, Max: 5},
		},
		easig.WithRecovery(easig.PreviousValue{}),
		easig.WithSink(easig.SinkFunc(func(v easig.Violation) { detected = append(detected, v) })),
	)
	if err != nil {
		t.Fatal(err)
	}
	m.Test(0, 100)
	accepted, violation := m.Test(1, 250)
	if violation == nil || violation.Test != easig.TestIncrease {
		t.Fatalf("violation = %v", violation)
	}
	if accepted != 100 {
		t.Fatalf("accepted = %d, want recovery to 100", accepted)
	}
	if len(detected) != 1 {
		t.Fatalf("sink received %d violations", len(detected))
	}
}

func TestPublicDiscreteFlow(t *testing.T) {
	m, err := easig.NewDiscreteMonitor("gear", easig.DiscreteSequentialLinear,
		easig.NewLinear([]int64{0, 1, 2, 3}, false, true))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range []int64{0, 0, 1, 2, 2, 3} {
		if _, v := m.Test(int64(i), s); v != nil {
			t.Fatalf("legal gear sequence flagged at %d: %v", i, v)
		}
	}
	if _, v := m.Test(9, 1); v == nil {
		t.Fatal("gear regression not flagged")
	}
}

func TestPublicClasses(t *testing.T) {
	if len(easig.Classes()) != 6 {
		t.Fatal("six leaf classes expected")
	}
	c, err := easig.ParseClass("Co/Mo/St")
	if err != nil || c != easig.ContinuousMonotonicStatic {
		t.Fatalf("ParseClass = (%v, %v)", c, err)
	}
}

func TestPublicStatelessChecks(t *testing.T) {
	p := easig.Continuous{Min: 0, Max: 10, Incr: easig.Rate{Min: 0, Max: 2}, Decr: easig.Rate{Min: 0, Max: 2}}
	if id, ok := easig.CheckContinuous(p, 5, 8); ok || id != easig.TestIncrease {
		t.Errorf("CheckContinuous = (%v, %v)", id, ok)
	}
	if _, ok := easig.CheckBounds(p, 3); !ok {
		t.Error("CheckBounds rejected an in-bounds value")
	}
	d := easig.NewRandomDomain([]int64{1, 2})
	if id, ok := easig.CheckDiscrete(d, false, 1, 3); ok || id != easig.TestDomain {
		t.Errorf("CheckDiscrete = (%v, %v)", id, ok)
	}
}

func TestPublicCalibration(t *testing.T) {
	var cal easig.ContinuousCalibrator
	for i := int64(0); i < 50; i++ {
		cal.Observe(i * 2)
	}
	cal.EndRun()
	p, class, err := cal.Propose(easig.CalibrationOptions{BoundMargin: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if class != easig.ContinuousMonotonicStatic {
		t.Errorf("class = %v", class)
	}
	if p.Max < 98 {
		t.Errorf("params = %v", p)
	}
}

func TestPublicReproductionRun(t *testing.T) {
	res, err := easig.Run(easig.RunConfig{
		TestCase: easig.TestCase{MassKg: 14000, VelocityMS: 55},
		Version:  easig.VersionAll,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected || res.Failed || !res.Stopped {
		t.Fatalf("golden run through the facade: %+v", res)
	}
}

func TestPublicErrorSets(t *testing.T) {
	if got := len(easig.BuildE1()); got != 112 {
		t.Errorf("E1 size = %d", got)
	}
	if got := len(easig.BuildE2(1)); got != 200 {
		t.Errorf("E2 size = %d", got)
	}
	if got := len(easig.Versions()); got != 8 {
		t.Errorf("versions = %d", got)
	}
	if got := len(easig.Grid(5)); got != 25 {
		t.Errorf("grid = %d", got)
	}
}

func TestPublicStaticTables(t *testing.T) {
	if !strings.Contains(easig.Table4(), "Co/Mo/Dy") {
		t.Error("Table4 facade broken")
	}
	if !strings.Contains(easig.Table6(25), "2800") {
		t.Error("Table6 facade broken")
	}
	if !strings.Contains(easig.Figure2(40, 6, 1), "*") {
		t.Error("Figure2 facade broken")
	}
}

func TestPublicArrestingSystem(t *testing.T) {
	sys, err := easig.NewArrestingSystem(easig.ArrestingSystemConfig{
		TestCase: easig.TestCase{MassKg: 12000, VelocityMS: 50},
		Version:  easig.VersionAll,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.RunMs(2000)
	if sys.Env().Distance() <= 0 {
		t.Error("aircraft did not move")
	}
	if sys.Master().Vars().SetValue.Get() == 0 {
		t.Error("controller produced no set point")
	}
}
